//! Hostile-input property suite for the sensor → ISP RAW path
//! (ROADMAP item 5: validation against malformed input).
//!
//! Every test drives deliberately broken or extreme input through
//! [`ImageSensor::capture_into`] and [`IspPipeline::process`] and
//! requires a clean `Ok`/`Err` — never a panic, never an abort. The
//! seeded sweep at the bottom walks a hash-derived grid of degenerate
//! resolutions, extreme noise sigmas, and mismatched buffer shapes so
//! the suite covers combinations no hand-written case enumerates.

use euphrates::camera::noise::NoiseModelKind;
use euphrates::camera::sensor::{ImageSensor, SensorConfig};
use euphrates::common::image::{BayerFrame, Resolution, Rgb, RgbFrame};
use euphrates::common::rngx;
use euphrates::isp::motion::SearchStrategy;
use euphrates::isp::pipeline::{IspConfig, IspPipeline};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f`, turning a panic into a test failure with the case label.
/// A clean `Ok` or `Err` both pass; only unwinding fails.
fn must_not_panic<T>(label: &str, f: impl FnOnce() -> T) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            panic!("case `{label}` panicked: {msg}");
        }
    }
}

fn sensor_at(res: Resolution, sigma: f64, kind: NoiseModelKind, seed: u64) -> ImageSensor {
    let config = SensorConfig {
        resolution: res,
        read_noise_sigma: sigma,
        noise_model: kind,
        ..SensorConfig::default()
    };
    ImageSensor::new(config, seed)
}

fn flat_rgb(res: Resolution, level: u8) -> Option<RgbFrame> {
    let n = res.pixels() as usize;
    RgbFrame::from_vec(
        res.width,
        res.height,
        vec![Rgb::new(level, level, level); n],
    )
    .ok()
}

#[test]
fn degenerate_resolutions_error_or_process_cleanly() {
    // Zero-sized frames must be rejected at construction; tiny odd
    // shapes must flow through capture + ISP without panicking even
    // though they are smaller than a macroblock or a CFA quad.
    for (w, h) in [(0, 0), (0, 8), (8, 0), (1, 1), (2, 2), (3, 5), (17, 9)] {
        let label = format!("resolution {w}x{h}");
        must_not_panic(&label, || {
            let res = Resolution::new(w, h);
            let Some(rgb) = flat_rgb(res, 128) else {
                // Zero-sized planes are unconstructible — the error IS
                // the clean rejection this suite demands.
                assert!(
                    w == 0 || h == 0,
                    "{label}: from_vec failed for nonzero shape"
                );
                return;
            };
            let sensor = sensor_at(res, 1.5, NoiseModelKind::FastGaussian, 7);
            let mut raw = BayerFrame::new(res.width.max(1), res.height.max(1)).unwrap();
            if sensor.capture_into(&rgb, 0, &mut raw).is_err() {
                return;
            }
            let mut isp = match IspPipeline::new(IspConfig::standard(res)) {
                Ok(isp) => isp,
                Err(_) => return,
            };
            // Two frames so the temporal (motion-estimation) stage runs.
            for frame in 0..2u32 {
                sensor.capture_into(&rgb, frame, &mut raw).unwrap();
                if isp.process(&raw).is_err() {
                    return;
                }
            }
        });
    }
}

#[test]
fn mismatched_buffers_are_rejected_not_indexed() {
    let res = Resolution::new(32, 24);
    let sensor = sensor_at(res, 1.0, NoiseModelKind::FastGaussian, 3);

    // RGB frame at a different shape than the sensor's configured
    // resolution: shape error, regardless of the output buffer.
    for (w, h) in [(16, 24), (32, 12), (33, 24), (31, 23), (1, 1)] {
        let rgb = flat_rgb(Resolution::new(w, h), 64).unwrap();
        let mut out = BayerFrame::new(32, 24).unwrap();
        let r = must_not_panic(&format!("rgb {w}x{h} into 32x24 sensor"), || {
            sensor.capture_into(&rgb, 0, &mut out)
        });
        assert!(
            r.unwrap().is_err(),
            "mismatched rgb {w}x{h} must be rejected"
        );
    }

    // Wrong-shape output buffer with a *correct* input: documented to be
    // resized, so this must succeed and leave the buffer at the sensor
    // shape.
    let rgb = flat_rgb(res, 64).unwrap();
    let mut out = BayerFrame::new(5, 7).unwrap();
    sensor.capture_into(&rgb, 0, &mut out).unwrap();
    assert_eq!((out.width(), out.height()), (32, 24));

    // Wrong-resolution RAW into a configured ISP: shape error, and the
    // pipeline stays usable afterwards.
    let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
    for (w, h) in [(16, 24), (32, 25), (1, 1), (64, 48)] {
        let raw = BayerFrame::new(w, h).unwrap();
        let r = must_not_panic(&format!("raw {w}x{h} into 32x24 isp"), || isp.process(&raw));
        assert!(
            r.unwrap().is_err(),
            "mismatched raw {w}x{h} must be rejected"
        );
    }
    let good = sensor.capture(&rgb, 1).unwrap();
    assert!(
        isp.process(&good).is_ok(),
        "ISP must survive rejected frames"
    );
}

#[test]
fn malformed_raw_vectors_fail_construction() {
    // A RAW buffer whose payload disagrees with its claimed shape can
    // only come from `from_vec`, which must refuse it — there is no
    // constructible out-of-contract BayerFrame to smuggle downstream.
    for (w, h, len) in [(4u32, 4u32, 15usize), (4, 4, 17), (4, 4, 0), (640, 480, 1)] {
        let r = BayerFrame::from_vec(w, h, vec![0u8; len]);
        assert!(r.is_err(), "{w}x{h} with {len} samples must be rejected");
    }
    assert!(BayerFrame::from_vec(0, 4, Vec::new()).is_err());
    assert!(BayerFrame::from_vec(4, 0, Vec::new()).is_err());
}

#[test]
fn extreme_noise_and_illumination_never_panic() {
    let res = Resolution::new(24, 16);
    let sigmas = [0.0, 1e-300, 1e-6, 255.0, 1e6, 1e300, f64::MAX];
    let kinds = [
        NoiseModelKind::FastGaussian,
        NoiseModelKind::LegacyBoxMuller,
    ];
    for &sigma in &sigmas {
        for &kind in &kinds {
            // Pixel extremes: all-black, all-white, and a checker of both.
            for level in [0u8, 255] {
                let label = format!("sigma {sigma:e} kind {} level {level}", kind.name());
                must_not_panic(&label, || {
                    let sensor = sensor_at(res, sigma, kind, 11);
                    let rgb = flat_rgb(res, level).unwrap();
                    let mut raw = BayerFrame::new(res.width, res.height).unwrap();
                    sensor.capture_into(&rgb, 0, &mut raw).unwrap();
                    // Output stays in range by type (u8) — assert the
                    // zero-sigma path is exact instead.
                    if sigma == 0.0 {
                        assert!(raw.samples().iter().all(|&s| s == level));
                    }
                    let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
                    isp.process(&raw).unwrap();
                    sensor.capture_into(&rgb, 1, &mut raw).unwrap();
                    isp.process(&raw).unwrap();
                });
            }
        }
    }
}

#[test]
fn degenerate_isp_configs_error_or_run_cleanly() {
    let res = Resolution::new(32, 32);
    for (mb, range, strategy) in [
        (0u32, 7u32, SearchStrategy::ThreeStep),
        (16, 0, SearchStrategy::ThreeStep),
        (1, 1, SearchStrategy::Exhaustive),
        (1024, 7, SearchStrategy::Diamond),
        (16, 1024, SearchStrategy::ThreeStep),
        (3, 2, SearchStrategy::Diamond),
    ] {
        let label = format!("isp mb={mb} range={range} {strategy:?}");
        must_not_panic(&label, || {
            let config = IspConfig {
                mb_size: mb,
                search_range: range,
                strategy,
                ..IspConfig::standard(res)
            };
            let mut isp = match IspPipeline::new(config) {
                Ok(isp) => isp,
                Err(_) => return, // clean rejection
            };
            let raw = BayerFrame::new(32, 32).unwrap();
            isp.process(&raw).unwrap();
            isp.process(&raw).unwrap();
        });
    }
}

#[test]
fn seeded_hostile_sweep_is_panic_free() {
    // ~64 hash-derived configurations: degenerate resolutions, extreme
    // sigmas, both noise models, mismatched capture shapes. Every case
    // must resolve to Ok or Err. The sweep is a pure function of SEED,
    // so a failure names a reproducible case.
    const SEED: u64 = 0x4A57_11E5;
    let widths = [1u32, 2, 3, 7, 16, 17, 31, 64];
    let heights = [1u32, 2, 5, 8, 15, 16, 33, 48];
    let sigmas = [0.0, 0.5, 3.0, 1e9, 1e300];
    for case in 0..64u64 {
        let h1 = rngx::counter_hash(SEED, case);
        let h2 = rngx::counter_hash(SEED ^ 0x9E37, case);
        let res = Resolution::new(widths[(h1 % 8) as usize], heights[((h1 >> 8) % 8) as usize]);
        let sigma = sigmas[(h2 % 5) as usize];
        let kind = if h2 & 0x100 == 0 {
            NoiseModelKind::FastGaussian
        } else {
            NoiseModelKind::LegacyBoxMuller
        };
        // Half the cases feed a frame at a hash-perturbed shape — the
        // sensor must reject those without touching the output buffer's
        // payload assumptions.
        let feed = if h2 & 0x200 == 0 {
            res
        } else {
            Resolution::new(
                (res.width + ((h2 >> 16) % 3) as u32).max(1),
                (res.height + ((h2 >> 20) % 3) as u32).max(1),
            )
        };
        let level = (h1 >> 24) as u8;
        let label = format!("sweep case {case}: res {res} feed {feed} sigma {sigma:e}");
        must_not_panic(&label, || {
            let sensor = sensor_at(res, sigma, kind, h1);
            let rgb = flat_rgb(feed, level).unwrap();
            let mut raw = BayerFrame::new(1, 1).unwrap();
            let captured = sensor.capture_into(&rgb, case as u32, &mut raw);
            if feed != res {
                assert!(captured.is_err(), "{label}: shape mismatch accepted");
                return;
            }
            captured.unwrap();
            let mut isp = match IspPipeline::new(IspConfig::standard(res)) {
                Ok(isp) => isp,
                Err(_) => return,
            };
            for frame in 0..3u32 {
                sensor.capture_into(&rgb, frame, &mut raw).unwrap();
                isp.process(&raw).unwrap();
            }
        });
    }
}
