//! Cross-crate integration tests: the full camera → ISP → motion
//! controller → oracle pipeline, exercised end to end at small scale
//! through the `Scenario` API.

use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;

fn tracking_suite(seed: u64, n: usize, frames: u32) -> Vec<Sequence> {
    let mut suite = euphrates::datasets::otb100_like(seed, DatasetScale::fraction(0.1));
    suite.truncate(n);
    for s in &mut suite {
        s.frames = frames;
    }
    suite
}

fn run_schemes(suite: &[Sequence], schemes: Vec<SchemeSpec>) -> Vec<SchemeResult> {
    Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite.to_vec())
        .schemes(schemes)
        .build()
        .expect("scheme registry is valid")
        .evaluate()
        .expect("evaluation succeeds")
        .schemes
}

fn spec(id: &str, backend: BackendConfig) -> SchemeSpec {
    SchemeSpec::new(id, backend).expect("id is valid")
}

#[test]
fn accuracy_declines_monotonically_with_window() {
    let suite = tracking_suite(11, 6, 72);
    let schemes: Vec<SchemeSpec> = [1u32, 2, 8, 32]
        .iter()
        .map(|&n| {
            spec(
                &format!("EW-{n}"),
                BackendConfig::new(EwPolicy::Constant(n)),
            )
        })
        .collect();
    let results = run_schemes(&suite, schemes);
    let rates: Vec<f64> = results.iter().map(|r| r.rate_at_05()).collect();
    // Allow small non-monotonic jitter between adjacent points but demand
    // the overall trend (baseline clearly above EW-32).
    assert!(
        rates[0] >= rates[2] - 0.02 && rates[1] >= rates[3] - 0.02,
        "rates {rates:?}"
    );
    assert!(
        rates[0] > rates[3] + 0.1,
        "baseline {} must clearly beat EW-32 {}",
        rates[0],
        rates[3]
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let suite = tracking_suite(13, 3, 48);
    let schemes = vec![spec("EW-4", BackendConfig::new(EwPolicy::Constant(4)))];
    let a = run_schemes(&suite, schemes.clone());
    let b = run_schemes(&suite, schemes);
    assert_eq!(a[0].outcome, b[0].outcome);
    assert_eq!(a[0].per_sequence.len(), b[0].per_sequence.len());
}

#[test]
fn fixed_datapath_tracks_reference_closely() {
    let suite = tracking_suite(17, 4, 60);
    let mut fixed = BackendConfig::new(EwPolicy::Constant(8));
    fixed.fixed_datapath = true;
    let mut reference = fixed;
    reference.fixed_datapath = false;
    let results = run_schemes(
        &suite,
        vec![spec("fixed", fixed), spec("reference", reference)],
    );
    let (f, r) = (results[0].rate_at_05(), results[1].rate_at_05());
    assert!(
        (f - r).abs() < 0.05,
        "fixed-point datapath {f} vs f64 reference {r}"
    );
}

#[test]
fn adaptive_stays_within_window_bounds_and_beats_constant() {
    let suite = tracking_suite(19, 6, 72);
    let adaptive = BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig {
        min_window: 1,
        max_window: 8,
        ..AdaptiveConfig::default()
    }));
    let results = run_schemes(
        &suite,
        vec![
            spec("EW-A", adaptive),
            spec("EW-8", BackendConfig::new(EwPolicy::Constant(8))),
        ],
    );
    let a = &results[0];
    // Window bound 8 implies inference rate >= 1/8.
    assert!(
        a.outcome.inference_rate() >= 1.0 / 8.0 - 1e-9,
        "rate {}",
        a.outcome.inference_rate()
    );
    // Adaptive at most the EW-8 inference budget or accuracy above it.
    assert!(
        a.rate_at_05() >= results[1].rate_at_05() - 0.02,
        "adaptive {} vs EW-8 {}",
        a.rate_at_05(),
        results[1].rate_at_05()
    );
}

#[test]
fn detection_and_tracking_share_the_frontend() {
    // The same prepared sequence must serve both tasks.
    let mut det_suite = euphrates::datasets::detection_suite(21, DatasetScale::fraction(0.1));
    det_suite.truncate(1);
    det_suite[0].frames = 40;
    let prep = prepare_sequence(&det_suite[0], &MotionConfig::default()).unwrap();
    let det = run_task(
        DetectorTask::new(calib::yolov2()),
        &prep,
        &BackendConfig::baseline(),
        0,
    )
    .unwrap();
    assert!(det.frames == 40 && !det.ious.is_empty());
    // Tracking needs a frame-0 target, which the detection scene provides.
    let track = run_task(
        TrackerTask::new(calib::mdnet()),
        &prep,
        &BackendConfig::baseline(),
        0,
    )
    .unwrap();
    assert_eq!(track.frames, 40);
}

#[test]
fn full_isp_path_reaches_similar_accuracy() {
    let suite = tracking_suite(23, 2, 36);
    let run_with = |motion: MotionConfig| -> Vec<SchemeResult> {
        Scenario::builder(TrackerTask::new(calib::mdnet()))
            .suite(suite.clone())
            .motion(motion)
            .scheme("EW-2", BackendConfig::new(EwPolicy::Constant(2)))
            .build()
            .expect("scheme registry is valid")
            .evaluate()
            .expect("evaluation succeeds")
            .schemes
    };
    let fast = run_with(MotionConfig::default());
    let full = run_with(MotionConfig {
        full_isp: true,
        ..MotionConfig::default()
    });
    let (a, b) = (fast[0].rate_at_05(), full[0].rate_at_05());
    assert!((a - b).abs() < 0.1, "fast path {a} vs full ISP {b}");
}

#[test]
fn mc_sram_capacity_matches_paper_design_point() {
    use euphrates::common::image::Resolution;
    use euphrates::mc::McConfig;
    // 1080p/16 fits the 8 KB SRAM exactly; 1080p/8 must not.
    McConfig::default()
        .check_capacity(Resolution::FULL_HD, 16)
        .expect("paper design point fits");
    assert!(McConfig::default()
        .check_capacity(Resolution::FULL_HD, 8)
        .is_err());
}
