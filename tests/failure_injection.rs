//! Failure injection: the pipeline must degrade gracefully — never panic,
//! never emit non-finite geometry — when its inputs are corrupted or
//! adversarial (garbage MV metadata, saturated SADs, hostile ROIs).
//!
//! This is the robustness contract of the confidence filter (Equ. 2/3):
//! garbage motion comes with high SADs, which the filter is designed to
//! suppress.

use euphrates::common::geom::{Rect, Vec2i};
use euphrates::common::image::Resolution;
use euphrates::isp::motion::{MotionField, MotionVector};
use euphrates::mc::algorithm::{roi_average_motion, ExtrapolationConfig, Extrapolator, RoiState};
use euphrates::mc::datapath::SimdDatapath;
use euphrates::mc::fusion::compensate_global;
use euphrates_common::fixed::Q16;
use euphrates_common::rngx;
use rand::Rng;

/// A field filled with random garbage vectors and random SADs.
fn garbage_field(seed: u64) -> MotionField {
    let mut field = MotionField::zeroed(Resolution::VGA, 16, 7).unwrap();
    let mut rng = rngx::derived_rng(seed, 0, 0);
    for by in 0..field.blocks_y() {
        for bx in 0..field.blocks_x() {
            field.set_block(
                bx,
                by,
                MotionVector {
                    v: Vec2i::new(rng.gen_range(-7..=7), rng.gen_range(-7..=7)),
                    sad: rng.gen_range(0..=255 * 256),
                },
            );
        }
    }
    field
}

/// A field where every block claims maximal motion with *perfect* SAD —
/// the worst lie the metadata can tell.
fn lying_field() -> MotionField {
    let mut field = MotionField::zeroed(Resolution::VGA, 16, 7).unwrap();
    for by in 0..field.blocks_y() {
        for bx in 0..field.blocks_x() {
            field.set_block(
                bx,
                by,
                MotionVector {
                    v: Vec2i::new(7, -7),
                    sad: 0,
                },
            );
        }
    }
    field
}

fn assert_finite(r: &Rect) {
    assert!(
        r.x.is_finite() && r.y.is_finite() && r.w.is_finite() && r.h.is_finite(),
        "non-finite rect {r:?}"
    );
}

#[test]
fn garbage_metadata_never_panics_or_produces_nan() {
    let ex = Extrapolator::new(ExtrapolationConfig::default());
    for seed in 0..20 {
        let field = garbage_field(seed);
        let mut state = RoiState::new(ex.config());
        let mut roi = Rect::new(300.0, 200.0, 80.0, 60.0);
        for _ in 0..50 {
            roi = ex.extrapolate(&roi, &field, &mut state);
            assert_finite(&roi);
        }
    }
}

#[test]
fn garbage_metadata_drift_is_bounded_by_search_range() {
    let ex = Extrapolator::new(ExtrapolationConfig::default());
    let field = garbage_field(3);
    let mut state = RoiState::new(ex.config());
    let start = Rect::new(300.0, 200.0, 80.0, 60.0);
    let mut roi = start;
    let steps = 30;
    for _ in 0..steps {
        roi = ex.extrapolate(&roi, &field, &mut state);
    }
    let moved = (roi.center() - start.center()).norm();
    assert!(
        moved <= f64::from(steps) * 7.0 * 1.5,
        "drift {moved} exceeds physical bound"
    );
}

#[test]
fn datapath_survives_garbage_and_saturated_inputs() {
    let dp = SimdDatapath::default();
    let cfg = ExtrapolationConfig::default();
    for field in [garbage_field(7), lying_field()] {
        for roi in [
            Rect::new(0.0, 0.0, 640.0, 480.0),
            Rect::new(-100.0, -100.0, 50.0, 50.0),
            Rect::new(635.0, 475.0, 100.0, 100.0),
            Rect::new(10.0, 10.0, 0.5, 0.5),
        ] {
            let out = dp.evaluate(&field, &roi, (Q16::MAX, Q16::MIN), &cfg);
            assert!(out.mv_x.to_f64().is_finite());
            assert!(out.mv_y.to_f64().is_finite());
            assert!((0.0..=1.0).contains(&out.confidence.to_f64().max(0.0)));
        }
    }
}

#[test]
fn high_sad_vectors_are_suppressed_by_the_filter() {
    // A field whose vectors scream "7 px right" but with near-worst SAD:
    // Equ. 3 must damp the first step to ~half (beta = 0.5).
    let mut field = lying_field();
    for by in 0..field.blocks_y() {
        for bx in 0..field.blocks_x() {
            let mut mv = field.at_block(bx, by);
            mv.sad = 255 * 16 * 16 * 9 / 10; // alpha = 0.1
            field.set_block(bx, by, mv);
        }
    }
    let (mu, alpha) = roi_average_motion(&field, &Rect::new(100.0, 100.0, 64.0, 64.0));
    assert!((mu.x - 7.0).abs() < 0.5);
    assert!(alpha < 0.2, "alpha {alpha}");
    let ex = Extrapolator::new(ExtrapolationConfig::default());
    let mut state = RoiState::new(ex.config());
    let roi = Rect::new(100.0, 100.0, 64.0, 64.0);
    let out = ex.extrapolate(&roi, &field, &mut state);
    let dx = out.x - roi.x;
    assert!(
        (dx - 3.5).abs() < 0.5,
        "low-confidence first step should be damped to ~3.5, got {dx}"
    );
}

#[test]
fn extreme_global_compensation_saturates_safely() {
    let field = garbage_field(11);
    for g in [
        euphrates::common::geom::Vec2f::new(1e12, -1e12),
        euphrates::common::geom::Vec2f::new(f64::MAX / 2.0, 0.0),
    ] {
        let (out, _) = compensate_global(&field, g);
        for by in 0..out.blocks_y() {
            for bx in 0..out.blocks_x() {
                let v = out.at_block(bx, by).v;
                // i16 saturation keeps everything representable.
                let _ = v.norm_sq();
            }
        }
    }
}

#[test]
fn tracker_survives_a_sequence_of_garbage_fields() {
    use euphrates::core::backend::{extrapolate_roi, TrackState};
    let cfg = ExtrapolationConfig::default();
    let mut state = TrackState::new(&cfg);
    let mut roi = Rect::new(200.0, 150.0, 90.0, 70.0);
    for seed in 0..100u64 {
        let field = garbage_field(seed);
        let (out, _, _) = extrapolate_roi(&roi, &field, &mut state, &cfg, seed % 2 == 0);
        assert_finite(&out);
        roi = out;
    }
}
