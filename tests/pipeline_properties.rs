//! Property-based tests over the assembled pipeline: invariants that must
//! hold for arbitrary motion fields, ROIs, and schedules.

use euphrates::common::geom::{Rect, Vec2f};
use euphrates::common::image::{LumaFrame, Resolution};
use euphrates::isp::motion::{BlockMatcher, MotionField, SearchStrategy};
use euphrates::mc::algorithm::{
    filter_mv, roi_average_motion, ExtrapolationConfig, Extrapolator, RoiState,
};
use euphrates::mc::policy::{EwController, EwPolicy, FrameKind};
use proptest::prelude::*;

/// A synthetic frame pair with uniform translation (dx, dy).
fn translated_pair(dx: i32, dy: i32, seed: u64) -> (LumaFrame, LumaFrame) {
    let mut prev = LumaFrame::new(96, 96).unwrap();
    for y in 0..96i64 {
        for x in 0..96i64 {
            let v = (euphrates::common::rngx::lattice_hash(seed, x / 3, y / 3) * 255.0) as u8;
            prev.set(x as u32, y as u32, v);
        }
    }
    let mut cur = LumaFrame::new(96, 96).unwrap();
    for y in 0..96i64 {
        for x in 0..96i64 {
            cur.set(
                x as u32,
                y as u32,
                prev.at_clamped(x - i64::from(dx), y - i64::from(dy)),
            );
        }
    }
    (cur, prev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn extrapolation_is_translation_equivariant(
        dx in -6i32..=6,
        dy in -6i32..=6,
        seed in 0u64..30,
    ) {
        let (cur, prev) = translated_pair(dx, dy, seed);
        let field = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive)
            .unwrap()
            .estimate(&cur, &prev)
            .unwrap();
        let ex = Extrapolator::default();
        let mut state = RoiState::new(ex.config());
        let roi = Rect::new(30.0, 30.0, 36.0, 36.0);
        let out = ex.extrapolate(&roi, &field, &mut state);
        let d = out.center() - roi.center();
        // Filter warm-up scales the first step by beta (>= 0.5), so the
        // move is between half and full displacement, same direction.
        let fx = f64::from(dx);
        let fy = f64::from(dy);
        prop_assert!((d.x - fx).abs() <= fx.abs() * 0.55 + 1.0, "dx {} got {}", fx, d.x);
        prop_assert!((d.y - fy).abs() <= fy.abs() * 0.55 + 1.0, "dy {} got {}", fy, d.y);
    }

    #[test]
    fn roi_average_is_bounded_by_search_range(
        x in 0.0f64..80.0,
        y in 0.0f64..80.0,
        w in 4.0f64..60.0,
        h in 4.0f64..60.0,
        dx in -7i32..=7,
        dy in -7i32..=7,
        seed in 0u64..20,
    ) {
        let (cur, prev) = translated_pair(dx, dy, seed);
        let field = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)
            .unwrap()
            .estimate(&cur, &prev)
            .unwrap();
        let (mu, alpha) = roi_average_motion(&field, &Rect::new(x, y, w, h));
        prop_assert!(mu.x.abs() <= 7.0 + 1e-9 && mu.y.abs() <= 7.0 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&alpha));
    }

    #[test]
    fn filter_output_is_convex(
        mux in -7.0f64..7.0,
        muy in -7.0f64..7.0,
        px in -7.0f64..7.0,
        py in -7.0f64..7.0,
        alpha in 0.0f64..=1.0,
        threshold in 0.0f64..=1.0,
    ) {
        let out = filter_mv(Vec2f::new(mux, muy), alpha, Vec2f::new(px, py), threshold);
        prop_assert!(out.x >= mux.min(px) - 1e-9 && out.x <= mux.max(px) + 1e-9);
        prop_assert!(out.y >= muy.min(py) - 1e-9 && out.y <= muy.max(py) + 1e-9);
    }

    #[test]
    fn ew_schedule_has_exact_inference_rate(n in 1u32..32, frames in 33u64..200) {
        let mut ctrl = EwController::new(EwPolicy::Constant(n)).unwrap();
        let mut inferences = 0u64;
        for _ in 0..frames {
            if ctrl.next_frame() == FrameKind::Inference {
                inferences += 1;
            }
        }
        // Exactly ceil(frames / n) inferences.
        prop_assert_eq!(inferences, frames.div_ceil(u64::from(n)));
    }

    #[test]
    fn zeroed_field_never_moves_rois(
        x in -50.0f64..600.0,
        y in -50.0f64..400.0,
        w in 1.0f64..200.0,
        h in 1.0f64..200.0,
        gx in 1u32..4,
        gy in 1u32..4,
    ) {
        let field = MotionField::zeroed(Resolution::VGA, 16, 7).unwrap();
        let cfg = ExtrapolationConfig {
            sub_roi_grid: (gx, gy),
            ..ExtrapolationConfig::default()
        };
        let ex = Extrapolator::new(cfg);
        let mut state = RoiState::new(&cfg);
        let roi = Rect::new(x, y, w, h);
        let out = ex.extrapolate(&roi, &field, &mut state);
        prop_assert!((out.x - roi.x).abs() < 1e-9);
        prop_assert!((out.y - roi.y).abs() < 1e-9);
        prop_assert!((out.w - roi.w).abs() < 1e-6);
        prop_assert!((out.h - roi.h).abs() < 1e-6);
    }

    #[test]
    fn energy_model_is_monotone_in_window(
        w1 in 1.0f64..32.0,
        delta in 0.1f64..16.0,
    ) {
        use euphrates::core::prelude::*;
        use euphrates::nn::zoo;
        let system = SystemModel::table1();
        let net = zoo::yolov2();
        let a = system.evaluate(&net, w1, ExtrapolationExecutor::MotionController).unwrap();
        let b = system.evaluate(&net, w1 + delta, ExtrapolationExecutor::MotionController).unwrap();
        prop_assert!(b.energy_per_frame().0 <= a.energy_per_frame().0 + 1e-9);
        prop_assert!(b.fps >= a.fps - 1e-9);
    }
}
