//! Consistency checks between the analytical SoC model, the
//! discrete-event simulator, and the paper's headline numbers.

use euphrates::common::units::Picos;
use euphrates::core::prelude::*;
use euphrates::nn::zoo;
use euphrates::soc::sim::{run_vision_pipeline, PipelineTimings};

fn timings(system: &SystemModel, window: u32) -> PipelineTimings {
    let plan = system.plan(&zoo::yolov2());
    PipelineTimings {
        frame_period: Picos::from_micros(16_667),
        sensor_latency: Picos::from_millis(4),
        isp_latency: Picos::from_millis(3),
        mc_e_frame: system.mc_time_per_frame(),
        mc_i_frame: Picos::from_micros(20),
        nnx_latency: plan.latency(),
        window,
    }
}

#[test]
fn des_and_analytical_fps_agree() {
    let system = SystemModel::table1();
    for window in [1u32, 2, 4, 8] {
        let analytical = system
            .evaluate(
                &zoo::yolov2(),
                f64::from(window),
                ExtrapolationExecutor::MotionController,
            )
            .unwrap()
            .fps;
        let (run, _) = run_vision_pipeline(timings(&system, window), 360, false);
        let des = run.achieved_fps();
        // The DES quantizes to frame boundaries; allow 15%.
        let rel = (des - analytical).abs() / analytical;
        assert!(
            rel < 0.15,
            "window {window}: DES {des:.1} vs analytical {analytical:.1}"
        );
    }
}

#[test]
fn energy_breakdown_sums_to_total() {
    let system = SystemModel::table1();
    for window in [1.0, 3.0, 16.0] {
        let r = system
            .evaluate(
                &zoo::yolov2(),
                window,
                ExtrapolationExecutor::MotionController,
            )
            .unwrap();
        let b = r.breakdown();
        assert!(
            (b.total().0 - r.energy_per_frame().0).abs() < 1e-9,
            "window {window}"
        );
        assert!(b.frontend.0 > 0.0 && b.memory.0 > 0.0 && b.backend.0 > 0.0);
    }
}

#[test]
fn energy_decreases_monotonically_with_window() {
    let system = SystemModel::table1();
    let mut last = f64::INFINITY;
    for window in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let e = system
            .evaluate(
                &zoo::yolov2(),
                window,
                ExtrapolationExecutor::MotionController,
            )
            .unwrap()
            .energy_per_frame()
            .0;
        assert!(e < last, "window {window}: {e} !< {last}");
        last = e;
    }
}

#[test]
fn paper_headline_detection_results_hold() {
    // §6.1 / abstract: doubles the detection rate, 45%/66% energy saving,
    // up to 4x for the vision computations.
    let system = SystemModel::table1();
    let base = system
        .evaluate(&zoo::yolov2(), 1.0, ExtrapolationExecutor::MotionController)
        .unwrap();
    let ew2 = system
        .evaluate(&zoo::yolov2(), 2.0, ExtrapolationExecutor::MotionController)
        .unwrap();
    let ew4 = system
        .evaluate(&zoo::yolov2(), 4.0, ExtrapolationExecutor::MotionController)
        .unwrap();

    // "doubles the object detection rate"
    assert!(ew2.fps > 1.8 * base.fps, "{} vs {}", ew2.fps, base.fps);
    // "reducing the SoC energy by 66%" (EW-4)
    let s4 = 1.0 - ew4.energy_per_frame().0 / base.energy_per_frame().0;
    assert!((0.58..0.74).contains(&s4), "EW-4 saving {s4}");
    // "4x for the vision computations" — backend energy reduction at EW-4.
    let backend_ratio = base.breakdown().backend.0 / ew4.breakdown().backend.0;
    assert!(backend_ratio > 3.5, "backend reduction {backend_ratio}x");
}

#[test]
fn tracking_headline_results_hold() {
    // §6.2: 21% SoC energy saving at EW-2 without dropping 60 FPS (we
    // land within a few points; see EXPERIMENTS.md).
    let system = SystemModel::table1();
    let base = system
        .evaluate(&zoo::mdnet(), 1.0, ExtrapolationExecutor::MotionController)
        .unwrap();
    let ew2 = system
        .evaluate(&zoo::mdnet(), 2.0, ExtrapolationExecutor::MotionController)
        .unwrap();
    assert!(base.fps > 59.0 && ew2.fps > 59.0);
    let saving = 1.0 - ew2.energy_per_frame().0 / base.energy_per_frame().0;
    assert!(
        (0.12..0.32).contains(&saving),
        "EW-2 tracking saving {saving}"
    );
}

#[test]
fn des_trace_orders_pipeline_stages() {
    let system = SystemModel::table1();
    let (_, trace) = run_vision_pipeline(timings(&system, 4), 6, true);
    // For every frame, sensor < isp < mc timestamps.
    for f in 0..6u64 {
        let t = |comp: &str| {
            trace
                .iter()
                .find(|e| e.component == comp && e.message.contains(&format!("frame {f}")))
                .map(|e| e.time)
        };
        if let (Some(s), Some(i), Some(m)) = (t("sensor"), t("isp"), t("mc")) {
            assert!(s < i && i < m, "frame {f}: {s:?} {i:?} {m:?}");
        }
    }
}

#[test]
fn cpu_scheme_undoes_most_savings_at_ew8() {
    let system = SystemModel::table1();
    let ew4 = system
        .evaluate(&zoo::yolov2(), 4.0, ExtrapolationExecutor::MotionController)
        .unwrap();
    let ew8cpu = system
        .evaluate(&zoo::yolov2(), 8.0, ExtrapolationExecutor::Cpu)
        .unwrap();
    let ratio = ew8cpu.energy_per_frame().0 / ew4.energy_per_frame().0;
    assert!((0.75..1.3).contains(&ratio), "EW-8@CPU / EW-4 = {ratio}");
}
