//! # euphrates
//!
//! A from-scratch Rust reproduction of **Euphrates: Algorithm-SoC
//! Co-Design for Low-Power Mobile Continuous Vision** (Zhu, Samajdar,
//! Mattina, Whatmough — ISCA 2018).
//!
//! Euphrates cuts the energy of continuous-vision tasks by replacing most
//! CNN inferences with *motion extrapolation*: the ISP already computes
//! block-matching motion vectors for temporal denoising, so exposing them
//! to a tiny new **Motion Controller** IP lets the SoC shift detections
//! and tracks across frames for ~10 K fixed-point operations instead of
//! tens of GOPs of convolution.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | geometry, fixed point, images, metrics, units |
//! | [`camera`] | synthetic scenes + Bayer sensor model |
//! | [`isp`] | ISP pipeline, block matching, MV metadata export |
//! | [`nn`] | systolic accelerator model, network zoo, oracles |
//! | [`mc`] | the Motion Controller IP + extrapolation algorithm |
//! | [`soc`] | SoC energy/timing models, DES, DRAM, CPU |
//! | [`datasets`] | OTB/VOT/detection-style benchmark suites |
//! | [`core`] | the assembled continuous-vision pipeline |
//!
//! ## Quickstart
//!
//! ```
//! use euphrates::core::prelude::*;
//! use euphrates::nn::zoo;
//!
//! # fn main() -> euphrates::common::Result<()> {
//! // Energy/FPS at the Table 1 operating point:
//! let system = SystemModel::table1();
//! let baseline = system.evaluate(&zoo::yolov2(), 1.0, ExtrapolationExecutor::MotionController)?;
//! let ew4 = system.evaluate(&zoo::yolov2(), 4.0, ExtrapolationExecutor::MotionController)?;
//! assert!(ew4.fps > 3.0 * baseline.fps);       // ~17 -> 60 FPS
//! assert!(ew4.energy_per_frame() < baseline.energy_per_frame() * 0.45);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/benches/` for the per-figure reproduction harness.

pub use euphrates_camera as camera;
pub use euphrates_common as common;
pub use euphrates_core as core;
pub use euphrates_datasets as datasets;
pub use euphrates_isp as isp;
pub use euphrates_mc as mc;
pub use euphrates_nn as nn;
pub use euphrates_soc as soc;
