//! # euphrates
//!
//! A from-scratch Rust reproduction of **Euphrates: Algorithm-SoC
//! Co-Design for Low-Power Mobile Continuous Vision** (Zhu, Samajdar,
//! Mattina, Whatmough — ISCA 2018).
//!
//! Euphrates cuts the energy of continuous-vision tasks by replacing most
//! CNN inferences with *motion extrapolation*: the ISP already computes
//! block-matching motion vectors for temporal denoising, so exposing them
//! to a tiny new **Motion Controller** IP lets the SoC shift detections
//! and tracks across frames for ~10 K fixed-point operations instead of
//! tens of GOPs of convolution.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | geometry, fixed point, images, metrics, units |
//! | [`camera`] | synthetic scenes + Bayer sensor model |
//! | [`isp`] | ISP pipeline, block matching, MV metadata export |
//! | [`nn`] | systolic accelerator model, network zoo, oracles |
//! | [`mc`] | the Motion Controller IP + extrapolation algorithm |
//! | [`soc`] | SoC energy/timing models, DES, DRAM, CPU |
//! | [`datasets`] | OTB/VOT/detection-style benchmark suites |
//! | [`core`] | the assembled continuous-vision pipeline |
//! | [`serve`] | sharded concurrent session serving |
//!
//! ## Quickstart
//!
//! Describe an experiment with the [`Scenario`][core::api::Scenario]
//! builder and evaluate it to a report carrying accuracy, energy, FPS,
//! and DRAM traffic together:
//!
//! ```
//! use euphrates::core::prelude::*;
//! use euphrates::nn::{oracle::calib, zoo};
//!
//! # fn main() -> euphrates::common::Result<()> {
//! let mut suite = euphrates::datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(2);
//! for s in &mut suite { s.frames = 40; }
//!
//! let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
//!     .suite(suite)
//!     .network(zoo::mdnet())
//!     .scheme("MDNet", BackendConfig::baseline())
//!     .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
//!     .build()?
//!     .evaluate()?;
//! let (base, ew4) = (report.get("MDNet").unwrap(), report.get("EW-4").unwrap());
//! assert!(ew4.outcome.inference_rate() < 0.3); // 3 of 4 inferences replaced
//! let (base_sys, ew4_sys) = (base.system.as_ref().unwrap(), ew4.system.as_ref().unwrap());
//! assert!(ew4_sys.energy_per_frame() < base_sys.energy_per_frame());
//! # Ok(())
//! # }
//! ```
//!
//! For online serving, the same schedule runs frame by frame through a
//! [`Session`][core::api::Session], fed by the streaming
//! [`frame_source`][core::frontend::frame_source] front-end (which
//! renders and motion-estimates lazily, holding one frame at a time).
//! Frame production is a scanline pipeline: the fast path renders
//! straight to luma through fixed, reused buffers (O(1) allocations
//! per frame). Sensor noise is a pluggable model — the default
//! counter-based `FastGaussian` draws its samples through a windowed
//! lane-parallel hash batch and renders the dataset-default σ=2 VGA
//! fused-luma workload in ~1.25 ms/frame single-core (the noise stage
//! itself ~1 ms; ~26× the golden-locked `LegacyBoxMuller` stream)
//! under a *statistical* contract (moments/tails/independence), while
//! the legacy stream's contract stays *bitwise*; pick per scene via
//! `SceneEffects::noise_model` or per run via
//! `MotionConfig::noise_model` (see the "Performance notes" in
//! [`camera`] for the renderer's guarantees and `BENCH_render.json`
//! for the recorded per-frame timings).
//! Motion estimation itself is pluggable: `MotionConfig::strategy`
//! selects exhaustive, three-step, diamond, or two-level hierarchical
//! search — or any custom
//! [`MotionSearch`][isp::motion::MotionSearch] engine installed with
//! [`register_search`][isp::motion::register_search]. The evaluated
//! default is the pyramid-cached hierarchical search (within 0.008
//! success rate of exhaustive at ~27 probes/block, asserted by the
//! Fig. 11b sweep), the SAD kernel is a SWAR micro-kernel the
//! compiler lowers to hardware SAD instructions, and the streaming
//! front-end caches each frame's pyramid level alongside the frame.
//! An opt-in SAD lower-bound prefilter (`MotionConfig::prefilter` /
//! `BlockMatcher::with_prefilter`) eliminates most candidates before
//! any pixel loads with bit-identical fields — its value is the
//! operation-count cut (~4.8× fewer SAD ops for exhaustive search on
//! noisy frames, ~1.55× hierarchical), the quantity that models a
//! hardware ISP. Current floors on the 1-core container: streaming
//! preparation ~2.6 ms/frame, the 12-frame tracking evaluate ~31 ms,
//! cold renderer construction ~6.7 ms (re-opening a known background
//! is a ~0.04 ms memo hit) — all in `BENCH_render.json`, schema 5;
//! full-suite OTB-scale sweeps are recorded in `BENCH_scaleout.json`:
//!
//! ```no_run
//! use euphrates::core::prelude::*;
//! use euphrates::nn::oracle::calib;
//! # fn frames() -> Vec<FrameData> { vec![] }
//!
//! # fn main() -> euphrates::common::Result<()> {
//! let task = TrackerTask::new(calib::mdnet());
//! let config = BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default()));
//! let mut session = Session::new(task, config, euphrates::common::image::Resolution::VGA, 0)?;
//! for frame in &frames() {
//!     let decision = session.push_frame(frame)?;
//!     println!("frame {}: {:?}, {} ROIs", decision.frame, decision.kind, decision.rois);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving many streams
//!
//! One process carries many concurrent streams through the
//! [`serve`] layer: a [`SessionServer`][serve::SessionServer] shards
//! session ids onto worker threads (each session's frames processed in
//! order by one worker — outcomes stay bit-identical to a solo
//! [`Session`][core::api::Session] or the offline evaluate), bounded
//! ingress lanes park blocked producers on a capacity gate (no
//! spin-yield; [`try_submit`][serve::SessionServer::try_submit]
//! returns [`Busy`][serve::Submit] for callers that would rather not
//! wait), and concurrent sessions' NN inferences can be fused into
//! batched systolic jobs ([`NnBatchConfig`][serve::NnBatchConfig]) that
//! amortize weight loads and array fill/drain while outcomes stay
//! bit-identical — only the charged cycle/energy cost changes. The
//! drain report carries per-session outcomes plus merged
//! submit→completion and queue-wait histograms (p50/p95/p99 via
//! [`LatencyHistogram`][common::stats::LatencyHistogram]), per-worker
//! occupancy, ingress park/wake counters, and the realized batch
//! amortization ratio. The recorded serving trajectory lives in
//! `BENCH_serve.json` (schema 4: 1- and 4-worker rows, batched and
//! unbatched, nominal-vs-degraded overload rows, plus a crash-recovery
//! grid sweeping kill cadence × checkpoint cadence);
//! `examples/session_server.rs` is the runnable tour.
//!
//! Under overload the server degrades gracefully instead of queueing
//! without bound: an [`SloConfig`][serve::SloConfig] arms an
//! [`OverloadController`][serve::OverloadController] that walks a
//! declared [`DegradationLadder`][serve::DegradationLadder] with
//! hysteresis — widening the extrapolation window (trading the paper's
//! accuracy knob for compute), shrinking the batching window, switching
//! to cheaper motion search, and shedding at the last rung — with
//! every transition recorded in the drain report's
//! [`DegradationReport`][serve::DegradationReport]. A seeded
//! [`ChaosConfig`][serve::ChaosConfig] fault plan (worker stalls,
//! injected panics, corrupted frames, forced admission rejections,
//! planned pressure) drives the bit-reproducible chaos suite, and
//! [`feed_sequence`][serve::feed_sequence] producers retry `Busy`
//! admissions with deterministic jittered backoff, tripping a typed
//! circuit breaker ([`FailureKind`][serve::FailureKind]) when a
//! session stays unreachable — with an optional half-open cooldown
//! ([`FeedPolicy::breaker_cooldown`][serve::FeedPolicy]) that probes
//! the session again after a quiet period instead of tombstoning it
//! on the first bad streak.
//!
//! The server also survives its own workers dying. Arming a
//! [`SuperviseConfig`][serve::SuperviseConfig] checkpoints every
//! session ([`Session::snapshot`][core::api::Session::snapshot] /
//! [`restore`][core::api::Session::restore], property-tested
//! bit-identical at any cut in `crates/core/tests/checkpoint.rs`) on a
//! fixed arrival cadence and keeps a bounded replay log; a heartbeat
//! watchdog detects dead or wedged workers, respawns them, and
//! resurrects their sessions from checkpoint + replay — drained
//! outcomes stay bit-identical to the offline run, and sessions past
//! the replay budget drain as
//! [`FailureKind::Unrecovered`][serve::FailureKind] with the exact lag
//! in the error. The incident timeline (kills, wedges, replay lags,
//! MTTR in logical ticks) lands in the drain report's
//! [`RecoveryReport`][serve::RecoveryReport]. For planned restarts,
//! [`SessionServer::freeze`][serve::SessionServer::freeze] drains the
//! fleet into a [`ServerImage`][serve::ServerImage] that
//! [`thaw`][serve::SessionServer::thaw] revives at any worker count —
//! warm restart, bit-identical outcomes.
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/benches/` for the per-figure reproduction harness.
//!
//! ## Environment
//!
//! * `EUPHRATES_SCALE` — dataset scale (0–1) for examples and benches.
//! * `EUPHRATES_THREADS` — evaluation worker-thread count override
//!   (positive integer, capped at 16; results are thread-count
//!   independent).

pub use euphrates_camera as camera;
pub use euphrates_common as common;
pub use euphrates_core as core;
pub use euphrates_datasets as datasets;
pub use euphrates_isp as isp;
pub use euphrates_mc as mc;
pub use euphrates_nn as nn;
pub use euphrates_serve as serve;
pub use euphrates_soc as soc;
