//! Streaming serving path: frames arrive one at a time and the
//! `Session` applies the I/E-frame policy incrementally, emitting a
//! `FrameDecision` per frame — the shape an online serving system
//! consumes (no pre-rendered suite, no offline batch).
//!
//! Also demonstrates the equivalence guarantee: the streamed outcome
//! bit-matches the offline `run_task` over the same frames.
//!
//! ```text
//! cargo run --release --example streaming_session
//! ```

use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;

fn main() -> euphrates::common::Result<()> {
    // A single sequence, prepared up front here only to simulate a frame
    // source; a real deployment would feed ISP output directly.
    let mut suite = euphrates::datasets::otb100_like(7, DatasetScale::fraction(0.1));
    suite.truncate(1);
    suite[0].frames = 24;
    let prep = prepare_sequence(&suite[0], &MotionConfig::default())?;

    let task = TrackerTask::new(calib::mdnet());
    let config = BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default()));
    let mut session = Session::new(task, config, prep.resolution, 0)?;

    println!(
        "streaming {} frames through an adaptive-EW session:\n",
        prep.len()
    );
    println!("frame  kind           ROIs  datapath cyc  policy feedback");
    for frame in &prep.frames {
        let d = session.push_frame(frame)?;
        println!(
            "{:>5}  {:<13} {:>4}  {:>12}  {}",
            d.frame,
            format!("{:?}", d.kind),
            d.rois,
            d.datapath_cycles.0,
            d.policy_feedback
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let streamed = session.finish();
    println!(
        "\nstreamed: {} frames, {} inferences ({:.1}% rate)",
        streamed.frames,
        streamed.inferences,
        streamed.inference_rate() * 100.0
    );

    // The offline path is built on the same per-frame scheduler, so the
    // outcomes are bit-identical.
    let offline = run_task(TrackerTask::new(calib::mdnet()), &prep, &config, 0)?;
    assert_eq!(streamed, offline);
    println!("offline re-run is bit-identical: OK");
    Ok(())
}
