//! The SoC substrate in isolation: print the Table 1 configuration, run
//! the discrete-event pipeline simulation (sensor → ISP → MC → NNX) for a
//! YOLOv2-class workload at EW-1 and EW-4, show the event timeline for the
//! first frames, and summarize the per-frame energy ledger.
//!
//! ```text
//! cargo run --release --example soc_trace
//! ```

use euphrates::common::units::Picos;
use euphrates::core::prelude::*;
use euphrates::nn::zoo;
use euphrates::soc::sim::{run_vision_pipeline, PipelineTimings};
use euphrates::soc::SocConfig;

fn main() -> euphrates::common::Result<()> {
    println!("{}", SocConfig::table1());

    let system = SystemModel::table1();
    let plan = system.plan(&zoo::yolov2());
    println!(
        "YOLOv2 inference on the Table 1 NNX: latency {}, energy {}, DRAM {}\n",
        plan.latency(),
        plan.energy(),
        plan.dram_read() + plan.dram_write()
    );

    let timings = |window: u32| PipelineTimings {
        frame_period: Picos::from_micros(16_667),
        sensor_latency: Picos::from_millis(4),
        isp_latency: Picos::from_millis(3),
        mc_e_frame: system.mc_time_per_frame(),
        mc_i_frame: Picos::from_micros(20),
        nnx_latency: plan.latency(),
        window,
    };

    // Event timeline for the first frames of EW-4.
    let (_, trace) = run_vision_pipeline(timings(4), 8, true);
    println!("event timeline (EW-4, first 8 captured frames):");
    for entry in trace.iter().take(28) {
        println!(
            "  [{:>12}] {:<7} {}",
            entry.time.to_string(),
            entry.component,
            entry.message
        );
    }
    println!();

    // Throughput comparison from the DES.
    for (label, window) in [("baseline EW-1", 1u32), ("EW-2", 2), ("EW-4", 4)] {
        let (run, _) = run_vision_pipeline(timings(window), 240, false);
        println!(
            "{label:14} achieved {:5.1} FPS  ({} results, {} dropped, {} inferences)",
            run.achieved_fps(),
            run.results.len(),
            run.dropped,
            run.inferences
        );
    }
    println!();

    // Energy ledger per frame at each window.
    println!("per-frame energy ledger (analytical model):");
    for window in [1.0, 2.0, 4.0, 8.0] {
        let report = system.evaluate(
            &zoo::yolov2(),
            window,
            ExtrapolationExecutor::MotionController,
        )?;
        let b = report.breakdown();
        println!(
            "  EW-{window:<3} frontend {:>9}  memory {:>9}  backend {:>9}  total {:>9}  @ {:4.1} FPS",
            b.frontend.to_string(),
            b.memory.to_string(),
            b.backend.to_string(),
            b.total().to_string(),
            report.fps
        );
    }
    Ok(())
}
