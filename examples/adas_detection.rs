//! ADAS-style continuous object detection — the paper's motivating
//! scenario (§1, §2.1): multi-object detection on a real-time stream
//! under a mobile power budget.
//!
//! Sweeps the extrapolation window for YOLOv2-class detection over the
//! multi-object suite and prints the accuracy/energy/FPS frontier,
//! including the Tiny YOLO comparison the paper uses to show that motion
//! extrapolation beats network truncation (§6.1).
//!
//! ```text
//! cargo run --release --example adas_detection
//! ```

use euphrates::common::table::{fnum, percent, Table};
use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use euphrates::nn::zoo;

fn main() -> euphrates::common::Result<()> {
    let scale = DatasetScale::from_env(0.25);
    let suite = euphrates::datasets::detection_suite(7, scale);
    println!(
        "ADAS detection workload: {} sequences, {} frames, ~6 objects/frame\n",
        suite.len(),
        euphrates::datasets::total_frames(&suite)
    );

    // YOLOv2 with EW sweep, platform numbers evaluated per scheme.
    let mut builder = Scenario::builder(DetectorTask::new(calib::yolov2()))
        .suite(suite.clone())
        .network(zoo::yolov2())
        .scheme("YOLOv2", BackendConfig::baseline());
    for n in [2u32, 4, 8, 16, 32] {
        builder = builder.scheme(format!("EW-{n}"), BackendConfig::new(EwPolicy::Constant(n)));
    }
    let report = builder.build()?.evaluate()?;

    // Tiny YOLO baseline (the "shrink the network" alternative): its own
    // scenario, because both the oracle profile and the network differ.
    let tiny_report = Scenario::builder(DetectorTask::new(calib::tiny_yolo()))
        .suite(suite)
        .network(zoo::tiny_yolo())
        .scheme("TinyYOLO", BackendConfig::baseline())
        .build()?
        .evaluate()?;

    let base_energy = report.schemes[0]
        .system
        .as_ref()
        .expect("scenario has a network")
        .energy_per_frame();

    let mut table = Table::new(["scheme", "AP@0.5", "norm energy", "fps", "GB/frame"])
        .with_title("ADAS detection: accuracy-energy frontier");
    for r in report.iter().chain(tiny_report.iter()) {
        let soc = r.system.as_ref().expect("scenario has a network");
        table.row([
            r.label().to_string(),
            percent(r.rate_at_05()),
            fnum(soc.energy_per_frame().0 / base_energy.0, 2),
            fnum(soc.fps.min(60.0), 1),
            fnum(soc.traffic_per_frame.as_gib_f64(), 3),
        ]);
    }
    println!("{table}");
    println!("Note how EW-4 reaches real time at a third of the baseline energy");
    println!("while Tiny YOLO pays more energy than EW-32 for less accuracy —");
    println!("temporal motion beats network truncation (§6.1).");
    Ok(())
}
