//! ADAS-style continuous object detection — the paper's motivating
//! scenario (§1, §2.1): multi-object detection on a real-time stream
//! under a mobile power budget.
//!
//! Sweeps the extrapolation window for YOLOv2-class detection over the
//! multi-object suite and prints the accuracy/energy/FPS frontier,
//! including the Tiny YOLO comparison the paper uses to show that motion
//! extrapolation beats network truncation (§6.1).
//!
//! ```text
//! cargo run --release --example adas_detection
//! ```

use euphrates::common::table::{fnum, percent, Table};
use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use euphrates::nn::zoo;

fn main() -> euphrates::common::Result<()> {
    let scale = DatasetScale::from_env(0.25);
    let suite = euphrates::datasets::detection_suite(7, scale);
    println!(
        "ADAS detection workload: {} sequences, {} frames, ~6 objects/frame\n",
        suite.len(),
        euphrates::datasets::total_frames(&suite)
    );

    // YOLOv2 with EW sweep.
    let mut schemes = vec![("YOLOv2".to_string(), BackendConfig::baseline())];
    for n in [2u32, 4, 8, 16, 32] {
        schemes.push((format!("EW-{n}"), BackendConfig::new(EwPolicy::Constant(n))));
    }
    let results = evaluate_suite(
        &suite,
        &MotionConfig::default(),
        &schemes,
        |prep, stream, cfg| run_detection(prep, calib::yolov2(), cfg, stream),
    )?;

    // Tiny YOLO baseline (the "shrink the network" alternative).
    let tiny = evaluate_suite(
        &suite,
        &MotionConfig::default(),
        &[("TinyYOLO".to_string(), BackendConfig::baseline())],
        |prep, stream, cfg| run_detection(prep, calib::tiny_yolo(), cfg, stream),
    )?;

    let system = SystemModel::table1();
    let yolo = zoo::yolov2();
    let tiny_net = zoo::tiny_yolo();
    let base = system.evaluate(&yolo, 1.0, ExtrapolationExecutor::MotionController)?;

    let mut table = Table::new(["scheme", "AP@0.5", "norm energy", "fps", "GB/frame"])
        .with_title("ADAS detection: accuracy-energy frontier");
    for r in &results {
        let soc = system.evaluate(
            &yolo,
            r.outcome.mean_window(),
            ExtrapolationExecutor::MotionController,
        )?;
        table.row([
            r.label.clone(),
            percent(r.rate_at_05()),
            fnum(soc.energy_per_frame().0 / base.energy_per_frame().0, 2),
            fnum(soc.fps, 1),
            fnum(soc.traffic_per_frame.as_gib_f64(), 3),
        ]);
    }
    let tiny_soc = system.evaluate(&tiny_net, 1.0, ExtrapolationExecutor::MotionController)?;
    table.row([
        "TinyYOLO".to_string(),
        percent(tiny[0].rate_at_05()),
        fnum(tiny_soc.energy_per_frame().0 / base.energy_per_frame().0, 2),
        fnum(tiny_soc.fps.min(60.0), 1),
        fnum(tiny_soc.traffic_per_frame.as_gib_f64(), 3),
    ]);
    println!("{table}");
    println!("Note how EW-4 reaches real time at a third of the baseline energy");
    println!("while Tiny YOLO pays more energy than EW-32 for less accuracy —");
    println!("temporal motion beats network truncation (§6.1).");
    Ok(())
}
