//! Quickstart: run baseline vs. Euphrates EW-4 on a small tracking suite
//! and print accuracy, energy, and throughput side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use euphrates::common::table::{fnum, percent, Table};
use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use euphrates::nn::zoo;

fn main() -> euphrates::common::Result<()> {
    // 1. A small tracking workload (10% of the OTB-100-like suite).
    let suite = euphrates::datasets::otb100_like(42, DatasetScale::fraction(0.1));
    println!(
        "workload: {} sequences, {} frames total\n",
        suite.len(),
        euphrates::datasets::total_frames(&suite)
    );

    // 2. One scenario: the MDNet-class tracker over baseline (inference
    //    every frame), EW-4, and the adaptive policy, with the Table 1
    //    platform evaluating MDNet's energy/FPS at each measured window.
    let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite)
        .network(zoo::mdnet())
        .scheme("MDNet", BackendConfig::baseline())
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .scheme(
            "EW-A",
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
        )
        .build()?
        .evaluate()?;

    // 3. Accuracy, schedule, energy, and throughput from one report.
    let mut table = Table::new([
        "scheme",
        "success@0.5",
        "inference rate",
        "energy/frame",
        "norm energy",
        "fps",
    ])
    .with_title("Euphrates quickstart — MDNet tracking");
    let baseline_energy = report.schemes[0]
        .system
        .as_ref()
        .expect("scenario has a network")
        .energy_per_frame();
    for r in &report {
        let soc = r.system.as_ref().expect("scenario has a network");
        table.row([
            r.label().to_string(),
            percent(r.rate_at_05()),
            percent(r.outcome.inference_rate()),
            format!("{}", soc.energy_per_frame()),
            fnum(soc.energy_per_frame().0 / baseline_energy.0, 2),
            fnum(soc.fps, 1),
        ]);
    }
    println!("{table}");
    println!("Baseline runs a full CNN inference on every frame; EW-4 replaces");
    println!("3 of every 4 inferences with motion extrapolation on the Motion");
    println!("Controller IP; EW-A adapts the window to extrapolation quality.");
    Ok(())
}
