//! Quickstart: run baseline vs. Euphrates EW-4 on a small tracking suite
//! and print accuracy, energy, and throughput side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use euphrates::common::table::{fnum, percent, Table};
use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use euphrates::nn::zoo;

fn main() -> euphrates::common::Result<()> {
    // 1. A small tracking workload (10% of the OTB-100-like suite).
    let suite = euphrates::datasets::otb100_like(42, DatasetScale::fraction(0.1));
    println!(
        "workload: {} sequences, {} frames total\n",
        suite.len(),
        euphrates::datasets::total_frames(&suite)
    );

    // 2. Functional accuracy: baseline (inference every frame) vs. EW-4.
    let schemes = vec![
        ("MDNet".to_string(), BackendConfig::baseline()),
        ("EW-4".to_string(), BackendConfig::new(EwPolicy::Constant(4))),
        (
            "EW-A".to_string(),
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
        ),
    ];
    let results = evaluate_suite(
        &suite,
        &MotionConfig::default(),
        &schemes,
        |prep, stream, cfg| run_tracking(prep, calib::mdnet(), cfg, stream),
    )?;

    // 3. SoC energy/FPS at the Table 1 operating point (1080p60).
    let system = SystemModel::table1();
    let net = zoo::mdnet();
    let mut table = Table::new([
        "scheme",
        "success@0.5",
        "inference rate",
        "energy/frame",
        "norm energy",
        "fps",
    ])
    .with_title("Euphrates quickstart — MDNet tracking");
    let baseline_energy = system
        .evaluate(&net, 1.0, ExtrapolationExecutor::MotionController)?
        .energy_per_frame();
    for r in &results {
        let window = r.outcome.mean_window();
        let soc = system.evaluate(&net, window, ExtrapolationExecutor::MotionController)?;
        table.row([
            r.label.clone(),
            percent(r.rate_at_05()),
            percent(r.outcome.inference_rate()),
            format!("{}", soc.energy_per_frame()),
            fnum(soc.energy_per_frame().0 / baseline_energy.0, 2),
            fnum(soc.fps, 1),
        ]);
    }
    println!("{table}");
    println!("Baseline runs a full CNN inference on every frame; EW-4 replaces");
    println!("3 of every 4 inferences with motion extrapolation on the Motion");
    println!("Controller IP; EW-A adapts the window to extrapolation quality.");
    Ok(())
}
