//! Concurrent serving path: many client streams share one sharded
//! `SessionServer`, each session's frames processed in order by the
//! worker its id hashes to, with bounded ingress queues pushing back on
//! fast producers — the shape of the paper's "millions of users"
//! deployment, scaled down to one process.
//!
//! Also demonstrates the serving equivalence guarantee: every session's
//! drained outcome bit-matches an offline `run_task` over the same
//! frames, because workers only decide *where* a session runs, never
//! *what* it computes.
//!
//! Act two replays the same streams under seeded worker-kill chaos with
//! supervision armed: dead workers are detected by heartbeat, respawned,
//! and their sessions resurrected from the last checkpoint plus a
//! bounded replay log — the drained outcomes *still* bit-match the
//! offline runs, and the `RecoveryReport` shows the incident timeline
//! in logical ticks.
//!
//! ```text
//! cargo run --release --example session_server
//! ```

use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use euphrates::serve::{
    feed_sequence, ChaosConfig, FailureKind, NnBatchConfig, ServeConfig, SessionServer,
    SuperviseConfig,
};
use std::time::Duration;

fn main() -> euphrates::common::Result<()> {
    // A small suite standing in for independent client streams; a real
    // deployment would feed each client's ISP output directly.
    let mut suite = euphrates::datasets::otb100_like(7, DatasetScale::fraction(0.1));
    for seq in &mut suite {
        seq.frames = 16;
    }
    let motion = MotionConfig::default();

    // Cross-session NN batching: concurrent sessions' I-frame
    // inferences are fused into one systolic job per bounded window,
    // amortizing weight loads and array fill/drain — functional
    // outcomes stay bit-identical (asserted below).
    let config = ServeConfig::sized(4, 16).with_nn_batching(NnBatchConfig {
        network: euphrates::nn::zoo::mdnet(),
        max_batch: 16,
        max_wait: Duration::from_micros(200),
    });
    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![
            SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4)))?,
            SchemeSpec::new(
                "adaptive",
                BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
            )?,
        ],
        config,
    )?;
    println!(
        "serving {} streams across {} workers (queue depth 16):\n",
        suite.len(),
        server.workers()
    );

    // Stream every sequence through the server. `feed_sequence` renders
    // client-side via the O(1)-memory frame source and parks (sleeps on
    // the lane's capacity gate, no spinning) when its session's lane is
    // at the bound. Session id doubles as the oracle stream index, so
    // the offline re-run below can reproduce the exact same noise
    // streams.
    for (id, seq) in suite.iter().enumerate() {
        let scheme = if id % 2 == 0 { "EW-4" } else { "adaptive" };
        feed_sequence(&server, id as u64, scheme, seq, &motion)?;
    }

    // One doomed stream: a producer that gives up on its session (lost
    // client, tripped retry breaker) tombstones it with a typed reason
    // instead of leaving it half-open — the drain report classifies it
    // separately from healthy streams.
    let doomed = suite.len() as u64;
    server.open(
        doomed,
        "EW-4",
        euphrates::common::image::Resolution::new(80, 60),
    )?;
    server.break_session(doomed, "client heartbeat lost; circuit breaker opened")?;

    let report = server.drain();
    let mut offline_outcomes = Vec::new();
    println!("session  scheme    frames  inferences  rate");
    for (id, seq) in suite.iter().enumerate() {
        let scheme = if id % 2 == 0 { "EW-4" } else { "adaptive" };
        let outcome = report
            .outcome(id as u64)
            .expect("every opened session is reported")
            .as_ref()
            .expect("healthy streams finish cleanly");
        println!(
            "{id:>7}  {scheme:<8}  {:>6}  {:>10}  {:>4.1}%",
            outcome.frames,
            outcome.inferences,
            outcome.inference_rate() * 100.0
        );

        // The offline path is built on the same per-frame scheduler, so
        // each served outcome is bit-identical to a solo run.
        let prep = prepare_sequence(seq, &motion)?;
        let backend = if id % 2 == 0 {
            BackendConfig::new(EwPolicy::Constant(4))
        } else {
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default()))
        };
        let offline = run_task(TrackerTask::new(calib::mdnet()), &prep, &backend, id as u64)?;
        assert_eq!(*outcome, offline);
        offline_outcomes.push(offline);
    }

    println!(
        "\nserved {} frames ({} sessions), p50 {:.3} ms / p99 {:.3} ms submit-to-done",
        report.served,
        report.sessions(),
        report.latency.quantile(0.50) as f64 / 1e6,
        report.latency.quantile(0.99) as f64 / 1e6,
    );
    println!(
        "ingress: {} immediate, {} parked, {} woken, {} spin retries",
        report.ingress.immediate,
        report.ingress.parked,
        report.ingress.woken,
        report.ingress.spin_retries,
    );
    if let Some(nn) = &report.nn {
        println!(
            "nn batching: {} jobs in {} batches (mean {:.1}/batch), \
             {:.3}x the solo cycle cost, {:.1} mJ charged",
            nn.jobs,
            nn.batches,
            nn.mean_batch(),
            nn.amortization(),
            nn.energy_mj,
        );
    }
    // Failed sessions carry a typed kind, not just an error string —
    // an operator can tell tenant bugs (poisoned/panicked) from
    // producer give-ups (circuit-broken) at a glance.
    let breakdown = report.failure_breakdown();
    println!(
        "failures: {} poisoned, {} panicked, {} circuit-broken, {} chaos, \
         {} protocol, {} unrecovered",
        breakdown.poisoned,
        breakdown.panicked,
        breakdown.circuit_broken,
        breakdown.chaos_injected,
        breakdown.protocol,
        breakdown.unrecovered,
    );
    assert_eq!(
        report.failure_kind(doomed),
        Some(FailureKind::CircuitBroken)
    );
    assert_eq!(breakdown.total(), 1, "only the doomed stream fails");
    println!("offline re-runs are bit-identical: OK");

    // Act two: the same streams, but workers are killed out from under
    // them (seeded chaos, ~1 kill per 8 arrivals per session) with
    // supervision armed: checkpoint every 4 arrivals, replay budget 16,
    // 1 ms heartbeat watchdog. The supervisor respawns dead workers and
    // resurrects their sessions from checkpoint + replay.
    println!("\n-- crash recovery under worker-kill chaos --");
    let config = ServeConfig::sized(2, 16)
        .with_chaos(ChaosConfig::seeded(13).with_worker_kills(8))
        .with_supervision(SuperviseConfig::every(4, 16).with_watchdog(Duration::from_millis(1), 4));
    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![
            SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4)))?,
            SchemeSpec::new(
                "adaptive",
                BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
            )?,
        ],
        config,
    )?;
    for (id, seq) in suite.iter().enumerate() {
        let scheme = if id % 2 == 0 { "EW-4" } else { "adaptive" };
        feed_sequence(&server, id as u64, scheme, seq, &motion)?;
    }
    let report = server.drain();
    let recovery = report.recovery.as_ref().expect("supervision armed");
    println!(
        "{} worker deaths detected, {} respawned, {} sessions resurrected, \
         {} frames replayed, {} unrecovered, MTTR {} logical ticks",
        recovery.detections(),
        recovery.respawns,
        recovery.resurrected,
        recovery.replayed_frames,
        recovery.unrecovered,
        recovery.mttr_ticks(),
    );
    for incident in &recovery.incidents {
        println!(
            "  {:?} at tick {} (session {}): replay lag {}, {}",
            incident.kind,
            incident.tick,
            incident.session,
            incident.replay_lag,
            if incident.recovered {
                "recovered"
            } else {
                "lost"
            },
        );
    }
    // The recovery guarantee, end to end: every session drains
    // bit-identical to its offline run despite the kills.
    assert_eq!(recovery.unrecovered, 0, "budget 16 covers cadence 4");
    for (id, offline) in offline_outcomes.iter().enumerate() {
        let outcome = report
            .outcome(id as u64)
            .expect("every session reported")
            .as_ref()
            .expect("resurrected sessions finish cleanly");
        assert_eq!(outcome, offline, "session {id} diverged after recovery");
    }
    println!("post-recovery outcomes are bit-identical: OK");
    Ok(())
}
