//! Drone / surveillance visual tracking — the paper's §5.2 motivation:
//! platforms without active cooling that must minimize tracking power.
//!
//! Runs MDNet-class tracking per visual attribute and compares the
//! constant and adaptive extrapolation policies, showing where
//! extrapolation struggles (fast motion, motion blur — Fig. 12) and how
//! the adaptive window recovers accuracy on hard scenes while keeping the
//! energy of EW-4 on easy ones.
//!
//! ```text
//! cargo run --release --example drone_tracking
//! ```

use euphrates::common::table::{percent, Table};
use euphrates::core::prelude::*;
use euphrates::nn::oracle::calib;
use std::collections::BTreeMap;

fn main() -> euphrates::common::Result<()> {
    let scale = DatasetScale::from_env(0.2);
    let suite = euphrates::datasets::otb100_like(99, scale);
    println!(
        "tracking workload: {} sequences, {} frames\n",
        suite.len(),
        euphrates::datasets::total_frames(&suite)
    );

    let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite.clone())
        .scheme("MDNet", BackendConfig::baseline())
        .scheme("EW-2", BackendConfig::new(EwPolicy::Constant(2)))
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .scheme(
            "EW-A",
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
        )
        .build()?
        .evaluate()?;

    // Per-attribute success (Fig. 12-style view).
    let mut table = Table::new(["attribute", "MDNet", "EW-2", "EW-4", "EW-A"])
        .with_title("Success rate @ IoU 0.5, per visual attribute");
    let mut per_attr: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (si, seq) in suite.iter().enumerate() {
        let attr = seq.attributes[0].to_string();
        let entry = per_attr.entry(attr).or_insert_with(|| vec![0.0; 8]);
        for (ri, r) in report.iter().enumerate() {
            let o = &r.per_sequence[si];
            let hits = o.ious.iter().filter(|&&i| i >= 0.5).count();
            entry[ri * 2] += hits as f64;
            entry[ri * 2 + 1] += o.ious.len() as f64;
        }
    }
    for (attr, sums) in &per_attr {
        let rate = |i: usize| -> String {
            if sums[i * 2 + 1] == 0.0 {
                "-".into()
            } else {
                percent(sums[i * 2] / sums[i * 2 + 1])
            }
        };
        table.row([attr.clone(), rate(0), rate(1), rate(2), rate(3)]);
    }
    println!("{table}");

    let mut summary =
        Table::new(["scheme", "success@0.5", "AUC", "inference rate"]).with_title("Overall");
    for r in &report {
        summary.row([
            r.label().to_string(),
            percent(r.rate_at_05()),
            percent(r.accuracy().auc()),
            percent(r.outcome.inference_rate()),
        ]);
    }
    println!("{summary}");
    println!("Fast Motion and Motion Blur lose the most under extrapolation —");
    println!("the block matcher cannot see beyond its ±7 px search window (§7).");
    Ok(())
}
