//! The frontend substrate in isolation: render a scene, push it through
//! the *full* sensor + ISP pipeline (Bayer mosaic, dead-pixel correction,
//! demosaic, white balance, temporal denoise), and visualize the exported
//! motion field as ASCII arrows with confidence shading — what the Motion
//! Controller sees in the frame-buffer metadata.
//!
//! ```text
//! cargo run --release --example isp_motion_field
//! ```

use euphrates::camera::scene::SceneBuilder;
use euphrates::camera::sensor::{ImageSensor, SensorConfig};
use euphrates::common::image::Resolution;
use euphrates::isp::pipeline::{IspConfig, IspPipeline};

fn arrow(vx: i16, vy: i16) -> char {
    if vx == 0 && vy == 0 {
        return '.';
    }
    let angle = f64::from(vy).atan2(f64::from(vx));
    const GLYPHS: [char; 8] = ['>', '\\', 'v', '/', '<', '\\', '^', '/'];
    let sector = ((angle + std::f64::consts::PI) / (std::f64::consts::PI / 4.0)).round() as usize;
    GLYPHS[(sector + 4) % 8]
}

fn main() -> euphrates::common::Result<()> {
    let res = Resolution::new(320, 240);
    let scene = SceneBuilder::new(res, 2024).object_default().build();
    let sensor = ImageSensor::new(
        SensorConfig {
            resolution: res,
            ..SensorConfig::default()
        },
        2024,
    );
    let mut isp = IspPipeline::new(IspConfig::standard(res))?;
    let mut renderer = scene.renderer();

    println!("frame 0..8 through sensor+ISP; motion field of frame 8:\n");
    let mut last = None;
    for i in 0..=8 {
        let rendered = renderer.render(i);
        let raw = sensor.capture(&rendered.rgb, i)?;
        let out = isp.process(&raw)?;
        if i == 8 {
            last = Some((out, rendered.truth));
        }
    }
    let (out, truth) = last.expect("frame 8 processed");
    let field = &out.motion;

    for by in 0..field.blocks_y() {
        let mut line = String::new();
        for bx in 0..field.blocks_x() {
            let mv = field.at_block(bx, by);
            let conf = field.confidence(bx, by);
            let c = arrow(mv.v.x, mv.v.y);
            // Low-confidence blocks are shown in parentheses-like dimming.
            line.push(if conf < 0.55 && c != '.' { '?' } else { c });
        }
        println!("  {line}");
    }

    println!("\nlegend: '.' static, arrows = dominant block motion, '?' low confidence");
    let gt = &truth[0].rect;
    println!("ground-truth box: {gt}");
    let (mu, alpha) = euphrates::mc::algorithm::roi_average_motion(field, gt);
    println!("ROI average motion (Equ. 1): {mu}   confidence (Equ. 2): {alpha:.3}");
    println!(
        "metadata exported to the frame buffer: {} ({} blocks)",
        field.metadata_bytes(),
        field.block_count()
    );
    println!(
        "ISP motion-estimation cost at this resolution: {} ops/frame (TSS)",
        euphrates::isp::motion::BlockMatcher::new(
            16,
            7,
            euphrates::isp::SearchStrategy::ThreeStep
        )?
        .ops_per_frame(res)
    );
    Ok(())
}
