//! Stabilized tracking — the §7 future-work stack in action: a drone
//! camera with heavy, jerky shake tracks a moving target using pure
//! extrapolation between sparse inferences, comparing three motion
//! sources:
//!
//! 1. plain ISP block matching (the paper's baseline MC input),
//! 2. codec-style predictive search (per-block motion history),
//! 3. IMU-fused search (gyro re-centers the window; the filter runs in
//!    the object's frame of reference).
//!
//! ```text
//! cargo run --release --example stabilized_tracking
//! ```

use euphrates::camera::imu::{ImuConfig, ImuSensor};
use euphrates::camera::scene::{SceneBuilder, SceneEffects, SceneObject};
use euphrates::camera::sprite::{Shape, Sprite};
use euphrates::camera::texture::Texture;
use euphrates::camera::trajectory::{Profile, Trajectory};
use euphrates::common::geom::{Vec2f, Vec2i};
use euphrates::common::image::{rgb_to_luma, Resolution};
use euphrates::common::table::{fnum, Table};
use euphrates::isp::motion::{BlockMatcher, SearchStrategy};
use euphrates::isp::predictive::PredictiveBlockMatcher;
use euphrates::mc::algorithm::{ExtrapolationConfig, Extrapolator, RoiState};
use euphrates::mc::fusion::FusedExtrapolator;

const RES: Resolution = Resolution::new(320, 240);
const FRAMES: u32 = 48;
const EW: u32 = 8; // sparse inference: 7 of 8 frames extrapolate

fn shaky_scene(shake: f64, seed: u64) -> euphrates::camera::scene::Scene {
    let effects = SceneEffects {
        shake_amplitude: shake,
        shake_period: 9.0, // jerky: peak camera speed ~ 2π·A/9 px/frame
        ..SceneEffects::default()
    };
    SceneBuilder::new(RES, seed)
        .effects(effects)
        .object(SceneObject {
            id: 0,
            label: 1,
            sprite: Sprite::rigid(
                56.0,
                48.0,
                Shape::Rectangle,
                Texture::object_noise(seed + 9),
            ),
            trajectory: Trajectory::Sinusoid {
                center: Vec2f::new(160.0, 120.0),
                amplitude: Vec2f::new(70.0, 40.0),
                period: Vec2f::new(180.0, 240.0),
                phase: 0.4,
            },
            scale: Profile::one(),
            rotation: Profile::zero(),
            aspect: Profile::one(),
            z: 1,
            enter_frame: 0.0,
            exit_frame: f64::INFINITY,
            tracked: true,
        })
        .build()
}

#[derive(Clone, Copy)]
enum Source {
    Plain,
    Predictive,
    Fused,
}

/// EW-8 tracking: ground truth re-anchors the ROI on I-frames (a perfect
/// tracker isolates the motion-source comparison); E-frames extrapolate.
fn run(scene: &euphrates::camera::scene::Scene, source: Source, seed: u64) -> f64 {
    let cfg = ExtrapolationConfig::default();
    let plain = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
    let mut predictive = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
    let fused_pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
    let imu = ImuSensor::new(ImuConfig::default(), seed);
    let extrapolator = Extrapolator::new(cfg);
    let fused = FusedExtrapolator::new(extrapolator);

    let mut renderer = scene.renderer();
    let first = renderer.render(0);
    let mut prev_luma = rgb_to_luma(&first.rgb);
    let mut roi = first.truth[0].rect;
    let mut state = RoiState::new(&cfg);
    let mut iou_sum = 0.0;
    let mut scored = 0u32;

    for f in 1..FRAMES {
        let frame = renderer.render(f);
        let luma = rgb_to_luma(&frame.rgb);
        if f % EW == 0 {
            // I-frame: re-anchor (ideal inference isolates the comparison).
            roi = frame.truth[0].rect;
            state.reset();
        } else {
            roi = match source {
                Source::Plain => {
                    let field = plain.estimate(&luma, &prev_luma).unwrap();
                    extrapolator.extrapolate(&roi, &field, &mut state)
                }
                Source::Predictive => {
                    let field = predictive.estimate(&luma, &prev_luma).unwrap();
                    extrapolator.extrapolate(&roi, &field, &mut state)
                }
                Source::Fused => {
                    let reading = imu.read(scene.effects(), f);
                    let predictor = Vec2i::new(
                        reading.motion.x.round() as i16,
                        reading.motion.y.round() as i16,
                    );
                    let field = fused_pm
                        .estimate_with_global_predictor(&luma, &prev_luma, predictor)
                        .unwrap();
                    fused.extrapolate(&roi, &field, reading.motion, &mut state)
                }
            };
            iou_sum += roi.iou(&frame.truth[0].rect);
            scored += 1;
        }
        prev_luma = luma;
    }
    iou_sum / f64::from(scored)
}

fn main() {
    println!("Stabilized tracking under jerky camera shake (EW-8, E-frame IoU)\n");
    let mut table = Table::new([
        "shake (px)",
        "peak cam speed",
        "plain BM",
        "predictive",
        "IMU-fused",
    ]);
    for shake in [0.0, 6.0, 10.0, 14.0] {
        let scene = shaky_scene(shake, 1234);
        let peak = std::f64::consts::TAU * shake / 9.0;
        table.row([
            fnum(shake, 0),
            format!("{peak:.1} px/frame"),
            fnum(run(&scene, Source::Plain, 1234), 3),
            fnum(run(&scene, Source::Predictive, 1234), 3),
            fnum(run(&scene, Source::Fused, 1234), 3),
        ]);
    }
    println!("{table}");
    println!("Once the camera's own motion exceeds the ±7 px search window,");
    println!("plain block matching can no longer see the world move. Note that");
    println!("per-block *prediction* makes things worse here: its constant-");
    println!("velocity assumption is exactly wrong for oscillating shake (it");
    println!("helps for ballistic object motion — see extension_future_work).");
    println!("Only the gyro, which measures the reversal directly, re-centers");
    println!("the window correctly — the Pixel-2-style fusion the paper points");
    println!("to in §7.");
}
