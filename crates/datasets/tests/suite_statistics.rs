//! Statistical sanity of the generated suites: the properties the paper's
//! datasets have, verified on the stand-ins.

use euphrates_datasets::{
    detection_suite, otb100_like, vot2014_like, DatasetScale, VisualAttribute,
};

#[test]
fn every_attribute_is_represented_in_otb() {
    let suite = otb100_like(5, DatasetScale::fraction(0.1));
    for attr in VisualAttribute::ALL {
        assert!(
            suite.iter().any(|s| s.has_attribute(attr)),
            "missing {attr}"
        );
    }
}

#[test]
fn mean_target_speed_stays_inside_the_search_window_except_fast_motion() {
    let suite = otb100_like(7, DatasetScale::fraction(0.1));
    for seq in &suite {
        let speed = seq.mean_target_speed();
        if seq.has_attribute(VisualAttribute::FastMotion) {
            assert!(speed > 4.0, "{}: mean speed {speed}", seq.name);
        } else {
            assert!(speed < 7.0, "{}: mean speed {speed}", seq.name);
        }
    }
}

#[test]
fn sequence_names_are_unique_across_the_combined_workload() {
    let mut names: Vec<String> = otb100_like(42, DatasetScale::fraction(0.2))
        .into_iter()
        .chain(vot2014_like(42, DatasetScale::fraction(0.2)))
        .chain(detection_suite(42, DatasetScale::fraction(0.2)))
        .map(|s| s.name)
        .collect();
    let n = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), n, "duplicate sequence names");
}

#[test]
fn detection_suite_objects_carry_varied_labels() {
    let suite = detection_suite(11, DatasetScale::fraction(0.2));
    let mut labels = std::collections::BTreeSet::new();
    for seq in &suite {
        for gt in seq.ground_truth(0) {
            labels.insert(gt.label);
        }
    }
    assert!(labels.len() >= 3, "labels {labels:?}");
    // Occluder sentinel never leaks into ground truth.
    assert!(!labels.contains(&u32::MAX));
}

#[test]
fn scaled_suites_preserve_per_sequence_determinism() {
    // The same (seed, attribute, index) triple must generate the same
    // scene regardless of the scale used to reach it.
    let big = otb100_like(3, DatasetScale::full());
    let small = otb100_like(3, DatasetScale::fraction(0.1));
    // The first sequence of each attribute block matches.
    for s in &small {
        let twin = big.iter().find(|b| b.name == s.name).expect("name exists");
        assert_eq!(s.ground_truth(10), twin.ground_truth(10), "{}", s.name);
    }
}

#[test]
fn ground_truth_boxes_lie_inside_the_frame() {
    let suite = vot2014_like(9, DatasetScale::fraction(0.2));
    for seq in &suite {
        let bounds = euphrates_common::geom::Rect::new(
            0.0,
            0.0,
            f64::from(seq.resolution().width),
            f64::from(seq.resolution().height),
        );
        for f in (0..seq.frames).step_by(20) {
            for gt in seq.ground_truth(f) {
                if !gt.rect.is_empty() {
                    let inter = gt.rect.intersection(&bounds);
                    assert!(
                        (inter.area() - gt.rect.area()).abs() < 1e-6,
                        "{} frame {f}: {} exceeds frame",
                        seq.name,
                        gt.rect
                    );
                }
            }
        }
    }
}
