//! Seeded generators for the three benchmark suites (§5.2, Table 2):
//!
//! * [`otb100_like`] — 100 single-target tracking sequences, 10 per
//!   visual attribute (nominal 590 frames each ≈ the paper's 59,040
//!   OTB-100 frames).
//! * [`vot2014_like`] — 25 sequences with rotating/foreshortening targets
//!   whose axis-aligned boxes are "irregular" (nominal 409 frames each ≈
//!   10,213 frames).
//! * [`detection_suite`] — 16 multi-object sequences (≈ 6 objects per
//!   frame, nominal 454 frames each ≈ the paper's 7,264-frame in-house
//!   detection set).

use crate::attributes::VisualAttribute;
use crate::sequence::{DatasetScale, Sequence};
use euphrates_camera::scene::{SceneBuilder, SceneEffects, SceneObject};
use euphrates_camera::sprite::{Shape, Sprite};
use euphrates_camera::texture::Texture;
use euphrates_camera::trajectory::{Profile, Trajectory};
use euphrates_common::geom::Vec2f;
use euphrates_common::image::Resolution;
use euphrates_common::rngx;
use rand::Rng;

/// Evaluation resolution (the paper's Fig. 1 operating point; the
/// performance/power models run at 1080p per Table 1).
pub const EVAL_RESOLUTION: Resolution = Resolution::VGA;

fn frame_center(res: Resolution) -> Vec2f {
    Vec2f::new(f64::from(res.width) / 2.0, f64::from(res.height) / 2.0)
}

/// Base moderate-motion orbit used by most sequences: peak speed ~2–4
/// px/frame, comfortably inside the ±7 search window.
fn base_trajectory(res: Resolution, rng: &mut impl Rng) -> Trajectory {
    let c = frame_center(res);
    let amp = Vec2f::new(
        f64::from(res.width) * rng.gen_range(0.16..0.26),
        f64::from(res.height) * rng.gen_range(0.12..0.22),
    );
    let period = Vec2f::new(rng.gen_range(220.0..320.0), rng.gen_range(260.0..380.0));
    Trajectory::Sinusoid {
        center: c,
        amplitude: amp,
        period,
        phase: rng.gen_range(0.0..std::f64::consts::TAU),
    }
}

fn base_target(res: Resolution, seed: u64, rng: &mut impl Rng) -> SceneObject {
    let w = f64::from(res.width) * rng.gen_range(0.10..0.17);
    let h = f64::from(res.height) * rng.gen_range(0.14..0.24);
    let shape = if rng.gen_bool(0.5) {
        Shape::Rectangle
    } else {
        Shape::Ellipse
    };
    SceneObject {
        id: 0,
        label: rng.gen_range(0..8),
        sprite: Sprite::rigid(w, h, shape, Texture::object_noise(seed ^ 0x51)),
        trajectory: base_trajectory(res, rng),
        scale: Profile::one(),
        rotation: Profile::zero(),
        aspect: Profile::one(),
        z: 1,
        enter_frame: 0.0,
        exit_frame: f64::INFINITY,
        tracked: true,
    }
}

/// Builds one OTB-like sequence for the given primary attribute.
fn otb_sequence(attr: VisualAttribute, index: u32, frames: u32, seed: u64) -> Sequence {
    let res = EVAL_RESOLUTION;
    let seq_seed = rngx::derive_seed(seed, attr as u64, u64::from(index));
    let mut rng = rngx::derived_rng(seq_seed, 0, 0);
    let mut target = base_target(res, seq_seed, &mut rng);
    let mut effects = SceneEffects::default();
    let mut background = Texture::background_noise(seq_seed ^ 0xB6);
    let mut extra_objects: Vec<SceneObject> = Vec::new();

    match attr {
        VisualAttribute::IlluminationVariation => {
            effects.illumination = Profile::Oscillate {
                base: 1.0,
                amplitude: rng.gen_range(0.3..0.45),
                period: rng.gen_range(60.0..110.0),
                phase: 0.0,
            };
        }
        VisualAttribute::ScaleVariation => {
            target.scale = Profile::Oscillate {
                base: 1.05,
                amplitude: rng.gen_range(0.3..0.45),
                period: rng.gen_range(120.0..220.0),
                phase: 0.0,
            };
        }
        VisualAttribute::Occlusion => {
            // A tall occluding bar sweeps back and forth across the
            // target's orbit center, producing periodic partial/full
            // occlusion.
            let c = frame_center(res);
            let bar_w = target.sprite.width * rng.gen_range(0.9..1.4);
            extra_objects.push(SceneObject {
                id: 0,
                label: euphrates_camera::scene::OCCLUDER_LABEL,
                sprite: Sprite::rigid(
                    bar_w,
                    f64::from(res.height) * 0.9,
                    Shape::Rectangle,
                    Texture::background_noise(seq_seed ^ 0x0CC),
                ),
                trajectory: Trajectory::Sinusoid {
                    center: c,
                    amplitude: Vec2f::new(f64::from(res.width) * 0.3, 0.0),
                    period: Vec2f::new(rng.gen_range(90.0..150.0), 1.0),
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                },
                scale: Profile::one(),
                rotation: Profile::zero(),
                aspect: Profile::one(),
                z: 5,
                enter_frame: 0.0,
                exit_frame: f64::INFINITY,
                tracked: false,
            });
        }
        VisualAttribute::Deformation => {
            target.sprite = Sprite::walker(
                target.sprite.width,
                target.sprite.height * 1.2,
                seq_seed ^ 0xDEF,
            );
        }
        VisualAttribute::MotionBlur => {
            effects.exposure_blur = rng.gen_range(0.6..0.9);
            // Blur needs motion: speed up the orbit moderately.
            if let Trajectory::Sinusoid { period, .. } = &mut target.trajectory {
                period.x *= 0.45;
                period.y *= 0.45;
            }
        }
        VisualAttribute::FastMotion => {
            // Peak speed beyond the ±7 px/frame search window (§7).
            let c = frame_center(res);
            let amp = f64::from(res.width) * 0.30;
            let period = rng.gen_range(55.0..75.0);
            target.trajectory = Trajectory::Sinusoid {
                center: c,
                amplitude: Vec2f::new(amp, f64::from(res.height) * 0.1),
                period: Vec2f::new(period, period * 1.7),
                phase: 0.0,
            };
        }
        VisualAttribute::InPlaneRotation => {
            target.rotation = Profile::Ramp {
                base: 0.0,
                slope: std::f64::consts::TAU / rng.gen_range(140.0..260.0),
            };
        }
        VisualAttribute::OutOfPlaneRotation => {
            target.aspect = Profile::Oscillate {
                base: 0.7,
                amplitude: 0.3,
                period: rng.gen_range(100.0..180.0),
                phase: 0.0,
            };
        }
        VisualAttribute::OutOfView => {
            // Walk out of the left edge, wait, and come back — at a fixed
            // moderate speed (well inside the ±7 px/frame search window)
            // regardless of sequence length.
            let c = frame_center(res);
            let w = f64::from(res.width);
            let speed = rng.gen_range(3.0..4.0);
            let stops = [
                Vec2f::new(w * 0.3, c.y * 0.9),
                Vec2f::new(-w * 0.18, c.y), // fully out on the left
                Vec2f::new(-w * 0.18, c.y), // linger out of view
                Vec2f::new(w * 0.5, c.y * 1.1),
                Vec2f::new(w * 0.75, c.y * 0.9),
            ];
            let mut points = Vec::with_capacity(stops.len());
            let mut t = 0.0;
            let mut prev: Option<Vec2f> = None;
            for (i, &p) in stops.iter().enumerate() {
                if let Some(q) = prev {
                    let dist = (p - q).norm();
                    // The linger stop holds position for a fixed beat.
                    t += if dist < 1.0 { 12.0 } else { dist / speed };
                }
                let _ = i;
                points.push((t, p));
                prev = Some(p);
            }
            target.trajectory = Trajectory::Waypoints { points };
        }
        VisualAttribute::BackgroundClutter => {
            // Background drawn from the same texture family as the target.
            background = Texture::object_noise(seq_seed ^ 0x51);
        }
    }

    let mut builder = SceneBuilder::new(res, seq_seed)
        .background(background)
        .effects(effects)
        .object(target);
    for obj in extra_objects {
        builder = builder.object(obj);
    }
    Sequence {
        name: format!("otb_{}_{:02}", attr.tag(), index),
        attributes: vec![attr],
        scene: builder.build(),
        frames,
    }
}

/// The OTB-100-like tracking suite: 10 sequences per attribute.
pub fn otb100_like(seed: u64, scale: DatasetScale) -> Vec<Sequence> {
    let per_attr = scale.sequences(10);
    let frames = scale.frames(590);
    let mut out = Vec::new();
    for attr in VisualAttribute::ALL {
        for i in 0..per_attr {
            out.push(otb_sequence(attr, i, frames, seed));
        }
    }
    out
}

/// The VOT-2014-like suite: 25 rotating/foreshortening targets.
pub fn vot2014_like(seed: u64, scale: DatasetScale) -> Vec<Sequence> {
    let count = scale.sequences(25);
    let frames = scale.frames(409);
    let res = EVAL_RESOLUTION;
    (0..count)
        .map(|i| {
            let seq_seed = rngx::derive_seed(seed ^ 0x07, 99, u64::from(i));
            let mut rng = rngx::derived_rng(seq_seed, 1, 0);
            let mut target = base_target(res, seq_seed, &mut rng);
            // Irregular boxes: simultaneous rotation + aspect change.
            target.rotation = Profile::Ramp {
                base: rng.gen_range(0.0..1.0),
                slope: std::f64::consts::TAU / rng.gen_range(150.0..300.0),
            };
            target.aspect = Profile::Oscillate {
                base: 0.75,
                amplitude: 0.25,
                period: rng.gen_range(90.0..200.0),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            };
            let attrs = vec![
                VisualAttribute::InPlaneRotation,
                VisualAttribute::OutOfPlaneRotation,
            ];
            Sequence {
                name: format!("vot_{i:02}"),
                attributes: attrs,
                scene: SceneBuilder::new(res, seq_seed).object(target).build(),
                frames,
            }
        })
        .collect()
}

/// The in-house-style multi-object detection suite.
pub fn detection_suite(seed: u64, scale: DatasetScale) -> Vec<Sequence> {
    let count = scale.sequences(16);
    let frames = scale.frames(454);
    let res = EVAL_RESOLUTION;
    (0..count)
        .map(|i| {
            let seq_seed = rngx::derive_seed(seed ^ 0xDE7, 7, u64::from(i));
            let mut rng = rngx::derived_rng(seq_seed, 2, 0);
            let mut builder = SceneBuilder::new(res, seq_seed);
            let n_objects: u32 = rng.gen_range(5..=7);
            for k in 0..n_objects {
                let mut obj = base_target(res, seq_seed ^ (u64::from(k) << 8), &mut rng);
                // Spread starting phases/centers so objects don't stack.
                if let Trajectory::Sinusoid { center, .. } = &mut obj.trajectory {
                    center.x = f64::from(res.width) * rng.gen_range(0.2..0.8);
                    center.y = f64::from(res.height) * rng.gen_range(0.25..0.75);
                }
                // Smaller objects for a 6-object frame.
                obj.sprite.width *= 0.7;
                obj.sprite.height *= 0.7;
                // A third of the objects enter/exit mid-sequence.
                if rng.gen_bool(0.3) {
                    let enter = rng.gen_range(0.0..f64::from(frames) * 0.4);
                    obj.enter_frame = enter;
                    obj.exit_frame = enter + f64::from(frames) * rng.gen_range(0.4..0.6);
                }
                builder = builder.object(obj);
            }
            Sequence {
                name: format!("det_{i:02}"),
                attributes: vec![],
                scene: builder.build(),
                frames,
            }
        })
        .collect()
}

/// Total frame count of a suite (for Table 2's dataset rows).
pub fn total_frames(suite: &[Sequence]) -> u64 {
    suite.iter().map(|s| u64::from(s.frames)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetScale {
        DatasetScale {
            sequence_fraction: 0.1,
            frame_fraction: 0.08,
        }
    }

    #[test]
    fn otb_full_scale_matches_paper_frame_count() {
        // Nominal: 100 sequences x 590 frames = 59,000 ≈ paper's 59,040.
        let scale = DatasetScale::full();
        let per_attr = scale.sequences(10);
        assert_eq!(per_attr * 10, 100);
        assert_eq!(u64::from(scale.frames(590)) * 100, 59_000);
    }

    #[test]
    fn suites_have_expected_shapes() {
        let otb = otb100_like(1, tiny());
        assert_eq!(otb.len(), 10); // 1 per attribute
        for s in &otb {
            assert_eq!(s.frames, 47);
            assert_eq!(s.attributes.len(), 1);
            assert_eq!(s.ground_truth(0).len(), 1, "{}: single target", s.name);
        }
        let vot = vot2014_like(1, tiny());
        assert_eq!(vot.len(), 3);
        let det = detection_suite(1, tiny());
        assert_eq!(det.len(), 2);
        for s in &det {
            let gt = s.ground_truth(s.frames / 2);
            assert!(
                (3..=7).contains(&gt.len()),
                "{}: {} objects",
                s.name,
                gt.len()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = otb100_like(42, tiny());
        let b = otb100_like(42, tiny());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ground_truth(5), y.ground_truth(5));
        }
        let c = otb100_like(43, tiny());
        assert_ne!(a[0].ground_truth(5), c[0].ground_truth(5));
    }

    #[test]
    fn fast_motion_sequences_exceed_the_search_range() {
        let otb = otb100_like(7, tiny());
        let fm = otb
            .iter()
            .find(|s| s.has_attribute(VisualAttribute::FastMotion))
            .unwrap();
        let base = otb
            .iter()
            .find(|s| s.has_attribute(VisualAttribute::IlluminationVariation))
            .unwrap();
        // Peak speed matters more than mean; sample maxima.
        let peak = |s: &Sequence| -> f64 {
            (0..s.frames)
                .flat_map(|f| s.ground_truth(f))
                .map(|g| g.speed)
                .fold(0.0, f64::max)
        };
        assert!(peak(fm) > 8.0, "fast-motion peak {}", peak(fm));
        assert!(peak(base) < 8.0, "baseline peak {}", peak(base));
    }

    #[test]
    fn occlusion_sequences_actually_occlude() {
        let otb = otb100_like(
            9,
            DatasetScale {
                sequence_fraction: 0.1,
                frame_fraction: 0.3,
            },
        );
        let occ = otb
            .iter()
            .find(|s| s.has_attribute(VisualAttribute::Occlusion))
            .unwrap();
        let min_vis = (0..occ.frames)
            .flat_map(|f| occ.ground_truth(f))
            .map(|g| g.visibility)
            .fold(1.0, f64::min);
        assert!(min_vis < 0.5, "minimum visibility {min_vis}");
    }

    #[test]
    fn out_of_view_sequences_leave_the_frame() {
        let otb = otb100_like(
            11,
            DatasetScale {
                sequence_fraction: 0.1,
                frame_fraction: 0.3,
            },
        );
        let ov = otb
            .iter()
            .find(|s| s.has_attribute(VisualAttribute::OutOfView))
            .unwrap();
        let fully_out = (0..ov.frames)
            .flat_map(|f| ov.ground_truth(f))
            .any(|g| g.rect.is_empty());
        assert!(fully_out, "target never left the frame");
    }

    #[test]
    fn motion_blur_sequences_have_blur_ground_truth() {
        let otb = otb100_like(13, tiny());
        let mb = otb
            .iter()
            .find(|s| s.has_attribute(VisualAttribute::MotionBlur))
            .unwrap();
        let mean_blur: f64 = (0..mb.frames)
            .flat_map(|f| mb.ground_truth(f))
            .map(|g| g.blur)
            .sum::<f64>()
            / f64::from(mb.frames);
        assert!(mean_blur > 1.0, "mean blur {mean_blur}");
    }

    #[test]
    fn total_frames_sums_the_suite() {
        let det = detection_suite(1, tiny());
        assert_eq!(
            total_frames(&det),
            det.iter().map(|s| u64::from(s.frames)).sum::<u64>()
        );
    }

    #[test]
    fn vot_targets_rotate() {
        let vot = vot2014_like(5, tiny());
        let s = &vot[0];
        let r0 = s.ground_truth(0)[0].rect;
        let aspect_changes = (1..s.frames).any(|f| {
            let r = s.ground_truth(f)[0].rect;
            (r.w / r.h - r0.w / r0.h).abs() > 0.1
        });
        assert!(aspect_changes, "box aspect never changed");
    }
}
