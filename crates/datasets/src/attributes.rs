//! The OTB-100 visual attributes (§5.2, Fig. 12) and their mapping to
//! scene parameters.
//!
//! Each attribute names a failure mode real trackers face; the synthetic
//! dataset reproduces the *mechanism*, not just the label — e.g. "fast
//! motion" means per-frame displacement beyond the block matcher's ±7 px
//! search window, which is exactly why the paper's Fig. 12 shows
//! extrapolation suffering most there.

use std::fmt;

/// The ten OTB visual attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VisualAttribute {
    /// Global illumination gain varies over the sequence.
    IlluminationVariation,
    /// The target's scale changes substantially.
    ScaleVariation,
    /// The target is partially or fully occluded.
    Occlusion,
    /// The target deforms (articulated parts).
    Deformation,
    /// Motion blur from target/camera motion during exposure.
    MotionBlur,
    /// Per-frame motion beyond the motion-estimation search range.
    FastMotion,
    /// In-plane rotation.
    InPlaneRotation,
    /// Out-of-plane rotation (aspect foreshortening).
    OutOfPlaneRotation,
    /// The target leaves the frame and returns.
    OutOfView,
    /// Background texture statistically similar to the target.
    BackgroundClutter,
}

impl VisualAttribute {
    /// All attributes in the Fig. 12 display order.
    pub const ALL: [VisualAttribute; 10] = [
        VisualAttribute::IlluminationVariation,
        VisualAttribute::ScaleVariation,
        VisualAttribute::Occlusion,
        VisualAttribute::Deformation,
        VisualAttribute::MotionBlur,
        VisualAttribute::FastMotion,
        VisualAttribute::InPlaneRotation,
        VisualAttribute::OutOfPlaneRotation,
        VisualAttribute::OutOfView,
        VisualAttribute::BackgroundClutter,
    ];

    /// Short identifier used in sequence names.
    pub fn tag(&self) -> &'static str {
        match self {
            VisualAttribute::IlluminationVariation => "iv",
            VisualAttribute::ScaleVariation => "sv",
            VisualAttribute::Occlusion => "occ",
            VisualAttribute::Deformation => "def",
            VisualAttribute::MotionBlur => "mb",
            VisualAttribute::FastMotion => "fm",
            VisualAttribute::InPlaneRotation => "ipr",
            VisualAttribute::OutOfPlaneRotation => "opr",
            VisualAttribute::OutOfView => "ov",
            VisualAttribute::BackgroundClutter => "bc",
        }
    }
}

impl fmt::Display for VisualAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VisualAttribute::IlluminationVariation => "Illumination Variation",
            VisualAttribute::ScaleVariation => "Scale Variation",
            VisualAttribute::Occlusion => "Occlusion",
            VisualAttribute::Deformation => "Deformation",
            VisualAttribute::MotionBlur => "Motion Blur",
            VisualAttribute::FastMotion => "Fast Motion",
            VisualAttribute::InPlaneRotation => "In-Plane Rotation",
            VisualAttribute::OutOfPlaneRotation => "Out-of-Plane Rotation",
            VisualAttribute::OutOfView => "Out-of-View",
            VisualAttribute::BackgroundClutter => "Background Clutter",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_ten_attributes_with_unique_tags() {
        assert_eq!(VisualAttribute::ALL.len(), 10);
        let mut tags: Vec<&str> = VisualAttribute::ALL.iter().map(|a| a.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 10);
    }

    #[test]
    fn display_matches_fig12_labels() {
        assert_eq!(VisualAttribute::FastMotion.to_string(), "Fast Motion");
        assert_eq!(
            VisualAttribute::OutOfPlaneRotation.to_string(),
            "Out-of-Plane Rotation"
        );
    }
}
