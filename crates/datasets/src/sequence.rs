//! Sequences: named, attributed video clips with deterministic rendering.

use crate::attributes::VisualAttribute;
use euphrates_camera::scene::{GtObject, RenderedFrame, Scene};
use euphrates_common::image::Resolution;

pub use euphrates_camera::scene::FrameIter;

/// A benchmark sequence: a scene plus its metadata.
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Sequence name (e.g. `"otb_fm_03"`).
    pub name: String,
    /// Visual attributes the sequence exhibits.
    pub attributes: Vec<VisualAttribute>,
    /// The underlying scene.
    pub scene: Scene,
    /// Number of frames.
    pub frames: u32,
}

impl Sequence {
    /// Frame resolution.
    pub fn resolution(&self) -> Resolution {
        self.scene.resolution()
    }

    /// `true` if the sequence carries the attribute.
    pub fn has_attribute(&self, attr: VisualAttribute) -> bool {
        self.attributes.contains(&attr)
    }

    /// Lazily renders the sequence's frames, one per `next()` call,
    /// borrowing the scene — the streaming front-end's entry point.
    pub fn render_iter(&self) -> FrameIter<'_> {
        self.scene.frames(0..self.frames)
    }

    /// Renders every frame (pixels + ground truth) eagerly.
    pub fn render_all(&self) -> Vec<RenderedFrame> {
        self.render_iter().collect()
    }

    /// Ground truth only (cheap; no pixel rendering).
    pub fn ground_truth(&self, frame: u32) -> Vec<GtObject> {
        self.scene.ground_truth(frame)
    }

    /// Mean target speed across the sequence (diagnostic; used to verify
    /// the fast-motion attribute actually exceeds the search range).
    pub fn mean_target_speed(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for f in 0..self.frames {
            for gt in self.ground_truth(f) {
                sum += gt.speed;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }
}

/// Scaling knobs for CI-fast runs: fractions of sequences and of frames
/// per sequence (floors keep statistics meaningful).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetScale {
    /// Fraction of sequences generated.
    pub sequence_fraction: f64,
    /// Fraction of each sequence's frames.
    pub frame_fraction: f64,
}

impl DatasetScale {
    /// Full paper-scale datasets.
    pub fn full() -> Self {
        DatasetScale {
            sequence_fraction: 1.0,
            frame_fraction: 1.0,
        }
    }

    /// Uniform scaling of both knobs.
    pub fn fraction(f: f64) -> Self {
        let f = f.clamp(0.01, 1.0);
        DatasetScale {
            sequence_fraction: f,
            frame_fraction: f,
        }
    }

    /// Reads `EUPHRATES_SCALE` (0–1, default `default`) from the
    /// environment — the bench harness knob.
    pub fn from_env(default: f64) -> Self {
        let f = std::env::var("EUPHRATES_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(default);
        DatasetScale::fraction(f)
    }

    /// Applies the sequence fraction to a nominal count (≥ 1).
    pub fn sequences(&self, nominal: u32) -> u32 {
        ((f64::from(nominal) * self.sequence_fraction).round() as u32).clamp(1, nominal)
    }

    /// Applies the frame fraction to a nominal length (≥ 24 frames so the
    /// temporal dynamics — occlusion crossings, EW-32 windows — survive).
    pub fn frames(&self, nominal: u32) -> u32 {
        ((f64::from(nominal) * self.frame_fraction).round() as u32).clamp(24.min(nominal), nominal)
    }
}

impl Default for DatasetScale {
    fn default() -> Self {
        DatasetScale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_floors_protect_statistics() {
        let s = DatasetScale::fraction(0.01);
        assert_eq!(s.sequences(100), 1);
        assert_eq!(s.frames(590), 24);
        let full = DatasetScale::full();
        assert_eq!(full.sequences(100), 100);
        assert_eq!(full.frames(590), 590);
    }

    #[test]
    fn fraction_is_clamped() {
        let s = DatasetScale::fraction(5.0);
        assert_eq!(s.sequence_fraction, 1.0);
        let s = DatasetScale::fraction(-1.0);
        assert!(s.sequence_fraction > 0.0);
    }

    #[test]
    fn short_nominal_lengths_are_not_inflated() {
        let s = DatasetScale::fraction(0.1);
        assert_eq!(s.frames(10), 10);
    }
}
