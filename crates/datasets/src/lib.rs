//! # euphrates-datasets
//!
//! Seeded synthetic benchmark suites standing in for the paper's
//! evaluation datasets (§5.2, Table 2):
//!
//! | paper dataset | stand-in | nominal size |
//! |---|---|---|
//! | in-house detection videos (7,264 frames, ~6 objects/frame) | [`detection_suite`] | 16 × 454 = 7,264 frames |
//! | OTB-100 (59,040 frames, 10 visual attributes) | [`otb100_like`] | 100 × 590 = 59,000 frames |
//! | VOT 2014 (10,213 frames, irregular boxes) | [`vot2014_like`] | 25 × 409 = 10,225 frames |
//!
//! Every sequence is a parametric scene (see `euphrates-camera`): the
//! visual attributes of OTB — occlusion, fast motion, motion blur, … —
//! are reproduced *mechanistically* (an occluder crossing the target, a
//! trajectory faster than the block matcher's search range, a long
//! exposure), so the failure modes the paper analyses in Fig. 11/12 arise
//! for the same reasons they do on real video.
//!
//! All generators are deterministic in their seed and scalable via
//! [`DatasetScale`] (`EUPHRATES_SCALE` in the bench harness).
//!
//! ## Example
//!
//! ```
//! use euphrates_datasets::{otb100_like, DatasetScale};
//!
//! let suite = otb100_like(42, DatasetScale::fraction(0.1));
//! assert_eq!(suite.len(), 10); // one sequence per attribute at 10%
//! assert!(suite.iter().all(|s| s.frames >= 24));
//! ```

pub mod attributes;
pub mod generator;
pub mod sequence;

pub use attributes::VisualAttribute;
pub use generator::{detection_suite, otb100_like, total_frames, vot2014_like, EVAL_RESOLUTION};
pub use sequence::{DatasetScale, FrameIter, Sequence};
