//! The object-detection task (§5.2): multi-object detection with
//! YOLOv2-class inference on I-frames and per-track motion extrapolation
//! on E-frames, expressed as a [`VisionTask`] implementation.
//!
//! On an I-frame the detector's outputs *replace* the track set (carrying
//! over filter state for tracks they overlap); on E-frames every live
//! track is extrapolated by the motion controller. Every emitted box in
//! every frame is scored against ground truth with the paper's
//! precision-style AP (greedy IoU matching; unmatched boxes are false
//! positives).

use crate::api::{run_task, FrameContext, StepStats, VisionTask};
use crate::backend::{extrapolate_roi, BackendConfig, TaskOutcome, TrackState};
use crate::frontend::{FrameData, PreparedSequence};
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Rect;
use euphrates_common::image::Resolution;
use euphrates_common::metrics::match_detections;
use euphrates_common::units::Cycles;
use euphrates_nn::oracle::{DetectorOracle, DetectorProfile};

/// A live track in the detection pipeline.
#[derive(Debug, Clone)]
struct Track {
    rect: Rect,
    /// Class label carried from the originating detection (the paper's MC
    /// registers store labels alongside ROIs; scoring is class-agnostic
    /// per §5.2's IoU-only metric).
    #[allow(dead_code)]
    label: u32,
    state: TrackState,
}

/// Minimum IoU for a fresh detection to inherit an old track's filter
/// state.
const TRACK_CARRYOVER_IOU: f64 = 0.3;

/// Multi-object detection under the I/E-frame schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorTask {
    /// The oracle's accuracy calibration (e.g.
    /// [`calib::yolov2`][euphrates_nn::oracle::calib::yolov2]).
    pub profile: DetectorProfile,
}

impl DetectorTask {
    /// A detection task with the given oracle profile.
    pub fn new(profile: DetectorProfile) -> Self {
        DetectorTask { profile }
    }
}

/// Per-sequence detector state.
#[derive(Debug, Clone)]
pub struct DetectorState {
    oracle: DetectorOracle,
    tracks: Vec<Track>,
}

impl DetectorState {
    /// The current live track boxes.
    pub fn track_rects(&self) -> Vec<Rect> {
        self.tracks.iter().map(|t| t.rect).collect()
    }
}

impl VisionTask for DetectorTask {
    type State = DetectorState;

    fn name(&self) -> &'static str {
        "detection"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        config: &BackendConfig,
        _stream: u64,
    ) -> Result<Self::State> {
        Ok(DetectorState {
            oracle: DetectorOracle::new(self.profile, config.seed),
            tracks: Vec::new(),
        })
    }

    fn infer(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        outcome: &mut TaskOutcome,
    ) -> StepStats {
        let mut datapath_cycles = Cycles::ZERO;
        // Extrapolate the current tracks first: the adaptive controller
        // compares them against the fresh detections.
        let extrapolated: Vec<Rect> = state
            .tracks
            .iter_mut()
            .map(|t| {
                let (roi, cycles, ops) = extrapolate_roi(
                    &t.rect,
                    &ctx.frame.motion,
                    &mut t.state,
                    &ctx.config.extrapolation,
                    ctx.config.fixed_datapath,
                );
                datapath_cycles += cycles;
                outcome.extrapolation_ops += ops;
                roi.clamped_to(&ctx.bounds)
            })
            .collect();

        let detections =
            state
                .oracle
                .detect(ctx.frame.targets(), &ctx.bounds, ctx.stream, ctx.index);

        // Adaptive feedback: how well did extrapolation predict the
        // detector's output?
        let policy_feedback = if !extrapolated.is_empty() && !detections.is_empty() {
            let det_rects: Vec<Rect> = detections.iter().map(|d| d.rect).collect();
            let ious = match_detections(&extrapolated, &det_rects);
            Some(ious.iter().sum::<f64>() / ious.len() as f64)
        } else {
            None
        };

        // The detections become the new track set, inheriting filter
        // state from overlapping predecessors.
        let mut new_tracks = Vec::with_capacity(detections.len());
        for det in &detections {
            let mut filter = TrackState::new(&ctx.config.extrapolation);
            let mut best = (TRACK_CARRYOVER_IOU, None::<usize>);
            for (ti, t) in state.tracks.iter().enumerate() {
                let iou = t.rect.iou(&det.rect);
                if iou > best.0 {
                    best = (iou, Some(ti));
                }
            }
            if let Some(ti) = best.1 {
                filter = state.tracks[ti].state.clone();
            }
            new_tracks.push(Track {
                rect: det.rect.clamped_to(&ctx.bounds),
                label: det.label,
                state: filter,
            });
        }
        state.tracks = new_tracks;
        StepStats {
            datapath_cycles,
            rois: state.tracks.len() as u32,
            policy_feedback,
        }
    }

    fn extrapolate(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        outcome: &mut TaskOutcome,
    ) -> StepStats {
        let mut datapath_cycles = Cycles::ZERO;
        for t in &mut state.tracks {
            let (roi, cycles, ops) = extrapolate_roi(
                &t.rect,
                &ctx.frame.motion,
                &mut t.state,
                &ctx.config.extrapolation,
                ctx.config.fixed_datapath,
            );
            datapath_cycles += cycles;
            outcome.extrapolation_ops += ops;
            t.rect = roi.clamped_to(&ctx.bounds);
        }
        // Tracks that left the frame stop producing detections.
        state.tracks.retain(|t| !t.rect.is_empty());
        StepStats {
            datapath_cycles,
            rois: state.tracks.len() as u32,
            policy_feedback: None,
        }
    }

    fn score(&self, ctx: &FrameContext, state: &Self::State, outcome: &mut TaskOutcome) {
        // Score every emitted box against ground truth (paper AP). The
        // non-empty truth boxes are cached on the frame, shared by every
        // scheme that scores it.
        let preds: Vec<Rect> = state.tracks.iter().map(|t| t.rect).collect();
        outcome
            .ious
            .extend(match_detections(&preds, ctx.frame.truth_rects()));
    }
}

/// Runs the detection task over a prepared sequence.
///
/// # Errors
///
/// Returns an error for an empty sequence or an invalid policy.
#[deprecated(
    since = "0.2.0",
    note = "use `run_task(DetectorTask::new(profile), ...)`, or the `Scenario`/`Session` API"
)]
pub fn run_detection(
    prep: &PreparedSequence,
    profile: DetectorProfile,
    config: &BackendConfig,
    stream: u64,
) -> Result<TaskOutcome> {
    if prep.is_empty() {
        return Err(Error::config("cannot run detection on an empty sequence"));
    }
    run_task(DetectorTask::new(profile), prep, config, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{prepare_sequence, MotionConfig};
    use euphrates_common::metrics::IouAccumulator;
    use euphrates_datasets::{detection_suite, DatasetScale};
    use euphrates_mc::policy::EwPolicy;
    use euphrates_nn::oracle::calib;

    fn prepared(frames: u32) -> PreparedSequence {
        let mut suite = detection_suite(23, DatasetScale::fraction(0.1));
        let mut seq = suite.remove(0);
        seq.frames = frames;
        prepare_sequence(&seq, &MotionConfig::default()).unwrap()
    }

    fn detect(
        prep: &PreparedSequence,
        profile: DetectorProfile,
        config: &BackendConfig,
        stream: u64,
    ) -> Result<TaskOutcome> {
        run_task(DetectorTask::new(profile), prep, config, stream)
    }

    fn ap_at_05(outcome: &TaskOutcome) -> f64 {
        let acc: IouAccumulator = outcome.ious.iter().copied().collect();
        acc.rate_at(0.5)
    }

    #[test]
    fn baseline_detection_reaches_calibrated_precision() {
        let prep = prepared(80);
        let out = detect(&prep, calib::yolov2(), &BackendConfig::baseline(), 0).unwrap();
        let ap = ap_at_05(&out);
        assert!((0.6..0.95).contains(&ap), "baseline AP@0.5 = {ap}");
        assert_eq!(out.inferences, out.frames);
        assert!(!out.ious.is_empty());
    }

    #[test]
    fn ew2_stays_close_to_baseline() {
        let prep = prepared(80);
        let base = detect(&prep, calib::yolov2(), &BackendConfig::baseline(), 0).unwrap();
        let ew2 = detect(
            &prep,
            calib::yolov2(),
            &BackendConfig::new(EwPolicy::Constant(2)),
            0,
        )
        .unwrap();
        let (b, e) = (ap_at_05(&base), ap_at_05(&ew2));
        assert!(e + 0.12 > b, "EW-2 {e} vs baseline {b}");
        assert!((ew2.inference_rate() - 0.5).abs() < 0.05);
    }

    #[test]
    fn long_windows_cost_accuracy() {
        let prep = prepared(96);
        let ew2 = ap_at_05(
            &detect(
                &prep,
                calib::yolov2(),
                &BackendConfig::new(EwPolicy::Constant(2)),
                0,
            )
            .unwrap(),
        );
        let ew32 = ap_at_05(
            &detect(
                &prep,
                calib::yolov2(),
                &BackendConfig::new(EwPolicy::Constant(32)),
                0,
            )
            .unwrap(),
        );
        assert!(ew2 > ew32, "EW-2 {ew2} must beat EW-32 {ew32}");
    }

    #[test]
    fn tiny_yolo_is_less_precise_than_yolov2() {
        let prep = prepared(80);
        let yv2 = ap_at_05(&detect(&prep, calib::yolov2(), &BackendConfig::baseline(), 0).unwrap());
        let ty =
            ap_at_05(&detect(&prep, calib::tiny_yolo(), &BackendConfig::baseline(), 0).unwrap());
        assert!(yv2 > ty + 0.08, "YOLOv2 {yv2} vs TinyYOLO {ty}");
    }

    #[test]
    fn detection_is_deterministic() {
        let prep = prepared(40);
        let cfg = BackendConfig::new(EwPolicy::Constant(4));
        let a = detect(&prep, calib::yolov2(), &cfg, 5).unwrap();
        let b = detect(&prep, calib::yolov2(), &cfg, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn e_frames_produce_predictions_without_inference() {
        let prep = prepared(40);
        let out = detect(
            &prep,
            calib::yolov2(),
            &BackendConfig::new(EwPolicy::Constant(8)),
            0,
        )
        .unwrap();
        assert!((out.inference_rate() - 0.125).abs() < 0.03);
        // Predictions exist on E-frames: scored boxes far outnumber
        // inferences x objects.
        assert!(out.ious.len() as u64 > out.inferences * 3);
    }

    #[test]
    #[allow(deprecated)]
    fn run_detection_shim_matches_task_path() {
        let prep = prepared(40);
        let cfg = BackendConfig::new(EwPolicy::Constant(4));
        let via_shim = run_detection(&prep, calib::yolov2(), &cfg, 1).unwrap();
        let via_task = detect(&prep, calib::yolov2(), &cfg, 1).unwrap();
        assert_eq!(via_shim, via_task);
    }
}
