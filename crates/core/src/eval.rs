//! Suite-level evaluation plumbing: the deterministic parallel map used
//! by [`Scenario::evaluate`][crate::api::Scenario::evaluate] (re-exported
//! from [`euphrates_common::par`], where it is shared with the ISP's
//! intra-frame macroblock parallelism), plus the legacy closure-driven
//! `evaluate_suite` entry point (deprecated in favor of the
//! [`Scenario`][crate::api::Scenario] builder).
//!
//! Accuracy evaluation is offline (every frame of every sequence, §5.2),
//! so (sequence × scheme) pairs are embarrassingly parallel. All oracle
//! noise derives from `(seed, sequence index, frame)`, making results
//! independent of thread count and execution order.

use crate::backend::{BackendConfig, TaskOutcome};
use crate::frontend::{prepare_sequence, MotionConfig, PreparedSequence};
use euphrates_common::error::Result;
use euphrates_common::metrics::IouAccumulator;
use euphrates_datasets::Sequence;

pub use euphrates_common::par::{default_threads, parallel_map};

/// The result of evaluating one scheme over a suite (the legacy report
/// shape returned by [`evaluate_suite`]; new code receives
/// [`SchemeResult`][crate::api::SchemeResult] from
/// [`Scenario::evaluate`][crate::api::Scenario::evaluate]).
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Scheme label (e.g. `"EW-4"`).
    pub label: String,
    /// Merged task statistics.
    pub outcome: TaskOutcome,
    /// Per-sequence outcomes (order matches the suite), for per-sequence
    /// figures like Fig. 10c.
    pub per_sequence: Vec<TaskOutcome>,
}

impl SuiteOutcome {
    /// Accuracy accumulator over all scored predictions.
    pub fn accuracy(&self) -> IouAccumulator {
        self.outcome.ious.iter().copied().collect()
    }

    /// Success/precision at the conventional IoU 0.5.
    pub fn rate_at_05(&self) -> f64 {
        self.accuracy().rate_at(0.5)
    }
}

/// Prepares sequences and runs one or more schemes over them, rendering
/// each sequence only once. `run` receives
/// `(prepared sequence, sequence index, scheme index)`.
///
/// Returns one [`SuiteOutcome`] per scheme.
///
/// # Errors
///
/// Propagates preparation or task errors (the first one encountered).
#[deprecated(
    since = "0.2.0",
    note = "build a `Scenario` (with `Scenario::builder`) and call `.evaluate()` instead"
)]
pub fn evaluate_suite<F>(
    suite: &[Sequence],
    motion: &MotionConfig,
    schemes: &[(String, BackendConfig)],
    run: F,
) -> Result<Vec<SuiteOutcome>>
where
    F: Fn(&PreparedSequence, u64, &BackendConfig) -> Result<TaskOutcome> + Sync,
{
    let motion = *motion;
    let per_sequence: Vec<Result<Vec<TaskOutcome>>> =
        parallel_map(suite, default_threads(), |i, seq| {
            let prep = prepare_sequence(seq, &motion)?;
            schemes
                .iter()
                .map(|(_, cfg)| run(&prep, i as u64, cfg))
                .collect()
        });

    let mut outcomes: Vec<Vec<TaskOutcome>> = Vec::with_capacity(suite.len());
    for r in per_sequence {
        outcomes.push(r?);
    }

    Ok(schemes
        .iter()
        .enumerate()
        .map(|(si, (label, _))| {
            let mut merged = TaskOutcome::default();
            let mut per_seq = Vec::with_capacity(outcomes.len());
            for seq_outcomes in &outcomes {
                merged.merge(&seq_outcomes[si]);
                per_seq.push(seq_outcomes[si].clone());
            }
            SuiteOutcome {
                label: label.clone(),
                outcome: merged,
                per_sequence: per_seq,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_task, Scenario};
    use crate::tracker::TrackerTask;
    use euphrates_datasets::{otb100_like, DatasetScale};
    use euphrates_mc::policy::EwPolicy;
    use euphrates_nn::oracle::calib;

    #[test]
    #[allow(deprecated)]
    fn evaluate_suite_matches_serial_execution() {
        let mut suite = otb100_like(31, DatasetScale::fraction(0.05));
        suite.truncate(3);
        for s in &mut suite {
            s.frames = 30;
        }
        let schemes = vec![
            ("base".to_string(), BackendConfig::baseline()),
            (
                "EW-4".to_string(),
                BackendConfig::new(EwPolicy::Constant(4)),
            ),
        ];
        let motion = MotionConfig::default();
        let results = evaluate_suite(&suite, &motion, &schemes, |prep, stream, cfg| {
            run_task(TrackerTask::new(calib::mdnet()), prep, cfg, stream)
        })
        .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].per_sequence.len(), 3);

        // Serial re-run gives identical numbers (determinism across the
        // thread pool).
        let serial: TaskOutcome = {
            let mut merged = TaskOutcome::default();
            for (i, seq) in suite.iter().enumerate() {
                let prep = prepare_sequence(seq, &motion).unwrap();
                merged.merge(
                    &run_task(
                        TrackerTask::new(calib::mdnet()),
                        &prep,
                        &schemes[1].1,
                        i as u64,
                    )
                    .unwrap(),
                );
            }
            merged
        };
        assert_eq!(results[1].outcome, serial);
    }

    #[test]
    #[allow(deprecated)]
    fn evaluate_suite_shim_matches_scenario() {
        let mut suite = otb100_like(31, DatasetScale::fraction(0.05));
        suite.truncate(2);
        for s in &mut suite {
            s.frames = 24;
        }
        let schemes = vec![
            ("base".to_string(), BackendConfig::baseline()),
            (
                "EW-4".to_string(),
                BackendConfig::new(EwPolicy::Constant(4)),
            ),
        ];
        let legacy = evaluate_suite(
            &suite,
            &MotionConfig::default(),
            &schemes,
            |prep, stream, cfg| run_task(TrackerTask::new(calib::mdnet()), prep, cfg, stream),
        )
        .unwrap();
        let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
            .suite(suite)
            .scheme("base", BackendConfig::baseline())
            .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
            .build()
            .unwrap()
            .evaluate()
            .unwrap();
        for (old, new) in legacy.iter().zip(report.iter()) {
            assert_eq!(old.label, new.label());
            assert_eq!(old.outcome, new.outcome);
            assert_eq!(old.per_sequence, new.per_sequence);
        }
    }

    #[test]
    fn suite_outcome_accuracy_reflects_ious() {
        let so = SuiteOutcome {
            label: "x".into(),
            outcome: TaskOutcome {
                ious: vec![0.9, 0.9, 0.1],
                frames: 3,
                inferences: 3,
                ..TaskOutcome::default()
            },
            per_sequence: vec![],
        };
        assert!((so.rate_at_05() - 2.0 / 3.0).abs() < 1e-12);
    }
}
