//! Suite-level evaluation plumbing: the deterministic parallel map used
//! by [`Scenario::evaluate`][crate::api::Scenario::evaluate], plus the
//! legacy closure-driven `evaluate_suite` entry point (deprecated in
//! favor of the [`Scenario`][crate::api::Scenario] builder).
//!
//! Accuracy evaluation is offline (every frame of every sequence, §5.2),
//! so sequences are embarrassingly parallel. All oracle noise derives
//! from `(seed, sequence index, frame)`, making results independent of
//! thread count and execution order.

use crate::backend::{BackendConfig, TaskOutcome};
use crate::frontend::{prepare_sequence, MotionConfig, PreparedSequence};
use euphrates_common::error::Result;
use euphrates_common::metrics::IouAccumulator;
use euphrates_datasets::Sequence;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// # Panics
///
/// If `f` panics for some item, the panic is caught on the worker,
/// remaining work is abandoned, and the panic is re-raised on the calling
/// thread with the offending item's index prepended — one bad sequence
/// reports *which* sequence instead of poisoning the result mutex and
/// aborting opaquely.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let bailed = AtomicBool::new(false);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // One coarse mutex over the slot vector: workers compute `f` outside
    // the lock and only store under it, and `catch_unwind` guarantees no
    // worker can panic while holding it.
    let slots_mutex = Mutex::new(&mut slots);
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if bailed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(r) => {
                        let mut guard = slots_mutex.lock().expect("slot store never poisons");
                        guard[i] = Some(r);
                    }
                    Err(payload) => {
                        bailed.store(true, Ordering::Relaxed);
                        let mut guard = first_panic.lock().expect("panic store never poisons");
                        // Keep the lowest item index for a deterministic
                        // message when several workers fail at once.
                        match *guard {
                            Some((j, _)) if j <= i => {}
                            _ => *guard = Some((i, payload)),
                        }
                    }
                }
            });
        }
    });
    if let Some((index, payload)) = first_panic.into_inner().expect("panic store never poisons") {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        panic!("parallel_map worker panicked on item {index}: {msg}");
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Hard ceiling on the worker-thread count (shared-runner etiquette).
const MAX_THREADS: usize = 16;

/// Default worker-thread count.
///
/// Honors the `EUPHRATES_THREADS` environment variable when it parses as
/// a positive integer; otherwise the available parallelism. Both are
/// capped at 16. This is the single thread-sizing policy for the whole
/// workspace — call it instead of re-deriving a cap.
pub fn default_threads() -> usize {
    threads_from(
        std::env::var("EUPHRATES_THREADS").ok().as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    )
}

/// The pure sizing rule behind [`default_threads`]: a parsed positive
/// override wins, anything else falls back; both sides are capped.
fn threads_from(var: Option<&str>, fallback: usize) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(fallback)
        .min(MAX_THREADS)
}

/// The result of evaluating one scheme over a suite (the legacy report
/// shape returned by [`evaluate_suite`]; new code receives
/// [`SchemeResult`][crate::api::SchemeResult] from
/// [`Scenario::evaluate`][crate::api::Scenario::evaluate]).
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Scheme label (e.g. `"EW-4"`).
    pub label: String,
    /// Merged task statistics.
    pub outcome: TaskOutcome,
    /// Per-sequence outcomes (order matches the suite), for per-sequence
    /// figures like Fig. 10c.
    pub per_sequence: Vec<TaskOutcome>,
}

impl SuiteOutcome {
    /// Accuracy accumulator over all scored predictions.
    pub fn accuracy(&self) -> IouAccumulator {
        self.outcome.ious.iter().copied().collect()
    }

    /// Success/precision at the conventional IoU 0.5.
    pub fn rate_at_05(&self) -> f64 {
        self.accuracy().rate_at(0.5)
    }
}

/// Prepares sequences and runs one or more schemes over them, rendering
/// each sequence only once. `run` receives
/// `(prepared sequence, sequence index, scheme index)`.
///
/// Returns one [`SuiteOutcome`] per scheme.
///
/// # Errors
///
/// Propagates preparation or task errors (the first one encountered).
#[deprecated(
    since = "0.2.0",
    note = "build a `Scenario` (with `Scenario::builder`) and call `.evaluate()` instead"
)]
pub fn evaluate_suite<F>(
    suite: &[Sequence],
    motion: &MotionConfig,
    schemes: &[(String, BackendConfig)],
    run: F,
) -> Result<Vec<SuiteOutcome>>
where
    F: Fn(&PreparedSequence, u64, &BackendConfig) -> Result<TaskOutcome> + Sync,
{
    let motion = *motion;
    let per_sequence: Vec<Result<Vec<TaskOutcome>>> =
        parallel_map(suite, default_threads(), |i, seq| {
            let prep = prepare_sequence(seq, &motion)?;
            schemes
                .iter()
                .map(|(_, cfg)| run(&prep, i as u64, cfg))
                .collect()
        });

    let mut outcomes: Vec<Vec<TaskOutcome>> = Vec::with_capacity(suite.len());
    for r in per_sequence {
        outcomes.push(r?);
    }

    Ok(schemes
        .iter()
        .enumerate()
        .map(|(si, (label, _))| {
            let mut merged = TaskOutcome::default();
            let mut per_seq = Vec::with_capacity(outcomes.len());
            for seq_outcomes in &outcomes {
                merged.merge(&seq_outcomes[si]);
                per_seq.push(seq_outcomes[si].clone());
            }
            SuiteOutcome {
                label: label.clone(),
                outcome: merged,
                per_sequence: per_seq,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_task, Scenario};
    use crate::tracker::TrackerTask;
    use euphrates_datasets::{otb100_like, DatasetScale};
    use euphrates_mc::policy::EwPolicy;
    use euphrates_nn::oracle::calib;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, 8, |i, v| (i as u64) * 1000 + v);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn parallel_map_single_thread_fallback() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |_, v| v * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
    }

    #[test]
    fn parallel_map_reports_panicking_item() {
        let items: Vec<u32> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, v| {
                if *v == 7 {
                    panic!("sequence exploded");
                }
                *v
            })
        }))
        .expect_err("worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic message");
        assert!(msg.contains("item 7"), "missing index context: {msg}");
        assert!(msg.contains("sequence exploded"), "missing payload: {msg}");
    }

    #[test]
    fn thread_sizing_honors_override_and_caps() {
        // The pure rule (no process-global env mutation: tests in this
        // binary read the variable concurrently, and the harness may run
        // with EUPHRATES_THREADS already set).
        assert_eq!(threads_from(Some("2"), 8), 2);
        assert_eq!(threads_from(Some(" 3 "), 8), 3, "whitespace is trimmed");
        assert_eq!(threads_from(Some("99"), 8), 16, "override is capped");
        assert_eq!(
            threads_from(Some("not-a-number"), 8),
            8,
            "garbage falls back"
        );
        assert_eq!(threads_from(Some("0"), 8), 8, "zero falls back");
        assert_eq!(threads_from(None, 8), 8);
        assert_eq!(threads_from(None, 64), 16, "fallback is capped");
        // The env-reading wrapper stays within the cap whatever the
        // ambient environment says.
        assert!((1..=16).contains(&default_threads()));
    }

    #[test]
    #[allow(deprecated)]
    fn evaluate_suite_matches_serial_execution() {
        let mut suite = otb100_like(31, DatasetScale::fraction(0.05));
        suite.truncate(3);
        for s in &mut suite {
            s.frames = 30;
        }
        let schemes = vec![
            ("base".to_string(), BackendConfig::baseline()),
            (
                "EW-4".to_string(),
                BackendConfig::new(EwPolicy::Constant(4)),
            ),
        ];
        let motion = MotionConfig::default();
        let results = evaluate_suite(&suite, &motion, &schemes, |prep, stream, cfg| {
            run_task(TrackerTask::new(calib::mdnet()), prep, cfg, stream)
        })
        .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].per_sequence.len(), 3);

        // Serial re-run gives identical numbers (determinism across the
        // thread pool).
        let serial: TaskOutcome = {
            let mut merged = TaskOutcome::default();
            for (i, seq) in suite.iter().enumerate() {
                let prep = prepare_sequence(seq, &motion).unwrap();
                merged.merge(
                    &run_task(
                        TrackerTask::new(calib::mdnet()),
                        &prep,
                        &schemes[1].1,
                        i as u64,
                    )
                    .unwrap(),
                );
            }
            merged
        };
        assert_eq!(results[1].outcome, serial);
    }

    #[test]
    #[allow(deprecated)]
    fn evaluate_suite_shim_matches_scenario() {
        let mut suite = otb100_like(31, DatasetScale::fraction(0.05));
        suite.truncate(2);
        for s in &mut suite {
            s.frames = 24;
        }
        let schemes = vec![
            ("base".to_string(), BackendConfig::baseline()),
            (
                "EW-4".to_string(),
                BackendConfig::new(EwPolicy::Constant(4)),
            ),
        ];
        let legacy = evaluate_suite(
            &suite,
            &MotionConfig::default(),
            &schemes,
            |prep, stream, cfg| run_task(TrackerTask::new(calib::mdnet()), prep, cfg, stream),
        )
        .unwrap();
        let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
            .suite(suite)
            .scheme("base", BackendConfig::baseline())
            .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
            .build()
            .unwrap()
            .evaluate()
            .unwrap();
        for (old, new) in legacy.iter().zip(report.iter()) {
            assert_eq!(old.label, new.label());
            assert_eq!(old.outcome, new.outcome);
            assert_eq!(old.per_sequence, new.per_sequence);
        }
    }

    #[test]
    fn suite_outcome_accuracy_reflects_ious() {
        let so = SuiteOutcome {
            label: "x".into(),
            outcome: TaskOutcome {
                ious: vec![0.9, 0.9, 0.1],
                frames: 3,
                inferences: 3,
                ..TaskOutcome::default()
            },
            per_sequence: vec![],
        };
        assert!((so.rate_at_05() - 2.0 / 3.0).abs() < 1e-12);
    }
}
