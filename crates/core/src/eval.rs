//! Suite-level evaluation: parallel per-sequence execution with
//! deterministic aggregation.
//!
//! Accuracy evaluation is offline (every frame of every sequence, §5.2),
//! so sequences are embarrassingly parallel. All oracle noise derives
//! from `(seed, sequence index, frame)`, making results independent of
//! thread count and execution order.

use crate::backend::{BackendConfig, TaskOutcome};
use crate::frontend::{prepare_sequence, MotionConfig, PreparedSequence};
use euphrates_common::error::Result;
use euphrates_common::metrics::IouAccumulator;
use euphrates_datasets::Sequence;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                let mut guard = slots_mutex.lock().expect("no panics while holding lock");
                guard[i] = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Default worker-thread count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// The result of evaluating one scheme over a suite.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Scheme label (e.g. `"EW-4"`).
    pub label: String,
    /// Merged task statistics.
    pub outcome: TaskOutcome,
    /// Per-sequence outcomes (order matches the suite), for per-sequence
    /// figures like Fig. 10c.
    pub per_sequence: Vec<TaskOutcome>,
}

impl SuiteOutcome {
    /// Accuracy accumulator over all scored predictions.
    pub fn accuracy(&self) -> IouAccumulator {
        self.outcome.ious.iter().copied().collect()
    }

    /// Success/precision at the conventional IoU 0.5.
    pub fn rate_at_05(&self) -> f64 {
        self.accuracy().rate_at(0.5)
    }
}

/// Prepares sequences and runs one or more schemes over them, rendering
/// each sequence only once. `run` receives
/// `(prepared sequence, sequence index, scheme index)`.
///
/// Returns one [`SuiteOutcome`] per scheme.
///
/// # Errors
///
/// Propagates preparation or task errors (the first one encountered).
pub fn evaluate_suite<F>(
    suite: &[Sequence],
    motion: &MotionConfig,
    schemes: &[(String, BackendConfig)],
    run: F,
) -> Result<Vec<SuiteOutcome>>
where
    F: Fn(&PreparedSequence, u64, &BackendConfig) -> Result<TaskOutcome> + Sync,
{
    let motion = *motion;
    let per_sequence: Vec<Result<Vec<TaskOutcome>>> =
        parallel_map(suite, default_threads(), |i, seq| {
            let prep = prepare_sequence(seq, &motion)?;
            schemes
                .iter()
                .map(|(_, cfg)| run(&prep, i as u64, cfg))
                .collect()
        });

    let mut outcomes: Vec<Vec<TaskOutcome>> = Vec::with_capacity(suite.len());
    for r in per_sequence {
        outcomes.push(r?);
    }

    Ok(schemes
        .iter()
        .enumerate()
        .map(|(si, (label, _))| {
            let mut merged = TaskOutcome::default();
            let mut per_seq = Vec::with_capacity(outcomes.len());
            for seq_outcomes in &outcomes {
                merged.merge(&seq_outcomes[si]);
                per_seq.push(seq_outcomes[si].clone());
            }
            SuiteOutcome {
                label: label.clone(),
                outcome: merged,
                per_sequence: per_seq,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::run_tracking;
    use euphrates_datasets::{otb100_like, DatasetScale};
    use euphrates_mc::policy::EwPolicy;
    use euphrates_nn::oracle::calib;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, 8, |i, v| (i as u64) * 1000 + v);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn parallel_map_single_thread_fallback() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |_, v| v * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
    }

    #[test]
    fn evaluate_suite_matches_serial_execution() {
        let mut suite = otb100_like(31, DatasetScale::fraction(0.05));
        suite.truncate(3);
        for s in &mut suite {
            s.frames = 30;
        }
        let schemes = vec![
            ("base".to_string(), BackendConfig::baseline()),
            ("EW-4".to_string(), BackendConfig::new(EwPolicy::Constant(4))),
        ];
        let motion = MotionConfig::default();
        let results = evaluate_suite(&suite, &motion, &schemes, |prep, stream, cfg| {
            run_tracking(prep, calib::mdnet(), cfg, stream)
        })
        .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].per_sequence.len(), 3);

        // Serial re-run gives identical numbers (determinism across the
        // thread pool).
        let serial: TaskOutcome = {
            let mut merged = TaskOutcome::default();
            for (i, seq) in suite.iter().enumerate() {
                let prep = prepare_sequence(seq, &motion).unwrap();
                merged.merge(
                    &run_tracking(&prep, calib::mdnet(), &schemes[1].1, i as u64).unwrap(),
                );
            }
            merged
        };
        assert_eq!(results[1].outcome, serial);
    }

    #[test]
    fn suite_outcome_accuracy_reflects_ious() {
        let so = SuiteOutcome {
            label: "x".into(),
            outcome: TaskOutcome {
                ious: vec![0.9, 0.9, 0.1],
                frames: 3,
                inferences: 3,
                ..TaskOutcome::default()
            },
            per_sequence: vec![],
        };
        assert!((so.rate_at_05() - 2.0 / 3.0).abs() < 1e-12);
    }
}
