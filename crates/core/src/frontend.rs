//! Frontend execution: turning a dataset sequence into per-frame ground
//! truth + motion metadata, the inputs the Euphrates backend consumes.
//!
//! The frontend is *streaming*: [`frame_source`] returns an iterator that
//! renders, (optionally) sensor-models, and block-matches one frame at a
//! time, holding O(1 frame) of state — exactly the shape a serving
//! [`Session`][crate::api::Session] needs. The eager [`prepare_sequence`]
//! is a thin `collect()` over the same iterator, so the two paths are
//! bit-identical by construction; batch evaluation keeps using it through
//! the sharing [`PreparedCache`].
//!
//! Two configurations produce identical *kinds* of data:
//!
//! * [`MotionConfig::full_isp`] = `false` (default for large evaluations):
//!   the rendered RGB frames are converted to luma and block-matched
//!   directly. This skips the Bayer mosaic/demosaic round trip, which
//!   costs ~2× the time and perturbs the motion field only marginally
//!   (the `frontend_paths_agree` test quantifies it).
//! * `full_isp = true`: frames pass through the image sensor model (RGGB
//!   mosaic + read noise) and the full ISP pipeline (dead-pixel
//!   correction → demosaic → white balance → temporal denoise), with the
//!   motion field taken from the temporal-denoise stage exactly as in
//!   Fig. 7.

use euphrates_camera::noise::NoiseModelKind;
use euphrates_camera::scene::{GtObject, Renderer};
use euphrates_camera::sensor::{ImageSensor, SensorConfig};
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Rect;
use euphrates_common::image::{
    downsample2_dims, downsample2_into, BayerFrame, LumaFrame, Resolution, RgbFrame,
};
use euphrates_datasets::Sequence;
use euphrates_isp::motion::{BlockMatcher, CachedPlanes, MotionField, RowPrefix, SearchStrategy};
use euphrates_isp::pipeline::{IspConfig, IspPipeline};
use euphrates_nn::oracle::OracleTarget;
use std::sync::{Arc, Condvar, Mutex};

/// Motion-estimation configuration for an evaluation run.
///
/// `Eq + Hash` so prepared-frame caches can key on it (see
/// [`PreparedCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MotionConfig {
    /// Macroblock size (paper default 16).
    pub mb_size: u32,
    /// Search range `d` (paper default 7).
    pub search_range: u32,
    /// Block-matching strategy. The evaluated default is
    /// [`SearchStrategy::Hierarchical`] — the pyramid-cached two-level
    /// search, which the Fig. 11b sweep pins within 0.008 success rate
    /// of exhaustive search at a fraction of the probes (the paper's
    /// modelled ISP stage, TSS, remains selectable as
    /// [`SearchStrategy::ThreeStep`]). Any
    /// [`MotionSearch`][euphrates_isp::motion::MotionSearch] engine
    /// registered via
    /// [`register_search`][euphrates_isp::motion::register_search] can be
    /// named here with [`SearchStrategy::Custom`].
    pub strategy: SearchStrategy,
    /// Run the full sensor + ISP pipeline instead of the fast luma path.
    pub full_isp: bool,
    /// Noise-model override for frame production: `None` (default)
    /// renders with each scene's own
    /// [`SceneEffects::noise_model`][euphrates_camera::scene::SceneEffects];
    /// `Some(kind)` forces `kind` for both the renderer's pixel noise
    /// and the sensor's read noise (full-ISP path). Part of this
    /// config's identity, so a [`PreparedCache`] keyed on it is shared
    /// only by schemes that agree on the realization — and *is* shared
    /// by all of them.
    pub noise_model: Option<NoiseModelKind>,
    /// Enables the matcher's SAD lower-bound prefilter
    /// ([`BlockMatcher::with_prefilter`]) on the fast luma path, with
    /// its [`RowPrefix`] tables double-buffered alongside the pyramid
    /// (each frame's table is built exactly once and travels through
    /// the swap). Motion fields are bit-identical either way; the
    /// prefilter trades bound arithmetic for candidate evaluations, so
    /// it pays when evaluation is expensive (custom engines, hardware
    /// models) and stays off by default on the SWAR host kernel — see
    /// the `euphrates-isp` module docs for the measured trade.
    pub prefilter: bool,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            mb_size: 16,
            search_range: 7,
            strategy: SearchStrategy::Hierarchical,
            full_isp: false,
            noise_model: None,
            prefilter: false,
        }
    }
}

/// One frame's backend-visible data.
///
/// Construct through [`FrameData::new`], which also caches the two
/// derived views every scheme used to recompute per frame — the
/// oracle-facing target list and the non-empty truth rectangles. A
/// prepared sequence is shared by every scheme in the evaluation grid,
/// so deriving them once at preparation time removes a per-(frame ×
/// scheme) allocation from both task hot loops. Treat a `FrameData` as
/// immutable once built: mutating `truth` in place would desync the
/// cached views.
#[derive(Debug, Clone)]
pub struct FrameData {
    /// Ground truth (consumed by the oracles and the scorer).
    pub truth: Vec<GtObject>,
    /// The ISP-exported motion field (zeroed for frame 0).
    pub motion: MotionField,
    /// Cached oracle view of `truth` (same order).
    targets: Vec<OracleTarget>,
    /// Cached non-empty ground-truth boxes (the scorer's view).
    truth_rects: Vec<Rect>,
}

impl FrameData {
    /// Bundles one frame's ground truth and motion field, deriving the
    /// cached oracle/scorer views.
    pub fn new(truth: Vec<GtObject>, motion: MotionField) -> Self {
        let targets = truth
            .iter()
            .map(|g| OracleTarget {
                id: g.id,
                label: g.label,
                rect: g.rect,
                visibility: g.visibility,
                blur: g.blur,
            })
            .collect();
        let truth_rects = truth
            .iter()
            .filter(|g| !g.rect.is_empty())
            .map(|g| g.rect)
            .collect();
        FrameData {
            truth,
            motion,
            targets,
            truth_rects,
        }
    }

    /// The oracle view of this frame's ground truth (one
    /// [`OracleTarget`] per truth object, same order).
    pub fn targets(&self) -> &[OracleTarget] {
        &self.targets
    }

    /// The non-empty ground-truth boxes (what detection scoring matches
    /// against).
    pub fn truth_rects(&self) -> &[Rect] {
        &self.truth_rects
    }
}

/// A sequence reduced to backend inputs, reusable across schemes.
#[derive(Debug, Clone)]
pub struct PreparedSequence {
    /// Sequence name.
    pub name: String,
    /// Frame resolution.
    pub resolution: Resolution,
    /// Per-frame data.
    pub frames: Vec<FrameData>,
}

impl PreparedSequence {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// The streaming frontend: renders and motion-estimates one frame per
/// `next()` call, holding only the previous luma plane (fast path) or the
/// ISP's temporal state (full path) between frames.
///
/// The source drives the scene's scanline [`Renderer`] directly through
/// fixed, reused buffers: the fast path renders straight to luma
/// ([`Renderer::render_luma_into`], which fuses illumination/noise and
/// the RGB→luma conversion, so no intermediate RGB frame is ever
/// materialized) and double-buffers the current/previous planes; the
/// full-ISP path reuses one RGB and one RAW frame across the whole
/// stream. Steady-state iteration therefore performs O(1) allocations
/// per frame.
///
/// Created by [`frame_source`]; consumed by
/// [`run_stream`][crate::api::run_stream], a
/// [`Session`][crate::api::Session] feeding loop, or `collect()`ed by
/// [`prepare_sequence`].
pub struct FrameSource<'a> {
    renderer: Renderer<'a>,
    next: u32,
    end: u32,
    resolution: Resolution,
    state: SourceState,
}

enum SourceState {
    /// Fast path: luma-domain block matching against the previous frame.
    Luma {
        matcher: BlockMatcher,
        config: MotionConfig,
        /// Current / previous luma planes, swapped each frame.
        cur: LumaFrame,
        prev: LumaFrame,
        /// Cached 2×-downsampled pyramid planes for `cur`/`prev`,
        /// double-buffered alongside them (present only when the
        /// matcher's strategy wants a pyramid). Each frame's coarse
        /// plane is built exactly once, in a reused buffer — where a
        /// bare `estimate` call would rebuild both levels per frame
        /// pair — so the pyramid travels with the frame through the
        /// swap.
        pyramid: Option<(LumaFrame, LumaFrame)>,
        /// Double-buffered [`RowPrefix`] tables of the fine planes
        /// (and, with a pyramid, the coarse planes), present only when
        /// [`MotionConfig::prefilter`] is set — same lifecycle as the
        /// pyramid: rebuilt for `cur` each frame, consumed as the
        /// reference side next frame after the swap. Boxed — the
        /// tables are prefilter-only, and the common prefilter-off
        /// source shouldn't carry their footprint in the enum.
        prefix: Option<Box<(RowPrefix, RowPrefix)>>,
        coarse_prefix: Option<Box<(RowPrefix, RowPrefix)>>,
        have_prev: bool,
    },
    /// Full path: sensor capture + complete ISP per frame.
    FullIsp {
        sensor: ImageSensor,
        isp: Box<IspPipeline>,
        /// Reused render target and RAW capture buffer.
        rgb: RgbFrame,
        raw: BayerFrame,
    },
}

impl FrameSource<'_> {
    /// Frame resolution of the stream.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }
}

impl Iterator for FrameSource<'_> {
    type Item = Result<FrameData>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let renderer = &mut self.renderer;
        let mut produce = |state: &mut SourceState| -> Result<FrameData> {
            match state {
                SourceState::Luma {
                    matcher,
                    config,
                    cur,
                    prev,
                    pyramid,
                    prefix,
                    coarse_prefix,
                    have_prev,
                } => {
                    let truth = renderer.render_luma_into(index, cur);
                    if let Some((pcur, _)) = pyramid.as_mut() {
                        downsample2_into(cur, pcur);
                    }
                    if let Some(p) = prefix.as_deref_mut() {
                        p.0.rebuild(cur);
                    }
                    if let (Some(p), Some((pcur, _))) =
                        (coarse_prefix.as_deref_mut(), pyramid.as_ref())
                    {
                        p.0.rebuild(pcur);
                    }
                    let motion = if *have_prev {
                        let planes = CachedPlanes {
                            pyramid: pyramid.as_ref().map(|(pc, pp)| (pc, pp)),
                            prefix_prev: prefix.as_deref().map(|(_, xp)| xp),
                            coarse_prefix_prev: coarse_prefix.as_deref().map(|(_, xp)| xp),
                        };
                        matcher.estimate_cached(cur, prev, planes)?.0
                    } else {
                        MotionField::zeroed(
                            Resolution::new(cur.width(), cur.height()),
                            config.mb_size,
                            config.search_range,
                        )?
                    };
                    std::mem::swap(cur, prev);
                    if let Some((pcur, pprev)) = pyramid.as_mut() {
                        std::mem::swap(pcur, pprev);
                    }
                    if let Some(p) = prefix.as_deref_mut() {
                        let (xcur, xprev) = p;
                        std::mem::swap(xcur, xprev);
                    }
                    if let Some(p) = coarse_prefix.as_deref_mut() {
                        let (xcur, xprev) = p;
                        std::mem::swap(xcur, xprev);
                    }
                    *have_prev = true;
                    Ok(FrameData::new(truth, motion))
                }
                SourceState::FullIsp {
                    sensor,
                    isp,
                    rgb,
                    raw,
                } => {
                    let truth = renderer.render_into(index, rgb);
                    sensor.capture_into(rgb, index, raw)?;
                    let out = isp.process(raw)?;
                    Ok(FrameData::new(truth, out.motion))
                }
            }
        };
        Some(produce(&mut self.state))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end.saturating_sub(self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FrameSource<'_> {}

/// Opens a streaming frame source over `seq`: frames are rendered and
/// motion-estimated lazily, one per `next()`, without materializing the
/// sequence. The scene is borrowed, not cloned.
///
/// # Errors
///
/// Propagates invalid motion-estimation configurations and ISP errors.
pub fn frame_source<'a>(seq: &'a Sequence, config: &MotionConfig) -> Result<FrameSource<'a>> {
    let res = seq.resolution();
    let state = if config.full_isp {
        let sensor = ImageSensor::new(
            SensorConfig {
                resolution: res,
                noise_model: config
                    .noise_model
                    .unwrap_or(seq.scene.effects().noise_model),
                ..SensorConfig::default()
            },
            seq.scene.seed(),
        );
        let mut isp_cfg = IspConfig::standard(res);
        isp_cfg.mb_size = config.mb_size;
        isp_cfg.search_range = config.search_range;
        isp_cfg.strategy = config.strategy;
        SourceState::FullIsp {
            sensor,
            isp: Box::new(IspPipeline::new(isp_cfg)?),
            rgb: RgbFrame::new(res.width, res.height)?,
            raw: BayerFrame::new(res.width, res.height)?,
        }
    } else {
        let matcher = BlockMatcher::new(config.mb_size, config.search_range, config.strategy)?
            .with_prefilter(config.prefilter);
        let cur = LumaFrame::new(res.width, res.height)?;
        let pyramid = if matcher.wants_pyramid() {
            let (pw, ph) = downsample2_dims(&cur);
            Some((LumaFrame::new(pw, ph)?, LumaFrame::new(pw, ph)?))
        } else {
            None
        };
        let prefix = config
            .prefilter
            .then(|| Box::new((RowPrefix::build(&cur), RowPrefix::build(&cur))));
        let coarse_prefix = match (config.prefilter, pyramid.as_ref()) {
            (true, Some((pc, _))) => Some(Box::new((RowPrefix::build(pc), RowPrefix::build(pc)))),
            _ => None,
        };
        SourceState::Luma {
            matcher,
            config: *config,
            prev: cur.clone(),
            cur,
            pyramid,
            prefix,
            coarse_prefix,
            have_prev: false,
        }
    };
    Ok(FrameSource {
        renderer: match config.noise_model {
            Some(kind) => seq.scene.renderer_with_noise(kind),
            None => seq.scene.renderer(),
        },
        next: 0,
        end: seq.frames,
        resolution: res,
        state,
    })
}

/// Renders a sequence and runs motion estimation on it, eagerly — a
/// `collect()` over [`frame_source`], so the result is bit-identical to
/// the streaming path.
///
/// # Errors
///
/// Propagates invalid motion-estimation configurations and ISP errors.
pub fn prepare_sequence(seq: &Sequence, config: &MotionConfig) -> Result<PreparedSequence> {
    let source = frame_source(seq, config)?;
    let resolution = source.resolution();
    let frames = source.collect::<Result<Vec<FrameData>>>()?;
    Ok(PreparedSequence {
        name: seq.name.clone(),
        resolution,
        frames,
    })
}

// ---------------------------------------------------------------------------
// PreparedCache
// ---------------------------------------------------------------------------

/// A blocking, self-evicting cache of prepared sequences shared by the
/// (sequence × scheme) evaluation grid, keyed on the [`MotionConfig`]
/// that prepared them.
///
/// The first worker to [`get`][PreparedCache::get] a sequence prepares
/// it; concurrent getters block until it is ready and then share the
/// `Arc`. Each of the `uses_per_sequence` users calls
/// [`finish`][PreparedCache::finish] when done; the last one drops the
/// frames, so peak memory is bounded by the sequences currently in
/// flight, not the whole suite.
pub struct PreparedCache<'a> {
    suite: &'a [Sequence],
    motion: MotionConfig,
    uses_per_sequence: usize,
    slots: Vec<Slot>,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// Not yet requested.
    Empty,
    /// A worker is preparing the sequence; others wait on the condvar.
    Building,
    /// Prepared; the count tracks outstanding `finish` calls.
    Ready(Arc<PreparedSequence>, usize),
    /// Preparation failed; every user observes the same error.
    Failed(Error),
    /// All users finished; frames are dropped.
    Drained,
}

impl<'a> PreparedCache<'a> {
    /// Creates a cache over `suite` where each sequence will be fetched
    /// (and finished) exactly `uses_per_sequence` times — one per scheme
    /// in the evaluation grid.
    pub fn new(suite: &'a [Sequence], motion: MotionConfig, uses_per_sequence: usize) -> Self {
        PreparedCache {
            suite,
            motion,
            uses_per_sequence: uses_per_sequence.max(1),
            slots: (0..suite.len())
                .map(|_| Slot {
                    state: Mutex::new(SlotState::Empty),
                    ready: Condvar::new(),
                })
                .collect(),
        }
    }

    /// The motion configuration this cache's entries are keyed on.
    pub fn motion(&self) -> &MotionConfig {
        &self.motion
    }

    /// Fetches sequence `index`, preparing it on first use and blocking
    /// while another worker prepares it. Pair every successful or failed
    /// `get` with one [`finish`][PreparedCache::finish].
    ///
    /// # Errors
    ///
    /// Propagates the preparation error (every user of the sequence
    /// observes the same one).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the sequence was already
    /// drained by `uses_per_sequence` finishes.
    pub fn get(&self, index: usize) -> Result<Arc<PreparedSequence>> {
        let slot = &self.slots[index];
        let mut state = slot.state.lock().expect("cache slot never poisons");
        loop {
            match &mut *state {
                SlotState::Empty => {
                    *state = SlotState::Building;
                    drop(state);
                    // A panicking preparation must not strand peers in
                    // `wait` forever (the caller's catch_unwind would
                    // swallow the builder thread): mark the slot failed
                    // and wake everyone before re-raising.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        prepare_sequence(&self.suite[index], &self.motion)
                    }));
                    let mut state = slot.state.lock().expect("cache slot never poisons");
                    let out = match result {
                        Ok(Ok(prep)) => {
                            let prep = Arc::new(prep);
                            *state = SlotState::Ready(prep.clone(), self.uses_per_sequence);
                            Ok(prep)
                        }
                        Ok(Err(e)) => {
                            *state = SlotState::Failed(e.clone());
                            Err(e)
                        }
                        Err(payload) => {
                            *state = SlotState::Failed(Error::state(format!(
                                "preparation of sequence {index} panicked"
                            )));
                            slot.ready.notify_all();
                            drop(state);
                            std::panic::resume_unwind(payload);
                        }
                    };
                    slot.ready.notify_all();
                    return out;
                }
                SlotState::Building => {
                    state = slot.ready.wait(state).expect("cache slot never poisons");
                }
                SlotState::Ready(prep, _) => return Ok(prep.clone()),
                SlotState::Failed(e) => return Err(e.clone()),
                SlotState::Drained => {
                    panic!("sequence {index} already drained (more gets than declared uses)")
                }
            }
        }
    }

    /// Releases one use of sequence `index`; the last release drops the
    /// prepared frames. Call exactly once per [`get`][PreparedCache::get],
    /// whether it succeeded or failed.
    pub fn finish(&self, index: usize) {
        let slot = &self.slots[index];
        let mut state = slot.state.lock().expect("cache slot never poisons");
        if let SlotState::Ready(_, remaining) = &mut *state {
            *remaining -= 1;
            if *remaining == 0 {
                *state = SlotState::Drained;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::par::parallel_map;
    use euphrates_datasets::{otb100_like, DatasetScale};

    fn tiny_seq() -> Sequence {
        let mut suite = otb100_like(3, DatasetScale::fraction(0.05));
        suite.truncate(1);
        let mut s = suite.pop().unwrap();
        s.frames = 12;
        s
    }

    #[test]
    fn prepare_produces_one_frame_data_per_frame() {
        let seq = tiny_seq();
        let prep = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        assert_eq!(prep.len(), 12);
        assert!(!prep.is_empty());
        assert_eq!(prep.frames[0].motion.mean_magnitude(), 0.0);
        assert_eq!(prep.frames[0].truth.len(), 1);
    }

    #[test]
    fn motion_fields_reflect_target_motion() {
        let seq = tiny_seq();
        let prep = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        // Some later frame must show non-zero motion under the target.
        let moving = prep.frames[1..]
            .iter()
            .any(|f| f.motion.mean_magnitude() > 0.01);
        assert!(moving, "no motion detected across the sequence");
    }

    #[test]
    fn streaming_source_bit_matches_eager_preparation() {
        let seq = tiny_seq();
        for config in [
            MotionConfig::default(),
            MotionConfig {
                full_isp: true,
                ..MotionConfig::default()
            },
        ] {
            let eager = prepare_sequence(&seq, &config).unwrap();
            let mut streamed = 0usize;
            for (i, frame) in frame_source(&seq, &config).unwrap().enumerate() {
                let frame = frame.unwrap();
                assert_eq!(frame.motion, eager.frames[i].motion, "frame {i}");
                assert_eq!(frame.truth, eager.frames[i].truth, "frame {i}");
                streamed += 1;
            }
            assert_eq!(streamed, eager.len());
        }
    }

    #[test]
    fn fused_luma_source_matches_rgb_conversion_path() {
        // The streaming fast path renders straight to luma; its output
        // must bit-match the pre-refactor shape: render RGB, convert
        // with `rgb_to_luma`, then block-match against the previous
        // plane.
        let seq = tiny_seq();
        let config = MotionConfig::default();
        let matcher =
            BlockMatcher::new(config.mb_size, config.search_range, config.strategy).unwrap();
        let mut source = frame_source(&seq, &config).unwrap();
        assert_eq!(source.len(), seq.frames as usize);
        let mut prev: Option<LumaFrame> = None;
        for rendered in seq.render_iter() {
            let luma = euphrates_common::image::rgb_to_luma(&rendered.rgb);
            let expected = match &prev {
                Some(p) => matcher.estimate(&luma, p).unwrap(),
                None => MotionField::zeroed(seq.resolution(), config.mb_size, config.search_range)
                    .unwrap(),
            };
            let got = source.next().unwrap().unwrap();
            assert_eq!(got.motion, expected, "frame {}", rendered.index);
            assert_eq!(got.truth, rendered.truth, "frame {}", rendered.index);
            prev = Some(luma);
        }
        assert!(source.next().is_none());
    }

    #[test]
    fn prefiltered_streaming_is_bit_identical() {
        // Turning on the SAD lower-bound prefilter must not change a
        // single motion vector — it only reorders which candidates get
        // fully evaluated. Exercise both the hierarchical default
        // (fine + coarse prefix tables double-buffered with the
        // pyramid) and exhaustive search (fine table only).
        let seq = tiny_seq();
        for strategy in [SearchStrategy::Hierarchical, SearchStrategy::Exhaustive] {
            let base_cfg = MotionConfig {
                strategy,
                ..MotionConfig::default()
            };
            let pre_cfg = MotionConfig {
                prefilter: true,
                ..base_cfg
            };
            assert_ne!(base_cfg, pre_cfg, "prefilter is part of config identity");
            let base = frame_source(&seq, &base_cfg).unwrap();
            let pre = frame_source(&seq, &pre_cfg).unwrap();
            for (i, (a, b)) in base.zip(pre).enumerate() {
                let (a, b) = (a.unwrap(), b.unwrap());
                assert_eq!(a.motion, b.motion, "{strategy:?} frame {i}");
                assert_eq!(a.truth, b.truth, "{strategy:?} frame {i}");
            }
        }
    }

    #[test]
    fn frontend_paths_agree() {
        // The fast luma path and the full sensor+ISP path must yield
        // closely matching per-ROI average motion.
        let seq = tiny_seq();
        let fast = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        let full = prepare_sequence(
            &seq,
            &MotionConfig {
                full_isp: true,
                ..MotionConfig::default()
            },
        )
        .unwrap();
        for (i, (a, b)) in fast.frames.iter().zip(&full.frames).enumerate().skip(2) {
            let roi = &a.truth[0].rect;
            if roi.is_empty() {
                continue;
            }
            let (ma, _) = euphrates_mc::algorithm::roi_average_motion(&a.motion, roi);
            let (mb, _) = euphrates_mc::algorithm::roi_average_motion(&b.motion, roi);
            assert!(
                (ma.x - mb.x).abs() < 1.5 && (ma.y - mb.y).abs() < 1.5,
                "frame {i}: fast {ma} vs full {mb}"
            );
        }
    }

    #[test]
    fn noise_model_override_selects_the_realization() {
        let seq = tiny_seq();
        // Dataset scenes default to FastGaussian, so no override and an
        // explicit FastGaussian must be bit-identical.
        let by_default = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        let fast_cfg = MotionConfig {
            noise_model: Some(NoiseModelKind::FastGaussian),
            ..MotionConfig::default()
        };
        let fast = prepare_sequence(&seq, &fast_cfg).unwrap();
        for (a, b) in by_default.frames.iter().zip(&fast.frames) {
            assert_eq!(a.motion, b.motion);
            assert_eq!(a.truth, b.truth);
        }
        // The override is part of the config's identity: prepared-frame
        // caches keyed on MotionConfig must not conflate realizations.
        let legacy_cfg = MotionConfig {
            noise_model: Some(NoiseModelKind::LegacyBoxMuller),
            ..MotionConfig::default()
        };
        assert_ne!(fast_cfg, legacy_cfg);
        assert_ne!(fast_cfg, MotionConfig::default());
        // Both realizations stream fine (and ground truth, which noise
        // cannot touch, agrees exactly).
        let legacy = prepare_sequence(&seq, &legacy_cfg).unwrap();
        for (a, b) in legacy.frames.iter().zip(&fast.frames) {
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn invalid_motion_config_is_rejected() {
        let seq = tiny_seq();
        let bad = MotionConfig {
            mb_size: 0,
            ..MotionConfig::default()
        };
        assert!(prepare_sequence(&seq, &bad).is_err());
        assert!(frame_source(&seq, &bad).is_err());
    }

    #[test]
    fn cache_prepares_once_and_drains_after_last_use() {
        let seq = tiny_seq();
        let suite = vec![seq];
        let uses = 3;
        let cache = PreparedCache::new(&suite, MotionConfig::default(), uses);
        // Concurrent users all see the same prepared Arc.
        let jobs: Vec<usize> = (0..uses).collect();
        let preps: Vec<Arc<PreparedSequence>> = parallel_map(&jobs, uses, |_, _| {
            let p = cache.get(0).unwrap();
            cache.finish(0);
            p
        });
        for p in &preps[1..] {
            assert!(Arc::ptr_eq(&preps[0], p), "cache must share one copy");
        }
        assert_eq!(preps[0].len(), 12);
        // After the declared uses, the slot is drained.
        let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.get(0)));
        assert!(drained.is_err(), "drained slot must not be re-fetched");
    }

    #[test]
    fn cache_propagates_preparation_errors_to_every_user() {
        let seq = tiny_seq();
        let suite = vec![seq];
        let bad = MotionConfig {
            search_range: 0,
            ..MotionConfig::default()
        };
        let cache = PreparedCache::new(&suite, bad, 2);
        assert!(cache.get(0).is_err());
        cache.finish(0);
        assert!(cache.get(0).is_err(), "second user sees the same error");
        cache.finish(0);
    }
}
