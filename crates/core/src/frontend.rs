//! Frontend execution: turning a dataset sequence into per-frame ground
//! truth + motion metadata, the inputs the Euphrates backend consumes.
//!
//! Two paths produce identical *kinds* of data:
//!
//! * [`MotionConfig::full_isp`] = `false` (default for large evaluations):
//!   the rendered RGB frames are converted to luma and block-matched
//!   directly. This skips the Bayer mosaic/demosaic round trip, which
//!   costs ~2× the time and perturbs the motion field only marginally
//!   (the `frontend_paths_agree` test quantifies it).
//! * `full_isp = true`: frames pass through the image sensor model (RGGB
//!   mosaic + read noise) and the full ISP pipeline (dead-pixel
//!   correction → demosaic → white balance → temporal denoise), with the
//!   motion field taken from the temporal-denoise stage exactly as in
//!   Fig. 7.

use euphrates_camera::scene::GtObject;
use euphrates_camera::sensor::{ImageSensor, SensorConfig};
use euphrates_common::error::Result;
use euphrates_common::image::{rgb_to_luma, Resolution};
use euphrates_datasets::Sequence;
use euphrates_isp::motion::{BlockMatcher, MotionField, SearchStrategy};
use euphrates_isp::pipeline::{IspConfig, IspPipeline};

/// Motion-estimation configuration for an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionConfig {
    /// Macroblock size (paper default 16).
    pub mb_size: u32,
    /// Search range `d` (paper default 7).
    pub search_range: u32,
    /// Block-matching strategy (paper default TSS).
    pub strategy: SearchStrategy,
    /// Run the full sensor + ISP pipeline instead of the fast luma path.
    pub full_isp: bool,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            mb_size: 16,
            search_range: 7,
            strategy: SearchStrategy::ThreeStep,
            full_isp: false,
        }
    }
}

/// One frame's backend-visible data.
#[derive(Debug, Clone)]
pub struct FrameData {
    /// Ground truth (consumed by the oracles and the scorer).
    pub truth: Vec<GtObject>,
    /// The ISP-exported motion field (zeroed for frame 0).
    pub motion: MotionField,
}

/// A sequence reduced to backend inputs, reusable across schemes.
#[derive(Debug, Clone)]
pub struct PreparedSequence {
    /// Sequence name.
    pub name: String,
    /// Frame resolution.
    pub resolution: Resolution,
    /// Per-frame data.
    pub frames: Vec<FrameData>,
}

impl PreparedSequence {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Renders a sequence and runs motion estimation on it.
///
/// # Errors
///
/// Propagates invalid motion-estimation configurations and ISP errors.
pub fn prepare_sequence(seq: &Sequence, config: &MotionConfig) -> Result<PreparedSequence> {
    let matcher = BlockMatcher::new(config.mb_size, config.search_range, config.strategy)?;
    let res = seq.resolution();
    let mut frames = Vec::with_capacity(seq.frames as usize);
    let mut renderer = seq.scene.renderer();

    if config.full_isp {
        let sensor = ImageSensor::new(
            SensorConfig {
                resolution: res,
                ..SensorConfig::default()
            },
            seq.scene.seed(),
        );
        let mut isp_cfg = IspConfig::standard(res);
        isp_cfg.mb_size = config.mb_size;
        isp_cfg.search_range = config.search_range;
        isp_cfg.strategy = config.strategy;
        let mut isp = IspPipeline::new(isp_cfg)?;
        for i in 0..seq.frames {
            let rendered = renderer.render(i);
            let raw = sensor.capture(&rendered.rgb, i)?;
            let out = isp.process(&raw)?;
            frames.push(FrameData {
                truth: rendered.truth,
                motion: out.motion,
            });
        }
    } else {
        let mut prev_luma = None;
        for i in 0..seq.frames {
            let rendered = renderer.render(i);
            let luma = rgb_to_luma(&rendered.rgb);
            let motion = match &prev_luma {
                Some(prev) => matcher.estimate(&luma, prev)?,
                None => MotionField::zeroed(res, config.mb_size, config.search_range)?,
            };
            prev_luma = Some(luma);
            frames.push(FrameData {
                truth: rendered.truth,
                motion,
            });
        }
    }

    Ok(PreparedSequence {
        name: seq.name.clone(),
        resolution: res,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_datasets::{otb100_like, DatasetScale};

    fn tiny_seq() -> Sequence {
        let mut suite = otb100_like(3, DatasetScale::fraction(0.05));
        suite.truncate(1);
        let mut s = suite.pop().unwrap();
        s.frames = 12;
        s
    }

    #[test]
    fn prepare_produces_one_frame_data_per_frame() {
        let seq = tiny_seq();
        let prep = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        assert_eq!(prep.len(), 12);
        assert!(!prep.is_empty());
        assert_eq!(prep.frames[0].motion.mean_magnitude(), 0.0);
        assert_eq!(prep.frames[0].truth.len(), 1);
    }

    #[test]
    fn motion_fields_reflect_target_motion() {
        let seq = tiny_seq();
        let prep = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        // Some later frame must show non-zero motion under the target.
        let moving = prep.frames[1..]
            .iter()
            .any(|f| f.motion.mean_magnitude() > 0.01);
        assert!(moving, "no motion detected across the sequence");
    }

    #[test]
    fn frontend_paths_agree() {
        // The fast luma path and the full sensor+ISP path must yield
        // closely matching per-ROI average motion.
        let seq = tiny_seq();
        let fast = prepare_sequence(&seq, &MotionConfig::default()).unwrap();
        let full = prepare_sequence(
            &seq,
            &MotionConfig {
                full_isp: true,
                ..MotionConfig::default()
            },
        )
        .unwrap();
        for (i, (a, b)) in fast.frames.iter().zip(&full.frames).enumerate().skip(2) {
            let roi = &a.truth[0].rect;
            if roi.is_empty() {
                continue;
            }
            let (ma, _) = euphrates_mc::algorithm::roi_average_motion(&a.motion, roi);
            let (mb, _) = euphrates_mc::algorithm::roi_average_motion(&b.motion, roi);
            assert!(
                (ma.x - mb.x).abs() < 1.5 && (ma.y - mb.y).abs() < 1.5,
                "frame {i}: fast {ma} vs full {mb}"
            );
        }
    }

    #[test]
    fn invalid_motion_config_is_rejected() {
        let seq = tiny_seq();
        let bad = MotionConfig {
            mb_size: 0,
            ..MotionConfig::default()
        };
        assert!(prepare_sequence(&seq, &bad).is_err());
    }
}
