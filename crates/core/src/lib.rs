//! # euphrates-core
//!
//! The Euphrates continuous-vision pipeline: the paper's primary
//! contribution assembled from the workspace's substrates.
//!
//! * [`api`] — the unified public API: the [`VisionTask`][api::VisionTask]
//!   trait, the [`Scenario`][api::Scenario] builder, and the streaming
//!   [`Session`][api::Session].
//! * [`frontend`] — sequence preparation: camera/scene rendering + ISP
//!   block matching → per-frame ground truth and motion fields.
//! * [`backend`] — shared backend machinery: EW scheduling, the ROI
//!   extrapolation step (reference or fixed-point datapath), MC cycle
//!   accounting.
//! * [`tracker`] / [`detector`] — the two evaluated tasks (§5.2): MDNet-
//!   class single-object tracking and YOLOv2-class multi-object
//!   detection, as [`VisionTask`][api::VisionTask] implementations.
//! * [`eval`] — deterministic parallel suite evaluation plumbing.
//! * [`system`] — the Table 1 platform model mapping inference rates to
//!   SoC energy, FPS, and DRAM traffic.
//!
//! ## Quickstart
//!
//! Describe an experiment with the [`Scenario`][api::Scenario] builder —
//! *dataset × motion config × scheme registry × platform* — and evaluate
//! it to a structured report that carries accuracy, energy, FPS, and
//! DRAM traffic together:
//!
//! ```
//! use euphrates_core::prelude::*;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! // A small tracking suite at 10% scale.
//! let mut suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(2);
//! for s in &mut suite { s.frames = 40; }
//!
//! let scenario = Scenario::builder(TrackerTask::new(euphrates_nn::oracle::calib::mdnet()))
//!     .suite(suite)
//!     .network(euphrates_nn::zoo::mdnet())
//!     .scheme("MDNet", BackendConfig::baseline())
//!     .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
//!     .build()?;
//! let report = scenario.evaluate()?;
//! assert_eq!(report.len(), 2);
//! // Extrapolation quarters the inference count ...
//! let ew4 = report.get("EW-4").unwrap();
//! assert!(ew4.outcome.inference_rate() < 0.3);
//! // ... and the same report already carries the platform numbers.
//! assert!(ew4.system.as_ref().unwrap().fps > report.schemes[0].system.as_ref().unwrap().fps);
//! # Ok(())
//! # }
//! ```
//!
//! ### Streaming
//!
//! The same schedule runs incrementally: open a [`Session`][api::Session]
//! and push frames as they arrive. Per-frame results bit-match the
//! offline path above.
//!
//! ```
//! use euphrates_core::prelude::*;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! let mut suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(1);
//! suite[0].frames = 12;
//! let prep = prepare_sequence(&suite[0], &MotionConfig::default())?;
//!
//! let task = TrackerTask::new(euphrates_nn::oracle::calib::mdnet());
//! let mut session = Session::new(task, BackendConfig::new(EwPolicy::Constant(4)),
//!                                prep.resolution, 0)?;
//! for frame in &prep.frames {
//!     let decision: FrameDecision = session.push_frame(frame)?;
//!     if decision.is_inference() {
//!         // e.g. ship the fresh CNN result downstream
//!     }
//! }
//! assert_eq!(session.outcome().frames, 12);
//! assert_eq!(session.outcome().inferences, 3);
//! # Ok(())
//! # }
//! ```
//!
//! ## Environment
//!
//! * `EUPHRATES_THREADS` — overrides the evaluation worker-thread count
//!   (positive integer, capped at 16; see [`eval::default_threads`]).
//!   Results are thread-count independent; the knob only controls
//!   parallelism.

pub mod api;
pub mod backend;
pub mod detector;
pub mod eval;
pub mod frontend;
pub mod system;
pub mod tracker;

pub use api::{
    run_task, EvalReport, FrameContext, FrameDecision, Scenario, ScenarioBuilder, SchemeId,
    SchemeResult, SchemeSpec, Session, StepStats, VisionTask,
};
pub use backend::{BackendConfig, TaskOutcome};
#[allow(deprecated)]
pub use detector::run_detection;
pub use detector::DetectorTask;
#[allow(deprecated)]
pub use eval::evaluate_suite;
pub use eval::{parallel_map, SuiteOutcome};
pub use frontend::{prepare_sequence, FrameData, MotionConfig, PreparedSequence};
pub use system::SystemModel;
#[allow(deprecated)]
pub use tracker::run_tracking;
pub use tracker::TrackerTask;

/// Convenience re-exports for pipeline users.
pub mod prelude {
    pub use crate::api::{
        run_task, EvalReport, FrameContext, FrameDecision, Scenario, ScenarioBuilder, SchemeId,
        SchemeResult, SchemeSpec, Session, StepStats, VisionTask,
    };
    pub use crate::backend::{BackendConfig, TaskOutcome};
    #[allow(deprecated)]
    pub use crate::detector::run_detection;
    pub use crate::detector::DetectorTask;
    #[allow(deprecated)]
    pub use crate::eval::evaluate_suite;
    pub use crate::eval::SuiteOutcome;
    pub use crate::frontend::{prepare_sequence, FrameData, MotionConfig, PreparedSequence};
    pub use crate::system::SystemModel;
    #[allow(deprecated)]
    pub use crate::tracker::run_tracking;
    pub use crate::tracker::TrackerTask;
    pub use euphrates_datasets::{DatasetScale, Sequence, VisualAttribute};
    pub use euphrates_mc::policy::{AdaptiveConfig, EwPolicy, FrameKind};
    pub use euphrates_soc::energy::ExtrapolationExecutor;
}
