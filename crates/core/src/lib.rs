//! # euphrates-core
//!
//! The Euphrates continuous-vision pipeline: the paper's primary
//! contribution assembled from the workspace's substrates.
//!
//! * [`api`] — the unified public API: the [`VisionTask`] trait, the
//!   [`Scenario`] builder, and the streaming [`Session`].
//! * [`frontend`] — the streaming frame front-end: camera/scene
//!   rendering plus ISP block matching → per-frame ground truth and
//!   motion fields, produced lazily by [`frame_source`] (O(1 frame) of
//!   memory), eagerly by [`prepare_sequence`], and shared across an
//!   evaluation grid by
//!   [`PreparedCache`]. Which search explores the block-matching window
//!   is pluggable: [`MotionConfig::strategy`] names any
//!   [`MotionSearch`][euphrates_isp::motion::MotionSearch] engine —
//!   exhaustive, three-step, diamond, two-level hierarchical, or one
//!   registered at runtime via
//!   [`register_search`][euphrates_isp::motion::register_search].
//! * [`backend`] — shared backend machinery: EW scheduling, the ROI
//!   extrapolation step (reference or fixed-point datapath), MC cycle
//!   accounting.
//! * [`tracker`] / [`detector`] — the two evaluated tasks (§5.2): MDNet-
//!   class single-object tracking and YOLOv2-class multi-object
//!   detection, as [`VisionTask`] implementations.
//! * [`eval`] — deterministic parallel evaluation plumbing;
//!   [`Scenario::evaluate`] parallelizes the full *(sequence × scheme)*
//!   grid over it.
//! * [`system`] — the Table 1 platform model mapping inference rates to
//!   SoC energy, FPS, and DRAM traffic.
//!
//! ## Quickstart
//!
//! Describe an experiment with the [`Scenario`] builder — *dataset ×
//! motion config × scheme registry × platform* — and evaluate it to a
//! structured report that carries accuracy, energy, FPS, and DRAM
//! traffic together:
//!
//! ```
//! use euphrates_core::prelude::*;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! // A small tracking suite at 10% scale.
//! let mut suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(2);
//! for s in &mut suite { s.frames = 40; }
//!
//! let scenario = Scenario::builder(TrackerTask::new(euphrates_nn::oracle::calib::mdnet()))
//!     .suite(suite)
//!     .network(euphrates_nn::zoo::mdnet())
//!     .scheme("MDNet", BackendConfig::baseline())
//!     .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
//!     .build()?;
//! let report = scenario.evaluate()?;
//! assert_eq!(report.len(), 2);
//! // Extrapolation quarters the inference count ...
//! let ew4 = report.get("EW-4").unwrap();
//! assert!(ew4.outcome.inference_rate() < 0.3);
//! // ... and the same report already carries the platform numbers.
//! assert!(ew4.system.as_ref().unwrap().fps > report.schemes[0].system.as_ref().unwrap().fps);
//! # Ok(())
//! # }
//! ```
//!
//! ### Streaming
//!
//! The same schedule runs incrementally: open a [`Session`] and push
//! frames as they arrive. The frames themselves stream too —
//! [`frame_source`] renders and motion-estimates lazily, so nothing
//! materializes a whole sequence, and per-frame results bit-match the
//! offline path above. Pick any search engine through
//! [`MotionConfig::strategy`].
//!
//! ```
//! use euphrates_core::prelude::*;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! let mut suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(1);
//! suite[0].frames = 12;
//! let motion = MotionConfig {
//!     strategy: SearchStrategy::Diamond, // or Hierarchical, or Custom(...)
//!     ..MotionConfig::default()
//! };
//!
//! let task = TrackerTask::new(euphrates_nn::oracle::calib::mdnet());
//! let source = frame_source(&suite[0], &motion)?;
//! let mut session = Session::new(task, BackendConfig::new(EwPolicy::Constant(4)),
//!                                source.resolution(), 0)?;
//! for frame in source {
//!     let decision: FrameDecision = session.push_frame(&frame?)?;
//!     if decision.is_inference() {
//!         // e.g. ship the fresh CNN result downstream
//!     }
//! }
//! assert_eq!(session.outcome().frames, 12);
//! assert_eq!(session.outcome().inferences, 3);
//! # Ok(())
//! # }
//! ```
//!
//! The one-call form of the same loop is
//! [`run_stream`]`(task, resolution, frames, &config, stream)`; batch
//! evaluation over many sequences and schemes belongs to
//! [`Scenario::evaluate`], which shares each sequence's prepared frames
//! across schemes through a [`PreparedCache`].
//!
//! ### Serving
//!
//! A [`Session`] is the unit of serving: it is `Send` (it moves to a
//! worker thread whole), it validates every pushed frame against the
//! resolution it was opened at, and any error *poisons* it — later
//! pushes fail fast instead of silently desynchronizing the frame
//! index and EW schedule (see the "Serving semantics" notes on
//! [`Session`]). The multi-stream layer built on those guarantees —
//! sharding ids onto workers, bounded ingress queues with
//! backpressure, per-session panic isolation, drain reports with
//! latency quantiles — is the `euphrates-serve` crate; its sessions
//! bit-match [`Scenario::evaluate`] because both are this crate's
//! per-frame scheduler.
//!
//! ## Environment
//!
//! * `EUPHRATES_THREADS` — overrides the evaluation worker-thread count
//!   (positive integer, capped at 16; see [`eval::default_threads`]).
//!   Results are thread-count independent; the knob only controls
//!   parallelism.

pub mod api;
pub mod backend;
pub mod detector;
pub mod eval;
pub mod frontend;
pub mod system;
pub mod tracker;

pub use api::{
    run_stream, run_task, EvalReport, FrameContext, FrameDecision, Scenario, ScenarioBuilder,
    SchemeId, SchemeResult, SchemeSpec, Session, SessionCheckpoint, StepStats, VisionTask,
};
pub use backend::{BackendConfig, TaskOutcome};
#[allow(deprecated)]
pub use detector::run_detection;
pub use detector::DetectorTask;
#[allow(deprecated)]
pub use eval::evaluate_suite;
pub use eval::{parallel_map, SuiteOutcome};
pub use frontend::{
    frame_source, prepare_sequence, FrameData, FrameSource, MotionConfig, PreparedCache,
    PreparedSequence,
};
pub use system::SystemModel;
#[allow(deprecated)]
pub use tracker::run_tracking;
pub use tracker::TrackerTask;

/// Convenience re-exports for pipeline users.
pub mod prelude {
    pub use crate::api::{
        run_stream, run_task, EvalReport, FrameContext, FrameDecision, Scenario, ScenarioBuilder,
        SchemeId, SchemeResult, SchemeSpec, Session, SessionCheckpoint, StepStats, VisionTask,
    };
    pub use crate::backend::{BackendConfig, TaskOutcome};
    #[allow(deprecated)]
    pub use crate::detector::run_detection;
    pub use crate::detector::DetectorTask;
    #[allow(deprecated)]
    pub use crate::eval::evaluate_suite;
    pub use crate::eval::SuiteOutcome;
    pub use crate::frontend::{
        frame_source, prepare_sequence, FrameData, FrameSource, MotionConfig, PreparedCache,
        PreparedSequence,
    };
    pub use crate::system::SystemModel;
    #[allow(deprecated)]
    pub use crate::tracker::run_tracking;
    pub use crate::tracker::TrackerTask;
    pub use euphrates_camera::noise::NoiseModelKind;
    pub use euphrates_datasets::{DatasetScale, Sequence, VisualAttribute};
    pub use euphrates_isp::motion::SearchStrategy;
    pub use euphrates_mc::policy::{AdaptiveConfig, EwPolicy, FrameKind};
    pub use euphrates_soc::energy::ExtrapolationExecutor;
}
