//! # euphrates-core
//!
//! The Euphrates continuous-vision pipeline: the paper's primary
//! contribution assembled from the workspace's substrates.
//!
//! * [`frontend`] — sequence preparation: camera/scene rendering + ISP
//!   block matching → per-frame ground truth and motion fields.
//! * [`backend`] — shared backend machinery: EW scheduling, the ROI
//!   extrapolation step (reference or fixed-point datapath), MC cycle
//!   accounting.
//! * [`tracker`] / [`detector`] — the two evaluated tasks (§5.2): MDNet-
//!   class single-object tracking and YOLOv2-class multi-object
//!   detection, with I-frame inference and E-frame extrapolation.
//! * [`eval`] — deterministic parallel suite evaluation.
//! * [`system`] — the Table 1 platform model mapping inference rates to
//!   SoC energy, FPS, and DRAM traffic.
//!
//! ## Quickstart
//!
//! ```
//! use euphrates_core::prelude::*;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! // A small tracking suite at 10% scale.
//! let mut suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! suite.truncate(2);
//! for s in &mut suite { s.frames = 40; }
//!
//! let schemes = vec![
//!     ("MDNet".to_string(), BackendConfig::baseline()),
//!     ("EW-4".to_string(), BackendConfig::new(EwPolicy::Constant(4))),
//! ];
//! let results = evaluate_suite(
//!     &suite,
//!     &MotionConfig::default(),
//!     &schemes,
//!     |prep, stream, cfg| run_tracking(prep, euphrates_nn::oracle::calib::mdnet(), cfg, stream),
//! )?;
//! assert_eq!(results.len(), 2);
//! // Extrapolation quarters the inference count.
//! assert!(results[1].outcome.inference_rate() < 0.3);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod detector;
pub mod eval;
pub mod frontend;
pub mod system;
pub mod tracker;

pub use backend::{BackendConfig, TaskOutcome};
pub use detector::run_detection;
pub use eval::{evaluate_suite, parallel_map, SuiteOutcome};
pub use frontend::{prepare_sequence, FrameData, MotionConfig, PreparedSequence};
pub use system::SystemModel;
pub use tracker::run_tracking;

/// Convenience re-exports for pipeline users.
pub mod prelude {
    pub use crate::backend::{BackendConfig, TaskOutcome};
    pub use crate::detector::run_detection;
    pub use crate::eval::{evaluate_suite, SuiteOutcome};
    pub use crate::frontend::{prepare_sequence, MotionConfig, PreparedSequence};
    pub use crate::system::SystemModel;
    pub use crate::tracker::run_tracking;
    pub use euphrates_datasets::{DatasetScale, Sequence, VisualAttribute};
    pub use euphrates_mc::policy::{AdaptiveConfig, EwPolicy};
    pub use euphrates_soc::energy::ExtrapolationExecutor;
}
