//! The visual-tracking task (§5.2): single-object ROI propagation with
//! MDNet-class inference on I-frames and motion extrapolation on E-frames,
//! expressed as a [`VisionTask`] implementation.
//!
//! Protocol (standard OTB): the tracker is initialized with the ground-
//! truth box of frame 0; every subsequent frame produces exactly one
//! predicted box, scored by IoU against ground truth. Frames whose ground
//! truth is empty (target fully out of view) are excluded from scoring
//! but still advance the pipeline.

use crate::api::{run_task, FrameContext, StepStats, VisionTask};
use crate::backend::{extrapolate_roi, BackendConfig, TaskOutcome, TrackState};
use crate::frontend::{FrameData, PreparedSequence};
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Rect;
use euphrates_common::image::Resolution;
use euphrates_nn::oracle::{OracleTarget, TrackerOracle, TrackerProfile};

/// Single-object tracking under the I/E-frame schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerTask {
    /// The oracle's accuracy calibration (e.g.
    /// [`calib::mdnet`][euphrates_nn::oracle::calib::mdnet]).
    pub profile: TrackerProfile,
}

impl TrackerTask {
    /// A tracking task with the given oracle profile.
    pub fn new(profile: TrackerProfile) -> Self {
        TrackerTask { profile }
    }
}

/// Per-sequence tracker state.
#[derive(Debug, Clone)]
pub struct TrackerState {
    oracle: TrackerOracle,
    filter: TrackState,
    prediction: Rect,
    /// Scratch clone of `filter` for the I-frame probe extrapolation,
    /// reused across frames (`clone_from` recycles its allocations).
    probe: TrackState,
}

impl TrackerState {
    /// The current predicted box (unclamped; departing ROIs park at the
    /// frame edge).
    pub fn prediction(&self) -> &Rect {
        &self.prediction
    }
}

/// The frame's first oracle-visible target (a zeroed placeholder when the
/// frame has none — inference against it simply re-detects nothing).
/// Reads the cached oracle view directly; no per-frame allocation.
fn first_target(frame: &FrameData) -> OracleTarget {
    frame.targets().first().copied().unwrap_or(OracleTarget {
        id: 0,
        label: 0,
        rect: Rect::default(),
        visibility: 0.0,
        blur: 0.0,
    })
}

impl VisionTask for TrackerTask {
    type State = TrackerState;

    fn name(&self) -> &'static str {
        "tracking"
    }

    fn init(
        &self,
        _resolution: Resolution,
        first: &FrameData,
        config: &BackendConfig,
        _stream: u64,
    ) -> Result<Self::State> {
        let first_truth = first
            .truth
            .first()
            .ok_or_else(|| Error::config("sequence has no target in frame 0"))?;
        if first_truth.rect.is_empty() {
            return Err(Error::config("target starts out of view"));
        }
        Ok(TrackerState {
            oracle: TrackerOracle::new(self.profile, config.seed),
            filter: TrackState::new(&config.extrapolation),
            prediction: first_truth.rect,
            probe: TrackState::new(&config.extrapolation),
        })
    }

    fn infer(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        _outcome: &mut TaskOutcome,
    ) -> StepStats {
        // The adaptive controller needs the extrapolated prediction this
        // inference replaces (§3.3); compute it in the reusable probe
        // scratch so the filter state is undisturbed and no per-frame
        // allocation happens.
        state.probe.clone_from(&state.filter);
        let (extrapolated, datapath_cycles, _) = extrapolate_roi(
            &state.prediction,
            &ctx.frame.motion,
            &mut state.probe,
            &ctx.config.extrapolation,
            ctx.config.fixed_datapath,
        );
        let target = first_target(ctx.frame);
        let inferred = state
            .oracle
            .track(&state.prediction, &target, ctx.stream, ctx.index);
        let policy_feedback = Some(inferred.iou(&extrapolated));
        state.prediction = inferred;
        StepStats {
            datapath_cycles,
            rois: 1,
            policy_feedback,
        }
    }

    fn extrapolate(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        outcome: &mut TaskOutcome,
    ) -> StepStats {
        let (roi, datapath_cycles, ops) = extrapolate_roi(
            &state.prediction,
            &ctx.frame.motion,
            &mut state.filter,
            &ctx.config.extrapolation,
            ctx.config.fixed_datapath,
        );
        outcome.extrapolation_ops += ops;
        // Departing ROIs park at the frame edge (the MC's register file
        // holds frame-relative coordinates; see `retain_at_edge`), keeping
        // at least a quarter of the box in view so a returning target can
        // be reacquired.
        state.prediction = crate::backend::retain_at_edge(&roi, &ctx.bounds, 0.25);
        StepStats {
            datapath_cycles,
            rois: 1,
            policy_feedback: None,
        }
    }

    fn score(&self, ctx: &FrameContext, state: &Self::State, outcome: &mut TaskOutcome) {
        // Skip the given frame 0 and out-of-view frames. The emitted
        // result is the frame-clamped box.
        if ctx.index == 0 {
            return;
        }
        if let Some(gt) = ctx.frame.truth.first() {
            if !gt.rect.is_empty() {
                outcome
                    .ious
                    .push(state.prediction.clamped_to(&ctx.bounds).iou(&gt.rect));
            }
        }
    }
}

/// Runs the tracking task over a prepared sequence.
///
/// `stream` disambiguates oracle noise across sequences (pass a stable
/// per-sequence index).
///
/// # Errors
///
/// Returns an error for an empty sequence, a sequence without a target in
/// frame 0, or an invalid policy.
#[deprecated(
    since = "0.2.0",
    note = "use `run_task(TrackerTask::new(profile), ...)`, or the `Scenario`/`Session` API"
)]
pub fn run_tracking(
    prep: &PreparedSequence,
    profile: TrackerProfile,
    config: &BackendConfig,
    stream: u64,
) -> Result<TaskOutcome> {
    if prep.is_empty() {
        return Err(Error::config("cannot track an empty sequence"));
    }
    run_task(TrackerTask::new(profile), prep, config, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{prepare_sequence, MotionConfig};
    use euphrates_common::metrics::IouAccumulator;
    use euphrates_datasets::{otb100_like, DatasetScale, VisualAttribute};
    use euphrates_mc::policy::{AdaptiveConfig, EwPolicy};
    use euphrates_nn::oracle::calib;

    fn prepared(attr: VisualAttribute, frames: u32) -> PreparedSequence {
        let suite = otb100_like(17, DatasetScale::fraction(0.1));
        let mut seq = suite
            .into_iter()
            .find(|s| s.has_attribute(attr))
            .expect("attribute present");
        seq.frames = frames;
        prepare_sequence(&seq, &MotionConfig::default()).unwrap()
    }

    fn track(prep: &PreparedSequence, config: &BackendConfig, stream: u64) -> Result<TaskOutcome> {
        run_task(TrackerTask::new(calib::mdnet()), prep, config, stream)
    }

    fn success_at_05(outcome: &TaskOutcome) -> f64 {
        let acc: IouAccumulator = outcome.ious.iter().copied().collect();
        acc.rate_at(0.5)
    }

    #[test]
    fn baseline_tracking_succeeds_on_easy_content() {
        let prep = prepared(VisualAttribute::IlluminationVariation, 60);
        let out = track(&prep, &BackendConfig::baseline(), 0).unwrap();
        assert_eq!(out.frames, 60);
        assert_eq!(out.inferences, 60);
        assert!(
            success_at_05(&out) > 0.85,
            "baseline success {}",
            success_at_05(&out)
        );
    }

    #[test]
    fn ew2_tracks_nearly_as_well_as_baseline() {
        let prep = prepared(VisualAttribute::ScaleVariation, 80);
        let base = track(&prep, &BackendConfig::baseline(), 0).unwrap();
        let ew2 = track(&prep, &BackendConfig::new(EwPolicy::Constant(2)), 0).unwrap();
        assert!((ew2.inference_rate() - 0.5).abs() < 0.05);
        assert!(
            success_at_05(&ew2) + 0.15 > success_at_05(&base),
            "EW-2 {} vs baseline {}",
            success_at_05(&ew2),
            success_at_05(&base)
        );
    }

    #[test]
    fn accuracy_degrades_with_window_on_hard_content() {
        let prep = prepared(VisualAttribute::FastMotion, 80);
        let s2 =
            success_at_05(&track(&prep, &BackendConfig::new(EwPolicy::Constant(2)), 0).unwrap());
        let s16 =
            success_at_05(&track(&prep, &BackendConfig::new(EwPolicy::Constant(16)), 0).unwrap());
        assert!(
            s2 >= s16,
            "EW-2 ({s2}) should be at least as accurate as EW-16 ({s16}) on fast motion"
        );
    }

    #[test]
    fn adaptive_mode_modulates_inference_rate() {
        let easy = prepared(VisualAttribute::IlluminationVariation, 100);
        let hard = prepared(VisualAttribute::FastMotion, 100);
        let cfg = BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default()));
        let easy_out = track(&easy, &cfg, 0).unwrap();
        let hard_out = track(&hard, &cfg, 0).unwrap();
        assert!(
            easy_out.inference_rate() < hard_out.inference_rate() + 0.35,
            "easy content should not need many more inferences: easy {} hard {}",
            easy_out.inference_rate(),
            hard_out.inference_rate()
        );
        // Adaptive must actually extrapolate sometimes.
        assert!(easy_out.inference_rate() < 0.9);
    }

    #[test]
    fn tracking_is_deterministic() {
        let prep = prepared(VisualAttribute::Deformation, 40);
        let cfg = BackendConfig::new(EwPolicy::Constant(4));
        let a = track(&prep, &cfg, 3).unwrap();
        let b = track(&prep, &cfg, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mc_cycles_accumulate() {
        let prep = prepared(VisualAttribute::ScaleVariation, 40);
        let out = track(&prep, &BackendConfig::new(EwPolicy::Constant(4)), 0).unwrap();
        assert!(out.mc_cycles.0 > 0);
        assert!(out.extrapolation_ops > 0);
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let prep = PreparedSequence {
            name: "empty".into(),
            resolution: euphrates_common::image::Resolution::VGA,
            frames: vec![],
        };
        assert!(track(&prep, &BackendConfig::baseline(), 0).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn run_tracking_shim_matches_task_path() {
        let prep = prepared(VisualAttribute::ScaleVariation, 40);
        let cfg = BackendConfig::new(EwPolicy::Constant(4));
        let via_shim = run_tracking(&prep, calib::mdnet(), &cfg, 2).unwrap();
        let via_task = track(&prep, &cfg, 2).unwrap();
        assert_eq!(via_shim, via_task);
    }
}
