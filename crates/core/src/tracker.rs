//! The visual-tracking task (§5.2): single-object ROI propagation with
//! MDNet-class inference on I-frames and motion extrapolation on E-frames.
//!
//! Protocol (standard OTB): the tracker is initialized with the ground-
//! truth box of frame 0; every subsequent frame produces exactly one
//! predicted box, scored by IoU against ground truth. Frames whose ground
//! truth is empty (target fully out of view) are excluded from scoring
//! but still advance the pipeline.

use crate::backend::{
    charge_sequencer, controller, extrapolate_roi, oracle_targets, BackendConfig, TaskOutcome,
    TrackState,
};
use crate::frontend::PreparedSequence;
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Rect;
use euphrates_mc::policy::FrameKind;
use euphrates_nn::oracle::{TrackerOracle, TrackerProfile};

/// Runs the tracking task over a prepared sequence.
///
/// `stream` disambiguates oracle noise across sequences (pass a stable
/// per-sequence index).
///
/// # Errors
///
/// Returns an error for an empty sequence, a sequence without a target in
/// frame 0, or an invalid policy.
pub fn run_tracking(
    prep: &PreparedSequence,
    profile: TrackerProfile,
    config: &BackendConfig,
    stream: u64,
) -> Result<TaskOutcome> {
    if prep.is_empty() {
        return Err(Error::config("cannot track an empty sequence"));
    }
    let first_truth = prep.frames[0]
        .truth
        .first()
        .ok_or_else(|| Error::config("sequence has no target in frame 0"))?;
    if first_truth.rect.is_empty() {
        return Err(Error::config("target starts out of view"));
    }

    let oracle = TrackerOracle::new(profile, config.seed);
    let mut ctrl = controller(config)?;
    let mut outcome = TaskOutcome::default();
    let mut state = TrackState::new(&config.extrapolation);
    let mut prediction = first_truth.rect;

    let frame_bounds = Rect::new(
        0.0,
        0.0,
        f64::from(prep.resolution.width),
        f64::from(prep.resolution.height),
    );

    for (f, frame) in prep.frames.iter().enumerate() {
        let kind = ctrl.next_frame();
        outcome.frames += 1;

        let target = oracle_targets(frame)
            .into_iter()
            .next()
            .unwrap_or(euphrates_nn::oracle::OracleTarget {
                id: 0,
                label: 0,
                rect: Rect::default(),
                visibility: 0.0,
                blur: 0.0,
            });

        let datapath_cycles;
        let new_prediction = match kind {
            FrameKind::Extrapolation => {
                let (roi, cycles, ops) = extrapolate_roi(
                    &prediction,
                    &frame.motion,
                    &mut state,
                    &config.extrapolation,
                    config.fixed_datapath,
                );
                datapath_cycles = cycles;
                outcome.extrapolation_ops += ops;
                // Departing ROIs park at the frame edge (the MC's register
                // file holds frame-relative coordinates; see
                // `retain_at_edge`), keeping at least a quarter of the box
                // in view so a returning target can be reacquired.
                crate::backend::retain_at_edge(&roi, &frame_bounds, 0.25)
            }
            FrameKind::Inference => {
                outcome.inferences += 1;
                // The adaptive controller needs the extrapolated prediction
                // this inference replaces (§3.3); compute it without
                // disturbing the filter state.
                let extrapolated = {
                    let mut probe = state.clone();
                    let (roi, cycles, _) = extrapolate_roi(
                        &prediction,
                        &frame.motion,
                        &mut probe,
                        &config.extrapolation,
                        config.fixed_datapath,
                    );
                    datapath_cycles = cycles;
                    roi
                };
                let inferred = oracle.track(&prediction, &target, stream, f as u64);
                ctrl.record_comparison(inferred.iou(&extrapolated));
                inferred
            }
        };
        charge_sequencer(&mut outcome, kind, &frame.motion, 1, datapath_cycles);
        prediction = new_prediction;

        // Score (skip the given frame 0 and out-of-view frames). The
        // emitted result is the frame-clamped box.
        if f > 0 {
            if let Some(gt) = frame.truth.first() {
                if !gt.rect.is_empty() {
                    outcome
                        .ious
                        .push(prediction.clamped_to(&frame_bounds).iou(&gt.rect));
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{prepare_sequence, MotionConfig};
    use euphrates_common::metrics::IouAccumulator;
    use euphrates_datasets::{otb100_like, DatasetScale, VisualAttribute};
    use euphrates_mc::policy::{AdaptiveConfig, EwPolicy};
    use euphrates_nn::oracle::calib;

    fn prepared(attr: VisualAttribute, frames: u32) -> PreparedSequence {
        let suite = otb100_like(17, DatasetScale::fraction(0.1));
        let mut seq = suite
            .into_iter()
            .find(|s| s.has_attribute(attr))
            .expect("attribute present");
        seq.frames = frames;
        prepare_sequence(&seq, &MotionConfig::default()).unwrap()
    }

    fn success_at_05(outcome: &TaskOutcome) -> f64 {
        let acc: IouAccumulator = outcome.ious.iter().copied().collect();
        acc.rate_at(0.5)
    }

    #[test]
    fn baseline_tracking_succeeds_on_easy_content() {
        let prep = prepared(VisualAttribute::IlluminationVariation, 60);
        let out = run_tracking(&prep, calib::mdnet(), &BackendConfig::baseline(), 0).unwrap();
        assert_eq!(out.frames, 60);
        assert_eq!(out.inferences, 60);
        assert!(
            success_at_05(&out) > 0.85,
            "baseline success {}",
            success_at_05(&out)
        );
    }

    #[test]
    fn ew2_tracks_nearly_as_well_as_baseline() {
        let prep = prepared(VisualAttribute::ScaleVariation, 80);
        let base = run_tracking(&prep, calib::mdnet(), &BackendConfig::baseline(), 0).unwrap();
        let ew2 = run_tracking(
            &prep,
            calib::mdnet(),
            &BackendConfig::new(EwPolicy::Constant(2)),
            0,
        )
        .unwrap();
        assert!((ew2.inference_rate() - 0.5).abs() < 0.05);
        assert!(
            success_at_05(&ew2) + 0.15 > success_at_05(&base),
            "EW-2 {} vs baseline {}",
            success_at_05(&ew2),
            success_at_05(&base)
        );
    }

    #[test]
    fn accuracy_degrades_with_window_on_hard_content() {
        let prep = prepared(VisualAttribute::FastMotion, 80);
        let s2 = success_at_05(
            &run_tracking(
                &prep,
                calib::mdnet(),
                &BackendConfig::new(EwPolicy::Constant(2)),
                0,
            )
            .unwrap(),
        );
        let s16 = success_at_05(
            &run_tracking(
                &prep,
                calib::mdnet(),
                &BackendConfig::new(EwPolicy::Constant(16)),
                0,
            )
            .unwrap(),
        );
        assert!(
            s2 >= s16,
            "EW-2 ({s2}) should be at least as accurate as EW-16 ({s16}) on fast motion"
        );
    }

    #[test]
    fn adaptive_mode_modulates_inference_rate() {
        let easy = prepared(VisualAttribute::IlluminationVariation, 100);
        let hard = prepared(VisualAttribute::FastMotion, 100);
        let cfg = BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default()));
        let easy_out = run_tracking(&easy, calib::mdnet(), &cfg, 0).unwrap();
        let hard_out = run_tracking(&hard, calib::mdnet(), &cfg, 0).unwrap();
        assert!(
            easy_out.inference_rate() < hard_out.inference_rate() + 0.35,
            "easy content should not need many more inferences: easy {} hard {}",
            easy_out.inference_rate(),
            hard_out.inference_rate()
        );
        // Adaptive must actually extrapolate sometimes.
        assert!(easy_out.inference_rate() < 0.9);
    }

    #[test]
    fn tracking_is_deterministic() {
        let prep = prepared(VisualAttribute::Deformation, 40);
        let cfg = BackendConfig::new(EwPolicy::Constant(4));
        let a = run_tracking(&prep, calib::mdnet(), &cfg, 3).unwrap();
        let b = run_tracking(&prep, calib::mdnet(), &cfg, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mc_cycles_accumulate() {
        let prep = prepared(VisualAttribute::ScaleVariation, 40);
        let out = run_tracking(
            &prep,
            calib::mdnet(),
            &BackendConfig::new(EwPolicy::Constant(4)),
            0,
        )
        .unwrap();
        assert!(out.mc_cycles.0 > 0);
        assert!(out.extrapolation_ops > 0);
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let prep = PreparedSequence {
            name: "empty".into(),
            resolution: euphrates_common::image::Resolution::VGA,
            frames: vec![],
        };
        assert!(run_tracking(&prep, calib::mdnet(), &BackendConfig::baseline(), 0).is_err());
    }
}
