//! Backend-shared machinery: configuration, per-run statistics, and the
//! ROI extrapolation step in both its reference (f64) and hardware
//! (fixed-point SIMD) forms.

use crate::frontend::FrameData;
use euphrates_common::error::Result;
use euphrates_common::fixed::Q16;
use euphrates_common::geom::Rect;
use euphrates_common::units::Cycles;
use euphrates_isp::motion::MotionField;
use euphrates_mc::algorithm::{ExtrapolationConfig, Extrapolator, RoiState};
use euphrates_mc::datapath::SimdDatapath;
use euphrates_mc::policy::{EwController, EwPolicy, FrameKind};
use euphrates_mc::sequencer::McSequencer;
use euphrates_nn::oracle::OracleTarget;

/// Backend configuration shared by the tracking and detection tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendConfig {
    /// When to extrapolate (EW policy, §3.3).
    pub policy: EwPolicy,
    /// How to extrapolate (§3.2).
    pub extrapolation: ExtrapolationConfig,
    /// Use the Motion Controller's fixed-point SIMD datapath instead of
    /// the f64 reference (bit-level hardware fidelity at ~0.2 px cost).
    pub fixed_datapath: bool,
    /// Oracle noise seed.
    pub seed: u64,
}

impl BackendConfig {
    /// The paper's default Euphrates backend with the given policy.
    pub fn new(policy: EwPolicy) -> Self {
        BackendConfig {
            policy,
            extrapolation: ExtrapolationConfig::default(),
            fixed_datapath: true,
            seed: 0xE0_F7A7E5,
        }
    }

    /// Baseline: inference on every frame.
    pub fn baseline() -> Self {
        BackendConfig::new(EwPolicy::baseline())
    }
}

/// Aggregate statistics of one task run over one sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskOutcome {
    /// IoU of every scored prediction (one per frame for tracking, one
    /// per detection for detection).
    pub ious: Vec<f64>,
    /// Frames processed.
    pub frames: u64,
    /// CNN inferences executed.
    pub inferences: u64,
    /// Total Motion-Controller cycles (datapath + sequencer).
    pub mc_cycles: Cycles,
    /// Total extrapolation arithmetic (for the CPU-executor energy model).
    pub extrapolation_ops: u64,
}

impl TaskOutcome {
    /// Fraction of frames that ran inference.
    pub fn inference_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.inferences as f64 / self.frames as f64
        }
    }

    /// Mean extrapolation window (`1 / inference_rate`).
    pub fn mean_window(&self) -> f64 {
        let r = self.inference_rate();
        if r <= 0.0 {
            1.0
        } else {
            1.0 / r
        }
    }

    /// Merges another outcome (different sequence, same scheme).
    pub fn merge(&mut self, other: &TaskOutcome) {
        self.ious.extend_from_slice(&other.ious);
        self.frames += other.frames;
        self.inferences += other.inferences;
        self.mc_cycles += other.mc_cycles;
        self.extrapolation_ops += other.extrapolation_ops;
    }
}

/// Per-tracked-object extrapolation state covering both datapath flavors.
///
/// Carries a reusable sub-ROI scratch buffer so the per-frame
/// [`extrapolate_roi`] step performs no allocations in steady state;
/// the scratch is excluded from equality (two states with the same
/// filter history are equal regardless of what their scratch last
/// held).
#[derive(Debug, Default)]
pub struct TrackState {
    /// Reference-path filter state.
    pub reference: RoiState,
    /// Fixed-point filter state (one `(Q16, Q16)` per sub-ROI).
    pub fixed: Vec<(Q16, Q16)>,
    /// Sub-ROI scratch reused across frames (not part of the state's
    /// identity).
    subs: Vec<Rect>,
}

impl Clone for TrackState {
    fn clone(&self) -> Self {
        TrackState {
            reference: self.reference.clone(),
            fixed: self.fixed.clone(),
            subs: Vec::new(),
        }
    }

    /// Field-wise `clone_from`, reusing every destination allocation
    /// (a derived `Clone` would fall back to `*self = source.clone()`
    /// and re-allocate) — this is what makes the tracker's per-I-frame
    /// probe clone allocation-free in steady state. The scratch buffer
    /// is left as-is: it carries no state.
    fn clone_from(&mut self, source: &Self) {
        self.reference.clone_from(&source.reference);
        self.fixed.clone_from(&source.fixed);
    }
}

impl PartialEq for TrackState {
    fn eq(&self, other: &Self) -> bool {
        self.reference == other.reference && self.fixed == other.fixed
    }
}

impl TrackState {
    /// Fresh state for the given extrapolation configuration.
    pub fn new(config: &ExtrapolationConfig) -> Self {
        TrackState {
            reference: RoiState::new(config),
            fixed: vec![(Q16::ZERO, Q16::ZERO); config.sub_roi_count()],
            subs: Vec::with_capacity(config.sub_roi_count()),
        }
    }
}

/// One extrapolation step: moves `roi` forward by the motion field,
/// returning the new ROI, datapath cycles, and arithmetic-op count.
///
/// The hardware (fixed-datapath) path runs allocation-free: the sub-ROI
/// grid goes into the state's scratch buffer and the op count is summed
/// in the same pass (the identical per-sub-ROI arithmetic
/// [`Extrapolator::ops_estimate`] performs).
pub fn extrapolate_roi(
    roi: &Rect,
    field: &MotionField,
    state: &mut TrackState,
    config: &ExtrapolationConfig,
    fixed_datapath: bool,
) -> (Rect, Cycles, u64) {
    let extrapolator = Extrapolator::new(*config);
    if !fixed_datapath {
        let ops = extrapolator.ops_estimate(roi, field);
        let out = extrapolator.extrapolate(roi, field, &mut state.reference);
        // Reference path still charges datapath-equivalent cycles so the
        // energy model is datapath-choice-independent.
        let cycles = Cycles(ops / 2);
        return (out, cycles, ops);
    }
    let dp = SimdDatapath::default();
    let (gx, gy) = config.effective_grid();
    let TrackState { fixed, subs, .. } = state;
    roi.grid_into(gx, gy, subs);
    if fixed.len() != subs.len() {
        *fixed = vec![(Q16::ZERO, Q16::ZERO); subs.len()];
    }
    let mut ops = 0u64;
    let mut merged = Rect::default();
    let mut cycles = Cycles::ZERO;
    for (i, sub) in subs.iter().enumerate() {
        ops += field.blocks_in_roi(sub).count() as u64 * 6 + 32;
        let result = dp.evaluate(field, sub, fixed[i], config);
        fixed[i] = (result.mv_x, result.mv_y);
        cycles += result.cycles;
        let mv = SimdDatapath::to_vec2f(&result);
        merged = merged.union_bbox(&sub.translated(mv));
    }
    (merged, cycles, ops)
}

/// Slides `roi` back toward the frame so that at least `frac` of its
/// width and height remain inside `bounds`.
///
/// The Motion Controller's register file holds frame-relative ROI
/// coordinates (Fig. 8): a box that has drifted entirely outside the
/// image is not representable, so the sequencer parks departing ROIs at
/// the frame edge — which is also what lets a tracker reacquire a target
/// that re-enters the view.
pub fn retain_at_edge(roi: &Rect, bounds: &Rect, frac: f64) -> Rect {
    if roi.is_empty() {
        return *roi;
    }
    let frac = frac.clamp(0.0, 1.0);
    let min_x = bounds.x - roi.w * (1.0 - frac);
    let max_x = bounds.right() - roi.w * frac;
    let min_y = bounds.y - roi.h * (1.0 - frac);
    let max_y = bounds.bottom() - roi.h * frac;
    Rect::new(
        roi.x.clamp(min_x, max_x.max(min_x)),
        roi.y.clamp(min_y, max_y.max(min_y)),
        roi.w,
        roi.h,
    )
}

/// Converts scene ground truth to the oracle's view. The conversion is
/// cached on the frame ([`FrameData::targets`]); prefer borrowing that
/// directly — this shim clones it for callers that need ownership.
pub fn oracle_targets(frame: &FrameData) -> Vec<OracleTarget> {
    frame.targets().to_vec()
}

/// Creates the EW controller for a backend config.
///
/// # Errors
///
/// Propagates invalid policy parameters.
pub fn controller(config: &BackendConfig) -> Result<EwController> {
    EwController::new(config.policy)
}

/// Charges the per-frame sequencer program to the outcome (total
/// cycles computed directly — the step list is never materialized).
pub fn charge_sequencer(
    outcome: &mut TaskOutcome,
    kind: FrameKind,
    field: &MotionField,
    rois: u32,
    datapath_cycles: Cycles,
) {
    let seq = McSequencer::default();
    outcome.mc_cycles += seq.frame_cycles(kind, field.metadata_bytes().0, rois, datapath_cycles);
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::image::Resolution;

    #[test]
    fn outcome_rates_and_merge() {
        let mut a = TaskOutcome {
            ious: vec![1.0, 0.5],
            frames: 4,
            inferences: 1,
            mc_cycles: Cycles(100),
            extrapolation_ops: 50,
        };
        assert!((a.inference_rate() - 0.25).abs() < 1e-12);
        assert!((a.mean_window() - 4.0).abs() < 1e-12);
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.frames, 8);
        assert_eq!(a.ious.len(), 4);
        assert_eq!(a.mc_cycles, Cycles(200));
    }

    #[test]
    fn empty_outcome_defaults() {
        let o = TaskOutcome::default();
        assert_eq!(o.inference_rate(), 0.0);
        assert_eq!(o.mean_window(), 1.0);
    }

    #[test]
    fn extrapolation_paths_agree_on_zero_motion() {
        let field = MotionField::zeroed(Resolution::VGA, 16, 7).unwrap();
        let cfg = ExtrapolationConfig::default();
        let roi = Rect::new(100.0, 100.0, 80.0, 60.0);
        let mut s1 = TrackState::new(&cfg);
        let mut s2 = TrackState::new(&cfg);
        let (r_ref, _, ops1) = extrapolate_roi(&roi, &field, &mut s1, &cfg, false);
        let (r_fix, cycles, ops2) = extrapolate_roi(&roi, &field, &mut s2, &cfg, true);
        assert!((r_ref.x - r_fix.x).abs() < 0.01);
        assert!((r_ref.center().y - r_fix.center().y).abs() < 0.01);
        assert_eq!(ops1, ops2);
        assert!(cycles.0 > 0);
    }
}
