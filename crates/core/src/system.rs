//! System-level composition: maps a (network, extrapolation-window,
//! executor) triple onto the SoC energy/throughput model — the glue
//! behind Fig. 9b/9c and Fig. 10b.
//!
//! Per the paper's convention (§5/§6), the performance/power models are
//! evaluated at the Table 1 operating point (1080p60 capture) even though
//! functional accuracy runs at the Fig. 1 VGA resolution: Euphrates
//! changes *how often* the backend works, and that schedule — measured as
//! an inference rate by the functional runs — transfers directly.

use euphrates_common::error::Result;
use euphrates_common::image::Resolution;
use euphrates_common::units::{Bytes, Picos};
use euphrates_mc::ip::McConfig;
use euphrates_mc::policy::FrameKind;
use euphrates_mc::sequencer::McSequencer;
use euphrates_nn::engine::{BatchPlan, InferencePlan, NnxEngine};
use euphrates_nn::layer::NetworkDescriptor;
use euphrates_soc::energy::{EnergyModel, ExtrapolationExecutor, SchemeParams, SchemeReport};

/// The assembled Table 1 platform.
#[derive(Debug, Clone)]
pub struct SystemModel {
    nnx: NnxEngine,
    energy: EnergyModel,
    mc: McConfig,
    capture: Resolution,
    mb_size: u32,
}

impl SystemModel {
    /// The paper's platform: Table 1 NNX + MC, 1080p60 capture, 16-px
    /// macroblocks.
    pub fn table1() -> Self {
        SystemModel {
            nnx: NnxEngine::default(),
            energy: EnergyModel::default(),
            mc: McConfig::default(),
            capture: Resolution::FULL_HD,
            mb_size: 16,
        }
    }

    /// The NNX engine.
    pub fn nnx(&self) -> &NnxEngine {
        &self.nnx
    }

    /// The energy model.
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Plans inference for a network on this platform.
    pub fn plan(&self, net: &NetworkDescriptor) -> InferencePlan {
        self.nnx.plan(net)
    }

    /// Plans a fused batch of `requests` same-network inferences (the
    /// cross-session batching path of the serving layer).
    pub fn plan_batch(&self, net: &NetworkDescriptor, requests: u32) -> BatchPlan {
        self.nnx.plan_batch(net, requests)
    }

    /// Always-on frame streaming traffic at the capture resolution: the
    /// RAW frame written by the CSI DMA and read back by the ISP, plus
    /// the processed RGB frame written to the frame buffer.
    pub fn streaming_traffic(&self) -> Bytes {
        let raw = Bytes(self.capture.pixels() * 10 / 8); // 10-bit RAW
        let rgb = Bytes(self.capture.pixels() * 3);
        Bytes(2 * raw.0 + rgb.0)
    }

    /// Motion-vector metadata + MC result traffic per frame.
    pub fn metadata_traffic(&self) -> Bytes {
        let (bx, by) = self.capture.macroblocks(self.mb_size);
        // 4 B/block of MV+confidence metadata plus ~1 KiB of results.
        Bytes(u64::from(bx) * u64::from(by) * 4 + 1024)
    }

    /// Per-frame MC busy time at the capture operating point (fetch,
    /// extrapolate ~10 ROIs, write back — Table 1's sizing workload).
    pub fn mc_time_per_frame(&self) -> Picos {
        let seq = McSequencer::default();
        // 10 ROIs × 4 sub-ROIs × (~24 blocks / 4 lanes × 3 passes + 24).
        let datapath = euphrates_common::units::Cycles(10 * 4 * (18 * 3 + 24));
        let program = seq.frame_program(
            FrameKind::Extrapolation,
            self.metadata_traffic().0,
            10,
            datapath,
        );
        self.mc.duration(program.total_cycles())
    }

    /// Builds the scheme parameters for a network at mean window `window`.
    pub fn scheme(
        &self,
        plan: &InferencePlan,
        window: f64,
        executor: ExtrapolationExecutor,
    ) -> SchemeParams {
        SchemeParams {
            window,
            inference_latency: plan.latency(),
            inference_traffic: plan.dram_read() + plan.dram_write(),
            streaming_traffic: self.streaming_traffic(),
            metadata_traffic: if window > 1.0 {
                self.metadata_traffic()
            } else {
                Bytes::ZERO
            },
            mc_time_per_frame: if window > 1.0 {
                self.mc_time_per_frame()
            } else {
                Picos::ZERO
            },
            extrapolation_ops: 10_000, // §3.2's per-frame estimate
            executor,
        }
    }

    /// Evaluates a network at a window on this platform.
    ///
    /// # Errors
    ///
    /// Propagates energy-model configuration errors.
    pub fn evaluate(
        &self,
        net: &NetworkDescriptor,
        window: f64,
        executor: ExtrapolationExecutor,
    ) -> Result<SchemeReport> {
        let plan = self.plan(net);
        let params = self.scheme(&plan, window, executor);
        self.energy.evaluate(&params, net.total_ops())
    }

    /// Evaluates a network at a window with I-frame inferences fused
    /// into `batch`-request batches across concurrent sessions.
    ///
    /// Each session is charged its *amortized share* of the batched
    /// job: per-request latency and DRAM traffic from the
    /// [`BatchPlan`], everything else (streaming, metadata, MC time)
    /// identical to the solo path. `batch ≤ 1` delegates to
    /// [`evaluate`][Self::evaluate] so un-batched reports stay
    /// bit-stable.
    ///
    /// # Errors
    ///
    /// Propagates energy-model configuration errors.
    pub fn evaluate_batched(
        &self,
        net: &NetworkDescriptor,
        window: f64,
        executor: ExtrapolationExecutor,
        batch: u32,
    ) -> Result<SchemeReport> {
        if batch <= 1 {
            return self.evaluate(net, window, executor);
        }
        let plan = self.plan_batch(net, batch);
        let requests = u64::from(plan.requests());
        let solo = self.plan(net);
        let mut params = self.scheme(&solo, window, executor);
        params.inference_latency = plan.per_request_latency();
        params.inference_traffic = Bytes((plan.dram_read().0 + plan.dram_write().0) / requests);
        self.energy.evaluate(&params, net.total_ops())
    }
}

impl Default for SystemModel {
    fn default() -> Self {
        SystemModel::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_nn::zoo;

    #[test]
    fn streaming_traffic_matches_hand_math() {
        let sys = SystemModel::table1();
        // 2 x 2.59 MB RAW + 6.22 MB RGB ≈ 11.4 MB.
        let mb = sys.streaming_traffic().0 as f64 / 1e6;
        assert!((11.0..12.0).contains(&mb), "streaming {mb} MB");
    }

    #[test]
    fn metadata_is_tens_of_kb() {
        let sys = SystemModel::table1();
        let kb = sys.metadata_traffic().0 as f64 / 1024.0;
        assert!((8.0..64.0).contains(&kb), "metadata {kb} KiB");
    }

    #[test]
    fn mc_frame_time_fits_the_frame_budget() {
        let sys = SystemModel::table1();
        let t = sys.mc_time_per_frame().as_secs_f64();
        assert!(t < 1.0 / 60.0 / 10.0, "MC time {t} s");
    }

    #[test]
    fn yolov2_scheme_sweep_reproduces_headline_numbers() {
        let sys = SystemModel::table1();
        let net = zoo::yolov2();
        let base = sys
            .evaluate(&net, 1.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        let ew2 = sys
            .evaluate(&net, 2.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        let ew4 = sys
            .evaluate(&net, 4.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        // §6.1 headlines: ~17 -> ~35 -> 60 FPS; −45% / −66% energy.
        assert!((13.0..19.0).contains(&base.fps), "base {}", base.fps);
        assert!((27.0..38.0).contains(&ew2.fps), "ew2 {}", ew2.fps);
        assert!(ew4.fps > 58.0, "ew4 {}", ew4.fps);
        let s2 = 1.0 - ew2.energy_per_frame().0 / base.energy_per_frame().0;
        let s4 = 1.0 - ew4.energy_per_frame().0 / base.energy_per_frame().0;
        assert!((0.38..0.52).contains(&s2), "EW-2 saving {s2}");
        assert!((0.58..0.72).contains(&s4), "EW-4 saving {s4}");
    }

    #[test]
    fn mdnet_tracking_savings_match_fig10b_shape() {
        let sys = SystemModel::table1();
        let net = zoo::mdnet();
        let base = sys
            .evaluate(&net, 1.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        assert!(base.fps > 55.0, "MDNet baseline must be real-time");
        let ew2 = sys
            .evaluate(&net, 2.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        let s2 = 1.0 - ew2.energy_per_frame().0 / base.energy_per_frame().0;
        // §6.2: ~21% (we land within a few points).
        assert!((0.13..0.30).contains(&s2), "tracking EW-2 saving {s2}");
        assert!(ew2.fps > 58.0, "tracking never drops below 60 FPS");
    }

    #[test]
    fn batched_evaluation_beats_solo_and_batch_one_is_identical() {
        let sys = SystemModel::table1();
        let net = zoo::mdnet();
        let solo = sys
            .evaluate(&net, 2.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        // batch ≤ 1 must take the exact un-batched path.
        let b1 = sys
            .evaluate_batched(&net, 2.0, ExtrapolationExecutor::MotionController, 1)
            .unwrap();
        assert_eq!(solo, b1);
        for b in [4u32, 16] {
            let batched = sys
                .evaluate_batched(&net, 2.0, ExtrapolationExecutor::MotionController, b)
                .unwrap();
            assert!(
                batched.energy_per_frame().0 < solo.energy_per_frame().0,
                "B={b}: batched energy {} !< solo {}",
                batched.energy_per_frame().0,
                solo.energy_per_frame().0
            );
            assert!(batched.fps >= solo.fps, "B={b}: batched fps regressed");
        }
    }

    #[test]
    fn cpu_executor_is_charged_for_wakeups() {
        let sys = SystemModel::table1();
        let net = zoo::yolov2();
        let mc8 = sys
            .evaluate(&net, 8.0, ExtrapolationExecutor::MotionController)
            .unwrap();
        let cpu8 = sys.evaluate(&net, 8.0, ExtrapolationExecutor::Cpu).unwrap();
        assert!(
            cpu8.energy_per_frame().0 > mc8.energy_per_frame().0 * 1.3,
            "cpu {} vs mc {}",
            cpu8.energy_per_frame().0,
            mc8.energy_per_frame().0
        );
    }
}
