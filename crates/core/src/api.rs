//! The unified public API of the Euphrates pipeline: the [`VisionTask`]
//! trait, the [`Scenario`] builder, and the streaming [`Session`].
//!
//! The paper's contribution is a *schedule* — CNN inference on I-frames,
//! Motion-Controller extrapolation on E-frames (§3.3) — that is
//! independent of the task running on top of it. This module encodes
//! that separation:
//!
//! * [`VisionTask`] captures what is task-specific: how to initialize
//!   per-sequence state, what an inference does, what an extrapolation
//!   does, and how predictions are scored. The tracking and detection
//!   tasks ([`crate::tracker::TrackerTask`],
//!   [`crate::detector::DetectorTask`]) are two implementations of it;
//!   the I/E-frame scheduling, EW-policy feedback, and Motion-Controller
//!   cycle accounting live here, written once.
//! * [`Scenario`] is the typed, fluent description of one experiment:
//!   *dataset × motion config × scheme set × platform*. Building it
//!   validates the scheme registry ([`SchemeId`] uniqueness); evaluating
//!   it returns an [`EvalReport`] that carries accuracy, energy, FPS,
//!   and DRAM traffic together.
//! * [`Session`] runs the same per-frame policy *incrementally*:
//!   `push_frame` consumes one frame and returns the [`FrameDecision`]
//!   the scheduler took, which is the shape a serving system needs. The
//!   offline path ([`run_task`], [`Scenario::evaluate`]) is implemented
//!   *on top of* `Session`, so streaming and batch evaluation are
//!   bit-identical by construction.

use crate::backend::{charge_sequencer, controller, BackendConfig, TaskOutcome};
use crate::eval::{default_threads, parallel_map};
use crate::frontend::{FrameData, MotionConfig, PreparedCache, PreparedSequence};
use crate::system::SystemModel;
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Rect;
use euphrates_common::image::Resolution;
use euphrates_common::metrics::IouAccumulator;
use euphrates_common::units::Cycles;
use euphrates_datasets::Sequence;
use euphrates_mc::policy::FrameKind;
use euphrates_nn::layer::NetworkDescriptor;
use euphrates_soc::energy::{ExtrapolationExecutor, SchemeReport};
use std::collections::BTreeSet;
use std::fmt;

// ---------------------------------------------------------------------------
// VisionTask
// ---------------------------------------------------------------------------

/// Everything the generic I/E-frame scheduler needs to know about one
/// frame while driving a task.
#[derive(Debug, Clone, Copy)]
pub struct FrameContext<'a> {
    /// Stream-position of this frame (0-based).
    pub index: u64,
    /// The frame's ground truth + ISP motion field.
    pub frame: &'a FrameData,
    /// The full-frame rectangle at the functional resolution.
    pub bounds: Rect,
    /// The scheme's backend configuration.
    pub config: &'a BackendConfig,
    /// Oracle noise stream (stable per-sequence index).
    pub stream: u64,
}

/// What one task step reports back to the scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Motion-Controller datapath cycles spent this frame.
    pub datapath_cycles: Cycles,
    /// Live ROI count after the step (sizes the sequencer program).
    pub rois: u32,
    /// Inference-vs-extrapolation agreement in `[0, 1]`, fed to the
    /// adaptive EW controller (§3.3). `None` when no comparison was
    /// possible this frame.
    pub policy_feedback: Option<f64>,
}

/// A continuous-vision task runnable under the Euphrates I/E-frame
/// schedule.
///
/// Implementations own *what* inference and extrapolation mean; the
/// scheduler ([`Session`] / [`run_task`]) owns *when* each happens, the
/// EW-policy feedback loop, and the Motion-Controller cycle accounting,
/// so a [`TaskOutcome`] is produced generically for every task.
pub trait VisionTask {
    /// Mutable per-sequence state (tracks, filters, oracles).
    type State;

    /// Task name used in error messages and reports.
    fn name(&self) -> &'static str;

    /// Builds fresh state from the first frame of a stream.
    ///
    /// # Errors
    ///
    /// Rejects streams the task cannot start on (e.g. tracking without a
    /// visible target in frame 0).
    fn init(
        &self,
        resolution: Resolution,
        first: &FrameData,
        config: &BackendConfig,
        stream: u64,
    ) -> Result<Self::State>;

    /// Runs one I-frame: full CNN inference (plus the probe extrapolation
    /// the adaptive controller compares against).
    fn infer(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        outcome: &mut TaskOutcome,
    ) -> StepStats;

    /// Runs one E-frame: pure Motion-Controller extrapolation.
    fn extrapolate(
        &self,
        ctx: &FrameContext,
        state: &mut Self::State,
        outcome: &mut TaskOutcome,
    ) -> StepStats;

    /// Scores the frame's emitted predictions against ground truth,
    /// appending to `outcome.ious`.
    fn score(&self, ctx: &FrameContext, state: &Self::State, outcome: &mut TaskOutcome);
}

// ---------------------------------------------------------------------------
// Session (streaming)
// ---------------------------------------------------------------------------

/// The scheduler's verdict for one pushed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameDecision {
    /// Stream-position of the frame this decision is for.
    pub frame: u64,
    /// Whether the frame ran inference or extrapolation.
    pub kind: FrameKind,
    /// Live ROIs after the step.
    pub rois: u32,
    /// Motion-Controller datapath cycles spent on the frame.
    pub datapath_cycles: Cycles,
    /// Adaptive-policy feedback recorded this frame, if any.
    pub policy_feedback: Option<f64>,
    /// Number of scored predictions this frame appended.
    pub new_scores: usize,
}

impl FrameDecision {
    /// `true` if the frame ran a full CNN inference.
    pub fn is_inference(&self) -> bool {
        self.kind == FrameKind::Inference
    }
}

/// An incremental, per-frame run of one task under one backend scheme —
/// the streaming form of the pipeline.
///
/// `push_frame` applies the I/E-frame policy to one frame at a time; the
/// accumulated [`TaskOutcome`] after `n` pushes is bit-identical to an
/// offline [`run_task`] over the same `n` frames, because the offline
/// path is implemented on top of this one.
///
/// # Serving semantics
///
/// Sessions are built to live on long-running server workers
/// (`euphrates-serve`): a `Session` is `Send` whenever its task and
/// state are, every push validates the frame against the session's
/// declared resolution (a mid-stream dimension change is a client bug,
/// not a panic), and the first error **poisons** the session — every
/// later push fails fast with [`Error`] instead of running the schedule
/// on top of inconsistent state. Check
/// [`is_poisoned`][Session::is_poisoned] to distinguish "stream ended"
/// from "stream died".
#[derive(Debug)]
pub struct Session<T: VisionTask> {
    task: T,
    config: BackendConfig,
    ctrl: euphrates_mc::policy::EwController,
    resolution: Resolution,
    bounds: Rect,
    stream: u64,
    state: Option<T::State>,
    outcome: TaskOutcome,
    next_frame: u64,
    poisoned: bool,
}

impl<T: VisionTask> Session<T> {
    /// Opens a streaming session for `task` under `config`.
    ///
    /// `stream` disambiguates oracle noise across concurrent sessions
    /// (use a stable per-sequence index when comparing against offline
    /// evaluation).
    ///
    /// # Errors
    ///
    /// Rejects invalid policy parameters.
    pub fn new(
        task: T,
        config: BackendConfig,
        resolution: Resolution,
        stream: u64,
    ) -> Result<Self> {
        let ctrl = controller(&config)?;
        let bounds = Rect::new(
            0.0,
            0.0,
            f64::from(resolution.width),
            f64::from(resolution.height),
        );
        Ok(Session {
            task,
            config,
            ctrl,
            resolution,
            bounds,
            stream,
            state: None,
            outcome: TaskOutcome::default(),
            next_frame: 0,
            poisoned: false,
        })
    }

    /// Frames consumed so far.
    pub fn frames(&self) -> u64 {
        self.next_frame
    }

    /// The outcome accumulated so far.
    pub fn outcome(&self) -> &TaskOutcome {
        &self.outcome
    }

    /// The resolution this session was opened at; every pushed frame
    /// must match it.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// `true` once a push has failed: the session rejects all further
    /// frames (the outcome up to the failure remains readable and
    /// [`finish`][Session::finish]able).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The EW window currently governing the schedule (constant N, or
    /// the adaptive controller's learned width).
    pub fn current_window(&self) -> u32 {
        self.ctrl.window()
    }

    /// Swaps the session's EW policy **mid-stream**, preserving the
    /// schedule phase: frames already extrapolated since the last
    /// I-frame keep counting against the new window, so widening never
    /// inserts a spurious inference and narrowing re-infers promptly.
    ///
    /// This is the overload-degradation actuator of `euphrates-serve`:
    /// under queue pressure a server widens live sessions' windows
    /// (more extrapolation, fewer CNN frames) and restores the scheme's
    /// declared policy when the pressure clears. The accumulated
    /// [`TaskOutcome`] is untouched; only future frames are scheduled
    /// differently.
    ///
    /// # Errors
    ///
    /// Rejects invalid policy parameters (zero windows, adaptive
    /// `min > max`); the session is unchanged — and in particular **not
    /// poisoned** — on error. Re-configuring a poisoned session is
    /// rejected with the poison error.
    pub fn reconfigure_policy(&mut self, policy: euphrates_mc::policy::EwPolicy) -> Result<()> {
        if self.poisoned {
            return Err(Error::state(format!(
                "session poisoned at frame {}: cannot reconfigure; open a new session",
                self.next_frame
            )));
        }
        self.ctrl.reconfigure(policy)?;
        self.config.policy = policy;
        Ok(())
    }

    /// Consumes one frame: decides I vs. E, runs the task step, feeds the
    /// adaptive controller, charges the Motion-Controller sequencer, and
    /// scores the frame's predictions.
    ///
    /// # Errors
    ///
    /// The first push propagates task initialization errors (e.g. a
    /// tracking stream whose first frame has no visible target). A frame
    /// whose motion field disagrees with the session's resolution is
    /// rejected. Any error poisons the session: every subsequent push
    /// fails fast without touching task state.
    pub fn push_frame(&mut self, frame: &FrameData) -> Result<FrameDecision> {
        if self.poisoned {
            return Err(Error::config(format!(
                "session poisoned at frame {}: an earlier push failed; open a new session",
                self.next_frame
            )));
        }
        let got = frame.motion.resolution();
        if got != self.resolution {
            self.poisoned = true;
            return Err(Error::config(format!(
                "frame {} is {}x{} but the session was opened at {}x{}: \
                 mid-stream dimension changes need a new session",
                self.next_frame,
                got.width,
                got.height,
                self.resolution.width,
                self.resolution.height
            )));
        }
        if self.state.is_none() {
            match self
                .task
                .init(self.resolution, frame, &self.config, self.stream)
            {
                Ok(state) => self.state = Some(state),
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
        let state = self.state.as_mut().expect("state initialized above");

        let kind = self.ctrl.next_frame();
        self.outcome.frames += 1;
        let ctx = FrameContext {
            index: self.next_frame,
            frame,
            bounds: self.bounds,
            config: &self.config,
            stream: self.stream,
        };
        let stats = match kind {
            FrameKind::Inference => {
                self.outcome.inferences += 1;
                self.task.infer(&ctx, state, &mut self.outcome)
            }
            FrameKind::Extrapolation => self.task.extrapolate(&ctx, state, &mut self.outcome),
        };
        if let Some(feedback) = stats.policy_feedback {
            self.ctrl.record_comparison(feedback);
        }
        charge_sequencer(
            &mut self.outcome,
            kind,
            &frame.motion,
            stats.rois,
            stats.datapath_cycles,
        );
        let scored_before = self.outcome.ious.len();
        self.task.score(&ctx, state, &mut self.outcome);
        self.next_frame += 1;
        Ok(FrameDecision {
            frame: self.next_frame - 1,
            kind,
            rois: stats.rois,
            datapath_cycles: stats.datapath_cycles,
            policy_feedback: stats.policy_feedback,
            new_scores: self.outcome.ious.len() - scored_before,
        })
    }

    /// Ends the session, returning the accumulated outcome.
    pub fn finish(self) -> TaskOutcome {
        self.outcome
    }
}

impl<T> Session<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    /// Captures a point-in-time [`SessionCheckpoint`] of the full
    /// scheduler state: the EW controller (schedule phase included),
    /// the active policy, the task state, the accumulated outcome, the
    /// accepted-frame count, and the poison flag.
    ///
    /// The session is untouched — snapshotting mid-stream and
    /// continuing is always safe. The crash-recovery invariant (the
    /// checkpoint suite asserts it) is that
    /// [`restore`][Session::restore]-at-any-cut-point bit-matches an
    /// uninterrupted run: pushing frames `k..n` into the restored
    /// session yields exactly the outcome of pushing `0..n` into the
    /// original.
    pub fn snapshot(&self) -> SessionCheckpoint<T> {
        SessionCheckpoint {
            task: self.task.clone(),
            config: self.config,
            ctrl: self.ctrl,
            resolution: self.resolution,
            bounds: self.bounds,
            stream: self.stream,
            state: self.state.clone(),
            outcome: self.outcome.clone(),
            next_frame: self.next_frame,
            poisoned: self.poisoned,
        }
    }

    /// Rebuilds a session from a checkpoint — the other half of
    /// [`snapshot`][Session::snapshot]. Infallible: the checkpoint was
    /// taken from a validated session, so there is nothing left to
    /// validate (a poisoned session restores poisoned and keeps
    /// rejecting pushes, exactly like the original).
    pub fn restore(checkpoint: SessionCheckpoint<T>) -> Self {
        Session {
            task: checkpoint.task,
            config: checkpoint.config,
            ctrl: checkpoint.ctrl,
            resolution: checkpoint.resolution,
            bounds: checkpoint.bounds,
            stream: checkpoint.stream,
            state: checkpoint.state,
            outcome: checkpoint.outcome,
            next_frame: checkpoint.next_frame,
            poisoned: checkpoint.poisoned,
        }
    }
}

/// A point-in-time image of a [`Session`], produced by
/// [`Session::snapshot`] and consumed by [`Session::restore`].
///
/// The checkpoint owns clones of everything the scheduler needs —
/// task, backend config, EW controller (with its schedule phase and
/// adaptive history), task state, accumulated [`TaskOutcome`], frame
/// counter, and poison flag — so it is independent of the session it
/// came from: the original can keep running, die, or be dropped
/// without invalidating the checkpoint. `euphrates-serve` builds its
/// crash-recovery ledger on exactly this type.
pub struct SessionCheckpoint<T: VisionTask> {
    task: T,
    config: BackendConfig,
    ctrl: euphrates_mc::policy::EwController,
    resolution: Resolution,
    bounds: Rect,
    stream: u64,
    state: Option<T::State>,
    outcome: TaskOutcome,
    next_frame: u64,
    poisoned: bool,
}

impl<T: VisionTask> SessionCheckpoint<T> {
    /// Frames the checkpointed session had consumed.
    pub fn frames(&self) -> u64 {
        self.next_frame
    }

    /// Whether the checkpointed session was poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The resolution the checkpointed session was opened at.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The outcome accumulated up to the checkpoint.
    pub fn outcome(&self) -> &TaskOutcome {
        &self.outcome
    }
}

// Manual impls: derives would demand `T: Clone`/`T: Debug` without
// also propagating the `T::State` bounds the fields actually need.
impl<T> Clone for SessionCheckpoint<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    fn clone(&self) -> Self {
        SessionCheckpoint {
            task: self.task.clone(),
            config: self.config,
            ctrl: self.ctrl,
            resolution: self.resolution,
            bounds: self.bounds,
            stream: self.stream,
            state: self.state.clone(),
            outcome: self.outcome.clone(),
            next_frame: self.next_frame,
            poisoned: self.poisoned,
        }
    }
}

impl<T: VisionTask> fmt::Debug for SessionCheckpoint<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionCheckpoint")
            .field("frames", &self.next_frame)
            .field("poisoned", &self.poisoned)
            .field("resolution", &self.resolution)
            .field("stream", &self.stream)
            .finish_non_exhaustive()
    }
}

/// Runs `task` over a prepared sequence offline (every frame pushed
/// through a [`Session`] in order).
///
/// # Errors
///
/// Rejects empty sequences, invalid policies, and task initialization
/// failures.
pub fn run_task<T: VisionTask>(
    task: T,
    prep: &PreparedSequence,
    config: &BackendConfig,
    stream: u64,
) -> Result<TaskOutcome> {
    if prep.is_empty() {
        return Err(Error::config(format!(
            "cannot run {} on an empty sequence",
            task.name()
        )));
    }
    let mut session = Session::new(task, *config, prep.resolution, stream)?;
    for frame in &prep.frames {
        session.push_frame(frame)?;
    }
    Ok(session.finish())
}

/// Runs `task` over a streaming frame source (e.g.
/// [`frame_source`][crate::frontend::frame_source]) without materializing
/// the sequence: every frame is pushed through a [`Session`] as it is
/// produced, so memory stays O(1 frame). The outcome bit-matches
/// [`run_task`] over the eagerly prepared equivalent.
///
/// # Errors
///
/// Rejects empty streams and invalid policies, and propagates frame
/// production and task initialization errors.
pub fn run_stream<T, I>(
    task: T,
    resolution: Resolution,
    frames: I,
    config: &BackendConfig,
    stream: u64,
) -> Result<TaskOutcome>
where
    T: VisionTask,
    I: IntoIterator<Item = Result<FrameData>>,
{
    let name = task.name();
    let mut session = Session::new(task, *config, resolution, stream)?;
    for frame in frames {
        session.push_frame(&frame?)?;
    }
    if session.frames() == 0 {
        return Err(Error::config(format!(
            "cannot run {name} on an empty frame stream"
        )));
    }
    Ok(session.finish())
}

// ---------------------------------------------------------------------------
// Scheme registry
// ---------------------------------------------------------------------------

/// A validated, unique scheme identifier (e.g. `"EW-4"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemeId(String);

impl SchemeId {
    /// Validates an identifier: non-empty after trimming.
    ///
    /// # Errors
    ///
    /// Rejects empty or whitespace-only identifiers.
    pub fn new(id: impl Into<String>) -> Result<Self> {
        let id = id.into();
        if id.trim().is_empty() {
            return Err(Error::config("scheme id must be non-empty"));
        }
        Ok(SchemeId(id))
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for SchemeId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// One entry of a scenario's scheme registry: an id, the backend
/// configuration it runs, and where extrapolation executes.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSpec {
    /// Unique scheme identifier.
    pub id: SchemeId,
    /// Backend (EW policy, extrapolation, datapath, seed).
    pub backend: BackendConfig,
    /// Extrapolation executor for the energy model (§6.1's MC-vs-CPU
    /// comparison).
    pub executor: ExtrapolationExecutor,
}

impl SchemeSpec {
    /// A validated spec on the Motion-Controller executor.
    ///
    /// # Errors
    ///
    /// Rejects invalid identifiers.
    pub fn new(id: impl Into<String>, backend: BackendConfig) -> Result<Self> {
        Ok(SchemeSpec {
            id: SchemeId::new(id)?,
            backend,
            executor: ExtrapolationExecutor::MotionController,
        })
    }

    /// Replaces the extrapolation executor.
    pub fn with_executor(mut self, executor: ExtrapolationExecutor) -> Self {
        self.executor = executor;
        self
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// Fluent constructor for a [`Scenario`]. Obtained from
/// [`Scenario::builder`]; finished by [`ScenarioBuilder::build`], which
/// validates the scheme registry.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder<T> {
    task: T,
    suite: Vec<Sequence>,
    motion: MotionConfig,
    platform: SystemModel,
    network: Option<NetworkDescriptor>,
    nn_batch: u32,
    threads: Option<usize>,
    schemes: Vec<(String, BackendConfig, ExtrapolationExecutor)>,
}

impl<T: VisionTask> ScenarioBuilder<T> {
    /// Replaces the evaluation suite.
    pub fn suite(mut self, suite: Vec<Sequence>) -> Self {
        self.suite = suite;
        self
    }

    /// Appends one sequence to the suite.
    pub fn sequence(mut self, seq: Sequence) -> Self {
        self.suite.push(seq);
        self
    }

    /// Sets the motion-estimation configuration (default:
    /// [`MotionConfig::default`]).
    pub fn motion(mut self, motion: MotionConfig) -> Self {
        self.motion = motion;
        self
    }

    /// Sets the platform model (default: [`SystemModel::table1`]).
    pub fn platform(mut self, platform: SystemModel) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the network whose energy/FPS the platform model evaluates at
    /// each scheme's measured window. Without a network the report
    /// carries accuracy only.
    pub fn network(mut self, network: NetworkDescriptor) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the cross-session NN batch size the platform model assumes
    /// for I-frame inference (default 1 — the exact un-batched
    /// evaluation path, so existing reports stay bit-stable). Values
    /// above 1 charge each session its amortized share of a fused
    /// `nn_batch`-request systolic job (see
    /// [`SystemModel::evaluate_batched`]).
    pub fn nn_batch(mut self, batch: u32) -> Self {
        self.nn_batch = batch;
        self
    }

    /// Overrides the worker-thread count (default:
    /// [`default_threads`], which honors
    /// `EUPHRATES_THREADS`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Registers a scheme on the Motion-Controller executor.
    pub fn scheme(self, id: impl Into<String>, backend: BackendConfig) -> Self {
        self.scheme_on(id, backend, ExtrapolationExecutor::MotionController)
    }

    /// Registers a scheme with an explicit extrapolation executor.
    pub fn scheme_on(
        mut self,
        id: impl Into<String>,
        backend: BackendConfig,
        executor: ExtrapolationExecutor,
    ) -> Self {
        self.schemes.push((id.into(), backend, executor));
        self
    }

    /// Registers a batch of pre-validated specs.
    pub fn schemes(mut self, specs: impl IntoIterator<Item = SchemeSpec>) -> Self {
        for spec in specs {
            self.schemes.push((spec.id.0, spec.backend, spec.executor));
        }
        self
    }

    /// Validates and assembles the scenario.
    ///
    /// # Errors
    ///
    /// Rejects an empty scheme registry, invalid scheme ids, and
    /// duplicate scheme ids.
    pub fn build(self) -> Result<Scenario<T>> {
        if self.schemes.is_empty() {
            return Err(Error::config("scenario needs at least one scheme"));
        }
        let mut seen = BTreeSet::new();
        let mut schemes = Vec::with_capacity(self.schemes.len());
        for (id, backend, executor) in self.schemes {
            let id = SchemeId::new(id)?;
            if !seen.insert(id.clone()) {
                return Err(Error::config(format!("duplicate scheme id `{id}`")));
            }
            schemes.push(SchemeSpec {
                id,
                backend,
                executor,
            });
        }
        Ok(Scenario {
            task: self.task,
            suite: self.suite,
            motion: self.motion,
            platform: self.platform,
            network: self.network,
            nn_batch: self.nn_batch,
            threads: self.threads,
            schemes,
        })
    }
}

/// One fully-specified experiment: a task over *dataset × motion config ×
/// scheme registry × platform*.
#[derive(Debug, Clone)]
pub struct Scenario<T> {
    task: T,
    suite: Vec<Sequence>,
    motion: MotionConfig,
    platform: SystemModel,
    network: Option<NetworkDescriptor>,
    nn_batch: u32,
    threads: Option<usize>,
    schemes: Vec<SchemeSpec>,
}

impl<T: VisionTask> Scenario<T> {
    /// Starts building a scenario for `task`.
    pub fn builder(task: T) -> ScenarioBuilder<T> {
        ScenarioBuilder {
            task,
            suite: Vec::new(),
            motion: MotionConfig::default(),
            platform: SystemModel::table1(),
            network: None,
            nn_batch: 1,
            threads: None,
            schemes: Vec::new(),
        }
    }

    /// The validated scheme registry, in registration order.
    pub fn schemes(&self) -> &[SchemeSpec] {
        &self.schemes
    }

    /// The evaluation suite.
    pub fn suite(&self) -> &[Sequence] {
        &self.suite
    }

    /// The motion-estimation configuration.
    pub fn motion(&self) -> &MotionConfig {
        &self.motion
    }

    /// Looks up a scheme by id.
    pub fn scheme(&self, id: &str) -> Option<&SchemeSpec> {
        self.schemes.iter().find(|s| s.id.as_str() == id)
    }

    /// Opens a streaming [`Session`] running one of this scenario's
    /// schemes (the serving-path entry point).
    ///
    /// # Errors
    ///
    /// Rejects unknown scheme ids and invalid policies.
    pub fn session(&self, id: &str, resolution: Resolution, stream: u64) -> Result<Session<T>>
    where
        T: Clone,
    {
        let spec = self
            .scheme(id)
            .ok_or_else(|| Error::config(format!("unknown scheme id `{id}`")))?;
        Session::new(self.task.clone(), spec.backend, resolution, stream)
    }

    /// Evaluates every scheme over the whole suite, parallelizing the
    /// full *(sequence × scheme)* grid: with `S` sequences and `K`
    /// schemes there are `S·K` independent work units, so threads stay
    /// busy even when the suite is shorter than the pool (each sequence
    /// used to run its schemes serially). Each sequence is rendered and
    /// motion-estimated once — the first worker to need it prepares it
    /// through a [`PreparedCache`] keyed on the scenario's
    /// [`MotionConfig`], and the last scheme to finish a sequence drops
    /// its frames, bounding peak memory by the sequences in flight.
    ///
    /// # Errors
    ///
    /// Rejects an empty suite (a scenario without sequences can only
    /// serve streaming [`Session`]s) and propagates preparation and task
    /// errors (the first encountered, in grid order).
    pub fn evaluate(&self) -> Result<EvalReport>
    where
        T: Clone + Sync,
    {
        if self.suite.is_empty() {
            return Err(Error::config(
                "scenario has no sequences to evaluate (set `.suite(...)` on the builder)",
            ));
        }
        let threads = self.threads.unwrap_or_else(default_threads);
        let cache = PreparedCache::new(&self.suite, self.motion, self.schemes.len());
        // Sequence-major grid order keeps all of one sequence's schemes
        // adjacent, so the cache drains sequences promptly.
        let grid: Vec<(usize, usize)> = (0..self.suite.len())
            .flat_map(|si| (0..self.schemes.len()).map(move |ki| (si, ki)))
            .collect();
        let cell_results: Vec<Result<TaskOutcome>> =
            parallel_map(&grid, threads, |_, &(si, ki)| {
                let result = cache.get(si).and_then(|prep| {
                    run_task(
                        self.task.clone(),
                        &prep,
                        &self.schemes[ki].backend,
                        si as u64,
                    )
                });
                cache.finish(si);
                result
            });
        // Transpose the owned sequence-major outcomes into scheme-major
        // vectors without cloning the per-frame IoU data.
        let mut per_scheme: Vec<Vec<TaskOutcome>> = self
            .schemes
            .iter()
            .map(|_| Vec::with_capacity(self.suite.len()))
            .collect();
        for (cell, result) in grid.into_iter().zip(cell_results) {
            per_scheme[cell.1].push(result?);
        }

        let mut results = Vec::with_capacity(self.schemes.len());
        for (spec, per_seq) in self.schemes.iter().zip(per_scheme) {
            let mut merged = TaskOutcome::default();
            for outcome in &per_seq {
                merged.merge(outcome);
            }
            let system = match &self.network {
                Some(net) => Some(self.platform.evaluate_batched(
                    net,
                    merged.mean_window(),
                    spec.executor,
                    self.nn_batch,
                )?),
                None => None,
            };
            results.push(SchemeResult {
                id: spec.id.clone(),
                backend: spec.backend,
                executor: spec.executor,
                outcome: merged,
                per_sequence: per_seq,
                system,
            });
        }
        Ok(EvalReport { schemes: results })
    }
}

// ---------------------------------------------------------------------------
// EvalReport
// ---------------------------------------------------------------------------

/// One scheme's merged evaluation: functional accuracy plus (when the
/// scenario names a network) the platform model's energy/FPS/traffic at
/// the measured window.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme identifier.
    pub id: SchemeId,
    /// The backend configuration that ran.
    pub backend: BackendConfig,
    /// The extrapolation executor the energy model assumed.
    pub executor: ExtrapolationExecutor,
    /// Merged task statistics over the whole suite.
    pub outcome: TaskOutcome,
    /// Per-sequence outcomes (order matches the suite), for per-sequence
    /// figures like Fig. 10c.
    pub per_sequence: Vec<TaskOutcome>,
    /// Platform energy/FPS/DRAM at the measured mean window; `None` when
    /// the scenario has no network.
    pub system: Option<SchemeReport>,
}

impl SchemeResult {
    /// The scheme id as a plain label.
    pub fn label(&self) -> &str {
        self.id.as_str()
    }

    /// Accuracy accumulator over all scored predictions.
    pub fn accuracy(&self) -> IouAccumulator {
        self.outcome.ious.iter().copied().collect()
    }

    /// Success/precision at the conventional IoU 0.5.
    pub fn rate_at_05(&self) -> f64 {
        self.accuracy().rate_at(0.5)
    }
}

/// The structured result of [`Scenario::evaluate`]: one [`SchemeResult`]
/// per registered scheme, in registration order.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Per-scheme results.
    pub schemes: Vec<SchemeResult>,
}

impl EvalReport {
    /// Number of schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// `true` if the report has no schemes.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Looks up one scheme's result by id.
    pub fn get(&self, id: &str) -> Option<&SchemeResult> {
        self.schemes.iter().find(|s| s.id.as_str() == id)
    }

    /// Iterates results in registration order.
    pub fn iter(&self) -> std::slice::Iter<'_, SchemeResult> {
        self.schemes.iter()
    }
}

impl<'a> IntoIterator for &'a EvalReport {
    type Item = &'a SchemeResult;
    type IntoIter = std::slice::Iter<'a, SchemeResult>;
    fn into_iter(self) -> Self::IntoIter {
        self.schemes.iter()
    }
}
