//! Checkpoint/restore property tests: a [`Session`] snapshot taken at
//! *any* cut point, restored and driven over the remaining frames, must
//! bit-match the uninterrupted run — per-frame decisions and the final
//! [`TaskOutcome`] alike — for both evaluated tasks. This is the
//! foundation the serve-layer crash recovery (checkpoint + replay)
//! stands on.
//!
//! Also covered: snapshotting is non-destructive (the original session
//! keeps running bit-identically after being snapshotted), and a
//! poisoned session restores poisoned (fail-fast survives the
//! round-trip — recovery must not resurrect a corrupt stream as
//! healthy).

use euphrates_camera::scene::SceneBuilder;
use euphrates_camera::texture::Texture;
use euphrates_common::image::Resolution;
use euphrates_core::prelude::*;
use euphrates_nn::oracle::calib;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const RES: Resolution = Resolution::new(96, 72);
const FRAMES: u32 = 18;

/// One rendered sequence, shared across all cases (rendering dominates
/// the suite's cost; the frames are immutable).
fn frames() -> &'static [Arc<FrameData>] {
    static FRAMES_CELL: OnceLock<Vec<Arc<FrameData>>> = OnceLock::new();
    FRAMES_CELL.get_or_init(|| {
        let scene = SceneBuilder::new(RES, 42)
            .background(Texture::background_noise(0xC0))
            .object_default()
            .build();
        let seq = euphrates_datasets::Sequence {
            name: "checkpoint".to_string(),
            attributes: vec![],
            scene,
            frames: FRAMES,
        };
        frame_source(&seq, &MotionConfig::default())
            .expect("valid sequence")
            .map(|f| Arc::new(f.expect("rendered frame")))
            .collect()
    })
}

fn run_cut_equals_straight<T>(task: T, config: BackendConfig, cut: usize)
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    let frames = frames();
    // The uninterrupted reference, recording every decision.
    let mut straight = Session::new(task.clone(), config, RES, 7).unwrap();
    let mut straight_decisions = Vec::new();
    for frame in frames {
        straight_decisions.push(straight.push_frame(frame).expect("healthy stream"));
    }

    // Interrupted at `cut`: snapshot, keep BOTH lineages running — the
    // original (snapshot must be non-destructive) and the restored one.
    let mut original = Session::new(task, config, RES, 7).unwrap();
    for frame in &frames[..cut] {
        original.push_frame(frame).expect("healthy stream");
    }
    let checkpoint = original.snapshot();
    assert_eq!(checkpoint.frames(), cut as u64);
    let mut restored = Session::<T>::restore(checkpoint);
    assert_eq!(restored.frames(), cut as u64);

    for (i, frame) in frames[cut..].iter().enumerate() {
        let want = &straight_decisions[cut + i];
        let from_original = original.push_frame(frame).expect("healthy stream");
        let from_restored = restored.push_frame(frame).expect("healthy stream");
        assert_eq!(
            &from_restored,
            want,
            "restored session diverged at frame {} (cut {cut})",
            cut + i
        );
        assert_eq!(
            &from_original,
            want,
            "snapshot mutated the original session (frame {}, cut {cut})",
            cut + i
        );
    }
    assert_eq!(restored.outcome(), straight.outcome());
    assert_eq!(
        restored.finish(),
        straight.finish(),
        "final outcome diverged at cut {cut}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tracker_checkpoint_is_bit_identical_at_any_cut(cut in 0usize..=FRAMES as usize) {
        run_cut_equals_straight(
            TrackerTask::new(calib::mdnet()),
            BackendConfig::new(EwPolicy::Constant(4)),
            cut,
        );
    }

    #[test]
    fn detector_checkpoint_is_bit_identical_at_any_cut(cut in 0usize..=FRAMES as usize) {
        run_cut_equals_straight(
            DetectorTask::new(calib::yolov2()),
            BackendConfig::new(EwPolicy::Constant(2)),
            cut,
        );
    }
}

#[test]
fn adaptive_policy_checkpoints_too() {
    // The EW schedule state machine is richest under the adaptive
    // policy — cut right after a scheduled inference and mid-window.
    for cut in [0, 1, 5, 8, 13, FRAMES as usize] {
        run_cut_equals_straight(
            TrackerTask::new(calib::mdnet()),
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
            cut,
        );
    }
}

#[test]
fn poisoned_sessions_restore_poisoned() {
    let frames = frames();
    let mut session = Session::new(
        TrackerTask::new(calib::mdnet()),
        BackendConfig::new(EwPolicy::Constant(4)),
        RES,
        7,
    )
    .unwrap();
    for frame in &frames[..3] {
        session.push_frame(frame).expect("healthy stream");
    }
    // A dimension change poisons the stream…
    let wrong = Session::new(
        TrackerTask::new(calib::mdnet()),
        BackendConfig::new(EwPolicy::Constant(4)),
        Resolution::new(32, 24),
        7,
    )
    .unwrap();
    drop(wrong);
    let bad = FrameData::new(
        vec![],
        euphrates_isp::motion::MotionField::zeroed(Resolution::new(32, 24), 16, 7).unwrap(),
    );
    session.push_frame(&bad).expect_err("dimension mismatch");
    assert!(session.is_poisoned());
    let pre_poison_frames = session.frames();

    // …and the poison survives the checkpoint round-trip: restored
    // sessions fail fast instead of resuming a corrupt stream.
    let mut restored = Session::<TrackerTask>::restore(session.snapshot());
    assert!(restored.is_poisoned());
    assert_eq!(restored.frames(), pre_poison_frames);
    let err = restored
        .push_frame(&frames[3])
        .expect_err("poisoned session must fail fast after restore");
    assert!(err.to_string().contains("poisoned"), "{err}");
    assert_eq!(restored.finish().frames, pre_poison_frames);
}
