//! Integration tests for the unified API: the `Scenario` builder
//! round-trip, streaming-vs-offline equivalence, and scheme-registry
//! validation.

use euphrates_core::prelude::*;
use euphrates_nn::oracle::calib;
use euphrates_nn::zoo;

fn tracking_suite(seed: u64, n: usize, frames: u32) -> Vec<Sequence> {
    let mut suite = euphrates_datasets::otb100_like(seed, DatasetScale::fraction(0.1));
    suite.truncate(n);
    for s in &mut suite {
        s.frames = frames;
    }
    suite
}

#[test]
fn scenario_round_trips_builder_to_report() {
    let suite = tracking_suite(5, 2, 32);
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite)
        .motion(MotionConfig::default())
        .platform(SystemModel::table1())
        .network(zoo::mdnet())
        .scheme("MDNet", BackendConfig::baseline())
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .scheme_on(
            "EW-4-cpu",
            BackendConfig::new(EwPolicy::Constant(4)),
            ExtrapolationExecutor::Cpu,
        )
        .build()
        .unwrap();
    assert_eq!(scenario.schemes().len(), 3);
    assert_eq!(scenario.scheme("EW-4").unwrap().id.as_str(), "EW-4");

    let report = scenario.evaluate().unwrap();
    assert_eq!(report.len(), 3);
    // Registration order is preserved and ids survive the round trip.
    let labels: Vec<&str> = report.iter().map(|r| r.label()).collect();
    assert_eq!(labels, vec!["MDNet", "EW-4", "EW-4-cpu"]);
    // Accuracy, schedule, and platform numbers arrive together.
    let base = report.get("MDNet").unwrap();
    let ew4 = report.get("EW-4").unwrap();
    assert_eq!(base.outcome.inference_rate(), 1.0);
    assert!((ew4.outcome.inference_rate() - 0.25).abs() < 0.05);
    assert_eq!(ew4.per_sequence.len(), 2);
    assert!(base.rate_at_05() > 0.5);
    let base_sys = base.system.as_ref().expect("network set → system report");
    let ew4_sys = ew4.system.as_ref().unwrap();
    assert!(ew4_sys.fps >= base_sys.fps);
    assert!(ew4_sys.energy_per_frame() < base_sys.energy_per_frame());
    assert!(ew4_sys.traffic_per_frame.0 > 0);
    // The CPU executor pays for its wakeups relative to the MC at the
    // same schedule.
    let cpu_sys = report.get("EW-4-cpu").unwrap().system.as_ref().unwrap();
    assert!(cpu_sys.energy_per_frame() > ew4_sys.energy_per_frame());
}

#[test]
fn scenario_without_network_reports_accuracy_only() {
    let suite = tracking_suite(9, 1, 16);
    let report = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite)
        .scheme("base", BackendConfig::baseline())
        .build()
        .unwrap()
        .evaluate()
        .unwrap();
    assert!(report.schemes[0].system.is_none());
    assert!(!report.schemes[0].outcome.ious.is_empty());
}

#[test]
fn evaluate_rejects_an_empty_suite() {
    // A suite-less scenario is valid to build (it can still serve
    // streaming sessions) but must not "succeed" at offline evaluation
    // with zero frames.
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .scheme("base", BackendConfig::baseline())
        .build()
        .unwrap();
    assert!(scenario.evaluate().is_err());
    assert!(scenario
        .session("base", euphrates_common::image::Resolution::VGA, 0)
        .is_ok());
}

/// The acceptance-criteria equivalence: pushing frames one at a time
/// through `Session` must produce bit-identical `TaskOutcome`s to the
/// offline `Scenario::evaluate` path on the same seed — for both tasks.
#[test]
fn session_streaming_bit_matches_offline_evaluate() {
    // Tracking.
    let suite = tracking_suite(11, 3, 40);
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite.clone())
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .scheme(
            "EW-A",
            BackendConfig::new(EwPolicy::Adaptive(AdaptiveConfig::default())),
        )
        .build()
        .unwrap();
    let report = scenario.evaluate().unwrap();
    for (si, seq) in suite.iter().enumerate() {
        let prep = prepare_sequence(seq, scenario.motion()).unwrap();
        for result in report.iter() {
            let mut session = scenario
                .session(result.label(), prep.resolution, si as u64)
                .unwrap();
            for frame in &prep.frames {
                session.push_frame(frame).unwrap();
            }
            assert_eq!(
                session.finish(),
                result.per_sequence[si],
                "tracking {} sequence {si} diverged",
                result.label()
            );
        }
    }

    // Detection.
    let mut det_suite = euphrates_datasets::detection_suite(23, DatasetScale::fraction(0.1));
    det_suite.truncate(2);
    for s in &mut det_suite {
        s.frames = 32;
    }
    let scenario = Scenario::builder(DetectorTask::new(calib::yolov2()))
        .suite(det_suite.clone())
        .scheme("EW-8", BackendConfig::new(EwPolicy::Constant(8)))
        .build()
        .unwrap();
    let report = scenario.evaluate().unwrap();
    for (si, seq) in det_suite.iter().enumerate() {
        let prep = prepare_sequence(seq, scenario.motion()).unwrap();
        let mut session = scenario
            .session("EW-8", prep.resolution, si as u64)
            .unwrap();
        for frame in &prep.frames {
            session.push_frame(frame).unwrap();
        }
        assert_eq!(
            session.finish(),
            report.schemes[0].per_sequence[si],
            "detection sequence {si} diverged"
        );
    }
}

/// The streaming front-end satellite: running a task over the lazy
/// `frame_source` (O(1 frame) of memory) must produce bit-identical
/// outcomes to the eager `prepare_sequence` + `run_task` path, and to
/// what grid-parallel `Scenario::evaluate` reports for the same cell.
#[test]
fn run_stream_bit_matches_prepared_run_task() {
    let suite = tracking_suite(17, 2, 28);
    let motion = MotionConfig::default();
    let config = BackendConfig::new(EwPolicy::Constant(4));
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite.clone())
        .motion(motion)
        .scheme("EW-4", config)
        .build()
        .unwrap();
    let report = scenario.evaluate().unwrap();
    for (si, seq) in suite.iter().enumerate() {
        let prep = prepare_sequence(seq, &motion).unwrap();
        let eager = run_task(TrackerTask::new(calib::mdnet()), &prep, &config, si as u64).unwrap();
        let source = frame_source(seq, &motion).unwrap();
        let streamed = run_stream(
            TrackerTask::new(calib::mdnet()),
            source.resolution(),
            source,
            &config,
            si as u64,
        )
        .unwrap();
        assert_eq!(streamed, eager, "sequence {si} diverged from run_task");
        assert_eq!(
            streamed, report.schemes[0].per_sequence[si],
            "sequence {si} diverged from Scenario::evaluate"
        );
    }
}

#[test]
fn run_stream_rejects_empty_streams() {
    let err = run_stream(
        TrackerTask::new(calib::mdnet()),
        euphrates_common::image::Resolution::VGA,
        std::iter::empty(),
        &BackendConfig::baseline(),
        0,
    );
    assert!(err.is_err());
}

/// Grid-flattened evaluation must stay deterministic under any thread
/// count: 1 worker, many workers, and the default all agree.
#[test]
fn grid_parallel_evaluate_is_thread_count_invariant() {
    let suite = tracking_suite(19, 2, 24);
    let build = |threads: usize| {
        Scenario::builder(TrackerTask::new(calib::mdnet()))
            .suite(suite.clone())
            .threads(threads)
            .scheme("base", BackendConfig::baseline())
            .scheme("EW-2", BackendConfig::new(EwPolicy::Constant(2)))
            .scheme("EW-8", BackendConfig::new(EwPolicy::Constant(8)))
            .build()
            .unwrap()
            .evaluate()
            .unwrap()
    };
    let serial = build(1);
    let wide = build(12);
    assert_eq!(serial.len(), wide.len());
    for (a, b) in serial.iter().zip(wide.iter()) {
        assert_eq!(a.label(), b.label());
        assert_eq!(a.outcome, b.outcome, "{} diverged across pools", a.label());
        assert_eq!(a.per_sequence, b.per_sequence);
    }
}

#[test]
fn frame_decisions_expose_the_schedule() {
    let suite = tracking_suite(13, 1, 16);
    let prep = prepare_sequence(&suite[0], &MotionConfig::default()).unwrap();
    let task = TrackerTask::new(calib::mdnet());
    let mut session = Session::new(
        task,
        BackendConfig::new(EwPolicy::Constant(4)),
        prep.resolution,
        0,
    )
    .unwrap();
    let mut decisions = Vec::new();
    for frame in &prep.frames {
        decisions.push(session.push_frame(frame).unwrap());
    }
    assert_eq!(decisions.len(), 16);
    // Constant EW-4: I E E E repeating.
    for (i, d) in decisions.iter().enumerate() {
        assert_eq!(d.frame, i as u64);
        let expect_inference = i % 4 == 0;
        assert_eq!(d.is_inference(), expect_inference, "frame {i}");
        assert_eq!(d.rois, 1);
        // Only inference frames feed the adaptive comparison.
        assert_eq!(d.policy_feedback.is_some(), expect_inference);
        // Frame 0 is the given box; every later frame scores one IoU.
        assert_eq!(d.new_scores, usize::from(i > 0));
    }
    assert_eq!(session.frames(), 16);
    assert_eq!(session.outcome().inferences, 4);
}

#[test]
fn tracker_session_rejects_targetless_first_frame() {
    let task = TrackerTask::new(calib::mdnet());
    let mut session = Session::new(
        task,
        BackendConfig::baseline(),
        euphrates_common::image::Resolution::VGA,
        0,
    )
    .unwrap();
    let frame = FrameData::new(
        vec![],
        euphrates_isp::motion::MotionField::zeroed(euphrates_common::image::Resolution::VGA, 16, 7)
            .unwrap(),
    );
    assert!(session.push_frame(&frame).is_err());
}

#[test]
fn scheme_id_validation_rejects_empty_and_duplicates() {
    assert!(SchemeId::new("EW-4").is_ok());
    assert!(SchemeId::new("").is_err());
    assert!(SchemeId::new("   ").is_err());
    assert_eq!(SchemeId::new("EW-4").unwrap().to_string(), "EW-4");

    let dup = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .scheme("EW-4", BackendConfig::baseline())
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .build();
    assert!(dup.is_err(), "duplicate ids must be rejected");

    let empty_id = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .scheme("", BackendConfig::baseline())
        .build();
    assert!(empty_id.is_err(), "empty ids must be rejected");

    let no_schemes = Scenario::builder(TrackerTask::new(calib::mdnet())).build();
    assert!(no_schemes.is_err(), "a scenario needs schemes");

    // Pre-validated specs flow through `schemes(...)` unchanged.
    let specs = vec![
        SchemeSpec::new("a", BackendConfig::baseline()).unwrap(),
        SchemeSpec::new("b", BackendConfig::new(EwPolicy::Constant(2)))
            .unwrap()
            .with_executor(ExtrapolationExecutor::Cpu),
    ];
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .schemes(specs)
        .build()
        .unwrap();
    assert_eq!(scenario.schemes()[1].executor, ExtrapolationExecutor::Cpu);
    assert!(scenario
        .session("nope", euphrates_common::image::Resolution::VGA, 0)
        .is_err());
}
