//! Hostile-input property tests for the streaming `Session` (ROADMAP
//! item 5 slice): a serving worker feeds `push_frame` whatever clients
//! send, so malformed streams must come back as clean `Err`s — never a
//! panic, and never a session that silently keeps scoring on top of
//! inconsistent state.
//!
//! Covered here: mid-stream dimension changes, empty/degenerate ROIs
//! and visibility values, extreme `MotionConfig`s, and the poisoning
//! contract (first error ⇒ every later push fails fast).

use euphrates_camera::scene::GtObject;
use euphrates_common::geom::Rect;
use euphrates_common::image::Resolution;
use euphrates_core::prelude::*;
use euphrates_isp::motion::MotionField;
use euphrates_nn::oracle::calib;
use proptest::prelude::*;

const RES: Resolution = Resolution::new(160, 120);

fn zeroed_motion(res: Resolution) -> MotionField {
    MotionField::zeroed(res, 16, 7).expect("valid field parameters")
}

/// A frame with one target whose geometry the tests control.
fn frame_with(rect: Rect, visibility: f64, res: Resolution) -> FrameData {
    FrameData::new(
        vec![GtObject {
            id: 0,
            label: 0,
            rect,
            visibility,
            blur: 0.0,
            speed: 0.0,
        }],
        zeroed_motion(res),
    )
}

fn tracker_session(res: Resolution) -> Session<TrackerTask> {
    Session::new(
        TrackerTask::new(calib::mdnet()),
        BackendConfig::new(EwPolicy::Constant(4)),
        res,
        0,
    )
    .expect("valid policy")
}

#[test]
fn sessions_move_to_serving_workers() {
    // The compile-time contract `euphrates-serve` rests on: a session
    // (and everything a worker carries with it) can cross threads.
    fn is_send<T: Send>() {}
    is_send::<Session<TrackerTask>>();
    is_send::<Session<DetectorTask>>();
    is_send::<FrameData>();
    is_send::<TaskOutcome>();
}

#[test]
fn dimension_change_mid_stream_errors_and_poisons() {
    let mut session = tracker_session(RES);
    let good = frame_with(Rect::new(40.0, 30.0, 32.0, 24.0), 1.0, RES);
    session.push_frame(&good).expect("healthy first frame");
    assert!(!session.is_poisoned());

    let resized = frame_with(
        Rect::new(40.0, 30.0, 32.0, 24.0),
        1.0,
        Resolution::new(320, 240),
    );
    let err = session.push_frame(&resized).expect_err("must reject");
    assert!(err.to_string().contains("dimension"), "{err}");
    assert!(session.is_poisoned());

    // Poisoned: even a well-formed frame now fails fast…
    let err = session.push_frame(&good).expect_err("poisoned");
    assert!(err.to_string().contains("poisoned"), "{err}");
    // …but the pre-failure outcome stays readable and finishable.
    assert_eq!(session.frames(), 1);
    assert_eq!(session.finish().frames, 1);
}

#[test]
fn init_failure_poisons_instead_of_retrying() {
    // A targetless frame 0 is an init error; the session must not
    // accept a "better" frame afterwards as if the stream were healthy
    // (frame indices and the EW schedule would silently desynchronize).
    let mut session = tracker_session(RES);
    let empty = FrameData::new(vec![], zeroed_motion(RES));
    assert!(session.push_frame(&empty).is_err());
    assert!(session.is_poisoned());
    let good = frame_with(Rect::new(10.0, 10.0, 20.0, 20.0), 1.0, RES);
    assert!(session.push_frame(&good).is_err());
    assert_eq!(session.frames(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (even degenerate) target geometry after a healthy
    /// first frame: pushes may legitimately succeed — an empty rect is
    /// "target out of view", which tracking handles — but must never
    /// panic, and an `Err` must poison every later push.
    #[test]
    fn hostile_geometry_never_panics(
        x in -500.0f64..700.0,
        y in -500.0f64..700.0,
        w in -50.0f64..600.0,
        h in -50.0f64..600.0,
        visibility in -1.0f64..2.0,
        frames in 1usize..12,
    ) {
        let mut session = tracker_session(RES);
        let first = frame_with(Rect::new(40.0, 30.0, 32.0, 24.0), 1.0, RES);
        session.push_frame(&first).expect("healthy first frame");
        let hostile = frame_with(Rect::new(x, y, w, h), visibility, RES);
        let mut failed = false;
        for _ in 0..frames {
            let r = session.push_frame(&hostile);
            if failed {
                prop_assert!(r.is_err(), "poisoned session accepted a frame");
            }
            failed |= r.is_err();
            prop_assert_eq!(session.is_poisoned(), failed);
        }
    }

    /// Degenerate first frames: never a panic, and rejection means the
    /// session stays at zero frames.
    #[test]
    fn hostile_first_frames_error_cleanly(
        x in -500.0f64..700.0,
        y in -500.0f64..700.0,
        w in -50.0f64..600.0,
        h in -50.0f64..600.0,
        visibility in -1.0f64..2.0,
    ) {
        let mut session = tracker_session(RES);
        let first = frame_with(Rect::new(x, y, w, h), visibility, RES);
        match session.push_frame(&first) {
            Ok(_) => prop_assert_eq!(session.frames(), 1),
            Err(_) => {
                prop_assert!(session.is_poisoned());
                prop_assert_eq!(session.frames(), 0);
            }
        }
    }

    /// Structure-aware hostile *sequences*: instead of one bad frame,
    /// sample a whole client stream mixing healthy tracking frames
    /// with every malformation class (degenerate geometry, vanishing
    /// targets, resolution switches, empty truth) in random order, and
    /// check the session's global invariants across the run:
    ///
    /// * no operation ever panics;
    /// * `frames()` counts exactly the accepted pushes;
    /// * poisoning is monotone — after the first `Err`, every later
    ///   push fails and `is_poisoned()` stays set;
    /// * `finish()` always works and reports the accepted count.
    #[test]
    fn hostile_sequences_preserve_session_invariants(
        ops in proptest::collection::vec(0usize..6, 1..24),
        jitter in -300.0f64..400.0,
    ) {
        let mut session = tracker_session(RES);
        let mut accepted = 0u64;
        let mut poisoned = false;
        for (i, &op) in ops.iter().enumerate() {
            let drift = 1.5 * i as f64;
            let frame = match op {
                // Healthy, slowly drifting target.
                0 => frame_with(Rect::new(40.0 + drift, 30.0, 32.0, 24.0), 1.0, RES),
                // Wild jump — legal geometry, hostile magnitude.
                1 => frame_with(Rect::new(jitter, -jitter, 32.0, 24.0), 1.0, RES),
                // Degenerate/inverted box.
                2 => frame_with(Rect::new(40.0, 30.0, -10.0, 0.0), 1.0, RES),
                // Target far out of view.
                3 => frame_with(Rect::new(5000.0, 5000.0, 32.0, 24.0), 0.0, RES),
                // Truthless frame.
                4 => FrameData::new(vec![], zeroed_motion(RES)),
                // Mid-stream resolution switch.
                _ => frame_with(
                    Rect::new(40.0, 30.0, 32.0, 24.0),
                    1.0,
                    Resolution::new(320, 240),
                ),
            };
            let r = session.push_frame(&frame);
            if poisoned {
                prop_assert!(r.is_err(), "op {op} revived a poisoned session");
            }
            if r.is_ok() {
                accepted += 1;
            } else {
                poisoned = true;
            }
            prop_assert_eq!(session.is_poisoned(), poisoned);
            prop_assert_eq!(session.frames(), accepted);
        }
        prop_assert_eq!(session.finish().frames, accepted);
    }

    /// Extreme motion configurations must prepare or refuse — not
    /// panic. (The 1-byte MV encoding bounds the search range; zero
    /// macroblocks are meaningless.)
    #[test]
    fn extreme_motion_configs_error_cleanly(
        mb_i in 0usize..6,
        sr_i in 0usize..6,
    ) {
        const MB: [u32; 6] = [0, 1, 3, 16, 64, 1024];
        const SR: [u32; 6] = [0, 1, 7, 127, 128, 100_000];
        let (mb_size, search_range) = (MB[mb_i], SR[sr_i]);
        let mut suite = euphrates_datasets::otb100_like(3, DatasetScale::fraction(0.05));
        suite.truncate(1);
        suite[0].frames = 4;
        let config = MotionConfig {
            mb_size,
            search_range,
            ..MotionConfig::default()
        };
        match prepare_sequence(&suite[0], &config) {
            Ok(prep) => {
                // A config the ISP accepts must also stream cleanly.
                let mut session = Session::new(
                    TrackerTask::new(calib::mdnet()),
                    BackendConfig::new(EwPolicy::Constant(4)),
                    prep.resolution,
                    0,
                )
                .unwrap();
                for frame in &prep.frames {
                    session.push_frame(frame).expect("prepared frames are valid");
                }
            }
            Err(e) => {
                // Clean, descriptive refusal.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
