//! The supervision suite: crash recovery under deterministic fault
//! injection. The invariants:
//!
//! * worker kills are survivable — every killed worker is detected,
//!   respawned, and its sessions resurrect from checkpoint + replay to
//!   the *bit-identical* outcome a fault-free run produces;
//! * the replay budget is a hard, typed boundary — a session whose
//!   write-ahead log outgrew it drains as
//!   [`FailureKind::Unrecovered`] with the exact arithmetic in the
//!   error, never as a silently-wrong outcome;
//! * recovery timelines are logical — incidents carry arrival ticks and
//!   replay distances, identical at 1 and 4 workers, never wall-clock;
//! * wedged workers (heartbeat frozen mid-message) are deposed and
//!   respawned without losing a single frame;
//! * freeze/thaw round-trips hundreds of concurrent sessions
//!   bit-identically, including across a worker-count change.

use euphrates_camera::scene::SceneBuilder;
use euphrates_camera::texture::Texture;
use euphrates_common::image::Resolution;
use euphrates_core::prelude::*;
use euphrates_isp::motion::MotionField;
use euphrates_nn::oracle::calib;
use euphrates_serve::{
    ChaosConfig, DrainReport, FailureKind, IncidentKind, RecoveryReport, ServeConfig,
    SessionServer, SuperviseConfig,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const RES: Resolution = Resolution::new(80, 60);

fn frame_at(res: Resolution) -> Arc<FrameData> {
    Arc::new(FrameData::new(
        vec![],
        MotionField::zeroed(res, 16, 7).expect("valid field"),
    ))
}

/// A deterministic no-op task: every fault in these tests comes from
/// the chaos plan, never from the tenant.
#[derive(Debug, Clone)]
struct CalmTask;

impl VisionTask for CalmTask {
    type State = ();

    fn name(&self) -> &'static str {
        "calm"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        _config: &BackendConfig,
        _stream: u64,
    ) -> euphrates_common::Result<()> {
        Ok(())
    }

    fn infer(&self, _ctx: &FrameContext, _state: &mut (), _outcome: &mut TaskOutcome) -> StepStats {
        StepStats::default()
    }

    fn extrapolate(
        &self,
        _ctx: &FrameContext,
        _state: &mut (),
        _outcome: &mut TaskOutcome,
    ) -> StepStats {
        StepStats::default()
    }

    fn score(&self, _ctx: &FrameContext, _state: &(), _outcome: &mut TaskOutcome) {}
}

const SESSIONS: u64 = 8;
const FRAMES: u64 = 24;

/// Round-robin single-producer run: per-session arrival order is fixed,
/// so every kill draw is a pure function of `(id, arrival)` and the
/// recovery timeline must be identical at any worker count.
fn calm_run(workers: usize, config: ServeConfig) -> DrainReport {
    let server = SessionServer::new(
        CalmTask,
        vec![SchemeSpec::new("ew4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()],
        config.clone(),
    )
    .unwrap();
    assert_eq!(config.workers, workers);
    for id in 0..SESSIONS {
        server.open(id, "ew4", RES).unwrap();
    }
    for _ in 0..FRAMES {
        for id in 0..SESSIONS {
            server.submit_blocking(id, frame_at(RES)).unwrap();
        }
    }
    for id in 0..SESSIONS {
        server.close(id).unwrap();
    }
    server.drain()
}

fn outcome_map(report: &DrainReport) -> BTreeMap<u64, String> {
    report
        .iter()
        .map(|(id, outcome)| (*id, format!("{outcome:?}")))
        .collect()
}

fn assert_exact_accounting(report: &DrainReport) {
    assert_eq!(
        report.frames,
        report.served + report.dropped + report.shed,
        "served/dropped/shed do not partition the intake"
    );
    assert_eq!(report.ingress.spin_retries, 0, "spin path executed");
}

// ---------------------------------------------------------------------------
// Kills with a covering replay budget: every session recovers
// bit-identically, and the recovery timeline is worker-count invariant.
// ---------------------------------------------------------------------------

fn killed_config(workers: usize) -> ServeConfig {
    ServeConfig::sized(workers, 64)
        .with_chaos(ChaosConfig::seeded(21).with_worker_kills(5))
        .with_supervision(
            // Budget 16 >= checkpoint cadence 4: every kill is within
            // replay distance, nothing may drain Unrecovered.
            SuperviseConfig::every(4, 16).with_watchdog(Duration::from_millis(1), 4),
        )
}

#[test]
fn worker_kills_recover_bit_identically_across_worker_counts() {
    let baseline = calm_run(1, ServeConfig::sized(1, 64));
    let one = calm_run(1, killed_config(1));
    let four = calm_run(4, killed_config(4));

    for report in [&baseline, &one, &four] {
        assert_eq!(report.frames, SESSIONS * FRAMES);
        assert_exact_accounting(report);
    }
    assert!(
        baseline.recovery.is_none(),
        "unsupervised run has no report"
    );

    let want = outcome_map(&baseline);
    assert_eq!(
        outcome_map(&one),
        want,
        "1-worker recovery diverged from the fault-free run"
    );
    assert_eq!(
        outcome_map(&four),
        want,
        "4-worker recovery diverged from the fault-free run"
    );

    let r1 = one.recovery.clone().expect("supervised run reports");
    let r4 = four.recovery.clone().expect("supervised run reports");
    assert_eq!(
        r1.incidents, r4.incidents,
        "recovery timelines diverged across worker counts (logical ticks must not \
         depend on thread scheduling)"
    );
    assert_eq!((r1.respawns, r1.unrecovered), (r4.respawns, r4.unrecovered));
    assert_eq!(r1.mttr_ticks(), r4.mttr_ticks());
    assert!(r1.detections() > 0, "seed 21 must land kills: {r1:?}");
    assert_eq!(r1.respawns as usize, r1.detections());
    assert_eq!(r1.unrecovered, 0, "budget 16 covers cadence 4: {r1:?}");
    // Collateral-rebuild counters are placement-dependent: a 1-worker
    // death rebuilds all 8 sessions, a 4-worker death only its shard.
    assert!(r1.resurrected > r4.resurrected);
    assert!(r1.replayed_frames > r4.replayed_frames);
    assert!(r4.resurrected > 0, "kills resurrect sessions");
    assert!(
        r1.mttr_ticks() < 4,
        "replay distance must stay under the checkpoint cadence: {r1:?}"
    );
    for incident in &r1.incidents {
        assert_eq!(incident.kind, IncidentKind::WorkerKill);
        assert!(incident.recovered, "covered kill marked lost: {incident:?}");
        assert_eq!(
            incident.replay_lag,
            incident.tick % 4,
            "replay lag must be the arrival's distance to its checkpoint: {incident:?}"
        );
    }
    let kills = one.chaos.as_ref().expect("chaos armed").kills;
    assert_eq!(kills as usize, r1.detections());
    assert_eq!(four.chaos.as_ref().expect("chaos armed").kills, kills);
}

// ---------------------------------------------------------------------------
// Kills past the replay budget: the session drains as Unrecovered with
// the exact arithmetic in the reason — never as a wrong answer.
// ---------------------------------------------------------------------------

fn starved_config(workers: usize) -> ServeConfig {
    ServeConfig::sized(workers, 64)
        .with_chaos(ChaosConfig::seeded(21).with_worker_kills(5))
        .with_supervision(
            // Budget 2 under-covers cadence 8: kills at lag 3..=7 are
            // deliberately unrecoverable.
            SuperviseConfig::every(8, 2).with_watchdog(Duration::from_millis(1), 4),
        )
}

#[test]
fn over_budget_kills_drain_unrecovered_with_exact_reason() {
    let baseline = calm_run(1, ServeConfig::sized(1, 64));
    let one = calm_run(1, starved_config(1));
    let four = calm_run(4, starved_config(4));
    assert_exact_accounting(&one);
    assert_exact_accounting(&four);

    // In the under-budget regime the timeline itself is placement-
    // dependent: a dead session draws no further kills, and which
    // sessions died collaterally depends on who shared the worker. At 1
    // worker the first over-budget kill strands every session, so its
    // timeline is a prefix of the 4-worker one (deterministic for this
    // seed) — and where both have incidents, they agree tick-for-tick.
    let r1 = one.recovery.clone().expect("supervised run reports");
    let r4 = four.recovery.clone().expect("supervised run reports");
    assert!(
        r4.incidents.starts_with(&r1.incidents),
        "shared timeline prefix diverged:\n 1 worker: {:?}\n 4 workers: {:?}",
        r1.incidents,
        r4.incidents
    );
    assert!(!r1.incidents.is_empty());

    // Every session — at both worker counts — either matches the
    // fault-free run bit-for-bit or is a typed Unrecovered with the
    // budget arithmetic spelled out.
    let want = outcome_map(&baseline);
    for (report, recovery) in [(&one, &r1), (&four, &r4)] {
        assert!(
            recovery.unrecovered > 0,
            "budget 2 under cadence 8 with kills every ~5 must strand sessions: {recovery:?}"
        );
        assert_eq!(
            report.failure_breakdown().unrecovered as u64,
            recovery.unrecovered,
            "breakdown and recovery report disagree"
        );
        let mut unrecovered = 0u64;
        for (id, outcome) in report.iter() {
            match report.failure_kind(*id) {
                Some(FailureKind::Unrecovered) => {
                    unrecovered += 1;
                    let text = outcome.as_ref().unwrap_err().to_string();
                    assert!(
                        text.contains("over the replay budget of 2"),
                        "session {id}: reason lacks the budget arithmetic: {text}"
                    );
                }
                _ => assert_eq!(
                    format!("{outcome:?}"),
                    want[id],
                    "recovered session {id} diverged from the fault-free run"
                ),
            }
        }
        assert_eq!(unrecovered, recovery.unrecovered);
    }
    // Lost triggering sessions are flagged in the timeline too, and the
    // flag is exactly the budget comparison.
    assert!(r1.incidents.iter().any(|i| !i.recovered));
    for incident in &r1.incidents {
        assert_eq!(incident.recovered, incident.replay_lag <= 2, "{incident:?}");
    }
}

// ---------------------------------------------------------------------------
// Wedge: a worker whose heartbeat freezes mid-message is deposed and
// respawned; the in-flight frame is redelivered, so nothing is lost.
// ---------------------------------------------------------------------------

#[test]
fn wedged_worker_is_deposed_and_respawned_without_frame_loss() {
    let baseline = calm_run(1, ServeConfig::sized(1, 64));
    let config = ServeConfig::sized(1, 64)
        .with_chaos(ChaosConfig::seeded(9).with_wedges(40, Duration::from_millis(20)))
        .with_supervision(SuperviseConfig::every(4, 16).with_watchdog(Duration::from_millis(1), 3));
    let report = calm_run(1, config);
    assert_eq!(report.frames, SESSIONS * FRAMES);
    assert_exact_accounting(&report);
    assert_eq!(
        outcome_map(&report),
        outcome_map(&baseline),
        "a wedge must not change any session's outcome"
    );

    let recovery = report.recovery.as_ref().expect("supervised run reports");
    assert!(
        recovery.detections() > 0,
        "seed 9 must wedge at least once: {recovery:?}"
    );
    assert_eq!(recovery.unrecovered, 0);
    assert!(recovery
        .incidents
        .iter()
        .all(|i| i.kind == IncidentKind::Wedge && i.recovered));
    let wedges = report.chaos.as_ref().expect("chaos armed").wedges;
    assert_eq!(wedges as usize, recovery.detections());
}

// ---------------------------------------------------------------------------
// Supervision with no faults armed is inert: same outcomes, an empty
// recovery report, zero checkpoint-induced drift.
// ---------------------------------------------------------------------------

#[test]
fn supervision_without_faults_is_inert() {
    let baseline = calm_run(2, ServeConfig::sized(2, 64));
    let supervised = calm_run(
        2,
        ServeConfig::sized(2, 64).with_supervision(SuperviseConfig::every(4, 16)),
    );
    assert_eq!(outcome_map(&supervised), outcome_map(&baseline));
    assert_eq!(
        supervised.recovery,
        Some(RecoveryReport::default()),
        "no faults => an empty report, not a missing one"
    );
}

// ---------------------------------------------------------------------------
// Kills and wedges require supervision — rejected at construction, not
// discovered as a hang.
// ---------------------------------------------------------------------------

#[test]
fn chaos_kills_without_supervision_are_rejected() {
    for chaos in [
        ChaosConfig::seeded(1).with_worker_kills(8),
        ChaosConfig::seeded(1).with_wedges(8, Duration::from_millis(1)),
    ] {
        let err = SessionServer::new(
            CalmTask,
            vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()],
            ServeConfig::sized(1, 8).with_chaos(chaos),
        )
        .err()
        .expect("kill/wedge chaos without supervision must not construct");
        assert!(
            err.to_string().contains("supervision"),
            "undirected error: {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Freeze/thaw: 256 concurrent sessions round-trip bit-identically, even
// across a worker-count change, with pre-freeze statistics carried.
// ---------------------------------------------------------------------------

fn rendered_frames(n: u32) -> (Resolution, Vec<Arc<FrameData>>) {
    let scene = SceneBuilder::new(RES, 11)
        .background(Texture::background_noise(0x5EED))
        .object_default()
        .build();
    let seq = euphrates_datasets::Sequence {
        name: "freeze".to_string(),
        attributes: vec![],
        scene,
        frames: n,
    };
    let source = frame_source(&seq, &MotionConfig::default()).unwrap();
    let res = source.resolution();
    let frames = source.map(|f| Arc::new(f.unwrap())).collect();
    (res, frames)
}

#[test]
fn freeze_thaw_roundtrips_256_sessions_bit_identically() {
    const MANY: u64 = 256;
    const CUT: usize = 7; // deliberately not a checkpoint-cadence multiple
    let (res, frames) = rendered_frames(16);
    let schemes =
        || vec![SchemeSpec::new("ew4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()];
    let task = TrackerTask::new(calib::mdnet());

    // The uninterrupted reference.
    let server = SessionServer::new(task, schemes(), ServeConfig::sized(4, 64)).unwrap();
    for id in 0..MANY {
        server.open(id, "ew4", res).unwrap();
    }
    for frame in &frames {
        for id in 0..MANY {
            server.submit_blocking(id, Arc::clone(frame)).unwrap();
        }
    }
    for id in 0..MANY {
        server.close(id).unwrap();
    }
    let want = server.drain();
    assert_eq!(want.frames, MANY * frames.len() as u64);

    // Same workload with a freeze/thaw in the middle and a different
    // worker count on the far side.
    let server = SessionServer::new(task, schemes(), ServeConfig::sized(4, 64)).unwrap();
    for id in 0..MANY {
        server.open(id, "ew4", res).unwrap();
    }
    for frame in &frames[..CUT] {
        for id in 0..MANY {
            server.submit_blocking(id, Arc::clone(frame)).unwrap();
        }
    }
    let image = server.freeze();
    assert_eq!(image.sessions(), MANY as usize);
    assert_eq!(image.live_sessions(), MANY as usize);
    assert_eq!(image.carried().frames, MANY * CUT as u64);

    let server = SessionServer::thaw(image, ServeConfig::sized(3, 64)).unwrap();
    for frame in &frames[CUT..] {
        for id in 0..MANY {
            server.submit_blocking(id, Arc::clone(frame)).unwrap();
        }
    }
    for id in 0..MANY {
        server.close(id).unwrap();
    }
    let report = server.drain();

    assert_eq!(
        report.frames, want.frames,
        "carried statistics must cover the pre-freeze half"
    );
    assert_exact_accounting(&report);
    assert_eq!(
        outcome_map(&report),
        outcome_map(&want),
        "thawed sessions diverged from the uninterrupted run"
    );
}

// ---------------------------------------------------------------------------
// Freeze under supervision composes with kill recovery: resurrect, then
// freeze, then thaw — still bit-identical.
// ---------------------------------------------------------------------------

#[test]
fn freeze_after_kill_recovery_still_roundtrips() {
    let baseline = calm_run(1, ServeConfig::sized(1, 64));

    let server = SessionServer::new(
        CalmTask,
        vec![SchemeSpec::new("ew4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()],
        killed_config(2),
    )
    .unwrap();
    for id in 0..SESSIONS {
        server.open(id, "ew4", RES).unwrap();
    }
    const CUT: u64 = 11;
    for _ in 0..CUT {
        for id in 0..SESSIONS {
            server.submit_blocking(id, frame_at(RES)).unwrap();
        }
    }
    let image = server.freeze();
    assert_eq!(image.live_sessions(), SESSIONS as usize);

    let server = SessionServer::thaw(image, killed_config(3)).unwrap();
    for _ in CUT..FRAMES {
        for id in 0..SESSIONS {
            server.submit_blocking(id, frame_at(RES)).unwrap();
        }
    }
    for id in 0..SESSIONS {
        server.close(id).unwrap();
    }
    let report = server.drain();
    assert_eq!(report.frames, SESSIONS * FRAMES);
    assert_exact_accounting(&report);
    assert_eq!(
        outcome_map(&report),
        outcome_map(&baseline),
        "kill + freeze + thaw + kill diverged from the fault-free run"
    );
    let recovery = report.recovery.as_ref().expect("supervised");
    assert_eq!(recovery.unrecovered, 0);
}
