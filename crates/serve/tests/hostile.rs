//! Hostile-ingress property tests: deterministic pseudo-random
//! interleavings of malformed submits, poisoned/tombstoned sessions,
//! re-opens, frames for unknown ids, and worker-panic storms, driven
//! from several producer threads at once. The server's invariants under
//! abuse:
//!
//! * no deadlock — every drain completes;
//! * no panic escape — task panics surface as session errors, never as
//!   a dead worker or a propagated unwind;
//! * exact accounting — every accepted frame is counted exactly once
//!   (`frames == served + dropped + shed`, and `frames` equals what
//!   producers saw accepted);
//! * no spin-yield — the structurally unreachable retry stays at zero
//!   even under storm interleavings.

use euphrates_common::image::Resolution;
use euphrates_common::rngx;
use euphrates_core::prelude::*;
use euphrates_isp::motion::MotionField;
use euphrates_serve::{ServeConfig, SessionServer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const RES_A: Resolution = Resolution::new(80, 60);
const RES_B: Resolution = Resolution::new(64, 48); // the malformed one

fn frame_at(res: Resolution) -> Arc<FrameData> {
    Arc::new(FrameData::new(
        vec![],
        MotionField::zeroed(res, 16, 7).expect("valid field"),
    ))
}

/// Panics on a pseudo-random ~1/7 of its steps — a storm of hostile
/// tenants rather than one chosen victim.
#[derive(Debug, Clone)]
struct StormTask;

impl VisionTask for StormTask {
    type State = ();

    fn name(&self) -> &'static str {
        "storm"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        _config: &BackendConfig,
        _stream: u64,
    ) -> euphrates_common::Result<()> {
        Ok(())
    }

    fn infer(&self, ctx: &FrameContext, _state: &mut (), _outcome: &mut TaskOutcome) -> StepStats {
        if rngx::counter_hash(0x570_12A, ctx.stream ^ (ctx.index << 8)).is_multiple_of(7) {
            panic!("storm tenant {} blew up at frame {}", ctx.stream, ctx.index);
        }
        StepStats::default()
    }

    fn extrapolate(
        &self,
        ctx: &FrameContext,
        state: &mut (),
        outcome: &mut TaskOutcome,
    ) -> StepStats {
        self.infer(ctx, state, outcome)
    }

    fn score(&self, _ctx: &FrameContext, _state: &(), _outcome: &mut TaskOutcome) {}
}

/// One producer's walk through hostile action space, seeded so every
/// run replays the same interleaving. Returns the number of frames the
/// server ACCEPTED (enqueued) — the quantity the drain report must
/// account for exactly.
fn hostile_producer(server: &SessionServer<StormTask>, seed: u64, sessions: &[u64]) -> u64 {
    let mut accepted = 0u64;
    for step in 0..200u64 {
        let roll = rngx::counter_hash(seed, step);
        let id = sessions[(roll % sessions.len() as u64) as usize];
        match roll % 16 {
            // Mostly: an honest frame, via a pseudo-randomly chosen
            // ingress flavor.
            0..=9 => {
                let ok = match roll % 3 {
                    0 => server.try_submit(id, frame_at(RES_A)).is_enqueued(),
                    1 => server
                        .submit_deadline(id, frame_at(RES_A), Duration::from_millis(50))
                        .is_enqueued(),
                    _ => {
                        server.submit_blocking(id, frame_at(RES_A)).unwrap();
                        true
                    }
                };
                if ok {
                    accepted += 1;
                }
            }
            // A malformed frame: wrong resolution poisons the session
            // (a client bug, not a server crash); later frames to the
            // poisoned id must be dropped, not fatal.
            10 | 11 => {
                if server.try_submit(id, frame_at(RES_B)).is_enqueued() {
                    accepted += 1;
                }
            }
            // A frame for an id nobody ever opened (tombstone space).
            12 => {
                if server
                    .try_submit(id | 0x1000, frame_at(RES_A))
                    .is_enqueued()
                {
                    accepted += 1;
                }
            }
            // Close — possibly of an already-closed (tombstoned) id.
            13 => {
                let _ = server.close(id);
            }
            // Re-open, flushing whatever state the id had.
            _ => {
                let _ = server.open(id, "s", RES_A);
            }
        }
    }
    accepted
}

#[test]
fn hostile_interleavings_keep_exact_accounting() {
    const PRODUCERS: u64 = 4;
    for trial in 0..3u64 {
        let server = Arc::new(
            SessionServer::new(
                StormTask,
                vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()],
                ServeConfig::sized(2, 4), // small lanes: saturation is common
            )
            .unwrap(),
        );
        // Pre-open a base population so early frames have live targets.
        for id in 0..8u64 {
            server.open(id, "s", RES_A).unwrap();
        }
        let accepted = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let server = Arc::clone(&server);
                let accepted = Arc::clone(&accepted);
                // Disjoint id ranges per producer keep per-session frame
                // order deterministic; the *interleaving* across
                // sessions is the hostile part.
                let ids: Vec<u64> = (p * 2..p * 2 + 2).collect();
                std::thread::spawn(move || {
                    let n = hostile_producer(&server, trial * 1000 + p, &ids);
                    accepted.fetch_add(n, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer panicked (server misbehaved)");
        }

        let server = Arc::into_inner(server).expect("producers joined");
        let report = server.drain(); // completing at all = no deadlock
        let accepted = accepted.load(Ordering::SeqCst);
        assert_eq!(
            report.frames, accepted,
            "trial {trial}: accepted frames lost or double-counted"
        );
        assert_eq!(
            report.frames,
            report.served + report.dropped + report.shed,
            "trial {trial}: served/dropped/shed do not partition the intake"
        );
        assert_eq!(report.shed, 0, "trial {trial}: no SLO, nothing to shed");
        assert_eq!(
            report.failure_breakdown().total(),
            report.failed_sessions(),
            "trial {trial}: breakdown must cover every failure"
        );
        assert_eq!(report.queue_wait.count(), report.frames);
        assert_eq!(report.ingress.spin_retries, 0, "trial {trial}");
        // The storm guarantees casualties; every one must be a reported
        // error (captured panic or poison), never an escaped unwind.
        assert!(
            report.failed_sessions() > 0,
            "trial {trial}: storm too calm"
        );
        for (id, outcome) in report.iter() {
            if let Err(e) = outcome {
                let text = e.to_string();
                assert!(
                    text.contains("panicked")
                        || text.contains("poisoned")
                        || text.contains("session was opened at")
                        || text.contains("close of unknown session"),
                    "session {id}: unexpected failure shape: {text}"
                );
            }
        }
    }
}

/// A storm of panics on a single shard must leave the worker alive and
/// the survivors' accounting exact.
#[test]
fn panic_storm_never_kills_a_worker() {
    let server = SessionServer::new(
        StormTask,
        vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, 8),
    )
    .unwrap();
    const SESSIONS: u64 = 24;
    const FRAMES: u64 = 6;
    for id in 0..SESSIONS {
        server.open(id, "s", RES_A).unwrap();
    }
    for _ in 0..FRAMES {
        for id in 0..SESSIONS {
            server.submit_blocking(id, frame_at(RES_A)).unwrap();
        }
    }
    let report = server.drain();
    assert_eq!(report.frames, SESSIONS * FRAMES);
    assert_eq!(report.frames, report.served + report.dropped + report.shed);
    assert_eq!(report.sessions(), SESSIONS as usize);
    assert!(report.failed_sessions() > 0, "storm hash never fired");
    assert!(
        report.failed_sessions() < SESSIONS as usize,
        "every session died — isolation is meaningless"
    );
    // Dead sessions drop their post-panic frames; live ones serve all.
    for (id, outcome) in report.iter() {
        if let Ok(out) = outcome {
            assert_eq!(out.frames, FRAMES, "survivor {id} lost frames");
        }
    }
}
