//! The chaos suite: deterministic fault injection against the session
//! server. The invariants under fault storms:
//!
//! * no deadlock — every drain completes;
//! * no panic escape — injected panics surface as typed session
//!   failures, never as a dead worker;
//! * exact accounting — `frames == accepted == served + dropped + shed`
//!   and `spin_retries == 0` even while stalls, panics, corruption, and
//!   forced rejections fire;
//! * determinism — the degradation rung timeline and every per-session
//!   outcome are a pure function of `(seed, config)`: identical at
//!   `EUPHRATES_THREADS`-style worker counts 1 and 4.

use euphrates_camera::scene::SceneBuilder;
use euphrates_camera::texture::Texture;
use euphrates_common::image::Resolution;
use euphrates_common::rngx;
use euphrates_core::prelude::*;
use euphrates_isp::motion::MotionField;
use euphrates_nn::oracle::calib;
use euphrates_serve::{
    ChaosConfig, DegradationReport, FailureKind, FeedPolicy, PressurePlan, ServeConfig,
    SessionServer, SloConfig,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const RES: Resolution = Resolution::new(80, 60);

fn frame_at(res: Resolution) -> Arc<FrameData> {
    Arc::new(FrameData::new(
        vec![],
        MotionField::zeroed(res, 16, 7).expect("valid field"),
    ))
}

/// A deterministic no-op task: every fault in these tests comes from
/// the chaos plan, never from the tenant.
#[derive(Debug, Clone)]
struct CalmTask;

impl VisionTask for CalmTask {
    type State = ();

    fn name(&self) -> &'static str {
        "calm"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        _config: &BackendConfig,
        _stream: u64,
    ) -> euphrates_common::Result<()> {
        Ok(())
    }

    fn infer(&self, _ctx: &FrameContext, _state: &mut (), _outcome: &mut TaskOutcome) -> StepStats {
        StepStats::default()
    }

    fn extrapolate(
        &self,
        _ctx: &FrameContext,
        _state: &mut (),
        _outcome: &mut TaskOutcome,
    ) -> StepStats {
        StepStats::default()
    }

    fn score(&self, _ctx: &FrameContext, _state: &(), _outcome: &mut TaskOutcome) {}
}

/// A fast-degrading SLO over the standard ladder: 4-frame epochs, step
/// down after one overloaded epoch, recover only after `upgrade` calm
/// ones.
fn fast_slo(upgrade: u32) -> SloConfig {
    SloConfig::new(Duration::from_millis(1), Duration::from_millis(5))
        .with_epoch(4)
        .with_hysteresis(1, upgrade)
}

// ---------------------------------------------------------------------------
// Storm: every fault channel at once, multi-producer, exact accounting.
// ---------------------------------------------------------------------------

#[test]
fn chaos_storm_keeps_exact_accounting_without_deadlock() {
    const PRODUCERS: u64 = 4;
    let chaos = ChaosConfig::seeded(0xC4A05)
        .with_stalls(6, Duration::from_micros(100))
        .with_panics(6)
        .with_corruption(6)
        .with_rejections(8);
    let server = Arc::new(
        SessionServer::new(
            CalmTask,
            vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()],
            ServeConfig::sized(2, 4).with_chaos(chaos),
        )
        .unwrap(),
    );
    for id in 0..8u64 {
        server.open(id, "s", RES).unwrap();
    }
    let accepted = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let server = Arc::clone(&server);
            let accepted = Arc::clone(&accepted);
            let ids: Vec<u64> = (p * 2..p * 2 + 2).collect();
            std::thread::spawn(move || {
                let mut mine = 0u64;
                for step in 0..300u64 {
                    let roll = rngx::counter_hash(0x57021 + p, step);
                    let id = ids[(roll % ids.len() as u64) as usize];
                    match roll % 16 {
                        0..=10 => {
                            let ok = match roll % 3 {
                                0 => server.try_submit(id, frame_at(RES)).is_enqueued(),
                                1 => server
                                    .submit_deadline(id, frame_at(RES), Duration::from_millis(50))
                                    .is_enqueued(),
                                _ => {
                                    server.submit_blocking(id, frame_at(RES)).unwrap();
                                    true
                                }
                            };
                            if ok {
                                mine += 1;
                            }
                        }
                        11 | 12 => {
                            let _ = server.close(id);
                        }
                        _ => {
                            let _ = server.open(id, "s", RES);
                        }
                    }
                }
                accepted.fetch_add(mine, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer panicked (server misbehaved)");
    }

    let server = Arc::into_inner(server).expect("producers joined");
    let report = server.drain(); // completing at all = no deadlock
    let accepted = accepted.load(Ordering::SeqCst);
    assert_eq!(
        report.frames, accepted,
        "accepted frames lost or double-counted"
    );
    assert_eq!(
        report.frames,
        report.served + report.dropped + report.shed,
        "served/dropped/shed do not partition the intake"
    );
    assert_eq!(report.shed, 0, "no SLO configured, nothing may shed");
    assert_eq!(report.queue_wait.count(), report.frames);
    assert_eq!(
        report.ingress.spin_retries, 0,
        "spin path executed under chaos"
    );
    let chaos = report.chaos.expect("chaos armed");
    assert!(chaos.stalls > 0, "stall channel never fired: {chaos:?}");
    assert!(
        chaos.panics + chaos.corrupted > 0,
        "no fatal fault fired: {chaos:?}"
    );
    assert!(
        chaos.rejections > 0,
        "rejection channel never fired: {chaos:?}"
    );
    let breakdown = report.failure_breakdown();
    assert_eq!(
        breakdown.total(),
        report.failed_sessions(),
        "breakdown must cover every failure"
    );
    // Classification is consistent with each failure's actual shape.
    // (Presence of ChaosInjected in the final map is asserted by the
    // deterministic test below — here the reopen churn can let a
    // chaos-killed id finish its *next* life cleanly.)
    for (id, outcome) in report.iter() {
        if let Err(e) = outcome {
            let text = e.to_string();
            let kind = report
                .failure_kind(*id)
                .expect("typed kind for every failure");
            assert!(
                text.contains("chaos: injected")
                    || text.contains("session was opened at")
                    || text.contains("close of unknown session")
                    || text.contains("poisoned"),
                "session {id}: unexpected failure shape: {text}"
            );
            if text.contains("chaos: injected") {
                assert_eq!(kind, FailureKind::ChaosInjected, "session {id}: {text}");
            }
            if text.contains("close of unknown session") {
                assert_eq!(kind, FailureKind::Protocol, "session {id}: {text}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism: same seed + ChaosConfig + SloConfig => identical rung
// timeline and per-session outcomes at 1 and 4 workers.
// ---------------------------------------------------------------------------

struct RunResult {
    outcomes: BTreeMap<u64, String>,
    kinds: BTreeMap<u64, FailureKind>,
    degradation: DegradationReport,
    panics: u64,
    corrupted: u64,
}

fn deterministic_run(workers: usize) -> RunResult {
    let chaos = ChaosConfig::seeded(7)
        .with_panics(20)
        .with_corruption(20)
        .with_pressure(PressurePlan::Burst { from: 1, until: 3 });
    let server = SessionServer::new(
        CalmTask,
        vec![SchemeSpec::new("ew4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()],
        ServeConfig::sized(workers, 64)
            .with_slo(fast_slo(4))
            .with_chaos(chaos),
    )
    .unwrap();
    const SESSIONS: u64 = 12;
    const FRAMES: u64 = 16;
    for id in 0..SESSIONS {
        server.open(id, "ew4", RES).unwrap();
    }
    // One producer, round-robin: per-session arrival order is fixed, so
    // every fault and rung decision is a function of (id, arrival).
    for _ in 0..FRAMES {
        for id in 0..SESSIONS {
            server.submit_blocking(id, frame_at(RES)).unwrap();
        }
    }
    for id in 0..SESSIONS {
        server.close(id).unwrap();
    }
    let report = server.drain();
    assert_eq!(report.frames, SESSIONS * FRAMES);
    assert_eq!(report.frames, report.served + report.dropped + report.shed);
    assert_eq!(report.ingress.spin_retries, 0);
    let chaos = report.chaos.expect("chaos armed");
    let mut outcomes = BTreeMap::new();
    let mut kinds = BTreeMap::new();
    for (id, outcome) in report.iter() {
        outcomes.insert(*id, format!("{outcome:?}"));
        if let Some(kind) = report.failure_kind(*id) {
            kinds.insert(*id, kind);
        }
    }
    RunResult {
        outcomes,
        kinds,
        degradation: report.degradation.expect("slo armed"),
        panics: chaos.panics,
        corrupted: chaos.corrupted,
    }
}

#[test]
fn fault_and_degradation_schedule_is_worker_count_invariant() {
    let one = deterministic_run(1);
    let four = deterministic_run(4);
    assert_eq!(
        one.outcomes, four.outcomes,
        "per-session outcomes diverged across worker counts"
    );
    assert_eq!(one.kinds, four.kinds, "failure kinds diverged");
    assert_eq!(
        one.degradation, four.degradation,
        "degradation walk diverged across worker counts"
    );
    assert_eq!((one.panics, one.corrupted), (four.panics, four.corrupted));
    // And the walk is the declared one: healthy epoch 0, burst over
    // epochs 1-2, recovery too short to climb back.
    let timeline: Vec<(u64, usize, usize)> = one
        .degradation
        .timeline
        .iter()
        .map(|t| (t.epoch, t.from, t.to))
        .collect();
    assert_eq!(timeline, vec![(1, 0, 1), (2, 1, 2)]);
    assert_eq!(one.degradation.final_rung, 2);
    assert_eq!(one.degradation.epochs, 4);
    assert!(one.kinds.values().all(|k| *k == FailureKind::ChaosInjected));
    assert!(!one.kinds.is_empty(), "seed 7 must claim casualties");
}

// ---------------------------------------------------------------------------
// Planned overload: the ladder walks exactly as declared, shedding at
// the last rung, and buys back real compute (fewer inferences).
// ---------------------------------------------------------------------------

#[test]
fn planned_overload_walks_the_declared_ladder_and_sheds() {
    const SESSIONS: u64 = 8;
    const FRAMES: u64 = 16;
    let run = |slo: Option<SloConfig>, pressure: bool| {
        let mut config = ServeConfig::sized(2, 64);
        if let Some(slo) = slo {
            config = config.with_slo(slo);
        }
        if pressure {
            config = config.with_chaos(ChaosConfig::seeded(1).with_pressure(PressurePlan::Burst {
                from: 0,
                until: 1_000,
            }));
        }
        let server = SessionServer::new(
            CalmTask,
            vec![SchemeSpec::new("ew1", BackendConfig::new(EwPolicy::Constant(1))).unwrap()],
            config,
        )
        .unwrap();
        for id in 0..SESSIONS {
            server.open(id, "ew1", RES).unwrap();
        }
        for _ in 0..FRAMES {
            for id in 0..SESSIONS {
                server.submit_blocking(id, frame_at(RES)).unwrap();
            }
        }
        for id in 0..SESSIONS {
            server.close(id).unwrap();
        }
        server.drain()
    };

    let control = run(None, false);
    assert_eq!(control.served, SESSIONS * FRAMES);
    assert_eq!(control.shed, 0);
    let control_inferences: u64 = control
        .iter()
        .map(|(_, o)| o.as_ref().expect("calm run").inferences)
        .sum();
    assert_eq!(
        control_inferences,
        SESSIONS * FRAMES,
        "EW-1 infers every frame"
    );

    let degraded = run(Some(fast_slo(8)), true);
    // Per session: epoch 0 steps to rung 1 before arrival 0 is pushed,
    // rung 2 at arrival 4, the shedding rung at arrival 8 — so 8 frames
    // served, 8 shed, and the EW window never narrows back.
    assert_eq!(degraded.frames, SESSIONS * FRAMES);
    assert_eq!(degraded.served, SESSIONS * 8);
    assert_eq!(degraded.shed, SESSIONS * 8);
    assert_eq!(
        degraded.frames,
        degraded.served + degraded.dropped + degraded.shed
    );
    let walk = degraded.degradation.as_ref().expect("slo armed");
    let timeline: Vec<(u64, usize, usize)> = walk
        .timeline
        .iter()
        .map(|t| (t.epoch, t.from, t.to))
        .collect();
    assert_eq!(timeline, vec![(0, 0, 1), (1, 1, 2), (2, 2, 3)]);
    assert_eq!(walk.final_rung, 3);
    assert_eq!(walk.shed, degraded.shed);
    assert_eq!(
        walk.frames_per_rung,
        vec![0, SESSIONS * 4, SESSIONS * 4, SESSIONS * 8],
        "every frame lands on its scheduled rung"
    );
    assert_eq!(
        walk.reconfigs,
        SESSIONS * 3,
        "one live re-config per step per session"
    );
    let degraded_inferences: u64 = degraded
        .iter()
        .map(|(_, o)| o.as_ref().expect("shedding is not failure").inferences)
        .sum();
    assert_eq!(
        degraded_inferences, SESSIONS,
        "widened windows leave one I-frame per session"
    );
    assert!(degraded_inferences < control_inferences);
    // Wall-clock is reported, never asserted (1-core CI box).
    println!(
        "degraded queue-wait p99 = {} ns (target {} ns), shed rate = {:.2}",
        degraded.queue_wait.quantile(0.99),
        Duration::from_millis(5).as_nanos(),
        degraded.shed as f64 / degraded.frames as f64,
    );
}

// ---------------------------------------------------------------------------
// Circuit breaker: forced saturation trips the producer's breaker and
// tombstones the session with a typed reason.
// ---------------------------------------------------------------------------

#[test]
fn forced_saturation_trips_the_circuit_breaker() {
    let seed = 9;
    let scene = SceneBuilder::new(RES, seed)
        .background(Texture::background_noise(seed ^ 0xB6))
        .object_default()
        .build();
    let seq = Sequence {
        name: "breaker".to_string(),
        attributes: vec![],
        scene,
        frames: 8,
    };
    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![SchemeSpec::new("ew4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()],
        // reject_every = 1: every deadline admission is forcibly Busy.
        ServeConfig::sized(1, 8).with_chaos(ChaosConfig::seeded(3).with_rejections(1)),
    )
    .unwrap();
    let policy = FeedPolicy {
        attempts: 2,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(200),
        jitter_seed: 1,
        park_after_retries: false,
        breaker_threshold: 3,
        breaker_cooldown: 0,
    };
    let feed = euphrates_serve::feed_sequence_with(
        &server,
        0,
        "ew4",
        &seq,
        &MotionConfig::default(),
        &policy,
    )
    .expect("feed survives a tripped breaker");
    assert!(feed.tripped, "breaker never tripped: {feed:?}");
    assert_eq!(feed.submitted, 0);
    assert_eq!(feed.rejected, 3, "threshold consecutive rejections trip");
    assert_eq!(feed.retries, 6, "two attempts per rejected frame");

    let report = server.drain();
    assert_eq!(report.frames, 0, "every admission was forcibly rejected");
    assert_eq!(report.failure_kind(0), Some(FailureKind::CircuitBroken));
    assert_eq!(report.failure_breakdown().circuit_broken, 1);
    let err = report.outcome(0).unwrap().as_ref().unwrap_err().to_string();
    assert!(err.contains("circuit breaker"), "untyped reason: {err}");
    assert_eq!(report.chaos.expect("chaos armed").rejections, 6);
    assert_eq!(report.ingress.spin_retries, 0);
    // Legacy terminal breaker: one trip, nothing short-circuited or
    // reclosed (the feed stops at the trip).
    assert_eq!((feed.trips, feed.short_circuited, feed.reclosed), (1, 0, 0));
}

// ---------------------------------------------------------------------------
// Half-open breaker: a nonzero cooldown turns the trip into open →
// skip-N → probe cycles instead of a tombstone.
// ---------------------------------------------------------------------------

fn breaker_sequence(frames: u32) -> Sequence {
    let scene = SceneBuilder::new(RES, 5)
        .background(Texture::background_noise(0x5B))
        .object_default()
        .build();
    Sequence {
        name: "half-open".to_string(),
        attributes: vec![],
        scene,
        frames,
    }
}

fn half_open_feed(reject_every: u64) -> (euphrates_serve::FeedReport, FailureBreakdownProbe) {
    let server = SessionServer::new(
        CalmTask,
        vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, 32).with_chaos(ChaosConfig::seeded(3).with_rejections(reject_every)),
    )
    .unwrap();
    let policy = FeedPolicy {
        attempts: 1,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(200),
        jitter_seed: 1,
        park_after_retries: false,
        breaker_threshold: 2,
        breaker_cooldown: 3,
    };
    let feed = euphrates_serve::feed_sequence_with(
        &server,
        0,
        "s",
        &breaker_sequence(16),
        &MotionConfig::default(),
        &policy,
    )
    .expect("half-open feed never hard-fails");
    let report = server.drain();
    let probe = FailureBreakdownProbe {
        circuit_broken: report.failure_breakdown().circuit_broken,
        frames: report.frames,
        submitted_match: report.frames == feed.submitted,
    };
    (feed, probe)
}

struct FailureBreakdownProbe {
    circuit_broken: usize,
    frames: u64,
    submitted_match: bool,
}

#[test]
fn half_open_breaker_cycles_open_probe_reopen_under_total_rejection() {
    // reject_every = 1: every admission is forcibly Busy, so every
    // half-open probe fails and the breaker never recloses. The whole
    // timeline is a pure function of the policy: trip at frame 1
    // (threshold 2), skip 3, probe-and-retrip at frames 5, 9, 13.
    let (feed, probe) = half_open_feed(1);
    assert_eq!(feed.submitted, 0);
    assert_eq!(feed.rejected, 5, "2 tripping frames + 3 failed probes");
    assert_eq!(feed.retries, 5, "one attempt per admitted frame");
    assert_eq!(feed.trips, 4, "initial trip + 3 failed probes");
    assert_eq!(feed.short_circuited, 11, "3 per cooldown, 2 at the tail");
    assert_eq!(feed.reclosed, 0);
    assert!(!feed.tripped, "half-open mode never tombstones");
    // The session survives: no CircuitBroken tombstone, clean close.
    assert_eq!(probe.circuit_broken, 0);
    assert_eq!(probe.frames, 0);
    assert!(probe.submitted_match);
}

#[test]
fn half_open_breaker_recloses_on_a_surviving_probe() {
    // reject_every = 2 fires on roughly half the admissions: probes can
    // survive, so the breaker must both trip and reclose at least once,
    // and the whole timeline must be bit-identical across runs.
    let (feed, probe) = half_open_feed(2);
    let (again, _) = half_open_feed(2);
    assert_eq!(feed, again, "breaker timeline must be pure");
    assert!(feed.trips >= 1, "never tripped: {feed:?}");
    assert!(feed.reclosed >= 1, "no probe ever reclosed: {feed:?}");
    assert!(!feed.tripped);
    assert_eq!(probe.circuit_broken, 0);
    assert!(probe.submitted_match, "accepted frames lost");
    assert_eq!(
        feed.submitted + feed.rejected + feed.short_circuited,
        16,
        "verdicts must partition the sequence: {feed:?}"
    );
}

// ---------------------------------------------------------------------------
// Backoff: pure, bounded, growing to the cap, decorrelated per session.
// ---------------------------------------------------------------------------

#[test]
fn feed_backoff_is_pure_bounded_and_decorrelated() {
    let policy = FeedPolicy::default();
    let base = policy.base_backoff.as_nanos() as u64;
    let cap = policy.max_backoff.as_nanos() as u64;
    for id in 0..8u64 {
        for frame in 0..32u64 {
            for attempt in 0..8u32 {
                let d = policy.backoff(id, frame, attempt).as_nanos() as u64;
                assert_eq!(
                    d,
                    policy.backoff(id, frame, attempt).as_nanos() as u64,
                    "backoff must be pure"
                );
                let exp = (base << attempt).min(cap);
                assert!(
                    d >= exp / 2 && d <= exp + 1,
                    "backoff {d} outside [{}, {}] at attempt {attempt}",
                    exp / 2,
                    exp + 1
                );
            }
        }
    }
    // Exponential growth reaches the cap's window.
    let late = policy.backoff(1, 0, 7).as_nanos() as u64;
    assert!(late >= cap / 2, "late attempts must reach the cap window");
    // Sessions decorrelate: not every (frame, attempt) agrees.
    let a: Vec<u64> = (0..64)
        .map(|f| policy.backoff(1, f, 1).as_nanos() as u64)
        .collect();
    let b: Vec<u64> = (0..64)
        .map(|f| policy.backoff(2, f, 1).as_nanos() as u64)
        .collect();
    assert_ne!(a, b, "jitter must decorrelate sessions");
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

#[test]
fn chaos_and_slo_configs_validate_at_server_construction() {
    let schemes = || vec![SchemeSpec::new("s", BackendConfig::baseline()).unwrap()];
    // A pressure plan without an SLO has nothing to drive.
    let err = SessionServer::new(
        CalmTask,
        schemes(),
        ServeConfig::sized(1, 8).with_chaos(
            ChaosConfig::seeded(1).with_pressure(PressurePlan::Burst { from: 0, until: 1 }),
        ),
    )
    .err()
    .expect("pressure plan without SLO must be rejected");
    assert!(err.to_string().contains("SLO"));
    // Invalid SLO configs are rejected up front.
    let mut slo = fast_slo(1);
    slo.eval_every = 0;
    assert!(
        SessionServer::new(CalmTask, schemes(), ServeConfig::sized(1, 8).with_slo(slo)).is_err()
    );
    // A valid pairing constructs (and drains clean when unused).
    let server = SessionServer::new(
        CalmTask,
        schemes(),
        ServeConfig::sized(1, 8)
            .with_slo(fast_slo(1))
            .with_chaos(ChaosConfig::seeded(1)),
    )
    .unwrap();
    assert_eq!(server.current_rung(), 0);
    let report = server.drain();
    assert_eq!(report.frames, 0);
    assert_eq!(
        report.chaos.expect("armed").total(),
        0,
        "unarmed channels stay silent"
    );
}
