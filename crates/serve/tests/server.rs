//! The serving contract of `SessionServer`: sharded sessions bit-match
//! standalone `Session` runs and the offline `Scenario::evaluate` (with
//! and without cross-session NN batching), backpressure parks producers
//! at the configured bound without spinning, drain flushes every
//! in-flight session, and a panicking session is isolated to itself.

use euphrates_camera::scene::SceneBuilder;
use euphrates_camera::texture::Texture;
use euphrates_common::image::Resolution;
use euphrates_common::par::parallel_map;
use euphrates_core::prelude::*;
use euphrates_isp::motion::MotionField;
use euphrates_nn::oracle::calib;
use euphrates_serve::{feed_sequence, NnBatchConfig, ServeConfig, SessionServer, Submit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const MINI_RES: Resolution = Resolution::new(80, 60);

/// A tiny tracking sequence (80×60, drifting rigid target) — small
/// enough that hundreds of sessions stay cheap in debug builds.
fn mini_sequence(i: u64, frames: u32) -> Sequence {
    let seed = 1000 + i;
    let scene = SceneBuilder::new(MINI_RES, seed)
        .background(Texture::background_noise(seed ^ 0xB6))
        .object_default()
        .build();
    Sequence {
        name: format!("mini_{i}"),
        attributes: vec![],
        scene,
        frames,
    }
}

fn zeroed_frame(res: Resolution) -> Arc<FrameData> {
    Arc::new(FrameData::new(
        vec![],
        MotionField::zeroed(res, 16, 7).expect("valid field"),
    ))
}

// ---------------------------------------------------------------------------
// Test tasks: a gate that blocks every step, and a step that panics on
// one chosen (session, frame).
// ---------------------------------------------------------------------------

/// Blocks every I/E step until `release()` — makes queue occupancy
/// deterministic for the backpressure tests.
#[derive(Debug, Clone)]
struct GateTask {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GateTask {
    fn new() -> Self {
        GateTask {
            gate: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    fn release(&self) {
        let (lock, cv) = &*self.gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    fn wait_open(&self) {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
    }
}

impl VisionTask for GateTask {
    type State = ();

    fn name(&self) -> &'static str {
        "gate"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        _config: &BackendConfig,
        _stream: u64,
    ) -> euphrates_common::Result<()> {
        Ok(())
    }

    fn infer(&self, _ctx: &FrameContext, _state: &mut (), _outcome: &mut TaskOutcome) -> StepStats {
        self.wait_open();
        StepStats::default()
    }

    fn extrapolate(
        &self,
        _ctx: &FrameContext,
        _state: &mut (),
        _outcome: &mut TaskOutcome,
    ) -> StepStats {
        self.wait_open();
        StepStats::default()
    }

    fn score(&self, _ctx: &FrameContext, _state: &(), _outcome: &mut TaskOutcome) {}
}

/// Panics inside the task step of one chosen session at one chosen
/// frame — the hostile tenant of the isolation test.
#[derive(Debug, Clone)]
struct PanicTask {
    victim_stream: u64,
    panic_at: u64,
}

impl VisionTask for PanicTask {
    type State = ();

    fn name(&self) -> &'static str {
        "panicky"
    }

    fn init(
        &self,
        _resolution: Resolution,
        _first: &FrameData,
        _config: &BackendConfig,
        _stream: u64,
    ) -> euphrates_common::Result<()> {
        Ok(())
    }

    fn infer(&self, ctx: &FrameContext, _state: &mut (), _outcome: &mut TaskOutcome) -> StepStats {
        if ctx.stream == self.victim_stream && ctx.index == self.panic_at {
            panic!("tenant exploded at frame {}", ctx.index);
        }
        StepStats::default()
    }

    fn extrapolate(
        &self,
        ctx: &FrameContext,
        state: &mut (),
        outcome: &mut TaskOutcome,
    ) -> StepStats {
        self.infer(ctx, state, outcome)
    }

    fn score(&self, _ctx: &FrameContext, _state: &(), _outcome: &mut TaskOutcome) {}
}

// ---------------------------------------------------------------------------
// Bit-identity
// ---------------------------------------------------------------------------

/// The acceptance criterion: ≥ 256 concurrently served sessions whose
/// per-session outcomes are bit-identical to the offline
/// `Scenario::evaluate` over the same suite (session id = suite index =
/// oracle stream) — through BOTH the plain server and the
/// batching-enabled server, since batching defers only cost
/// attribution, never decisions.
#[test]
fn serves_256_sessions_bit_identical_to_offline_evaluate() {
    const SESSIONS: u64 = 256;
    let suite: Vec<Sequence> = (0..SESSIONS).map(|i| mini_sequence(i, 5)).collect();
    let motion = MotionConfig::default();
    let scenario = Scenario::builder(TrackerTask::new(calib::mdnet()))
        .suite(suite.clone())
        .motion(motion)
        .scheme("EW-4", BackendConfig::new(EwPolicy::Constant(4)))
        .build()
        .unwrap();
    let offline = scenario.evaluate().unwrap();

    let configs = [
        ServeConfig::sized(4, 8),
        ServeConfig::sized(4, 8).with_nn_batching(NnBatchConfig {
            network: euphrates_nn::zoo::mdnet(),
            max_batch: 16,
            max_wait: Duration::from_micros(200),
        }),
    ];
    for config in configs {
        let batching = config.nn_batching.is_some();
        let server = SessionServer::new(
            TrackerTask::new(calib::mdnet()),
            vec![SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()],
            config,
        )
        .unwrap();
        // Concurrent producers: 8 feeder threads × 256 sessions, frames
        // rendered client-side and submitted with parked backpressure.
        let ids: Vec<u64> = (0..SESSIONS).collect();
        let fed: Vec<euphrates_common::Result<()>> = parallel_map(&ids, 8, |_, &id| {
            feed_sequence(&server, id, "EW-4", &suite[id as usize], &motion)
        });
        assert!(fed.iter().all(|r| r.is_ok()));

        let report = server.drain();
        assert_eq!(report.sessions(), SESSIONS as usize);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.served, SESSIONS * 5);
        assert_eq!(report.latency.count(), report.served);
        assert_eq!(report.queue_wait.count(), report.frames);
        // No spin-yield path: any waiting was parked, never retried.
        assert_eq!(report.ingress.spin_retries, 0);
        // Every shard carried some of the load, and says so twice.
        assert!(report.per_worker_frames.iter().all(|&f| f > 0));
        assert_eq!(report.per_worker.len(), 4);
        for (w, stats) in report.per_worker.iter().enumerate() {
            assert_eq!(stats.frames, report.per_worker_frames[w]);
            assert!(stats.occupancy() <= 1.0);
        }
        let mut inferences = 0u64;
        for (si, offline_outcome) in offline.schemes[0].per_sequence.iter().enumerate() {
            let served = report
                .outcome(si as u64)
                .expect("session reported")
                .as_ref()
                .expect("session healthy");
            assert_eq!(
                served, offline_outcome,
                "session {si} diverged (batching={batching})"
            );
            inferences += served.inferences;
        }
        // The batching server charges every I-frame inference through a
        // batch, and the fused cost amortizes below jobs × solo.
        match &report.nn {
            Some(nn) => {
                assert!(batching);
                assert_eq!(nn.jobs, inferences);
                assert!(nn.batches >= 1);
                assert_eq!(nn.batch_sizes.count(), nn.batches);
                assert!(nn.amortization() < 1.0, "ratio {}", nn.amortization());
                assert!(nn.energy_mj > 0.0);
                assert!(nn.dram_bytes > 0);
            }
            None => assert!(!batching),
        }
    }
}

/// The satellite's interleaving shape: N sessions fed round-robin from
/// one producer (frame j of every session before frame j+1 of any) must
/// bit-match N independent `Session` runs.
#[test]
fn interleaved_sessions_bit_match_independent_runs() {
    const N: u64 = 8;
    const FRAMES: u32 = 6;
    let motion = MotionConfig::default();
    let preps: Vec<PreparedSequence> = (0..N)
        .map(|i| prepare_sequence(&mini_sequence(100 + i, FRAMES), &motion).unwrap())
        .collect();
    let backend = BackendConfig::new(EwPolicy::Constant(4));

    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![SchemeSpec::new("EW-4", backend).unwrap()],
        ServeConfig::sized(3, 4),
    )
    .unwrap();
    for (i, prep) in preps.iter().enumerate() {
        server.open(i as u64, "EW-4", prep.resolution).unwrap();
    }
    for j in 0..FRAMES as usize {
        for (i, prep) in preps.iter().enumerate() {
            server
                .submit_blocking(i as u64, Arc::new(prep.frames[j].clone()))
                .unwrap();
        }
    }
    let report = server.drain();
    assert_eq!(report.ingress.spin_retries, 0);

    for (i, prep) in preps.iter().enumerate() {
        let mut solo = Session::new(
            TrackerTask::new(calib::mdnet()),
            backend,
            prep.resolution,
            i as u64,
        )
        .unwrap();
        for frame in &prep.frames {
            solo.push_frame(frame).unwrap();
        }
        let served = report
            .outcome(i as u64)
            .expect("session reported")
            .as_ref()
            .expect("session healthy");
        assert_eq!(served, &solo.finish(), "session {i} diverged");
    }
}

// ---------------------------------------------------------------------------
// Backpressure / parking / drain / isolation
// ---------------------------------------------------------------------------

#[test]
fn backpressure_triggers_at_the_configured_bound() {
    const DEPTH: usize = 4;
    let gate = GateTask::new();
    let server = SessionServer::new(
        gate.clone(),
        vec![SchemeSpec::new("g", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, DEPTH),
    )
    .unwrap();
    server.open(7, "g", MINI_RES).unwrap();

    // The worker blocks inside the first frame's task step; the lane
    // can then hold at most DEPTH more messages, so Busy must appear
    // after at most DEPTH + 1 acceptances (and no earlier than
    // DEPTH − 1: the Open control message may still occupy a slot) —
    // the memory bound.
    let mut enqueued = 0u32;
    let mut saw_busy = false;
    for _ in 0..DEPTH + 8 {
        match server.try_submit(7, zeroed_frame(MINI_RES)) {
            Submit::Enqueued => enqueued += 1,
            Submit::Busy(frame) => {
                // The frame comes back to the caller intact.
                assert_eq!(frame.truth.len(), 0);
                saw_busy = true;
                break;
            }
        }
    }
    assert!(saw_busy, "lane never reported Busy past its bound");
    assert!(
        (DEPTH as u32 - 1..=DEPTH as u32 + 1).contains(&enqueued),
        "accepted {enqueued} frames on a depth-{DEPTH} lane"
    );
    assert!(server.ingress_snapshot().busy_rejections >= 1);

    // Releasing the gate lets the queue drain; everything accepted is
    // served and nothing is lost.
    gate.release();
    let report = server.drain();
    assert_eq!(report.served, u64::from(enqueued));
    assert_eq!(report.dropped, 0);
    let outcome = report.outcome(7).unwrap().as_ref().unwrap();
    assert_eq!(outcome.frames, u64::from(enqueued));
}

/// The tentpole's ingress criterion: under saturation, blocked
/// producers PARK (wakeup counters grow) and the spin-retry counter
/// stays zero — no spin-yield submit path remains — while the server
/// still drains every accepted frame.
#[test]
fn saturated_producers_park_without_spinning() {
    const DEPTH: usize = 2;
    const FRAMES: u64 = 8;
    let gate = GateTask::new();
    let server = Arc::new(
        SessionServer::new(
            gate.clone(),
            vec![SchemeSpec::new("g", BackendConfig::baseline()).unwrap()],
            ServeConfig::sized(1, DEPTH),
        )
        .unwrap(),
    );
    server.open(1, "g", MINI_RES).unwrap();

    let accepted = Arc::new(AtomicU64::new(0));
    let producer = {
        let server = Arc::clone(&server);
        let accepted = Arc::clone(&accepted);
        std::thread::spawn(move || {
            for _ in 0..FRAMES {
                server.submit_blocking(1, zeroed_frame(MINI_RES)).unwrap();
                accepted.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    // The worker is stuck inside frame 1's task step, so once the lane
    // fills the producer MUST park — wait until the gate has seen it.
    while server.ingress_snapshot().parked == 0 {
        std::thread::yield_now();
    }
    assert_eq!(server.ingress_snapshot().spin_retries, 0);

    gate.release();
    producer.join().unwrap();
    assert_eq!(accepted.load(Ordering::SeqCst), FRAMES);

    let server = Arc::into_inner(server).expect("producer joined");
    let report = server.drain();
    assert!(report.ingress.parked > 0, "no producer ever parked");
    assert!(report.ingress.woken > 0, "no parked producer was woken");
    assert_eq!(report.ingress.spin_retries, 0, "spin path executed");
    assert_eq!(report.served, FRAMES);
    assert_eq!(report.dropped, 0);
    // Per-worker stats carry the same parking counters.
    assert_eq!(
        report.per_worker.iter().map(|w| w.parked).sum::<u64>(),
        report.ingress.parked
    );
}

/// `submit_deadline` hands the frame back when the lane stays full past
/// the deadline, and counts the rejection.
#[test]
fn deadline_submit_returns_the_frame_on_timeout() {
    let gate = GateTask::new();
    let server = SessionServer::new(
        gate.clone(),
        vec![SchemeSpec::new("g", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, 1),
    )
    .unwrap();
    server.open(3, "g", MINI_RES).unwrap();
    // Frame 1 is dequeued and blocks the worker; frame 2 occupies the
    // single slot; frame 3 must park until the deadline and come back.
    server.submit_blocking(3, zeroed_frame(MINI_RES)).unwrap();
    server.submit_blocking(3, zeroed_frame(MINI_RES)).unwrap();
    match server.submit_deadline(3, zeroed_frame(MINI_RES), Duration::from_millis(10)) {
        Submit::Busy(frame) => assert_eq!(frame.truth.len(), 0),
        Submit::Enqueued => panic!("a blocked lane accepted a third frame"),
    }
    assert!(server.ingress_snapshot().busy_rejections >= 1);

    gate.release();
    let report = server.drain();
    assert_eq!(report.served, 2);
    assert_eq!(report.ingress.spin_retries, 0);
}

#[test]
fn drain_flushes_unclosed_sessions() {
    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![SchemeSpec::new("base", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(2, 8),
    )
    .unwrap();
    let motion = MotionConfig::default();
    for i in 0..4u64 {
        let prep = prepare_sequence(&mini_sequence(200 + i, 3), &motion).unwrap();
        server.open(i, "base", prep.resolution).unwrap();
        for frame in &prep.frames {
            server.submit_blocking(i, Arc::new(frame.clone())).unwrap();
        }
        // No close: drain must flush it.
    }
    let report = server.drain();
    assert_eq!(report.sessions(), 4);
    assert_eq!(report.served, 12);
    for i in 0..4u64 {
        let outcome = report.outcome(i).unwrap().as_ref().unwrap();
        assert_eq!(outcome.frames, 3, "session {i}");
    }
}

#[test]
fn panicking_session_is_isolated_and_reported() {
    // One worker ⇒ both sessions share a shard; the victim's panic must
    // not disturb its neighbour.
    let server = SessionServer::new(
        PanicTask {
            victim_stream: 13,
            panic_at: 2,
        },
        vec![SchemeSpec::new("p", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, 32),
    )
    .unwrap();
    server.open(13, "p", MINI_RES).unwrap();
    server.open(26, "p", MINI_RES).unwrap();
    for _ in 0..5 {
        for id in [13u64, 26] {
            server.submit_blocking(id, zeroed_frame(MINI_RES)).unwrap();
        }
    }
    let report = server.drain();
    // Victim: 2 healthy frames, then the panic (dropped), then 2 more
    // frames refused by the dead slot.
    let err = report.outcome(13).unwrap().as_ref().unwrap_err();
    assert!(err.to_string().contains("panicked"), "{err}");
    assert!(err.to_string().contains("exploded"), "{err}");
    assert_eq!(report.dropped, 3);
    // Neighbour: untouched.
    let ok = report.outcome(26).unwrap().as_ref().unwrap();
    assert_eq!(ok.frames, 5);
    assert_eq!(report.served, 5 + 2);
}

// ---------------------------------------------------------------------------
// Configuration / misc contract
// ---------------------------------------------------------------------------

#[test]
fn server_is_shareable_across_producers() {
    fn is_sync<T: Sync>() {}
    fn is_send<T: Send>() {}
    is_sync::<SessionServer<TrackerTask>>();
    is_send::<SessionServer<TrackerTask>>();
}

#[test]
fn config_validation_rejects_nonsense() {
    let mk = |schemes: Vec<SchemeSpec>, workers, queue_depth| {
        SessionServer::new(
            TrackerTask::new(calib::mdnet()),
            schemes,
            ServeConfig::sized(workers, queue_depth),
        )
    };
    assert!(mk(vec![], 2, 8).is_err(), "no schemes");
    let dup = vec![
        SchemeSpec::new("a", BackendConfig::baseline()).unwrap(),
        SchemeSpec::new("a", BackendConfig::baseline()).unwrap(),
    ];
    assert!(mk(dup, 2, 8).is_err(), "duplicate ids");
    let one = || vec![SchemeSpec::new("a", BackendConfig::baseline()).unwrap()];
    assert!(mk(one(), 0, 8).is_err(), "zero workers");
    assert!(mk(one(), 2, 0).is_err(), "zero depth");
    assert!(
        SessionServer::new(
            TrackerTask::new(calib::mdnet()),
            one(),
            ServeConfig::sized(1, 4).with_nn_batching(NnBatchConfig {
                network: euphrates_nn::zoo::mdnet(),
                max_batch: 0,
                max_wait: Duration::from_micros(100),
            }),
        )
        .is_err(),
        "zero max_batch"
    );

    let server = mk(one(), 2, 8).unwrap();
    assert_eq!(server.workers(), 2);
    assert!(server.open(0, "nope", MINI_RES).is_err(), "unknown scheme");
    let report = server.drain();
    assert_eq!(report.sessions(), 0);
    assert_eq!(report.frames, 0);
    assert!(report.nn.is_none());
}

#[test]
fn frames_for_unopened_sessions_are_dropped_not_fatal() {
    let server = SessionServer::new(
        TrackerTask::new(calib::mdnet()),
        vec![SchemeSpec::new("a", BackendConfig::baseline()).unwrap()],
        ServeConfig::sized(1, 8),
    )
    .unwrap();
    assert!(server.try_submit(99, zeroed_frame(MINI_RES)).is_enqueued());
    let report = server.drain();
    assert_eq!(report.dropped, 1);
    assert_eq!(report.served, 0);
    assert!(report.outcome(99).is_none());
}
