//! Crash recovery: session checkpoints, the per-lane recovery ledger,
//! worker heartbeats, and the supervisor's report types.
//!
//! A dead or wedged *worker* is the one fault the per-session isolation
//! of [`SessionServer`][crate::SessionServer] cannot absorb: every
//! session sharded onto the lane is stranded at once. With
//! [`ServeConfig::with_supervision`][crate::ServeConfig::with_supervision]
//! the server runs a write-ahead recovery scheme on top of
//! [`Session::snapshot`][euphrates_core::api::Session::snapshot]:
//!
//! * **Checkpoints.** Each worker keeps, per session, a
//!   [`SessionCheckpoint`]-based ledger entry in a lane-shared store:
//!   a full checkpoint refreshed every
//!   [`checkpoint_every`][SuperviseConfig::checkpoint_every] arrivals,
//!   plus the ordered **replay log** of every frame processed since.
//!   Checkpoints land at deterministic arrival counts (multiples of the
//!   cadence), so a session's replay distance at any fault point is a
//!   pure function of its arrival index — worker-count independent.
//! * **Heartbeats.** Workers pulse a logical beat counter around every
//!   message (`Pulse`); the watchdog declares a worker dead either on
//!   thread exit (a chaos kill, keyed on the same `counter_hash`
//!   counters as every other fault) or on
//!   [`missed_beats`][SuperviseConfig::missed_beats] consecutive polls
//!   that find the worker *mid-message* with a frozen beat count — an
//!   idle worker (even beat count, parked on its empty lane) is never
//!   deposed.
//! * **Resurrection.** The watchdog restores each ledgered session from
//!   its checkpoint and replays the logged frames through the same
//!   scheduling logic (rung walk included) to rebuild the exact
//!   pre-fault state, then hands the rebuilt session table — plus the
//!   dead worker's lane receiver and in-flight message — to a freshly
//!   spawned successor. Replayed frames touch **no** counters: every
//!   frame is counted once, by whichever worker incarnation completes
//!   it. A session whose replay log outgrew
//!   [`replay_budget`][SuperviseConfig::replay_budget] drains as
//!   [`FailureKind::Unrecovered`][crate::FailureKind] with
//!   the exact budget arithmetic in its error — it never silently
//!   vanishes.
//!
//! Everything the drained [`RecoveryReport`] states — the incident
//! timeline, per-incident replay distance, and the MTTR — is in
//! *logical ticks* (arrival indices), never wall-clock, so the chaos
//! suite asserts bit-equal recovery timelines at 1 and 4 workers.

use crate::degrade::OverloadController;
use crate::{FailureKind, SessionId};
use euphrates_common::error::{Error, Result};
use euphrates_core::api::{SessionCheckpoint, VisionTask};
use euphrates_core::frontend::FrameData;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Supervisor sizing: checkpoint cadence, replay budget, and watchdog
/// timing.
///
/// The cadence/budget pair is a memory-vs-recoverability dial: the
/// ledger holds up to `checkpoint_every + replay_budget` frames per
/// session (`Arc`-shared with the producer, so "holds" costs one
/// refcount, not a copy), and a session is recoverable whenever its
/// replay log is within budget. A tight cadence shrinks both the log
/// and the replay work per resurrection; a loose cadence amortizes the
/// snapshot cost over more frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Refresh a session's checkpoint every n-th arrival (the replay
    /// log resets with each refresh). Checkpoints land at deterministic
    /// arrival multiples, which is what makes recovery timelines
    /// worker-count invariant.
    pub checkpoint_every: u64,
    /// Maximum post-checkpoint frames the ledger will replay. A worker
    /// death that finds a session further than this from its checkpoint
    /// drains it as [`FailureKind::Unrecovered`][crate::FailureKind]
    /// (with the exact budget arithmetic in the error) instead of
    /// resurrecting from a log it refused to keep. A budget of at least
    /// `checkpoint_every - 1` makes every fault point recoverable; a
    /// smaller one deliberately trades memory for a deterministic
    /// unrecoverable band (`lag ∈ budget+1..checkpoint_every`) — the
    /// knob the recovery bench sweeps.
    pub replay_budget: u64,
    /// How often the watchdog polls worker pulses (wall-clock by
    /// nature; detection *latency* varies with the scheduler, but which
    /// sessions recover — and every number in the
    /// [`RecoveryReport`] — is logical).
    pub beat_interval: Duration,
    /// Consecutive stale mid-message polls before a worker is deposed.
    pub missed_beats: u32,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            checkpoint_every: 8,
            replay_budget: 16,
            beat_interval: Duration::from_millis(1),
            missed_beats: 4,
        }
    }
}

impl SuperviseConfig {
    /// A config with the given checkpoint cadence and replay budget,
    /// default watchdog timing.
    pub fn every(checkpoint_every: u64, replay_budget: u64) -> Self {
        SuperviseConfig {
            checkpoint_every,
            replay_budget,
            ..SuperviseConfig::default()
        }
    }

    /// Sets the watchdog poll interval and the stale-poll threshold.
    pub fn with_watchdog(mut self, beat_interval: Duration, missed_beats: u32) -> Self {
        self.beat_interval = beat_interval;
        self.missed_beats = missed_beats;
        self
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero checkpoint cadence and a zero watchdog interval
    /// or beat threshold. An under-covering replay budget
    /// (`< checkpoint_every - 1`) is *allowed*: it deterministically
    /// makes some fault points unrecoverable, which is a legitimate
    /// memory ceiling (and the reachable path to
    /// [`FailureKind::Unrecovered`][crate::FailureKind]).
    pub fn validate(&self) -> Result<()> {
        if self.checkpoint_every == 0 {
            return Err(Error::config("supervision checkpoint cadence must be >= 1"));
        }
        if self.beat_interval.is_zero() {
            return Err(Error::config("watchdog beat interval must be positive"));
        }
        if self.missed_beats == 0 {
            return Err(Error::config("watchdog missed-beat threshold must be >= 1"));
        }
        Ok(())
    }
}

/// A worker's heartbeat: a monotonic logical beat counter bumped at
/// message start and end, a busy flag marking the mid-message half, and
/// the watchdog's deposal order.
#[derive(Debug, Default)]
pub(crate) struct Pulse {
    beats: AtomicU64,
    busy: AtomicBool,
    deposed: AtomicBool,
}

impl Pulse {
    /// Worker side: entering a message.
    pub(crate) fn start(&self) {
        self.busy.store(true, Ordering::Relaxed);
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker side: finished a message.
    pub(crate) fn finish(&self) {
        self.busy.store(false, Ordering::Relaxed);
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Watchdog side: one stale-detection sample.
    pub(crate) fn sample(&self) -> (u64, bool) {
        (
            self.beats.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
        )
    }

    /// Watchdog side: order the worker to step down at its next
    /// progress point.
    pub(crate) fn depose(&self) {
        self.deposed.store(true, Ordering::Relaxed);
    }

    /// Worker side: has the watchdog given up on us?
    pub(crate) fn is_deposed(&self) -> bool {
        self.deposed.load(Ordering::Relaxed)
    }

    /// Watchdog side: clear the deposal before spawning a successor on
    /// this seat.
    pub(crate) fn reinstate(&self) {
        self.busy.store(false, Ordering::Relaxed);
        self.deposed.store(false, Ordering::Relaxed);
    }
}

/// A checkpoint of one *serving slot*: the core session checkpoint plus
/// the serve-side state that must survive a resurrection — the scheme
/// index, the arrival counter every deterministic schedule keys on, the
/// rung currently applied, and (under a pressure plan) the session's
/// own controller replica.
pub(crate) struct SlotCheckpoint<T: VisionTask> {
    pub(crate) session: SessionCheckpoint<T>,
    pub(crate) scheme: usize,
    pub(crate) arrivals: u64,
    pub(crate) applied_rung: usize,
    pub(crate) walk: Option<OverloadController>,
}

impl<T> Clone for SlotCheckpoint<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    fn clone(&self) -> Self {
        SlotCheckpoint {
            session: self.session.clone(),
            scheme: self.scheme,
            arrivals: self.arrivals,
            applied_rung: self.applied_rung,
            walk: self.walk.clone(),
        }
    }
}

/// One session's recovery ledger entry: its last checkpoint plus the
/// write-ahead replay log, or the tombstone of an already-dead session
/// (kept so a resurrection reproduces dead slots too — a late frame for
/// a poisoned session must still count as dropped after a respawn).
// Live dominates the store in any healthy run; boxing it would put an
// indirection on every checkpoint refresh and WAL append.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Ledger<T: VisionTask> {
    Live(LiveLedger<T>),
    Dead { error: Error, kind: FailureKind },
}

/// The live half of a [`Ledger`].
pub(crate) struct LiveLedger<T: VisionTask> {
    pub(crate) checkpoint: SlotCheckpoint<T>,
    /// Frames processed since the checkpoint, in arrival order
    /// (`Arc`-shared with producers; emptied while `lost`).
    pub(crate) replay: Vec<Arc<FrameData>>,
    /// Arrivals since the checkpoint — kept separately so the budget
    /// arithmetic survives dropping an over-budget log.
    pub(crate) lag: u64,
    /// The replay log outgrew the budget: a crash now drains this
    /// session as `Unrecovered` (the next checkpoint refresh clears the
    /// flag).
    pub(crate) lost: bool,
    /// The arrival index of the last chaos kill this session triggered
    /// — the fuse that stops the redelivered frame from re-firing the
    /// same kill forever.
    pub(crate) last_kill: Option<u64>,
}

/// The lane-shared ledger store: written by the lane's worker on every
/// supervised message, read by the watchdog only after that worker is
/// gone (so the mutex is effectively uncontended).
pub(crate) type LedgerStore<T> = Arc<Mutex<HashMap<SessionId, Ledger<T>>>>;

/// What killed a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The worker thread died mid-message (chaos `kill_every`, keyed on
    /// the session's arrival index — worker-count invariant).
    WorkerKill,
    /// The watchdog deposed a wedged worker on missed heartbeats.
    Wedge,
}

/// One detected worker death and the resurrection that followed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryIncident {
    /// How the worker died.
    pub kind: IncidentKind,
    /// The session whose frame triggered the fault (for a wedge: the
    /// session whose message was in flight, if any).
    pub session: SessionId,
    /// The incident's logical tick: for a kill, the triggering
    /// session's arrival index (worker-count invariant); for a wedge,
    /// the worker's dequeue index.
    pub tick: u64,
    /// The triggering session's replay distance (frames past its last
    /// checkpoint) at the fault — the logical time to rebuild it.
    pub replay_lag: u64,
    /// Whether the triggering session was within its replay budget
    /// (`false` means it drained as `Unrecovered`).
    pub recovered: bool,
}

/// The recovery outcome of one server lifetime, part of
/// [`DrainReport`][crate::DrainReport] whenever supervision is
/// configured. Every number is logical — detections, respawns, replay
/// distances — never wall-clock.
///
/// Two invariance classes: the *timeline* (`incidents`, `respawns`,
/// [`mttr_ticks`][Self::mttr_ticks]) is a pure function of the seeded
/// chaos plan — identical at any worker count, because kill draws key
/// on `(session, arrival)`. The *collateral* counters (`resurrected`,
/// `replayed_frames`, `unrecovered`) additionally depend on session
/// *placement*: a worker death rebuilds every session sharded onto that
/// worker, so one kill resurrects 8 co-resident sessions at 1 worker
/// but only 2 at 4 workers, and an innocent co-resident session caught
/// over its replay budget mid-checkpoint-window is collateral damage
/// only where it actually shares the dying worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Every worker death, in `(tick, session)` order.
    pub incidents: Vec<RecoveryIncident>,
    /// Successor workers spawned (== incidents, unless drain raced).
    pub respawns: u64,
    /// Sessions rebuilt live from checkpoint + replay (placement-
    /// dependent: every session co-resident with a death is rebuilt).
    pub resurrected: u64,
    /// Frames replayed across all resurrections (counted here and only
    /// here — never in the frame/served counters).
    pub replayed_frames: u64,
    /// Sessions drained as
    /// [`FailureKind::Unrecovered`][crate::FailureKind] because their
    /// replay log was over budget when their worker died.
    pub unrecovered: u64,
}

impl RecoveryReport {
    /// Worker deaths detected (thread exits plus deposals).
    pub fn detections(&self) -> usize {
        self.incidents.len()
    }

    /// The deterministic mean-time-to-repair proxy: the worst
    /// per-incident replay distance, in logical ticks (frames replayed
    /// to rebuild the triggering session). Zero when nothing died.
    pub fn mttr_ticks(&self) -> u64 {
        self.incidents
            .iter()
            .map(|i| i.replay_lag)
            .max()
            .unwrap_or(0)
    }

    pub(crate) fn merge(&mut self, other: &RecoveryReport) {
        self.incidents.extend(other.incidents.iter().cloned());
        self.incidents.sort_by_key(|i| (i.tick, i.session));
        self.respawns += other.respawns;
        self.resurrected += other.resurrected;
        self.replayed_frames += other.replayed_frames;
        self.unrecovered += other.unrecovered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_tight_budgets_but_rejects_degenerate_timing() {
        assert!(SuperviseConfig::default().validate().is_ok());
        assert!(SuperviseConfig::every(1, 0).validate().is_ok());
        assert!(
            SuperviseConfig::every(8, 2).validate().is_ok(),
            "an under-covering budget is a memory ceiling, not an error"
        );
        assert!(SuperviseConfig::every(0, 4).validate().is_err());
        let bad = SuperviseConfig::default().with_watchdog(Duration::ZERO, 4);
        assert!(bad.validate().is_err());
        let bad = SuperviseConfig::default().with_watchdog(Duration::from_millis(1), 0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn pulse_distinguishes_idle_from_wedged() {
        let p = Pulse::default();
        let (b0, busy0) = p.sample();
        assert!(!busy0, "fresh pulse reads idle");
        p.start();
        let (b1, busy1) = p.sample();
        assert!(busy1 && b1 == b0 + 1, "mid-message reads busy");
        p.finish();
        let (b2, busy2) = p.sample();
        assert!(!busy2 && b2 == b0 + 2, "finished reads idle again");
        p.depose();
        assert!(p.is_deposed());
        p.reinstate();
        assert!(!p.is_deposed());
    }

    #[test]
    fn mttr_is_the_worst_replay_distance() {
        let mut r = RecoveryReport::default();
        assert_eq!(r.mttr_ticks(), 0);
        for (tick, lag) in [(9u64, 3u64), (2, 7), (5, 1)] {
            r.incidents.push(RecoveryIncident {
                kind: IncidentKind::WorkerKill,
                session: tick,
                tick,
                replay_lag: lag,
                recovered: true,
            });
        }
        assert_eq!(r.mttr_ticks(), 7);
        let mut merged = RecoveryReport::default();
        merged.merge(&r);
        assert_eq!(
            merged.incidents.first().map(|i| i.tick),
            Some(2),
            "merge sorts by logical tick"
        );
    }
}
