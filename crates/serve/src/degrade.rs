//! SLO-aware graceful degradation: the overload-control state machine.
//!
//! Euphrates' central observation — the EW window is a *knob* trading
//! accuracy for compute (§3.3) — makes the window the natural actuator
//! for overload control: a server that cannot meet its queue-wait SLO
//! can widen live sessions' windows (more extrapolation, fewer CNN
//! frames) instead of failing closed. This module declares that
//! mechanism as data:
//!
//! * [`SloConfig`] — the service-level objective: a per-frame queue-wait
//!   budget, a declared p99 target, the evaluation epoch, and the
//!   hysteresis streaks.
//! * [`DegradationLadder`] / [`Rung`] — the ordered list of states the
//!   server may degrade through. Each rung can widen the EW window,
//!   shrink the NN batching window, recommend a cheaper motion search
//!   to producers, and (last resort) shed frames.
//! * [`OverloadController`] — a **pure, deterministic** state machine:
//!   it consumes one pressure observation per epoch (the fraction of
//!   frames whose queue wait exceeded the budget, derived from the same
//!   measurements that feed the queue-wait histograms) and walks the
//!   ladder with two-sided hysteresis. Every transition is recorded
//!   into a timeline that [`DegradationReport`] surfaces at drain.
//!
//! Determinism is the load-bearing property: the controller holds no
//! clock and no randomness, so the rung sequence is a function of the
//! observation sequence alone. Under a chaos
//! [`PressurePlan`][crate::chaos::PressurePlan] the observations
//! themselves are a pure function of `(seed, epoch)`, which is what
//! lets the chaos suite assert *identical* rung timelines and
//! per-session outcomes at any worker count.

use euphrates_common::error::{Error, Result};
use euphrates_isp::motion::SearchStrategy;
use std::time::Duration;

/// One state of the degradation ladder. Rung 0 is the nominal state;
/// higher rungs trade more quality for headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rung {
    /// Label used in logs and reports.
    pub name: &'static str,
    /// `Some(n)` pins live sessions' EW windows to `n` (constant mode);
    /// `None` restores each session's scheme-declared policy.
    pub ew_window: Option<u32>,
    /// Right-shift applied to `NnBatchConfig::max_wait` at this rung:
    /// shift 1 halves the batching window (lower latency, less
    /// amortization), shift 0 leaves it nominal.
    pub max_wait_shift: u32,
    /// A cheaper block-matching search recommended to producers at this
    /// rung (motion estimation runs client-side; see
    /// [`SessionServer::degraded_motion`][crate::SessionServer::degraded_motion]).
    pub motion_hint: Option<SearchStrategy>,
    /// Shed frames at this rung instead of processing them: under a
    /// live (measured) controller only frames already over the
    /// per-frame budget are shed; under a chaos pressure plan every
    /// frame at the rung is shed so the outcome stays deterministic.
    pub shed: bool,
}

impl Rung {
    /// A no-op rung: scheme policy, nominal batching window, no hint,
    /// no shedding.
    pub fn nominal(name: &'static str) -> Self {
        Rung {
            name,
            ew_window: None,
            max_wait_shift: 0,
            motion_hint: None,
            shed: false,
        }
    }
}

/// The ordered degradation states a server walks under pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationLadder {
    /// Rung 0 first; the controller degrades toward the end.
    pub rungs: Vec<Rung>,
}

impl DegradationLadder {
    /// The default four-rung ladder: nominal → EW-8 + half batching
    /// window + three-step search → EW-16 + quarter window + diamond
    /// search → the same plus shedding.
    pub fn standard() -> Self {
        DegradationLadder {
            rungs: vec![
                Rung::nominal("nominal"),
                Rung {
                    name: "ew8-tss",
                    ew_window: Some(8),
                    max_wait_shift: 1,
                    motion_hint: Some(SearchStrategy::ThreeStep),
                    shed: false,
                },
                Rung {
                    name: "ew16-diamond",
                    ew_window: Some(16),
                    max_wait_shift: 2,
                    motion_hint: Some(SearchStrategy::Diamond),
                    shed: false,
                },
                Rung {
                    name: "shed",
                    ew_window: Some(16),
                    max_wait_shift: 3,
                    motion_hint: Some(SearchStrategy::Diamond),
                    shed: true,
                },
            ],
        }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` if the ladder has no rungs (invalid; rejected by
    /// [`SloConfig::validate`]).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    fn validate(&self) -> Result<()> {
        if self.rungs.is_empty() {
            return Err(Error::config("degradation ladder needs at least one rung"));
        }
        for (i, rung) in self.rungs.iter().enumerate() {
            if rung.ew_window == Some(0) {
                return Err(Error::config(format!(
                    "ladder rung {i} (`{}`) pins the EW window to 0",
                    rung.name
                )));
            }
            if rung.max_wait_shift > 32 {
                return Err(Error::config(format!(
                    "ladder rung {i} (`{}`) shifts max_wait by {} (> 32)",
                    rung.name, rung.max_wait_shift
                )));
            }
        }
        Ok(())
    }
}

/// The per-server service-level objective and the ladder that defends
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Per-frame queue-wait budget: a dequeued frame that waited longer
    /// counts against the epoch's pressure (and is shed at a shedding
    /// rung — a stale frame's result is worthless in continuous
    /// vision).
    pub frame_budget: Duration,
    /// The declared SLO bound on queue-wait p99. Reported against the
    /// measured distribution; on the 1-core CI box wall-clock is
    /// *reported, never asserted* (the repo's standing rule), so tests
    /// gate on the deterministic counters instead.
    pub p99_target: Duration,
    /// Frames per evaluation epoch: the controller observes pressure
    /// once per `eval_every` frames.
    pub eval_every: u64,
    /// Consecutive overloaded epochs before stepping **down** a rung
    /// (degrading).
    pub degrade_after: u32,
    /// Consecutive healthy epochs before stepping back **up** toward
    /// nominal (recovering). Larger than `degrade_after` by default —
    /// degrade fast, recover cautiously.
    pub upgrade_after: u32,
    /// An epoch is *overloaded* when the fraction of frames over
    /// `frame_budget` reaches this value.
    pub degrade_frac: f64,
    /// An epoch is *healthy* when the over-budget fraction is at or
    /// below this value; between the two thresholds the controller
    /// holds its rung (the dead band of the hysteresis).
    pub recover_frac: f64,
    /// Exponentially-weighted smoothing of the pressure signal before
    /// it meets the thresholds: each observation is blended into a
    /// running average with weight `1 / 2^smooth_shift`. Shift 0 (the
    /// default) disables smoothing — the raw observation is used
    /// bit-for-bit, preserving every pre-existing walk. Higher shifts
    /// make the measured path robust to single-epoch spikes (one noisy
    /// epoch of composition jitter no longer walks the ladder) at the
    /// cost of reacting `~2^smooth_shift` epochs slower. The smoothing
    /// is over *logical* epoch counters — no wall clock — so the walk
    /// stays a pure function of the observation sequence.
    pub smooth_shift: u32,
    /// The degradation states.
    pub ladder: DegradationLadder,
}

impl SloConfig {
    /// An SLO with the standard ladder and default epoch/hysteresis
    /// (256-frame epochs; degrade after 1 overloaded epoch, recover
    /// after 4 healthy ones; 5% / 1% pressure thresholds).
    pub fn new(frame_budget: Duration, p99_target: Duration) -> Self {
        SloConfig {
            frame_budget,
            p99_target,
            eval_every: 256,
            degrade_after: 1,
            upgrade_after: 4,
            degrade_frac: 0.05,
            recover_frac: 0.01,
            smooth_shift: 0,
            ladder: DegradationLadder::standard(),
        }
    }

    /// Replaces the ladder.
    pub fn with_ladder(mut self, ladder: DegradationLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Sets the evaluation epoch (frames per pressure observation).
    pub fn with_epoch(mut self, eval_every: u64) -> Self {
        self.eval_every = eval_every;
        self
    }

    /// Sets the hysteresis streaks.
    pub fn with_hysteresis(mut self, degrade_after: u32, upgrade_after: u32) -> Self {
        self.degrade_after = degrade_after;
        self.upgrade_after = upgrade_after;
        self
    }

    /// Sets the pressure-smoothing shift (EW average weight
    /// `1 / 2^shift`; 0 = raw observations).
    pub fn with_smoothing(mut self, shift: u32) -> Self {
        self.smooth_shift = shift;
        self
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero budgets/epochs/streaks, pressure thresholds outside
    /// `[0, 1]` or inverted, and invalid ladders.
    pub fn validate(&self) -> Result<()> {
        if self.frame_budget.is_zero() {
            return Err(Error::config("SLO frame budget must be positive"));
        }
        if self.p99_target.is_zero() {
            return Err(Error::config("SLO p99 target must be positive"));
        }
        if self.eval_every == 0 {
            return Err(Error::config("SLO epoch (eval_every) must be >= 1 frame"));
        }
        if self.degrade_after == 0 || self.upgrade_after == 0 {
            return Err(Error::config("SLO hysteresis streaks must be >= 1 epoch"));
        }
        if !(0.0..=1.0).contains(&self.degrade_frac) || !(0.0..=1.0).contains(&self.recover_frac) {
            return Err(Error::config("SLO pressure thresholds must lie in [0, 1]"));
        }
        if self.recover_frac > self.degrade_frac {
            return Err(Error::config(
                "SLO recover threshold exceeds the degrade threshold (inverted hysteresis)",
            ));
        }
        if self.smooth_shift > 16 {
            return Err(Error::config(format!(
                "SLO smooth_shift {} is absurd (> 16: the controller would need \
                 ~{} epochs to react)",
                self.smooth_shift,
                1u64 << self.smooth_shift
            )));
        }
        self.ladder.validate()
    }
}

/// One recorded ladder transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungTransition {
    /// The epoch whose observation triggered the step.
    pub epoch: u64,
    /// Rung before.
    pub from: usize,
    /// Rung after (`from ± 1`).
    pub to: usize,
    /// The over-budget fraction observed that epoch.
    pub over_frac: f64,
}

/// The deterministic overload state machine: feeds on one pressure
/// observation per epoch, walks the ladder with two-sided hysteresis,
/// and records every transition.
#[derive(Debug, Clone)]
pub struct OverloadController {
    slo: SloConfig,
    rung: usize,
    over_streak: u32,
    under_streak: u32,
    epochs: u64,
    /// The EW-averaged pressure (`None` until the first observation);
    /// only maintained when `smooth_shift > 0` — at shift 0 the raw
    /// observation is used directly, bit-for-bit.
    smoothed: Option<f64>,
    timeline: Vec<RungTransition>,
}

impl OverloadController {
    /// Creates a controller at rung 0.
    ///
    /// # Errors
    ///
    /// Propagates [`SloConfig::validate`] failures.
    pub fn new(slo: SloConfig) -> Result<Self> {
        slo.validate()?;
        Ok(OverloadController {
            slo,
            rung: 0,
            over_streak: 0,
            under_streak: 0,
            epochs: 0,
            smoothed: None,
            timeline: Vec::new(),
        })
    }

    /// The configuration driving the walk.
    pub fn slo(&self) -> &SloConfig {
        &self.slo
    }

    /// The current rung index.
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Epochs observed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Every transition taken, in order.
    pub fn timeline(&self) -> &[RungTransition] {
        &self.timeline
    }

    /// Consumes one epoch's pressure observation — the fraction of the
    /// epoch's frames whose queue wait exceeded the budget — and
    /// returns the (possibly new) rung.
    ///
    /// Overloaded epochs (`over_frac >= degrade_frac`) extend the
    /// degrade streak; healthy epochs (`over_frac <= recover_frac`)
    /// extend the recover streak; the dead band between them resets
    /// both, holding the rung. A streak reaching its threshold steps
    /// one rung (clamped at the ladder ends) and resets.
    ///
    /// With `smooth_shift > 0` the observation is first blended into an
    /// exponentially-weighted average (`ema += (raw - ema) / 2^shift`)
    /// and the *smoothed* value meets the thresholds (and is recorded
    /// in the transition timeline) — the measured-pressure path's
    /// defense against single-epoch composition spikes.
    pub fn observe(&mut self, over_frac: f64) -> usize {
        let epoch = self.epochs;
        self.epochs += 1;
        let raw = if over_frac.is_finite() {
            over_frac.clamp(0.0, 1.0)
        } else {
            1.0
        };
        // Shift 0 bypasses the average entirely so legacy walks stay
        // bit-identical (`prev + (raw - prev) * 1.0` is not exact in
        // floating point).
        let over_frac = if self.slo.smooth_shift == 0 {
            raw
        } else {
            let alpha = 1.0 / f64::from(1u32 << self.slo.smooth_shift.min(16));
            let ema = match self.smoothed {
                None => raw,
                Some(prev) => prev + (raw - prev) * alpha,
            };
            self.smoothed = Some(ema);
            ema
        };
        if over_frac >= self.slo.degrade_frac {
            self.under_streak = 0;
            self.over_streak += 1;
            if self.over_streak >= self.slo.degrade_after {
                self.over_streak = 0;
                if self.rung + 1 < self.slo.ladder.len() {
                    self.timeline.push(RungTransition {
                        epoch,
                        from: self.rung,
                        to: self.rung + 1,
                        over_frac,
                    });
                    self.rung += 1;
                }
            }
        } else if over_frac <= self.slo.recover_frac {
            self.over_streak = 0;
            self.under_streak += 1;
            if self.under_streak >= self.slo.upgrade_after {
                self.under_streak = 0;
                if self.rung > 0 {
                    self.timeline.push(RungTransition {
                        epoch,
                        from: self.rung,
                        to: self.rung - 1,
                        over_frac,
                    });
                    self.rung -= 1;
                }
            }
        } else {
            self.over_streak = 0;
            self.under_streak = 0;
        }
        self.rung
    }
}

/// The degradation outcome of one server lifetime, merged into
/// [`DrainReport`][crate::DrainReport].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Every ladder transition, in epoch order. Under a chaos pressure
    /// plan this is the canonical (thread-count-independent) walk.
    pub timeline: Vec<RungTransition>,
    /// Frames *scheduled* at each rung (indexed like the ladder): live
    /// sessions' arrivals, whether served, shed, or fatal.
    pub frames_per_rung: Vec<u64>,
    /// Frames shed at shedding rungs (accounted separately from served
    /// and dropped: `frames == served + dropped + shed`).
    pub shed: u64,
    /// Live EW re-configurations applied to sessions on rung changes.
    pub reconfigs: u64,
    /// Pressure epochs observed.
    pub epochs: u64,
    /// The rung the server ended on.
    pub final_rung: usize,
}

impl DegradationReport {
    /// The deepest rung the walk reached.
    pub fn max_rung(&self) -> usize {
        self.timeline
            .iter()
            .map(|t| t.to)
            .max()
            .unwrap_or(self.final_rung)
            .max(self.final_rung)
    }

    /// Number of transitions taken.
    pub fn transitions(&self) -> usize {
        self.timeline.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(degrade_after: u32, upgrade_after: u32) -> SloConfig {
        SloConfig::new(Duration::from_millis(1), Duration::from_millis(5))
            .with_epoch(4)
            .with_hysteresis(degrade_after, upgrade_after)
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(slo(1, 1).validate().is_ok());
        assert!(slo(0, 1).validate().is_err());
        assert!(slo(1, 0).validate().is_err());
        let mut s = slo(1, 1);
        s.frame_budget = Duration::ZERO;
        assert!(s.validate().is_err());
        let mut s = slo(1, 1);
        s.eval_every = 0;
        assert!(s.validate().is_err());
        let mut s = slo(1, 1);
        s.recover_frac = 0.5;
        s.degrade_frac = 0.1;
        assert!(s.validate().is_err(), "inverted hysteresis band");
        let mut s = slo(1, 1);
        s.ladder = DegradationLadder { rungs: vec![] };
        assert!(s.validate().is_err(), "empty ladder");
        let mut s = slo(1, 1);
        s.ladder.rungs[1].ew_window = Some(0);
        assert!(s.validate().is_err(), "zero EW pin");
    }

    #[test]
    fn walks_down_under_sustained_pressure_and_clamps() {
        let mut c = OverloadController::new(slo(1, 1)).unwrap();
        let depth = c.slo().ladder.len();
        for _ in 0..10 {
            c.observe(1.0);
        }
        assert_eq!(c.rung(), depth - 1, "clamped at the last rung");
        assert_eq!(c.timeline().len(), depth - 1, "one transition per step");
        for (i, t) in c.timeline().iter().enumerate() {
            assert_eq!((t.from, t.to), (i, i + 1));
            assert_eq!(t.epoch, i as u64);
        }
    }

    #[test]
    fn recovers_with_hysteresis() {
        let mut c = OverloadController::new(slo(1, 2)).unwrap();
        c.observe(1.0);
        c.observe(1.0);
        assert_eq!(c.rung(), 2);
        // One healthy epoch is not enough (upgrade_after = 2)...
        c.observe(0.0);
        assert_eq!(c.rung(), 2);
        // ...two are.
        c.observe(0.0);
        assert_eq!(c.rung(), 1);
        c.observe(0.0);
        c.observe(0.0);
        assert_eq!(c.rung(), 0);
        // Clamped at nominal.
        c.observe(0.0);
        c.observe(0.0);
        assert_eq!(c.rung(), 0);
        let downs: Vec<usize> = c
            .timeline()
            .iter()
            .filter(|t| t.to < t.from)
            .map(|t| t.to)
            .collect();
        assert_eq!(downs, vec![1, 0]);
    }

    #[test]
    fn dead_band_holds_the_rung_and_resets_streaks() {
        let mut c = OverloadController::new(slo(2, 2)).unwrap();
        // degrade_frac 0.05, recover_frac 0.01: 0.03 is the dead band.
        c.observe(1.0);
        c.observe(0.03); // resets the degrade streak
        c.observe(1.0);
        assert_eq!(c.rung(), 0, "streak broken by the dead band");
        c.observe(1.0);
        assert_eq!(c.rung(), 1, "two consecutive overloaded epochs step");
        c.observe(0.0);
        c.observe(0.03); // resets the recover streak too
        c.observe(0.0);
        assert_eq!(c.rung(), 1);
        c.observe(0.0);
        assert_eq!(c.rung(), 0);
    }

    #[test]
    fn walk_is_a_pure_function_of_the_observation_sequence() {
        let pressures: Vec<f64> = (0..64)
            .map(|e| {
                if euphrates_common::rngx::counter_hash(0xD15C0, e).is_multiple_of(3) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let run = |pressures: &[f64]| {
            let mut c = OverloadController::new(slo(1, 2)).unwrap();
            for &p in pressures {
                c.observe(p);
            }
            (c.rung(), c.timeline().to_vec())
        };
        assert_eq!(run(&pressures), run(&pressures));
    }

    #[test]
    fn smoothing_rejects_single_epoch_spikes_but_tracks_sustained_pressure() {
        // Raw (shift 0): a lone full-overload epoch immediately steps
        // the ladder with degrade_after = 1.
        let mut raw = OverloadController::new(slo(1, 4)).unwrap();
        raw.observe(0.0);
        raw.observe(1.0); // the spike
        assert_eq!(raw.rung(), 1, "raw controller chases the spike");

        // Smoothed (shift 2, α = 1/4): the same spike is averaged down
        // to 0.25 · 1.0 = 0.25 < ... wait, 0.25 ≥ degrade_frac 0.05 —
        // so use the spike-vs-threshold margin the defaults provide:
        // blend from a healthy baseline of ~0.0 with degrade_frac 0.3.
        let mut cfg = slo(1, 4).with_smoothing(2);
        cfg.degrade_frac = 0.3;
        cfg.recover_frac = 0.05;
        let mut smooth = OverloadController::new(cfg.clone()).unwrap();
        smooth.observe(0.0);
        smooth.observe(1.0); // spike: ema = 0 + (1 - 0)/4 = 0.25 < 0.3
        assert_eq!(smooth.rung(), 0, "one spike is absorbed");
        smooth.observe(0.0); // ema decays: 0.25 - 0.25/4 = 0.1875
        assert_eq!(smooth.rung(), 0);

        // Sustained pressure still walks the ladder: from a healthy
        // baseline the ema converges toward 1.0 and crosses 0.3 within
        // a few epochs.
        let mut sustained = OverloadController::new(cfg).unwrap();
        sustained.observe(0.0);
        for _ in 0..8 {
            sustained.observe(1.0);
        }
        assert!(sustained.rung() >= 1, "sustained overload still degrades");
        // The recorded transition carries the *smoothed* pressure that
        // drove it, not the raw spike.
        let first = sustained.timeline()[0];
        assert!(
            first.over_frac >= 0.3 && first.over_frac < 1.0,
            "transition records the ema ({})",
            first.over_frac
        );
    }

    #[test]
    fn smoothed_walk_is_pure_and_shift_zero_is_bit_identical_to_legacy() {
        let pressures: Vec<f64> = (0..96)
            .map(|e| (euphrates_common::rngx::counter_hash(0x5A00, e) % 1000) as f64 / 1000.0)
            .collect();
        let run = |cfg: SloConfig| {
            let mut c = OverloadController::new(cfg).unwrap();
            for &p in &pressures {
                c.observe(p);
            }
            (c.rung(), c.timeline().to_vec())
        };
        // Purity: the smoothed walk is a function of the observations.
        assert_eq!(
            run(slo(1, 2).with_smoothing(3)),
            run(slo(1, 2).with_smoothing(3))
        );
        // Shift 0 and "no smoothing field at all" (the pre-smoothing
        // construction path) agree bit-for-bit.
        assert_eq!(run(slo(1, 2)), run(slo(1, 2).with_smoothing(0)));
    }

    #[test]
    fn smoothing_shift_is_validated() {
        assert!(slo(1, 1).with_smoothing(16).validate().is_ok());
        assert!(slo(1, 1).with_smoothing(17).validate().is_err());
    }

    #[test]
    fn non_finite_pressure_degrades_rather_than_wedging() {
        let mut c = OverloadController::new(slo(1, 1)).unwrap();
        c.observe(f64::NAN);
        assert_eq!(c.rung(), 1, "NaN pressure reads as full overload");
        c.observe(f64::INFINITY);
        assert_eq!(c.rung(), 2);
    }

    #[test]
    fn standard_ladder_tightens_monotonically() {
        let ladder = DegradationLadder::standard();
        assert!(ladder.len() >= 2);
        assert_eq!(ladder.rungs[0], Rung::nominal("nominal"));
        let mut prev_shift = 0;
        for rung in &ladder.rungs {
            assert!(
                rung.max_wait_shift >= prev_shift,
                "batch window only shrinks"
            );
            prev_shift = rung.max_wait_shift;
        }
        assert!(ladder.rungs.last().unwrap().shed, "last resort sheds");
    }
}
