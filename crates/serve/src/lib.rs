//! Sharded concurrent session serving for the Euphrates pipeline.
//!
//! The paper's deployment target is "millions of users" of continuous
//! vision (§1): the per-frame schedule that `euphrates_core::Session`
//! implements is cheap enough that one machine should carry hundreds of
//! concurrent streams. This crate is that serving layer, shaped like an
//! inference server:
//!
//! * **Sharding** — every session id is hashed onto one of N worker
//!   threads, so a session's frames are processed *in order by a single
//!   worker*. Per-session outcomes are therefore bit-identical to
//!   running the same frames through a standalone [`Session`] (or the
//!   offline `Scenario::evaluate`, which is built on sessions): workers
//!   only decide *where* a session runs, never *what* it computes.
//! * **Backpressure** — each worker has a bounded ingress queue guarded
//!   by a [`CapacityGate`]. [`try_submit`][SessionServer::try_submit]
//!   never blocks and never buffers beyond the bound: a full lane
//!   returns [`Submit::Busy`] handing the frame back to the caller
//!   (admission control instead of unbounded growth — memory is
//!   `O(workers × queue_depth)` frames).
//! * **Shared read-only state** — one scheme registry (the validated
//!   [`SchemeSpec`] list, the serving analog of the offline
//!   `PreparedCache`) lives behind an [`Arc`] shared by all workers;
//!   per-worker state (the session table, latency histograms, counters)
//!   is owned, unsynchronized scratch.
//! * **Instrumentation** — every frame's submit→completion latency and
//!   submit→dequeue queue wait are recorded into per-worker
//!   [`LatencyHistogram`]s (O(1) record, ~6% quantile error), merged at
//!   drain; [`DrainReport::per_worker`] additionally carries each
//!   shard's occupancy and parking counters so the batching window can
//!   be tuned from data.
//! * **Isolation** — a panicking task step kills *its* session (the
//!   drain report carries the error), never the worker: the other
//!   sessions sharded onto the same lane keep streaming.
//!
//! # Batching & backpressure
//!
//! **Parked producers, not spin loops.** Each lane pairs its bounded
//! channel with a [`CapacityGate`] whose permits mirror the channel's
//! bound: *every* message — open, frame, close — takes a permit before
//! it is sent, and the worker returns the permit as it dequeues. A
//! holder of a permit therefore always completes its send without
//! blocking, and a producer that finds the lane full has three choices:
//!
//! * [`try_submit`][SessionServer::try_submit] — never waits; hands the
//!   frame back as [`Submit::Busy`] (admission control).
//! * [`submit_blocking`][SessionServer::submit_blocking] — sleeps on the
//!   gate's condvar and is woken exactly when its lane drains a slot.
//!   No spin-yield retry exists on this path: the
//!   [`IngressReport::spin_retries`] counter instruments the
//!   structurally unreachable fallback and the saturation tests assert
//!   it stays zero while [`IngressReport::parked`] grows.
//! * [`submit_deadline`][SessionServer::submit_deadline] — parks for at
//!   most a deadline, then hands the frame back.
//!
//! **Cross-session NN batching.** On silicon, the systolic array earns
//! its efficiency by amortizing weight loads and array fill/drain
//! across work; one session's I-frame at a time cannot exploit that.
//! With [`ServeConfig::with_nn_batching`] each worker runs a
//! `BatchCollector`: I-frame inference jobs from *different sessions*
//! sharded onto the worker are gathered within a bounded window
//! (`max_batch` jobs or `max_wait`, whichever first) and charged as one
//! fused job via `SystolicModel::analyze_batch` — weights stream once,
//! fill/drain is paid per weight block instead of per request. The
//! batch is an *accounting* fusion: the NN itself is a modeled oracle
//! whose functional decisions are produced synchronously inside
//! `Session::push_frame`, so batching defers only the cycle/energy
//! attribution and per-session outcomes (decisions, accuracy, fields)
//! stay **bit-identical** to the unbatched path — the equivalence tests
//! assert exactly that. The amortized cost lands in
//! [`DrainReport::nn`]: batched vs `N×` solo cycles, energy, DRAM
//! traffic, and the realized batch-size histogram.
//!
//! # Overload, degradation & chaos
//!
//! A server that can only fail closed under pressure wastes the
//! paper's central knob: the EW window *is* a quality/compute dial, so
//! overload should turn the dial before it drops frames. With
//! [`ServeConfig::with_slo`] the server watches the same queue-wait
//! measurements that feed its histograms and walks a declared
//! [`DegradationLadder`] with two-sided hysteresis (the
//! [`OverloadController`] in [`degrade`]): widen live sessions' EW
//! windows (via the core runtime re-config `Session::reconfigure_policy`),
//! shrink the NN batching window, recommend a cheaper motion search to
//! producers ([`degraded_motion`][SessionServer::degraded_motion]), and
//! — last resort — shed frames that have already blown their budget.
//! Every transition lands in the [`DegradationReport`] merged into
//! [`DrainReport::degradation`], and shed frames get their own counter:
//! `frames == served + dropped + shed`, exactly.
//!
//! [`ServeConfig::with_chaos`] arms a seeded, bit-reproducible fault
//! plan ([`ChaosConfig`] in [`chaos`]): worker stalls, injected session
//! panics, corrupted (wrong-resolution) frames, and forced admission
//! rejections, all derived from [`rngx::counter_hash`] over logical
//! counters — never wall-clock. A chaos
//! [`PressurePlan`] replaces the measured pressure signal with a pure
//! function of the epoch, advanced per-session by arrival index, which
//! makes the entire degradation walk — rung timeline *and* per-session
//! outcomes — a deterministic function of `(seed, config)` at any
//! worker count. The chaos suite asserts exactly that, plus exact frame
//! accounting and zero spin retries under fault storms.
//!
//! On the producer side, [`feed_sequence_with`] hardens the feed loop:
//! bounded deadline-submit retries with deterministic jittered backoff
//! ([`FeedPolicy::backoff`], pure in `(seed, session, frame, attempt)`),
//! then either parks (frame never lost) or sheds client-side; repeated
//! rejections can trip a circuit breaker that tombstones the session
//! with a typed reason ([`FailureKind::CircuitBroken`] in
//! [`DrainReport::failure_breakdown`]). With a non-zero
//! [`FeedPolicy::breaker_cooldown`] the breaker is *half-open* instead
//! of terminal: after a deterministic cooldown it admits one probe
//! frame and either re-closes or re-trips
//! ([`FeedReport::trips`]/[`FeedReport::reclosed`]).
//!
//! # Recovery & supervision
//!
//! [`ServeConfig::with_supervision`] arms crash recovery (the
//! [`supervise`] module): workers checkpoint every session on a fixed
//! arrival cadence via [`Session::snapshot`] and keep the frames since
//! in a bounded replay log; a watchdog thread watches logical
//! heartbeats, declares workers dead on thread exit or frozen
//! mid-message beats, **respawns** them, and resurrects their sessions
//! from checkpoint + replay — bit-identical to a fault-free run, or
//! drained as [`FailureKind::Unrecovered`] with the exact
//! budget arithmetic when the log outgrew
//! [`SuperviseConfig::replay_budget`]. The chaos plan gains two
//! matching fault channels ([`ChaosConfig::with_worker_kills`],
//! [`ChaosConfig::with_wedges`]), keyed on the same logical counters as
//! every other fault, so the full incident timeline in
//! [`DrainReport::recovery`] is identical at any worker count.
//!
//! **Checkpoint cadence vs replay memory.** The ledger holds up to
//! `checkpoint_every + replay_budget` `Arc`-shared frames per session:
//! a tight cadence means cheap, short replays (low MTTR in logical
//! ticks) but frequent snapshot work; a loose cadence amortizes
//! snapshots but lengthens replays — and a `replay_budget` below
//! `checkpoint_every - 1` deliberately caps the memory by making the
//! tail of each checkpoint interval unrecoverable. `bench_serve`
//! sweeps exactly this grid.
//!
//! The whole server also restarts warm: [`SessionServer::freeze`]
//! flushes every live session to a checkpoint inside a
//! [`ServerImage`], and [`SessionServer::thaw`] rebuilds a running
//! server — at any worker count — whose sessions continue bit-exactly
//! where they froze, with the pre-freeze counters carried into the
//! final [`DrainReport`].
//!
//! Frames enter as [`Arc<FrameData>`] — ground truth plus the
//! ISP-exported motion field, i.e. what the paper's ISP ships to the
//! vision backend. Producing them (rendering, sensor, ISP) stays on the
//! client side of the ingress queue, e.g. via [`feed_sequence`], which
//! streams a synthetic [`Sequence`] through the O(1)-memory
//! `frame_source` pipeline with parked-producer backpressure. Each
//! feeder owns its renderer (and thus its `FramePool`) — the
//! per-worker-pool pattern documented in `euphrates_common::pool`.
//!
//! ```no_run
//! use euphrates_core::prelude::*;
//! use euphrates_nn::oracle::calib;
//! use euphrates_serve::{NnBatchConfig, ServeConfig, SessionServer};
//! use std::time::Duration;
//!
//! let schemes = vec![SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()];
//! let config = ServeConfig::default().with_nn_batching(NnBatchConfig {
//!     network: euphrates_nn::zoo::mdnet(),
//!     max_batch: 16,
//!     max_wait: Duration::from_micros(200),
//! });
//! let server = SessionServer::new(TrackerTask::new(calib::mdnet()), schemes, config).unwrap();
//! let suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! for (id, seq) in suite.iter().enumerate() {
//!     euphrates_serve::feed_sequence(&server, id as u64, "EW-4", seq, &MotionConfig::default()).unwrap();
//! }
//! let report = server.drain();
//! println!("p99 = {} ns over {} frames", report.latency.quantile(0.99), report.served);
//! if let Some(nn) = &report.nn {
//!     println!("amortization = {:.3} over {} batches", nn.amortization(), nn.batches);
//! }
//! ```

pub mod chaos;
pub mod degrade;
pub mod supervise;

pub use chaos::{ChaosConfig, ChaosReport, PressurePlan};
pub use degrade::{
    DegradationLadder, DegradationReport, OverloadController, Rung, RungTransition, SloConfig,
};
pub use supervise::{IncidentKind, RecoveryIncident, RecoveryReport, SuperviseConfig};

use crate::supervise::{Ledger, LedgerStore, LiveLedger, Pulse, SlotCheckpoint};
use euphrates_common::error::{Error, Result};
use euphrates_common::gate::CapacityGate;
use euphrates_common::image::Resolution;
use euphrates_common::par::default_threads;
use euphrates_common::rngx;
use euphrates_common::stats::LatencyHistogram;
use euphrates_core::api::{SchemeSpec, Session, VisionTask};
use euphrates_core::backend::TaskOutcome;
use euphrates_core::frontend::{frame_source, FrameData, MotionConfig};
use euphrates_datasets::Sequence;
use euphrates_isp::motion::MotionField;
use euphrates_mc::policy::EwPolicy;
use euphrates_nn::engine::{BatchPlan, InferencePlan, NnxEngine};
use euphrates_nn::layer::NetworkDescriptor;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client-chosen session identifier. Doubles as the session's oracle
/// stream index (the `stream` argument of [`Session::new`]), so serving
/// sequence `i` of a suite under id `i` reproduces the offline
/// evaluation's noise streams exactly.
pub type SessionId = u64;

/// Hash salt for the id → worker shard (any fixed key works; a mixed
/// hash keeps structured id spaces — 0, 1, 2, … — balanced).
const SHARD_STREAM: u64 = 0x5E4E;

/// Cross-session NN batching configuration (see the crate docs'
/// "Batching & backpressure" section).
#[derive(Debug, Clone)]
pub struct NnBatchConfig {
    /// The network whose I-frame inferences are fused.
    pub network: NetworkDescriptor,
    /// Jobs per fused batch at most; a full batch flushes immediately.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more jobs
    /// before flushing it short.
    pub max_wait: Duration,
}

/// Server sizing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (shards). Default: [`default_threads`], which
    /// honors `EUPHRATES_THREADS`.
    pub workers: usize,
    /// Per-worker ingress bound, in messages. Bounds server memory at
    /// `workers × queue_depth` in-flight frames; beyond it,
    /// [`try_submit`][SessionServer::try_submit] reports
    /// [`Submit::Busy`] and [`submit_blocking`][SessionServer::submit_blocking]
    /// parks.
    pub queue_depth: usize,
    /// Cross-session NN batching; `None` charges every inference solo.
    pub nn_batching: Option<NnBatchConfig>,
    /// SLO-aware graceful degradation (see the crate docs' "Overload,
    /// degradation & chaos" section); `None` never degrades.
    pub slo: Option<SloConfig>,
    /// Deterministic fault injection; `None` (the default) means the
    /// chaos hooks cost one `Option` check per event.
    pub chaos: Option<ChaosConfig>,
    /// Crash recovery (see the crate docs' "Recovery & supervision"
    /// section): `None` runs bare workers; `Some` checkpoints sessions,
    /// watches worker heartbeats, and respawns dead workers.
    pub supervise: Option<SuperviseConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_threads(),
            queue_depth: 64,
            nn_batching: None,
            slo: None,
            chaos: None,
            supervise: None,
        }
    }
}

impl ServeConfig {
    /// An explicitly sized server without NN batching.
    pub fn sized(workers: usize, queue_depth: usize) -> Self {
        ServeConfig {
            workers,
            queue_depth,
            ..ServeConfig::default()
        }
    }

    /// Enables cross-session NN batching.
    pub fn with_nn_batching(mut self, batching: NnBatchConfig) -> Self {
        self.nn_batching = Some(batching);
        self
    }

    /// Enables SLO-aware graceful degradation.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Arms deterministic fault injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enables crash recovery: session checkpointing, worker
    /// heartbeats, and supervised respawn.
    pub fn with_supervision(mut self, supervise: SuperviseConfig) -> Self {
        self.supervise = Some(supervise);
        self
    }
}

/// The verdict of a non-blocking or deadline-bounded submit.
#[derive(Debug)]
#[must_use = "a Busy frame must be retried or dropped deliberately"]
pub enum Submit {
    /// The frame was accepted onto its session's lane.
    Enqueued,
    /// The lane is at its bound (or the deadline passed); the frame is
    /// handed back so the caller can retry, shed load, or slow the
    /// producer.
    Busy(Arc<FrameData>),
}

impl Submit {
    /// `true` if the frame was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Submit::Enqueued)
    }
}

/// One message on a worker's lane.
enum Msg {
    /// Open session `id` under scheme index `scheme` (re-opening an
    /// existing id flushes the old session into the report first).
    Open {
        id: SessionId,
        scheme: usize,
        resolution: Resolution,
    },
    /// One frame for session `id`; `at` is its submit timestamp.
    Frame {
        id: SessionId,
        frame: Arc<FrameData>,
        at: Instant,
    },
    /// Finish session `id` and stash its outcome.
    Close { id: SessionId },
    /// Tombstone session `id` with `error` (circuit breaker): late
    /// frames drop, the eventual close reports the typed reason.
    Fail { id: SessionId, error: Error },
}

/// Pre-planned batched-inference costs shared by all workers: one
/// [`BatchPlan`] per realizable batch size, plus the solo plan the
/// amortization ratio is defined against.
struct BatchRuntime {
    max_batch: usize,
    max_wait: Duration,
    /// `plans[b - 1]` prices a fused `b`-request batch.
    plans: Vec<BatchPlan>,
    solo: InferencePlan,
}

/// The overload-control state shared by all workers when an SLO is
/// configured. Two operating modes:
///
/// * **Measured** (`plan: None`): workers pool per-epoch pressure in
///   the atomics; whichever worker closes an epoch locks the global
///   controller, observes, and publishes the new rung in `current`.
///   Real, but epoch composition depends on thread interleaving.
/// * **Planned** (`plan: Some`): each session carries its own clone of
///   `template` advanced by *arrival index* against the pure pressure
///   plan, so per-session rung schedules (and outcomes) are identical
///   at any worker count; `current` mirrors the latest advance for the
///   worker-level knobs (batch window, motion hint).
struct OverloadRuntime {
    slo: SloConfig,
    plan: Option<PressurePlan>,
    template: OverloadController,
    /// The rung driving worker-level knobs right now.
    current: AtomicUsize,
    /// Frames observed in measured mode (monotonic; an epoch closes
    /// every `eval_every`-th frame).
    epoch_frames: AtomicU64,
    /// Over-budget frames in the current measured epoch.
    epoch_over: AtomicU64,
    /// The measured-mode controller (locked once per epoch, never per
    /// frame).
    controller: Mutex<OverloadController>,
}

/// Read-only state shared by all workers (plus the one write-once
/// `freeze` latch the warm-restart path flips before shutdown).
struct Shared<T> {
    task: T,
    schemes: Vec<SchemeSpec>,
    batching: Option<BatchRuntime>,
    overload: Option<OverloadRuntime>,
    chaos: Option<ChaosConfig>,
    supervise: Option<SuperviseConfig>,
    /// Set by [`SessionServer::freeze`]: workers flush open sessions as
    /// checkpoints instead of finishing them.
    freeze: AtomicBool,
}

/// Why a session failed — the typed classification behind
/// [`DrainReport::failure_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The session poisoned itself (invalid frame, task error) through
    /// its own validation path.
    Poisoned,
    /// The task panicked mid-frame; the worker isolated it.
    Panicked,
    /// A producer's circuit breaker tombstoned the session
    /// ([`SessionServer::break_session`]).
    CircuitBroken,
    /// A chaos fault (injected panic or corrupted frame) killed it.
    ChaosInjected,
    /// Protocol misuse: the session never opened cleanly or was closed
    /// without being known.
    Protocol,
    /// A worker died with this session further from its last checkpoint
    /// than the supervision replay budget allows; the error carries the
    /// exact budget arithmetic. Only reachable with supervision armed.
    Unrecovered,
}

/// Session failures counted by [`FailureKind`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Self-poisoned sessions.
    pub poisoned: usize,
    /// Panic-killed sessions.
    pub panicked: usize,
    /// Circuit-broken sessions.
    pub circuit_broken: usize,
    /// Chaos casualties.
    pub chaos_injected: usize,
    /// Protocol misuse.
    pub protocol: usize,
    /// Sessions lost past the supervision replay budget.
    pub unrecovered: usize,
}

impl FailureBreakdown {
    /// Total failed sessions.
    pub fn total(&self) -> usize {
        self.poisoned
            + self.panicked
            + self.circuit_broken
            + self.chaos_injected
            + self.protocol
            + self.unrecovered
    }
}

/// A live session plus the serving-side state that rides along: its
/// scheme index (to restore the declared EW policy at rung 0), the
/// arrival counter the deterministic fault/pressure schedules key on,
/// the rung currently applied to it, and — under a pressure plan — its
/// own controller replica.
struct LiveSlot<T: VisionTask> {
    session: Session<T>,
    scheme: usize,
    arrivals: u64,
    applied_rung: usize,
    walk: Option<OverloadController>,
}

/// A worker's session slot: a live session, or the error that killed it
/// (kept so late frames are counted as dropped, not "unknown session",
/// and so close/drain can report *why* the session died — including the
/// typed [`FailureKind`]). Sessions are boxed so a mostly-dead table
/// stays small.
enum Slot<T: VisionTask> {
    Live(Box<LiveSlot<T>>),
    Dead { error: Error, kind: FailureKind },
}

/// One worker shard's drained statistics.
#[derive(Debug)]
pub struct WorkerStats {
    /// Frames this shard received (served + dropped + shed).
    pub frames: u64,
    /// Frames pushed through a live session successfully.
    pub served: u64,
    /// Frames discarded (dead or never-opened session).
    pub dropped: u64,
    /// Frames shed by the degradation ladder's last-resort rung.
    pub shed: u64,
    /// Submit→dequeue wait per frame, nanoseconds.
    pub queue_wait: LatencyHistogram,
    /// Nanoseconds spent processing messages.
    pub busy_ns: u64,
    /// Nanoseconds from worker start to drain completion.
    pub wall_ns: u64,
    /// Producers that parked on this shard's gate.
    pub parked: u64,
    /// Wake-ups this shard's drains delivered.
    pub woken: u64,
}

impl WorkerStats {
    /// Fraction of the worker's wall time spent processing (`0..=1`).
    pub fn occupancy(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.wall_ns as f64).min(1.0)
        }
    }
}

/// Cross-session NN batching outcome, merged over all workers.
#[derive(Debug, Default)]
pub struct NnServeReport {
    /// I-frame inference jobs charged through batches.
    pub jobs: u64,
    /// Fused batches flushed.
    pub batches: u64,
    /// Array cycles actually charged (batched walk).
    pub batched_cycles: u64,
    /// Array cycles the same jobs would cost solo (`jobs ×` the
    /// per-inference plan).
    pub solo_cycles: u64,
    /// Accelerator energy charged, millijoules.
    pub energy_mj: f64,
    /// DRAM traffic charged, bytes.
    pub dram_bytes: u64,
    /// Realized batch sizes (p50/p99 of this histogram tune
    /// `max_batch`/`max_wait`).
    pub batch_sizes: LatencyHistogram,
}

impl NnServeReport {
    /// Charged cycles over solo cycles: 1.0 means batching bought
    /// nothing; lower is better.
    pub fn amortization(&self) -> f64 {
        if self.solo_cycles == 0 {
            1.0
        } else {
            self.batched_cycles as f64 / self.solo_cycles as f64
        }
    }

    /// Mean realized batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }

    fn merge(&mut self, other: &NnServeReport) {
        self.jobs += other.jobs;
        self.batches += other.batches;
        self.batched_cycles += other.batched_cycles;
        self.solo_cycles += other.solo_cycles;
        self.energy_mj += other.energy_mj;
        self.dram_bytes += other.dram_bytes;
        self.batch_sizes.merge(&other.batch_sizes);
    }
}

/// How frames got in: parked-producer and admission-control counters,
/// summed over all lanes.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngressReport {
    /// Producers that slept on a full lane.
    pub parked: u64,
    /// Wake-ups delivered by worker dequeues.
    pub woken: u64,
    /// Sends that found capacity immediately.
    pub immediate: u64,
    /// Retries of the structurally unreachable permit-held-but-full
    /// fallback. The saturation tests assert this stays **zero** — the
    /// executable form of "no spin-yield submit path remains".
    pub spin_retries: u64,
    /// Frames handed back by [`try_submit`][SessionServer::try_submit]
    /// or an expired [`submit_deadline`][SessionServer::submit_deadline].
    pub busy_rejections: u64,
}

/// What one worker hands back at drain.
struct WorkerOutput {
    outcomes: Vec<(SessionId, Result<TaskOutcome>, Option<FailureKind>)>,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    frames: u64,
    served: u64,
    dropped: u64,
    shed: u64,
    busy_ns: u64,
    wall_ns: u64,
    frames_per_rung: Vec<u64>,
    reconfigs: u64,
    max_epochs: u64,
    chaos: ChaosReport,
    nn: Option<NnServeReport>,
}

/// The merged result of [`SessionServer::drain`]: every session's
/// outcome (keyed by id), cross-worker latency/queue-wait histograms,
/// the frame counters the throughput numbers derive from, per-shard
/// statistics, ingress counters, and (when batching is on) the NN
/// batching report.
#[derive(Debug)]
pub struct DrainReport {
    /// Per-session outcomes plus (for failures) the typed kind, one
    /// entry per opened session.
    outcomes: HashMap<SessionId, (Result<TaskOutcome>, Option<FailureKind>)>,
    /// Submit→completion latency over every successfully served frame.
    pub latency: LatencyHistogram,
    /// Submit→dequeue wait over every received frame.
    pub queue_wait: LatencyHistogram,
    /// Frames received by workers (served + dropped + shed).
    pub frames: u64,
    /// Frames pushed through a live session successfully.
    pub served: u64,
    /// Frames discarded: sent to a dead or never-opened session.
    pub dropped: u64,
    /// Frames shed by the degradation ladder (SLO servers only).
    pub shed: u64,
    /// Frames received per worker, in worker order (shard balance).
    pub per_worker_frames: Vec<u64>,
    /// Full per-shard statistics, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Ingress counters summed over all lanes.
    pub ingress: IngressReport,
    /// Cross-session NN batching outcome; `None` when batching is off.
    pub nn: Option<NnServeReport>,
    /// The degradation walk and its accounting; `None` without an SLO.
    pub degradation: Option<DegradationReport>,
    /// Faults injected; `None` when chaos is unarmed.
    pub chaos: Option<ChaosReport>,
    /// Worker deaths, respawns, and resurrection accounting; `None`
    /// without supervision.
    pub recovery: Option<RecoveryReport>,
}

impl DrainReport {
    /// Number of sessions that reached the report.
    pub fn sessions(&self) -> usize {
        self.outcomes.len()
    }

    /// One session's outcome (or the error that killed it).
    pub fn outcome(&self, id: SessionId) -> Option<&Result<TaskOutcome>> {
        self.outcomes.get(&id).map(|(outcome, _)| outcome)
    }

    /// Iterates `(id, outcome)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&SessionId, &Result<TaskOutcome>)> {
        self.outcomes.iter().map(|(id, (outcome, _))| (id, outcome))
    }

    /// Number of sessions whose outcome is an error.
    pub fn failed_sessions(&self) -> usize {
        self.outcomes.values().filter(|(o, _)| o.is_err()).count()
    }

    /// Why session `id` failed, if it did.
    pub fn failure_kind(&self, id: SessionId) -> Option<FailureKind> {
        self.outcomes
            .get(&id)
            .and_then(|(outcome, kind)| if outcome.is_err() { *kind } else { None })
    }

    /// Failed sessions classified by [`FailureKind`];
    /// `breakdown.total() == failed_sessions()`.
    pub fn failure_breakdown(&self) -> FailureBreakdown {
        let mut b = FailureBreakdown::default();
        for (outcome, kind) in self.outcomes.values() {
            if outcome.is_ok() {
                continue;
            }
            match kind.unwrap_or(FailureKind::Protocol) {
                FailureKind::Poisoned => b.poisoned += 1,
                FailureKind::Panicked => b.panicked += 1,
                FailureKind::CircuitBroken => b.circuit_broken += 1,
                FailureKind::ChaosInjected => b.chaos_injected += 1,
                FailureKind::Protocol => b.protocol += 1,
                FailureKind::Unrecovered => b.unrecovered += 1,
            }
        }
        b
    }
}

/// One worker's ingress lane: the bounded transport plus the capacity
/// gate whose permits mirror its bound.
struct Lane {
    tx: SyncSender<Msg>,
    gate: Arc<CapacityGate>,
}

/// How one worker incarnation ended.
enum WorkerExit<T: VisionTask> {
    /// Lanes closed; the worker flushed and is done (carries frozen
    /// session checkpoints instead of outcomes when the server is
    /// freezing).
    Drained(Box<DrainedWorker<T>>),
    /// The worker died mid-message (chaos kill) or was deposed wedged:
    /// it hands its lane receiver, in-flight message, and dequeue
    /// counter to the successor the watchdog will spawn.
    Killed(Box<KilledWorker>),
}

struct DrainedWorker<T: VisionTask> {
    output: WorkerOutput,
    frozen: Vec<(SessionId, FrozenSlot<T>)>,
}

struct KilledWorker {
    output: WorkerOutput,
    rx: Receiver<Msg>,
    pending: Option<Msg>,
    dequeues: u64,
    /// `Some((session, arrival))` for a chaos kill; `None` for a
    /// deposed wedge.
    trigger: Option<(SessionId, u64)>,
}

/// A frozen session slot inside a [`ServerImage`]: a live session's
/// checkpoint, or the tombstone of one that had already died.
// Live dominates any healthy image; boxing it would cost an
// indirection on every freeze/thaw for a variant imbalance that only
// exists while tombstones are present.
#[allow(clippy::large_enum_variant)]
enum FrozenSlot<T: VisionTask> {
    Live(SlotCheckpoint<T>),
    Dead { error: Error, kind: FailureKind },
}

/// The worker threads behind the lanes: bare handles, or one watchdog
/// that owns (and respawns) them.
enum Crew<T: VisionTask> {
    Plain(Vec<JoinHandle<WorkerExit<T>>>),
    Supervised(JoinHandle<WatchdogResult<T>>),
}

/// What the watchdog hands back once every seat has drained.
struct WatchdogResult<T: VisionTask> {
    /// Per-seat merged outputs (all incarnations), in worker order.
    outputs: Vec<WorkerOutput>,
    frozen: Vec<(SessionId, FrozenSlot<T>)>,
    recovery: RecoveryReport,
}

/// Everything a worker incarnation owns. Built once per spawn; a
/// successor inherits the dead worker's receiver, session table,
/// in-flight message, and dequeue counter so no message and no logical
/// tick is lost or double-counted.
struct WorkerContext<T: VisionTask> {
    shared: Arc<Shared<T>>,
    rx: Receiver<Msg>,
    gate: Arc<CapacityGate>,
    windex: u64,
    pulse: Option<Arc<Pulse>>,
    ledgers: Option<LedgerStore<T>>,
    sessions: HashMap<SessionId, Slot<T>>,
    pending: Option<Msg>,
    dequeues: u64,
}

/// A sharded, backpressured session server over `N` worker threads.
///
/// See the [crate docs](self) for the serving model. The server is
/// `Sync`: [`open`][SessionServer::open],
/// [`try_submit`][SessionServer::try_submit],
/// [`submit_blocking`][SessionServer::submit_blocking] and
/// [`close`][SessionServer::close] take `&self` and may be called from
/// any number of producer threads concurrently (each call resolves one
/// lane, takes one permit, and performs one channel operation).
/// [`drain`][SessionServer::drain] consumes the server.
pub struct SessionServer<T: VisionTask> {
    shared: Arc<Shared<T>>,
    lanes: Vec<Lane>,
    crew: Crew<T>,
    /// Pre-freeze statistics carried through [`thaw`][Self::thaw],
    /// merged into the final drain.
    carry: Option<Box<DrainReport>>,
    spin_retries: AtomicU64,
    busy_rejections: AtomicU64,
    /// Admission sequence number (only advanced while the chaos
    /// rejection channel is armed — keeps the fault schedule a pure
    /// function of the submit order).
    submit_seq: AtomicU64,
    chaos_rejections: AtomicU64,
}

impl<T> SessionServer<T>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send + Clone,
{
    /// Starts a server: `config.workers` threads, each with a bounded,
    /// gated lane, all sharing one read-only scheme registry (and, when
    /// batching is enabled, one table of pre-planned batch costs).
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate-id scheme registry, zero-sized
    /// worker pools or queues, a zero `max_batch`, an invalid
    /// [`SloConfig`], and a chaos pressure plan without an SLO to
    /// drive.
    pub fn new(
        task: T,
        schemes: impl IntoIterator<Item = SchemeSpec>,
        config: ServeConfig,
    ) -> Result<Self> {
        Self::boot(
            task,
            schemes.into_iter().collect(),
            config,
            Vec::new(),
            None,
        )
    }

    /// The shared construction path behind [`new`][Self::new] and
    /// [`thaw`][Self::thaw]: validates, shards any thawed sessions onto
    /// their lanes, and spawns the crew (bare workers, or workers plus
    /// the supervising watchdog).
    fn boot(
        task: T,
        schemes: Vec<SchemeSpec>,
        config: ServeConfig,
        initial: Vec<(SessionId, Slot<T>)>,
        carry: Option<Box<DrainReport>>,
    ) -> Result<Self> {
        if schemes.is_empty() {
            return Err(Error::config("server needs at least one scheme"));
        }
        let mut seen = BTreeSet::new();
        for spec in &schemes {
            if !seen.insert(spec.id.clone()) {
                return Err(Error::config(format!("duplicate scheme id `{}`", spec.id)));
            }
        }
        if config.workers == 0 || config.queue_depth == 0 {
            return Err(Error::config(
                "server needs at least one worker and a positive queue depth",
            ));
        }
        let batching = match config.nn_batching {
            Some(nb) => {
                if nb.max_batch == 0 {
                    return Err(Error::config("nn batching needs max_batch >= 1"));
                }
                let engine = NnxEngine::default();
                let plans = (1..=nb.max_batch)
                    .map(|b| engine.plan_batch(&nb.network, b as u32))
                    .collect();
                Some(BatchRuntime {
                    max_batch: nb.max_batch,
                    max_wait: nb.max_wait,
                    plans,
                    solo: engine.plan(&nb.network),
                })
            }
            None => None,
        };
        if let Some(chaos) = &config.chaos {
            if chaos.pressure.is_some() && config.slo.is_none() {
                return Err(Error::config(
                    "a chaos pressure plan needs an SLO (ServeConfig::with_slo) to drive",
                ));
            }
            if (chaos.kill_every != 0 || chaos.wedge_every != 0) && config.supervise.is_none() {
                return Err(Error::config(
                    "chaos worker kills/wedges need supervision \
                     (ServeConfig::with_supervision) to recover from",
                ));
            }
        }
        if let Some(sup) = &config.supervise {
            sup.validate()?;
        }
        let overload = match config.slo {
            Some(slo) => {
                let template = OverloadController::new(slo.clone())?;
                Some(OverloadRuntime {
                    slo,
                    plan: config.chaos.as_ref().and_then(|c| c.pressure),
                    controller: Mutex::new(template.clone()),
                    template,
                    current: AtomicUsize::new(0),
                    epoch_frames: AtomicU64::new(0),
                    epoch_over: AtomicU64::new(0),
                })
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            task,
            schemes,
            batching,
            overload,
            chaos: config.chaos,
            supervise: config.supervise.clone(),
            freeze: AtomicBool::new(false),
        });
        // Thawed sessions land on the lane their id hashes to — the
        // same shard function live traffic uses, at whatever worker
        // count *this* incarnation runs.
        let mut tables: Vec<HashMap<SessionId, Slot<T>>> =
            (0..config.workers).map(|_| HashMap::new()).collect();
        for (id, slot) in initial {
            let lane = (rngx::counter_hash(SHARD_STREAM, id) % config.workers as u64) as usize;
            tables[lane].insert(id, slot);
        }
        let mut lanes = Vec::with_capacity(config.workers);
        let crew = if let Some(sup) = config.supervise.clone() {
            let mut seats = Vec::with_capacity(config.workers);
            for (windex, table) in tables.into_iter().enumerate() {
                let (tx, rx) = sync_channel(config.queue_depth);
                let gate = Arc::new(CapacityGate::new(config.queue_depth));
                let pulse = Arc::new(Pulse::default());
                let store: LedgerStore<T> = Arc::new(Mutex::new(HashMap::new()));
                lanes.push(Lane {
                    tx,
                    gate: Arc::clone(&gate),
                });
                let ctx = WorkerContext {
                    shared: Arc::clone(&shared),
                    rx,
                    gate: Arc::clone(&gate),
                    windex: windex as u64,
                    pulse: Some(Arc::clone(&pulse)),
                    ledgers: Some(Arc::clone(&store)),
                    sessions: table,
                    pending: None,
                    dequeues: 0,
                };
                let handle = std::thread::spawn(move || worker_loop(ctx));
                seats.push(Seat {
                    handle: Some(handle),
                    pulse,
                    store,
                    gate,
                    windex: windex as u64,
                    agg: None,
                    frozen: Vec::new(),
                    last_beats: 0,
                    stale: 0,
                });
            }
            let shared = Arc::clone(&shared);
            Crew::Supervised(std::thread::spawn(move || {
                watchdog_loop(shared, seats, sup)
            }))
        } else {
            let mut workers = Vec::with_capacity(config.workers);
            for (windex, table) in tables.into_iter().enumerate() {
                let (tx, rx) = sync_channel(config.queue_depth);
                let gate = Arc::new(CapacityGate::new(config.queue_depth));
                lanes.push(Lane {
                    tx,
                    gate: Arc::clone(&gate),
                });
                let ctx = WorkerContext {
                    shared: Arc::clone(&shared),
                    rx,
                    gate,
                    windex: windex as u64,
                    pulse: None,
                    ledgers: None,
                    sessions: table,
                    pending: None,
                    dequeues: 0,
                };
                workers.push(std::thread::spawn(move || worker_loop(ctx)));
            }
            Crew::Plain(workers)
        };
        Ok(SessionServer {
            shared,
            lanes,
            crew,
            carry,
            spin_retries: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            submit_seq: AtomicU64::new(0),
            chaos_rejections: AtomicU64::new(0),
        })
    }

    /// The worker (shard) count.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The registered schemes, in registration order.
    pub fn schemes(&self) -> &[SchemeSpec] {
        &self.shared.schemes
    }

    /// Which worker serves `id`.
    fn shard(&self, id: SessionId) -> usize {
        (rngx::counter_hash(SHARD_STREAM, id) % self.lanes.len() as u64) as usize
    }

    /// Opens session `id` under the named scheme at `resolution`,
    /// parking if the lane is momentarily full (control messages are
    /// rare relative to frames and the lane is guaranteed to drain);
    /// re-opening a live id flushes the old session into the drain
    /// report and starts fresh.
    ///
    /// # Errors
    ///
    /// Rejects unknown scheme ids.
    pub fn open(&self, id: SessionId, scheme: &str, resolution: Resolution) -> Result<()> {
        let idx = self
            .shared
            .schemes
            .iter()
            .position(|s| s.id.as_str() == scheme)
            .ok_or_else(|| Error::config(format!("unknown scheme id `{scheme}`")))?;
        self.send_parked(
            self.shard(id),
            Msg::Open {
                id,
                scheme: idx,
                resolution,
            },
        )
    }

    /// Offers one frame to session `id`'s lane without blocking:
    /// [`Submit::Enqueued`] on success, [`Submit::Busy`] (frame handed
    /// back) when the lane is at its bound. Frames for ids that were
    /// never opened are accepted here and counted as dropped by the
    /// worker — admission control is per-lane, not per-session.
    pub fn try_submit(&self, id: SessionId, frame: Arc<FrameData>) -> Submit {
        if self.chaos_reject() {
            return Submit::Busy(frame);
        }
        let lane = self.shard(id);
        if !self.lanes[lane].gate.try_acquire() {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Submit::Busy(frame);
        }
        self.send_frame_with_permit(lane, id, frame)
    }

    /// The chaos forced-saturation channel: pretends the lane is full
    /// for a deterministic subset of non-blocking/deadline admissions.
    /// [`submit_blocking`][SessionServer::submit_blocking] is exempt —
    /// it has no `Busy` verdict to fake.
    fn chaos_reject(&self) -> bool {
        let Some(chaos) = self.shared.chaos.as_ref() else {
            return false;
        };
        if chaos.reject_every == 0 {
            return false;
        }
        let seq = self.submit_seq.fetch_add(1, Ordering::Relaxed);
        if chaos.reject_at(seq) {
            self.chaos_rejections.fetch_add(1, Ordering::Relaxed);
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Submits one frame, **parking** until its lane has capacity: the
    /// producer sleeps on the lane's condvar and is woken exactly when
    /// the worker drains a slot — never a spin-yield retry.
    ///
    /// # Errors
    ///
    /// Returns an error only if the worker has vanished (a server bug;
    /// workers isolate session panics).
    pub fn submit_blocking(&self, id: SessionId, frame: Arc<FrameData>) -> Result<()> {
        let lane = self.shard(id);
        self.lanes[lane].gate.acquire();
        match self.send_frame_with_permit(lane, id, frame) {
            Submit::Enqueued => Ok(()),
            Submit::Busy(_) => Err(Error::config(format!("serve worker {lane} is gone"))),
        }
    }

    /// Submits one frame, parking for at most `timeout`:
    /// [`Submit::Busy`] hands the frame back when the deadline passes
    /// with the lane still full.
    pub fn submit_deadline(
        &self,
        id: SessionId,
        frame: Arc<FrameData>,
        timeout: Duration,
    ) -> Submit {
        if self.chaos_reject() {
            return Submit::Busy(frame);
        }
        let lane = self.shard(id);
        if !self.lanes[lane].gate.acquire_timeout(timeout) {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Submit::Busy(frame);
        }
        self.send_frame_with_permit(lane, id, frame)
    }

    /// Completes a frame send under an already-held permit. A held
    /// permit guarantees a free channel slot (permits mirror the
    /// bound), so the `Full` branch is structurally unreachable — it is
    /// instrumented ([`IngressReport::spin_retries`]) rather than
    /// trusted, and the saturation tests assert it never fires.
    fn send_frame_with_permit(&self, lane: usize, id: SessionId, frame: Arc<FrameData>) -> Submit {
        let mut msg = Msg::Frame {
            id,
            frame,
            at: Instant::now(),
        };
        loop {
            match self.lanes[lane].tx.try_send(msg) {
                Ok(()) => return Submit::Enqueued,
                Err(TrySendError::Full(back)) => {
                    self.spin_retries.fetch_add(1, Ordering::Relaxed);
                    msg = back;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(back)) => {
                    self.lanes[lane].gate.release();
                    let Msg::Frame { frame, .. } = back else {
                        unreachable!("frame sends only carry frames")
                    };
                    return Submit::Busy(frame);
                }
            }
        }
    }

    /// Finishes session `id`: its outcome (or the error that killed it)
    /// becomes part of the drain report. Like
    /// [`open`][SessionServer::open], parks briefly on a momentarily
    /// full lane.
    ///
    /// # Errors
    ///
    /// Currently infallible for live servers; returns an error only if
    /// the worker has vanished.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.send_parked(self.shard(id), Msg::Close { id })
    }

    /// Trips the circuit breaker on session `id`: the session is
    /// tombstoned with `reason` as a typed
    /// [`FailureKind::CircuitBroken`] failure, late frames for it are
    /// dropped, and the eventual close/drain reports the reason. Used
    /// by [`feed_sequence_with`] when a producer gives up on a session;
    /// callable directly by any supervisor.
    ///
    /// # Errors
    ///
    /// Returns an error only if the worker has vanished.
    pub fn break_session(&self, id: SessionId, reason: impl Into<String>) -> Result<()> {
        self.send_parked(
            self.shard(id),
            Msg::Fail {
                id,
                error: Error::state(reason.into()),
            },
        )
    }

    /// The degradation rung currently driving the worker-level knobs
    /// (0 — nominal — when no SLO is configured).
    pub fn current_rung(&self) -> usize {
        self.shared
            .overload
            .as_ref()
            .map_or(0, |rt| rt.current.load(Ordering::Relaxed))
    }

    /// `base` with the current rung's cheaper motion-search
    /// recommendation applied (identity at nominal or without an SLO).
    /// Motion estimation runs client-side, so the server can only
    /// advise: producers that re-render under pressure should route
    /// their [`MotionConfig`] through this before building frames.
    pub fn degraded_motion(&self, base: &MotionConfig) -> MotionConfig {
        let mut config = *base;
        if let Some(rt) = self.shared.overload.as_ref() {
            let rung = &rt.slo.ladder.rungs[rt.current.load(Ordering::Relaxed)];
            if let Some(hint) = rung.motion_hint {
                config.strategy = hint;
            }
        }
        config
    }

    /// Shuts down gracefully: closes every lane, lets each worker
    /// finish its queued messages and flush all still-open sessions,
    /// then merges the per-worker reports.
    pub fn drain(self) -> DrainReport {
        self.shutdown().0
    }

    /// Warm-restart half one: shuts the server down with every live
    /// session flushed to a checkpoint instead of finished. The
    /// returned [`ServerImage`] plus [`thaw`][Self::thaw] rebuilds a
    /// server whose sessions continue bit-exactly where they froze.
    /// Statistics accumulated so far ride inside the image and are
    /// merged into the final drain.
    pub fn freeze(self) -> ServerImage<T> {
        self.shared.freeze.store(true, Ordering::Relaxed);
        let task = self.shared.task.clone();
        let schemes = self.shared.schemes.clone();
        let (carry, mut sessions) = self.shutdown();
        // Deterministic image: session order is id order, not the
        // worker-join order of whatever incarnation froze.
        sessions.sort_by_key(|(id, _)| *id);
        ServerImage {
            task,
            schemes,
            sessions,
            carry,
        }
    }

    /// Warm-restart half two: rebuilds a running server from a
    /// [`freeze`][Self::freeze] image under a fresh `config` (any
    /// worker count — sessions re-shard by id). Scheme registry and
    /// task come from the image; pre-freeze statistics carry into the
    /// final [`DrainReport`].
    ///
    /// # Errors
    ///
    /// Same validation as [`new`][Self::new].
    pub fn thaw(image: ServerImage<T>, config: ServeConfig) -> Result<Self> {
        let ServerImage {
            task,
            schemes,
            sessions,
            carry,
        } = image;
        let initial = sessions
            .into_iter()
            .map(|(id, frozen)| {
                let slot = match frozen {
                    FrozenSlot::Live(cp) => Slot::Live(Box::new(thaw_slot(cp))),
                    FrozenSlot::Dead { error, kind } => Slot::Dead { error, kind },
                };
                (id, slot)
            })
            .collect();
        Self::boot(task, schemes, config, initial, Some(Box::new(carry)))
    }

    /// The common teardown behind [`drain`][Self::drain] and
    /// [`freeze`][Self::freeze]: close lanes, join the crew, merge.
    fn shutdown(self) -> (DrainReport, Vec<(SessionId, FrozenSlot<T>)>) {
        let gates: Vec<Arc<CapacityGate>> = self
            .lanes
            .iter()
            .map(|lane| Arc::clone(&lane.gate))
            .collect();
        drop(self.lanes);
        let (outputs, frozen, recovery) = match self.crew {
            Crew::Plain(workers) => {
                let mut outputs = Vec::with_capacity(workers.len());
                let mut frozen = Vec::new();
                for handle in workers {
                    match handle
                        .join()
                        .expect("serve workers isolate session panics and never die")
                    {
                        WorkerExit::Drained(d) => {
                            outputs.push(d.output);
                            frozen.extend(d.frozen);
                        }
                        WorkerExit::Killed(_) => {
                            unreachable!("kills and wedges are gated on supervision")
                        }
                    }
                }
                (outputs, frozen, None)
            }
            Crew::Supervised(watchdog) => {
                let result = watchdog
                    .join()
                    .expect("the watchdog isolates nothing and touches no task code");
                (result.outputs, result.frozen, Some(result.recovery))
            }
        };
        let ladder_len = self
            .shared
            .overload
            .as_ref()
            .map_or(0, |rt| rt.slo.ladder.len());
        let mut frames_per_rung = vec![0u64; ladder_len];
        let mut reconfigs = 0u64;
        let mut max_epochs = 0u64;
        let mut chaos_total = ChaosReport::default();
        let mut report = DrainReport {
            outcomes: HashMap::new(),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            frames: 0,
            served: 0,
            dropped: 0,
            shed: 0,
            per_worker_frames: Vec::with_capacity(outputs.len()),
            per_worker: Vec::with_capacity(outputs.len()),
            ingress: IngressReport {
                spin_retries: self.spin_retries.load(Ordering::Relaxed),
                busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
                ..IngressReport::default()
            },
            nn: self
                .shared
                .batching
                .as_ref()
                .map(|_| NnServeReport::default()),
            degradation: None,
            chaos: None,
            recovery,
        };
        for (out, gate) in outputs.into_iter().zip(gates) {
            let gs = gate.stats();
            report.ingress.parked += gs.parked;
            report.ingress.woken += gs.woken;
            report.ingress.immediate += gs.immediate;
            report.latency.merge(&out.latency);
            report.queue_wait.merge(&out.queue_wait);
            report.frames += out.frames;
            report.served += out.served;
            report.dropped += out.dropped;
            report.shed += out.shed;
            for (rung, n) in out.frames_per_rung.iter().enumerate() {
                frames_per_rung[rung] += n;
            }
            reconfigs += out.reconfigs;
            max_epochs = max_epochs.max(out.max_epochs);
            chaos_total.merge(&out.chaos);
            report.per_worker_frames.push(out.frames);
            report.per_worker.push(WorkerStats {
                frames: out.frames,
                served: out.served,
                dropped: out.dropped,
                shed: out.shed,
                queue_wait: out.queue_wait,
                busy_ns: out.busy_ns,
                wall_ns: out.wall_ns,
                parked: gs.parked,
                woken: gs.woken,
            });
            if let (Some(total), Some(nn)) = (report.nn.as_mut(), out.nn.as_ref()) {
                total.merge(nn);
            }
            for (id, outcome, kind) in out.outcomes {
                report.outcomes.insert(id, (outcome, kind));
            }
        }
        if let Some(rt) = self.shared.overload.as_ref() {
            // Planned mode: the canonical (thread-count-independent)
            // walk is the template replayed over the pure pressure plan
            // for as many epochs as any session reached. Measured mode:
            // the global controller's own history (a poisoned lock just
            // means a worker died mid-epoch; its state is still valid).
            let (timeline, epochs, final_rung) = match &rt.plan {
                Some(plan) => {
                    let mut walk = rt.template.clone();
                    for epoch in 0..max_epochs {
                        walk.observe(plan.over_frac(epoch));
                    }
                    (walk.timeline().to_vec(), walk.epochs(), walk.rung())
                }
                None => {
                    let ctl = rt.controller.lock().unwrap_or_else(|p| p.into_inner());
                    (ctl.timeline().to_vec(), ctl.epochs(), ctl.rung())
                }
            };
            report.degradation = Some(DegradationReport {
                timeline,
                frames_per_rung,
                shed: report.shed,
                reconfigs,
                epochs,
                final_rung,
            });
        }
        if self.shared.chaos.is_some() {
            chaos_total.rejections += self.chaos_rejections.load(Ordering::Relaxed);
            report.chaos = Some(chaos_total);
        }
        if let Some(carry) = self.carry {
            merge_carry(&mut report, *carry);
        }
        (report, frozen)
    }

    /// A live snapshot of the ingress counters (the same numbers
    /// [`drain`][SessionServer::drain] reports, sampled mid-flight) —
    /// lets saturation tests and monitors observe parking as it
    /// happens.
    pub fn ingress_snapshot(&self) -> IngressReport {
        let mut report = IngressReport {
            spin_retries: self.spin_retries.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            ..IngressReport::default()
        };
        for lane in &self.lanes {
            let gs = lane.gate.stats();
            report.parked += gs.parked;
            report.woken += gs.woken;
            report.immediate += gs.immediate;
        }
        report
    }

    /// Parked send for rare control messages; maps a vanished worker to
    /// a clean error instead of a panic (drain will surface it).
    fn send_parked(&self, lane: usize, msg: Msg) -> Result<()> {
        self.lanes[lane].gate.acquire();
        let mut msg = msg;
        loop {
            match self.lanes[lane].tx.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    self.spin_retries.fetch_add(1, Ordering::Relaxed);
                    msg = back;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.lanes[lane].gate.release();
                    return Err(Error::config(format!("serve worker {lane} is gone")));
                }
            }
        }
    }
}

/// Per-worker accumulator for the cross-session batch window: counts
/// pending I-frame jobs (decisions are produced synchronously by the
/// session — only *cost attribution* is deferred) and remembers when
/// the window opened.
struct BatchCollector {
    pending: usize,
    opened_at: Option<Instant>,
}

impl BatchCollector {
    fn new() -> Self {
        BatchCollector {
            pending: 0,
            opened_at: None,
        }
    }

    /// Registers one inference job; returns `true` when the batch hit
    /// `max_batch` and must flush now.
    fn add(&mut self, max_batch: usize) -> bool {
        if self.pending == 0 {
            self.opened_at = Some(Instant::now());
        }
        self.pending += 1;
        self.pending >= max_batch
    }

    /// The instant the open window expires, if one is open.
    fn deadline(&self, max_wait: Duration) -> Option<Instant> {
        self.opened_at.map(|at| at + max_wait)
    }

    /// Closes the window, returning the fused batch size.
    fn take(&mut self) -> Option<usize> {
        self.opened_at = None;
        let n = std::mem::take(&mut self.pending);
        (n > 0).then_some(n)
    }
}

/// Charges one flushed batch of `jobs` inferences into the worker's NN
/// report using the pre-planned batch costs.
fn charge_batch(report: &mut NnServeReport, runtime: &BatchRuntime, jobs: usize) {
    let plan = &runtime.plans[jobs - 1];
    report.jobs += jobs as u64;
    report.batches += 1;
    report.batched_cycles += plan.compute_cycles();
    report.solo_cycles += jobs as u64 * runtime.solo.stats().total_compute_cycles().0;
    report.energy_mj += plan.energy().0;
    report.dram_bytes += plan.dram_read().0 + plan.dram_write().0;
    report.batch_sizes.record(jobs as u64);
}

/// One worker incarnation: owns its session table, histograms,
/// counters, and batch collector; runs until every sender is dropped
/// (→ [`WorkerExit::Drained`]) or a supervised fault takes it down
/// (→ [`WorkerExit::Killed`], handing its lane to the successor).
/// Releases one gate permit per dequeued message — the other half of
/// the parked-producer protocol; a message inherited from a dead
/// predecessor released its permit (and consumed its dequeue tick)
/// already.
fn worker_loop<T>(mut ctx: WorkerContext<T>) -> WorkerExit<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    let started = Instant::now();
    let shared = Arc::clone(&ctx.shared);
    let mut collector = BatchCollector::new();
    let ladder_len = shared.overload.as_ref().map_or(0, |rt| rt.slo.ladder.len());
    // The chaos corruption channel's substitute: a tiny frame of the
    // wrong resolution, so the corruption travels the same validation
    // (and poison) path a malformed client frame would.
    let corrupt_frame = shared
        .chaos
        .as_ref()
        .filter(|c| c.corrupt_every != 0)
        .map(|_| {
            FrameData::new(
                Vec::new(),
                MotionField::zeroed(Resolution::new(2, 2), 2, 1)
                    .expect("a 2x2 zero field is always constructible"),
            )
        });
    let mut out = WorkerOutput {
        outcomes: Vec::new(),
        latency: LatencyHistogram::new(),
        queue_wait: LatencyHistogram::new(),
        frames: 0,
        served: 0,
        dropped: 0,
        shed: 0,
        busy_ns: 0,
        wall_ns: 0,
        frames_per_rung: vec![0; ladder_len],
        reconfigs: 0,
        max_epochs: 0,
        chaos: ChaosReport::default(),
        nn: shared.batching.as_ref().map(|_| NnServeReport::default()),
    };
    // Seed the recovery ledger for inherited sessions: a no-op on
    // respawn (the ledger outlived the dead worker), the genesis
    // checkpoint for a thawed generation-0 table.
    if let Some(store) = ctx.ledgers.as_ref() {
        let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
        for (id, slot) in &ctx.sessions {
            store.entry(*id).or_insert_with(|| match slot {
                Slot::Live(live) => Ledger::Live(LiveLedger {
                    checkpoint: checkpoint_slot(live),
                    replay: Vec::new(),
                    lag: 0,
                    lost: false,
                    last_kill: None,
                }),
                Slot::Dead { error, kind } => Ledger::Dead {
                    error: error.clone(),
                    kind: *kind,
                },
            });
        }
    }
    loop {
        let injected = ctx.pending.is_some();
        // While a batch window is open, wait only until its deadline
        // (shrunk by the current rung's shift — degraded servers trade
        // amortization for latency); otherwise block for the next
        // message.
        let deadline = shared.batching.as_ref().and_then(|b| {
            let max_wait = match shared.overload.as_ref() {
                Some(rt) => {
                    let rung = rt.current.load(Ordering::Relaxed);
                    let shift = rt.slo.ladder.rungs[rung].max_wait_shift.min(63);
                    Duration::from_nanos((b.max_wait.as_nanos() as u64) >> shift)
                }
                None => b.max_wait,
            };
            collector.deadline(max_wait)
        });
        let msg = match ctx.pending.take() {
            Some(msg) => Some(msg),
            None => match deadline {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    match ctx.rx.recv_timeout(wait) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => {
                            if let (Some(rt), Some(nn), Some(jobs)) =
                                (shared.batching.as_ref(), out.nn.as_mut(), collector.take())
                            {
                                charge_batch(nn, rt, jobs);
                            }
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => None,
                    }
                }
                None => ctx.rx.recv().ok(),
            },
        };
        let Some(msg) = msg else { break };
        if let Some(pulse) = ctx.pulse.as_ref() {
            pulse.start();
        }
        // A message inherited from a dead predecessor already released
        // its permit and consumed its dequeue tick (and survived any
        // stall/wedge draw at that tick) — only fresh dequeues advance
        // the counters and the per-tick fault channels.
        if !injected {
            ctx.gate.release();
            let tick = ctx.dequeues;
            ctx.dequeues += 1;
            if let Some(chaos) = shared.chaos.as_ref() {
                if chaos.stall_at(ctx.windex, tick) {
                    out.chaos.stalls += 1;
                    std::thread::sleep(chaos.stall);
                }
                if chaos.wedge_at(ctx.windex, tick) {
                    // Wedge: stop making progress mid-message — busy
                    // stays true and the beat counter freezes, which is
                    // exactly what the watchdog's stale detection
                    // catches. The in-flight message travels to the
                    // successor untouched.
                    out.chaos.wedges += 1;
                    let pulse = ctx
                        .pulse
                        .as_ref()
                        .expect("wedges are gated on supervision at config validation");
                    while !pulse.is_deposed() {
                        std::thread::sleep(chaos.wedge);
                    }
                    flush_batch(&shared, &mut collector, &mut out);
                    out.wall_ns = started.elapsed().as_nanos() as u64;
                    return WorkerExit::Killed(Box::new(KilledWorker {
                        output: out,
                        rx: ctx.rx,
                        pending: Some(msg),
                        dequeues: ctx.dequeues,
                        trigger: None,
                    }));
                }
            }
        }
        let busy_from = Instant::now();
        match msg {
            Msg::Open {
                id,
                scheme,
                resolution,
            } => {
                let spec = &shared.schemes[scheme];
                let slot = match Session::new(shared.task.clone(), spec.backend, resolution, id) {
                    Ok(session) => Slot::Live(Box::new(LiveSlot {
                        session,
                        scheme,
                        arrivals: 0,
                        applied_rung: 0,
                        walk: shared
                            .overload
                            .as_ref()
                            .filter(|rt| rt.plan.is_some())
                            .map(|rt| rt.template.clone()),
                    })),
                    Err(e) => Slot::Dead {
                        error: e,
                        kind: FailureKind::Protocol,
                    },
                };
                if let Some(store) = ctx.ledgers.as_ref() {
                    let entry = match &slot {
                        Slot::Live(live) => Ledger::Live(LiveLedger {
                            checkpoint: checkpoint_slot(live),
                            replay: Vec::new(),
                            lag: 0,
                            lost: false,
                            last_kill: None,
                        }),
                        Slot::Dead { error, kind } => Ledger::Dead {
                            error: error.clone(),
                            kind: *kind,
                        },
                    };
                    store
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(id, entry);
                }
                if let Some(old) = ctx.sessions.insert(id, slot) {
                    let (outcome, kind) = finish_slot(old);
                    out.outcomes.push((id, outcome, kind));
                }
            }
            Msg::Frame { id, frame, at } => {
                // Chaos worker kill: keyed on the target session's next
                // arrival index (worker-count invariant), checked
                // *before* any counter so the redelivered frame is
                // counted exactly once — by the successor. The ledger's
                // `last_kill` fuse keeps the same draw from re-firing
                // on redelivery.
                if let (Some(chaos), Some(store)) = (shared.chaos.as_ref(), ctx.ledgers.as_ref()) {
                    if chaos.kill_every != 0 {
                        if let Some(Slot::Live(slot)) = ctx.sessions.get(&id) {
                            let arrival = slot.arrivals;
                            if chaos.kill_at(id, arrival) {
                                let fire = {
                                    let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                                    match store.get_mut(&id) {
                                        Some(Ledger::Live(l)) if l.last_kill != Some(arrival) => {
                                            l.last_kill = Some(arrival);
                                            true
                                        }
                                        _ => false,
                                    }
                                };
                                if fire {
                                    out.chaos.kills += 1;
                                    flush_batch(&shared, &mut collector, &mut out);
                                    out.wall_ns = started.elapsed().as_nanos() as u64;
                                    return WorkerExit::Killed(Box::new(KilledWorker {
                                        output: out,
                                        rx: ctx.rx,
                                        pending: Some(Msg::Frame { id, frame, at }),
                                        dequeues: ctx.dequeues,
                                        trigger: Some((id, arrival)),
                                    }));
                                }
                            }
                        }
                    }
                }
                out.frames += 1;
                let wait_ns = at.elapsed().as_nanos() as u64;
                out.queue_wait.record(wait_ns);
                // Measured-mode pressure pooling: every received frame
                // contributes; the worker that completes an epoch locks
                // the controller once and publishes the rung.
                if let Some(rt) = shared.overload.as_ref() {
                    if rt.plan.is_none() {
                        if wait_ns > rt.slo.frame_budget.as_nanos() as u64 {
                            rt.epoch_over.fetch_add(1, Ordering::Relaxed);
                        }
                        let n = rt.epoch_frames.fetch_add(1, Ordering::Relaxed) + 1;
                        if n % rt.slo.eval_every == 0 {
                            let over = rt.epoch_over.swap(0, Ordering::Relaxed);
                            let mut ctl = rt.controller.lock().unwrap_or_else(|p| p.into_inner());
                            let rung = ctl.observe(over as f64 / rt.slo.eval_every as f64);
                            rt.current.store(rung, Ordering::Relaxed);
                        }
                    }
                }
                match ctx.sessions.get_mut(&id) {
                    Some(Slot::Live(slot)) => {
                        // Write-ahead: log the frame into the recovery
                        // ledger *before* processing — shed frames
                        // included, since they still advance the
                        // arrival counter and the planned walk and must
                        // be re-shed identically on replay.
                        if let (Some(store), Some(sup)) =
                            (ctx.ledgers.as_ref(), shared.supervise.as_ref())
                        {
                            let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                            if let Some(Ledger::Live(l)) = store.get_mut(&id) {
                                l.lag += 1;
                                if l.lag > sup.replay_budget {
                                    l.lost = true;
                                    l.replay.clear();
                                } else {
                                    l.replay.push(Arc::clone(&frame));
                                }
                            }
                        }
                        let arrival = slot.arrivals;
                        slot.arrivals += 1;
                        let shed =
                            schedule_arrival(&shared, slot, arrival, Some(wait_ns), Some(&mut out));
                        if shed {
                            out.shed += 1;
                        } else {
                            let (chaos_panic, chaos_corrupt) = match shared.chaos.as_ref() {
                                Some(c) => (c.panic_at(id, arrival), c.corrupt_at(id, arrival)),
                                None => (false, false),
                            };
                            let pushed: &FrameData = if chaos_corrupt {
                                out.chaos.corrupted += 1;
                                corrupt_frame
                                    .as_ref()
                                    .expect("corruption armed implies the substitute exists")
                            } else {
                                &frame
                            };
                            // One session's panic — organic or injected —
                            // must not take down the worker (or the other
                            // sessions on this shard).
                            match catch_unwind(AssertUnwindSafe(|| {
                                if chaos_panic {
                                    panic!("chaos: injected task panic");
                                }
                                slot.session.push_frame(pushed)
                            })) {
                                Ok(Ok(decision)) => {
                                    out.served += 1;
                                    out.latency.record(at.elapsed().as_nanos() as u64);
                                    if decision.is_inference() {
                                        if let Some(rt) = shared.batching.as_ref() {
                                            if collector.add(rt.max_batch) {
                                                if let (Some(nn), Some(jobs)) =
                                                    (out.nn.as_mut(), collector.take())
                                                {
                                                    charge_batch(nn, rt, jobs);
                                                }
                                            }
                                        }
                                    }
                                }
                                Ok(Err(e)) => {
                                    out.dropped += 1;
                                    let kind = if chaos_corrupt {
                                        FailureKind::ChaosInjected
                                    } else {
                                        FailureKind::Poisoned
                                    };
                                    bury(ctx.ledgers.as_ref(), id, &e, kind);
                                    ctx.sessions.insert(id, Slot::Dead { error: e, kind });
                                }
                                Err(payload) => {
                                    out.dropped += 1;
                                    let kind = if chaos_panic {
                                        out.chaos.panics += 1;
                                        FailureKind::ChaosInjected
                                    } else {
                                        FailureKind::Panicked
                                    };
                                    let error = Error::config(format!(
                                        "session task panicked: {}",
                                        panic_text(payload)
                                    ));
                                    bury(ctx.ledgers.as_ref(), id, &error, kind);
                                    ctx.sessions.insert(id, Slot::Dead { error, kind });
                                }
                            }
                        }
                        // Checkpoint refresh on the arrival cadence —
                        // only if the session survived this frame.
                        // Cadence points are pure arrival multiples, so
                        // a session's replay distance at any fault is
                        // `arrival % checkpoint_every` at every worker
                        // count.
                        if let (Some(store), Some(sup)) =
                            (ctx.ledgers.as_ref(), shared.supervise.as_ref())
                        {
                            if let Some(Slot::Live(slot)) = ctx.sessions.get(&id) {
                                if slot.arrivals % sup.checkpoint_every == 0 {
                                    let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                                    if let Some(Ledger::Live(l)) = store.get_mut(&id) {
                                        l.checkpoint = checkpoint_slot(slot);
                                        l.replay.clear();
                                        l.lag = 0;
                                        l.lost = false;
                                    }
                                }
                            }
                        }
                    }
                    Some(Slot::Dead { .. }) | None => out.dropped += 1,
                }
            }
            Msg::Close { id } => {
                if let Some(store) = ctx.ledgers.as_ref() {
                    store.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
                }
                let (outcome, kind) = match ctx.sessions.remove(&id) {
                    Some(slot) => finish_slot(slot),
                    None => (
                        Err(Error::config(format!("close of unknown session {id}"))),
                        Some(FailureKind::Protocol),
                    ),
                };
                out.outcomes.push((id, outcome, kind));
            }
            Msg::Fail { id, error } => {
                // The tombstone replaces whatever was there; a live
                // session's partial outcome is deliberately discarded —
                // the breaker reason is the record.
                bury(ctx.ledgers.as_ref(), id, &error, FailureKind::CircuitBroken);
                ctx.sessions.insert(
                    id,
                    Slot::Dead {
                        error,
                        kind: FailureKind::CircuitBroken,
                    },
                );
            }
        }
        out.busy_ns += busy_from.elapsed().as_nanos() as u64;
        if let Some(pulse) = ctx.pulse.as_ref() {
            pulse.finish();
        }
    }
    // Lanes closed: flush the open batch, then everything still open —
    // as outcomes normally, as checkpoints when the server is freezing
    // for a warm restart.
    flush_batch(&shared, &mut collector, &mut out);
    out.wall_ns = started.elapsed().as_nanos() as u64;
    if shared.freeze.load(Ordering::Relaxed) {
        let frozen = ctx
            .sessions
            .drain()
            .map(|(id, slot)| {
                let frozen = match slot {
                    Slot::Live(live) => FrozenSlot::Live(checkpoint_slot(&live)),
                    Slot::Dead { error, kind } => FrozenSlot::Dead { error, kind },
                };
                (id, frozen)
            })
            .collect();
        return WorkerExit::Drained(Box::new(DrainedWorker {
            output: out,
            frozen,
        }));
    }
    for (id, slot) in ctx.sessions.drain() {
        let (outcome, kind) = finish_slot(slot);
        out.outcomes.push((id, outcome, kind));
    }
    WorkerExit::Drained(Box::new(DrainedWorker {
        output: out,
        frozen: Vec::new(),
    }))
}

/// Flushes the open batch window into the worker's NN report (used at
/// every worker exit point and on drain).
fn flush_batch<T: VisionTask>(
    shared: &Shared<T>,
    collector: &mut BatchCollector,
    out: &mut WorkerOutput,
) {
    if let Some(rt) = shared.batching.as_ref() {
        if let (Some(nn), Some(jobs)) = (out.nn.as_mut(), collector.take()) {
            charge_batch(nn, rt, jobs);
        }
    }
}

/// Mirrors a session death into the recovery ledger so a resurrection
/// reproduces the tombstone (late frames must still count as dropped
/// after a respawn).
fn bury<T: VisionTask>(
    ledgers: Option<&LedgerStore<T>>,
    id: SessionId,
    error: &Error,
    kind: FailureKind,
) {
    if let Some(store) = ledgers {
        store.lock().unwrap_or_else(|p| p.into_inner()).insert(
            id,
            Ledger::Dead {
                error: error.clone(),
                kind,
            },
        );
    }
}

/// Resolves one arrival's degradation decision for a session slot: in
/// planned mode advances the slot's own controller replica on the
/// arrival index, in measured mode reads the global rung; applies the
/// rung's EW policy via `Session::reconfigure_policy` when it changes,
/// and returns whether the frame is shed.
///
/// The live path passes `Some(out)`; the recovery **replay** path
/// passes `None` for both `wait_ns` and `out` — replay rebuilds session
/// *state* (walk, policy, arrivals) without touching any counter,
/// histogram, or the global rung, because every replayed frame was
/// already counted by the incarnation that first processed it. Under a
/// planned pressure plan the shed decision is a pure function of the
/// arrival index, so replay re-sheds exactly the frames the dead worker
/// shed; in measured mode replay never sheds (documented best-effort —
/// measured rungs are wall-clock-driven and not replayable).
fn schedule_arrival<T>(
    shared: &Shared<T>,
    slot: &mut LiveSlot<T>,
    arrival: u64,
    wait_ns: Option<u64>,
    mut out: Option<&mut WorkerOutput>,
) -> bool
where
    T: VisionTask + Clone,
{
    let rung = match shared.overload.as_ref() {
        Some(rt) => match (&rt.plan, slot.walk.as_mut()) {
            (Some(plan), Some(walk)) => {
                if arrival.is_multiple_of(rt.slo.eval_every) {
                    let epoch = arrival / rt.slo.eval_every;
                    let r = walk.observe(plan.over_frac(epoch));
                    if let Some(out) = out.as_deref_mut() {
                        out.max_epochs = out.max_epochs.max(epoch + 1);
                        rt.current.store(r, Ordering::Relaxed);
                    }
                }
                walk.rung()
            }
            _ => rt.current.load(Ordering::Relaxed),
        },
        None => 0,
    };
    let mut shed = false;
    if let Some(rt) = shared.overload.as_ref() {
        if let Some(out) = out.as_deref_mut() {
            out.frames_per_rung[rung] += 1;
        }
        if rung != slot.applied_rung {
            let policy = match rt.slo.ladder.rungs[rung].ew_window {
                Some(n) => EwPolicy::Constant(n),
                None => shared.schemes[slot.scheme].backend.policy,
            };
            if slot.session.reconfigure_policy(policy).is_ok() {
                if let Some(out) = out {
                    out.reconfigs += 1;
                }
            }
            slot.applied_rung = rung;
        }
        // Last-resort rung: planned mode sheds every frame
        // (deterministic); measured mode sheds only frames already over
        // budget (a stale frame's result is worthless).
        shed = rt.slo.ladder.rungs[rung].shed
            && (rt.plan.is_some()
                || wait_ns.is_some_and(|w| w > rt.slo.frame_budget.as_nanos() as u64));
    }
    shed
}

/// Captures a live serving slot into a checkpoint (core session
/// snapshot + serve-side schedule state).
fn checkpoint_slot<T>(slot: &LiveSlot<T>) -> SlotCheckpoint<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    SlotCheckpoint {
        session: slot.session.snapshot(),
        scheme: slot.scheme,
        arrivals: slot.arrivals,
        applied_rung: slot.applied_rung,
        walk: slot.walk.clone(),
    }
}

/// Rebuilds a live serving slot from a checkpoint.
fn thaw_slot<T>(cp: SlotCheckpoint<T>) -> LiveSlot<T>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    LiveSlot {
        session: Session::restore(cp.session),
        scheme: cp.scheme,
        arrivals: cp.arrivals,
        applied_rung: cp.applied_rung,
        walk: cp.walk,
    }
}

/// Rebuilds a dead worker's session table from its lane ledger:
/// tombstones are copied, live sessions are restored from their last
/// checkpoint and the write-ahead log is replayed through the same
/// scheduling logic the live path uses (counter-free — see
/// [`schedule_arrival`]). Sessions whose log outgrew the replay budget
/// drain as [`FailureKind::Unrecovered`] with the exact arithmetic in
/// the error. Replay skips the per-frame chaos checks deliberately:
/// a frame only enters the log *after* surviving its kill draw, and a
/// frame whose injected panic/corruption killed the session leaves a
/// `Dead` ledger behind, so logged frames are exactly the fault-free
/// ones.
fn resurrect<T>(
    shared: &Shared<T>,
    store: &LedgerStore<T>,
    recovery: &mut RecoveryReport,
) -> HashMap<SessionId, Slot<T>>
where
    T: VisionTask + Clone,
    T::State: Clone,
{
    let budget = shared.supervise.as_ref().map_or(0, |s| s.replay_budget);
    let mut sessions = HashMap::new();
    let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
    for (id, ledger) in store.iter_mut() {
        match ledger {
            Ledger::Dead { error, kind } => {
                sessions.insert(
                    *id,
                    Slot::Dead {
                        error: error.clone(),
                        kind: *kind,
                    },
                );
            }
            Ledger::Live(live) => {
                if live.lost {
                    let error = Error::state(format!(
                        "unrecovered session {id}: worker died {} frames past the last \
                         checkpoint, over the replay budget of {budget}",
                        live.lag,
                    ));
                    sessions.insert(
                        *id,
                        Slot::Dead {
                            error: error.clone(),
                            kind: FailureKind::Unrecovered,
                        },
                    );
                    *ledger = Ledger::Dead {
                        error,
                        kind: FailureKind::Unrecovered,
                    };
                    recovery.unrecovered += 1;
                    continue;
                }
                let mut slot = thaw_slot(live.checkpoint.clone());
                let mut failed: Option<Error> = None;
                for frame in &live.replay {
                    let arrival = slot.arrivals;
                    slot.arrivals += 1;
                    recovery.replayed_frames += 1;
                    if schedule_arrival(shared, &mut slot, arrival, None, None) {
                        continue;
                    }
                    match catch_unwind(AssertUnwindSafe(|| slot.session.push_frame(frame))) {
                        Ok(Ok(_)) => {}
                        Ok(Err(e)) => {
                            failed = Some(e);
                            break;
                        }
                        Err(payload) => {
                            failed = Some(Error::config(format!(
                                "session task panicked during replay: {}",
                                panic_text(payload)
                            )));
                            break;
                        }
                    }
                }
                match failed {
                    None => {
                        recovery.resurrected += 1;
                        sessions.insert(*id, Slot::Live(Box::new(slot)));
                    }
                    Some(e) => {
                        let error =
                            Error::state(format!("unrecovered session {id}: replay diverged: {e}"));
                        sessions.insert(
                            *id,
                            Slot::Dead {
                                error: error.clone(),
                                kind: FailureKind::Unrecovered,
                            },
                        );
                        *ledger = Ledger::Dead {
                            error,
                            kind: FailureKind::Unrecovered,
                        };
                        recovery.unrecovered += 1;
                    }
                }
            }
        }
    }
    sessions
}

/// One supervised worker seat: the thread handle of its current
/// incarnation plus everything the watchdog needs to detect a death,
/// resurrect the lane, and spawn a successor.
struct Seat<T: VisionTask> {
    handle: Option<JoinHandle<WorkerExit<T>>>,
    pulse: Arc<Pulse>,
    store: LedgerStore<T>,
    gate: Arc<CapacityGate>,
    windex: u64,
    /// Merged outputs of all finished incarnations on this seat.
    agg: Option<WorkerOutput>,
    frozen: Vec<(SessionId, FrozenSlot<T>)>,
    last_beats: u64,
    stale: u32,
}

fn merge_seat<T: VisionTask>(seat: &mut Seat<T>, out: WorkerOutput) {
    match seat.agg.as_mut() {
        Some(agg) => merge_output(agg, out),
        None => seat.agg = Some(out),
    }
}

fn merge_output(agg: &mut WorkerOutput, out: WorkerOutput) {
    agg.outcomes.extend(out.outcomes);
    agg.latency.merge(&out.latency);
    agg.queue_wait.merge(&out.queue_wait);
    agg.frames += out.frames;
    agg.served += out.served;
    agg.dropped += out.dropped;
    agg.shed += out.shed;
    agg.busy_ns += out.busy_ns;
    agg.wall_ns += out.wall_ns;
    for (rung, n) in out.frames_per_rung.iter().enumerate() {
        agg.frames_per_rung[rung] += n;
    }
    agg.reconfigs += out.reconfigs;
    agg.max_epochs = agg.max_epochs.max(out.max_epochs);
    agg.chaos.merge(&out.chaos);
    if let (Some(total), Some(nn)) = (agg.nn.as_mut(), out.nn.as_ref()) {
        total.merge(nn);
    }
}

/// The supervisor: polls every seat's heartbeat, joins finished
/// incarnations, and — when one died instead of draining — resurrects
/// its lane's sessions from the ledger and spawns a successor that
/// inherits the lane receiver, the in-flight message, and the dequeue
/// counter. Mid-message workers whose beat counter freezes for
/// `missed_beats` consecutive polls are deposed (the wedge channel).
/// Runs until every seat has drained.
fn watchdog_loop<T>(
    shared: Arc<Shared<T>>,
    mut seats: Vec<Seat<T>>,
    cfg: SuperviseConfig,
) -> WatchdogResult<T>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send + Clone,
{
    let mut recovery = RecoveryReport::default();
    loop {
        let mut live = false;
        for seat in &mut seats {
            let Some(handle) = seat.handle.as_ref() else {
                continue;
            };
            if !handle.is_finished() {
                live = true;
                let (beats, busy) = seat.pulse.sample();
                if busy && beats == seat.last_beats {
                    seat.stale += 1;
                    if seat.stale >= cfg.missed_beats {
                        seat.pulse.depose();
                    }
                } else {
                    seat.stale = 0;
                }
                seat.last_beats = beats;
                continue;
            }
            let exit = seat
                .handle
                .take()
                .expect("checked above")
                .join()
                .expect("serve workers isolate session panics and never die");
            match exit {
                WorkerExit::Drained(d) => {
                    merge_seat(seat, d.output);
                    seat.frozen = d.frozen;
                }
                WorkerExit::Killed(k) => {
                    live = true;
                    let k = *k;
                    let incident = match k.trigger {
                        Some((session, arrival)) => {
                            let (replay_lag, recovered) = {
                                let store = seat.store.lock().unwrap_or_else(|p| p.into_inner());
                                match store.get(&session) {
                                    Some(Ledger::Live(l)) => (l.lag, !l.lost),
                                    _ => (0, true),
                                }
                            };
                            RecoveryIncident {
                                kind: IncidentKind::WorkerKill,
                                session,
                                tick: arrival,
                                replay_lag,
                                recovered,
                            }
                        }
                        None => {
                            let session = match &k.pending {
                                Some(
                                    Msg::Frame { id, .. }
                                    | Msg::Open { id, .. }
                                    | Msg::Close { id }
                                    | Msg::Fail { id, .. },
                                ) => *id,
                                None => SessionId::MAX,
                            };
                            RecoveryIncident {
                                kind: IncidentKind::Wedge,
                                session,
                                tick: k.dequeues.saturating_sub(1),
                                replay_lag: 0,
                                recovered: true,
                            }
                        }
                    };
                    recovery.incidents.push(incident);
                    recovery.respawns += 1;
                    merge_seat(seat, k.output);
                    let sessions = resurrect(shared.as_ref(), &seat.store, &mut recovery);
                    seat.pulse.reinstate();
                    seat.last_beats = 0;
                    seat.stale = 0;
                    let ctx = WorkerContext {
                        shared: Arc::clone(&shared),
                        rx: k.rx,
                        gate: Arc::clone(&seat.gate),
                        windex: seat.windex,
                        pulse: Some(Arc::clone(&seat.pulse)),
                        ledgers: Some(Arc::clone(&seat.store)),
                        sessions,
                        pending: k.pending,
                        dequeues: k.dequeues,
                    };
                    seat.handle = Some(std::thread::spawn(move || worker_loop(ctx)));
                }
            }
        }
        if !live {
            break;
        }
        std::thread::sleep(cfg.beat_interval);
    }
    recovery.incidents.sort_by_key(|i| (i.tick, i.session));
    let mut outputs = Vec::with_capacity(seats.len());
    let mut frozen = Vec::new();
    for seat in seats {
        outputs.push(
            seat.agg
                .expect("every seat drained before the watchdog exits"),
        );
        frozen.extend(seat.frozen);
    }
    WatchdogResult {
        outputs,
        frozen,
        recovery,
    }
}

/// A frozen server: the task, the scheme registry, every session's
/// checkpoint (or tombstone) in id order, and the statistics
/// accumulated before the freeze. Produced by
/// [`SessionServer::freeze`], consumed by [`SessionServer::thaw`] —
/// the thawed server's sessions continue bit-exactly where they froze,
/// at any worker count.
pub struct ServerImage<T: VisionTask> {
    task: T,
    schemes: Vec<SchemeSpec>,
    sessions: Vec<(SessionId, FrozenSlot<T>)>,
    carry: DrainReport,
}

impl<T: VisionTask> ServerImage<T> {
    /// Sessions captured in the image (live checkpoints + tombstones).
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions frozen live (restorable).
    pub fn live_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|(_, slot)| matches!(slot, FrozenSlot::Live(_)))
            .count()
    }

    /// The statistics accumulated before the freeze (merged into the
    /// thawed server's final drain).
    pub fn carried(&self) -> &DrainReport {
        &self.carry
    }
}

/// Folds a pre-freeze [`DrainReport`] carried through a warm restart
/// into the final one: histograms merge, counters add, outcome maps
/// union (the post-thaw run wins on conflict — it saw the session
/// last), and the degradation walk keeps the current incarnation's
/// unless it had none. `per_worker`/`per_worker_frames` stay
/// per-incarnation (the worker count may have changed across the
/// restart).
fn merge_carry(report: &mut DrainReport, carry: DrainReport) {
    report.latency.merge(&carry.latency);
    report.queue_wait.merge(&carry.queue_wait);
    report.frames += carry.frames;
    report.served += carry.served;
    report.dropped += carry.dropped;
    report.shed += carry.shed;
    report.ingress.parked += carry.ingress.parked;
    report.ingress.woken += carry.ingress.woken;
    report.ingress.immediate += carry.ingress.immediate;
    report.ingress.spin_retries += carry.ingress.spin_retries;
    report.ingress.busy_rejections += carry.ingress.busy_rejections;
    if let Some(nn) = carry.nn {
        match report.nn.as_mut() {
            Some(total) => total.merge(&nn),
            None => report.nn = Some(nn),
        }
    }
    if report.degradation.is_none() {
        report.degradation = carry.degradation;
    }
    if let Some(chaos) = carry.chaos {
        match report.chaos.as_mut() {
            Some(total) => total.merge(&chaos),
            None => report.chaos = Some(chaos),
        }
    }
    if let Some(recovery) = carry.recovery {
        match report.recovery.as_mut() {
            Some(total) => total.merge(&recovery),
            None => report.recovery = Some(recovery),
        }
    }
    for (id, entry) in carry.outcomes {
        report.outcomes.entry(id).or_insert(entry);
    }
}

fn finish_slot<T: VisionTask>(slot: Slot<T>) -> (Result<TaskOutcome>, Option<FailureKind>) {
    match slot {
        Slot::Live(live) => (Ok(live.session.finish()), None),
        Slot::Dead { error, kind } => (Err(error), Some(kind)),
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Hash key for [`FeedPolicy::backoff`]'s jitter stream.
const BACKOFF_STREAM: u64 = 0xFEED_B0FF;

/// Producer-side retry/backoff hardening for the feed loop.
///
/// Each frame gets up to `attempts` deadline-bounded submits whose
/// timeouts grow exponentially with a deterministic jitter
/// ([`backoff`][FeedPolicy::backoff] — pure in
/// `(jitter_seed, session, frame, attempt)`, so retry schedules
/// decorrelate across sessions without a wall clock). A frame still
/// `Busy` after the last attempt either parks until capacity
/// (`park_after_retries`, the lossless default) or is shed
/// client-side; `breaker_threshold` consecutive shed frames trip a
/// circuit breaker. With `breaker_cooldown == 0` the trip is terminal:
/// [`SessionServer::break_session`] tombstones the session and the feed
/// stops. With a nonzero cooldown the breaker is *half-open*: the next
/// `breaker_cooldown` frames are skipped client-side without touching
/// the lane ([`FeedReport::short_circuited`]), then one probe frame is
/// let through — an accepted probe re-closes the breaker
/// ([`FeedReport::reclosed`]), a rejected one re-opens it for another
/// cooldown. Every transition is a pure function of the submit
/// verdicts, so breaker timelines replay bit-for-bit.
#[derive(Debug, Clone)]
pub struct FeedPolicy {
    /// Deadline-bounded submit attempts per frame before the fallback
    /// (0 = pure [`submit_blocking`][SessionServer::submit_blocking]).
    pub attempts: u32,
    /// First attempt's backoff window.
    pub base_backoff: Duration,
    /// Ceiling for the exponential growth.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// After `attempts` Busy verdicts: `true` parks (the frame is never
    /// lost), `false` sheds the frame client-side and counts it in
    /// [`FeedReport::rejected`].
    pub park_after_retries: bool,
    /// Consecutive client-side rejections that trip the circuit breaker
    /// (0 disables it; only reachable with `park_after_retries =
    /// false`).
    pub breaker_threshold: u32,
    /// Frames skipped client-side after a trip before one half-open
    /// probe is let through. `0` keeps the legacy terminal breaker: the
    /// first trip tombstones the session and stops the feed.
    pub breaker_cooldown: u64,
}

impl Default for FeedPolicy {
    fn default() -> Self {
        FeedPolicy {
            attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
            jitter_seed: 0xFEED,
            park_after_retries: true,
            breaker_threshold: 0,
            breaker_cooldown: 0,
        }
    }
}

impl FeedPolicy {
    /// The pre-retry behavior: park on a full lane immediately, never
    /// reject, never trip.
    pub fn blocking() -> Self {
        FeedPolicy {
            attempts: 0,
            ..FeedPolicy::default()
        }
    }

    /// The deadline for retry `attempt` of `frame` on session `id`:
    /// exponential in the attempt, capped at `max_backoff`, with a
    /// deterministic jitter in the upper half of the window. A pure
    /// function — the chaos suite replays schedules bit-for-bit.
    pub fn backoff(&self, id: SessionId, frame: u64, attempt: u32) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        let cap = self.max_backoff.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
        let jitter = rngx::jitter(
            self.jitter_seed ^ BACKOFF_STREAM ^ id,
            rngx::counter_hash(frame, u64::from(attempt)),
            exp / 2 + 1,
        );
        Duration::from_nanos(exp / 2 + jitter)
    }
}

/// What one [`feed_sequence_with`] call did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FeedReport {
    /// Frames accepted onto the lane (including after retries or a
    /// park).
    pub submitted: u64,
    /// Frames shed client-side after exhausting the retry budget.
    pub rejected: u64,
    /// Busy verdicts that led to another attempt.
    pub retries: u64,
    /// `true` if the circuit breaker tombstoned the session (only with
    /// [`FeedPolicy::breaker_cooldown`]` == 0`).
    pub tripped: bool,
    /// Closed/half-open → open transitions.
    pub trips: u64,
    /// Frames skipped client-side while the breaker was open.
    pub short_circuited: u64,
    /// Half-open probes that re-closed the breaker.
    pub reclosed: u64,
}

/// The feed loop's half-open circuit breaker (see
/// [`FeedPolicy::breaker_cooldown`]). Transitions are pure in the
/// sequence of submit verdicts: closed → open after
/// `breaker_threshold` consecutive rejections, open counts down
/// `breaker_cooldown` skipped frames, the frame after the countdown is
/// the half-open probe, and the probe's verdict either re-closes or
/// re-opens.
struct CircuitBreaker {
    state: BreakerState,
    consecutive: u32,
    threshold: u32,
    cooldown: u64,
}

enum BreakerState {
    Closed,
    Open { remaining: u64 },
    HalfOpen,
}

impl CircuitBreaker {
    fn new(policy: &FeedPolicy) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive: 0,
            threshold: policy.breaker_threshold,
            cooldown: policy.breaker_cooldown,
        }
    }

    /// Whether the next frame may touch the lane. Counts down the open
    /// cooldown; the frame that finds it exhausted is admitted as the
    /// half-open probe.
    fn admits(&mut self) -> bool {
        match &mut self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    true
                }
            }
        }
    }

    /// Records an accepted frame; returns `true` when it was the probe
    /// that re-closed the breaker.
    fn on_accepted(&mut self) -> bool {
        self.consecutive = 0;
        if matches!(self.state, BreakerState::HalfOpen) {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }

    /// Records a client-side rejection; returns `true` when it tripped
    /// the breaker open (a failed probe trips unconditionally).
    fn on_rejected(&mut self) -> bool {
        self.consecutive += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.threshold != 0 && self.consecutive >= self.threshold,
            // Open frames never reach the lane, so never reject.
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                remaining: self.cooldown,
            };
        }
        trip
    }
}

/// Streams one synthetic sequence into the server under session `id`
/// with an explicit [`FeedPolicy`]: opens, renders frames lazily
/// through the O(1)-memory `frame_source` pipeline (client-side, with
/// the renderer's own frame pool), submits each frame under the
/// policy's retry/backoff/breaker rules, and closes (the close still
/// runs after a breaker trip — it is what surfaces the typed
/// [`FailureKind::CircuitBroken`] outcome at drain).
///
/// # Errors
///
/// Propagates open/render errors; a lost worker surfaces as an error
/// from the open, submit, or close.
pub fn feed_sequence_with<T>(
    server: &SessionServer<T>,
    id: SessionId,
    scheme: &str,
    seq: &Sequence,
    motion: &MotionConfig,
    policy: &FeedPolicy,
) -> Result<FeedReport>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send + Clone,
{
    let source = frame_source(seq, motion)?;
    server.open(id, scheme, source.resolution())?;
    let mut report = FeedReport::default();
    let mut breaker = CircuitBreaker::new(policy);
    for (index, frame) in source.enumerate() {
        let frame = Arc::new(frame?);
        if !breaker.admits() {
            report.short_circuited += 1;
            continue;
        }
        if policy.attempts == 0 {
            server.submit_blocking(id, frame)?;
            report.submitted += 1;
            continue;
        }
        // `pending` holds the frame while it is still ours; an accepted
        // submit leaves it `None`.
        let mut pending = Some(frame);
        for attempt in 0..policy.attempts {
            let frame = pending
                .take()
                .expect("pending frame present while retrying");
            match server.submit_deadline(id, frame, policy.backoff(id, index as u64, attempt)) {
                Submit::Enqueued => break,
                Submit::Busy(back) => {
                    report.retries += 1;
                    pending = Some(back);
                }
            }
        }
        let mut accepted = pending.is_none();
        if let Some(frame) = pending.take() {
            if policy.park_after_retries {
                server.submit_blocking(id, frame)?;
                accepted = true;
            }
        }
        if accepted {
            report.submitted += 1;
            if breaker.on_accepted() {
                report.reclosed += 1;
            }
            continue;
        }
        report.rejected += 1;
        if breaker.on_rejected() {
            report.trips += 1;
            if policy.breaker_cooldown == 0 {
                report.tripped = true;
                server.break_session(
                    id,
                    format!(
                        "circuit breaker: {} consecutive frames rejected \
                         (last at frame {index} of session {id})",
                        breaker.consecutive
                    ),
                )?;
                break;
            }
        }
    }
    server.close(id)?;
    Ok(report)
}

/// Streams one synthetic sequence into the server under session `id`
/// with the default [`FeedPolicy`]: a few jittered-backoff retries on
/// a full lane, then parked-producer backpressure
/// ([`submit_blocking`][SessionServer::submit_blocking] — the feeder
/// sleeps, not spins) so no frame is ever lost.
///
/// # Errors
///
/// Propagates open/render errors; a lost worker surfaces as an error
/// from the open, submit, or close.
pub fn feed_sequence<T>(
    server: &SessionServer<T>,
    id: SessionId,
    scheme: &str,
    seq: &Sequence,
    motion: &MotionConfig,
) -> Result<()>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send + Clone,
{
    feed_sequence_with(server, id, scheme, seq, motion, &FeedPolicy::default()).map(|_| ())
}
