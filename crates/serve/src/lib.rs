//! Sharded concurrent session serving for the Euphrates pipeline.
//!
//! The paper's deployment target is "millions of users" of continuous
//! vision (§1): the per-frame schedule that `euphrates_core::Session`
//! implements is cheap enough that one machine should carry hundreds of
//! concurrent streams. This crate is that serving layer, shaped like an
//! inference server:
//!
//! * **Sharding** — every session id is hashed onto one of N worker
//!   threads, so a session's frames are processed *in order by a single
//!   worker*. Per-session outcomes are therefore bit-identical to
//!   running the same frames through a standalone [`Session`] (or the
//!   offline `Scenario::evaluate`, which is built on sessions): workers
//!   only decide *where* a session runs, never *what* it computes.
//! * **Backpressure** — each worker has a bounded ingress queue guarded
//!   by a [`CapacityGate`]. [`try_submit`][SessionServer::try_submit]
//!   never blocks and never buffers beyond the bound: a full lane
//!   returns [`Submit::Busy`] handing the frame back to the caller
//!   (admission control instead of unbounded growth — memory is
//!   `O(workers × queue_depth)` frames).
//! * **Shared read-only state** — one scheme registry (the validated
//!   [`SchemeSpec`] list, the serving analog of the offline
//!   `PreparedCache`) lives behind an [`Arc`] shared by all workers;
//!   per-worker state (the session table, latency histograms, counters)
//!   is owned, unsynchronized scratch.
//! * **Instrumentation** — every frame's submit→completion latency and
//!   submit→dequeue queue wait are recorded into per-worker
//!   [`LatencyHistogram`]s (O(1) record, ~6% quantile error), merged at
//!   drain; [`DrainReport::per_worker`] additionally carries each
//!   shard's occupancy and parking counters so the batching window can
//!   be tuned from data.
//! * **Isolation** — a panicking task step kills *its* session (the
//!   drain report carries the error), never the worker: the other
//!   sessions sharded onto the same lane keep streaming.
//!
//! # Batching & backpressure
//!
//! **Parked producers, not spin loops.** Each lane pairs its bounded
//! channel with a [`CapacityGate`] whose permits mirror the channel's
//! bound: *every* message — open, frame, close — takes a permit before
//! it is sent, and the worker returns the permit as it dequeues. A
//! holder of a permit therefore always completes its send without
//! blocking, and a producer that finds the lane full has three choices:
//!
//! * [`try_submit`][SessionServer::try_submit] — never waits; hands the
//!   frame back as [`Submit::Busy`] (admission control).
//! * [`submit_blocking`][SessionServer::submit_blocking] — sleeps on the
//!   gate's condvar and is woken exactly when its lane drains a slot.
//!   No spin-yield retry exists on this path: the
//!   [`IngressReport::spin_retries`] counter instruments the
//!   structurally unreachable fallback and the saturation tests assert
//!   it stays zero while [`IngressReport::parked`] grows.
//! * [`submit_deadline`][SessionServer::submit_deadline] — parks for at
//!   most a deadline, then hands the frame back.
//!
//! **Cross-session NN batching.** On silicon, the systolic array earns
//! its efficiency by amortizing weight loads and array fill/drain
//! across work; one session's I-frame at a time cannot exploit that.
//! With [`ServeConfig::with_nn_batching`] each worker runs a
//! `BatchCollector`: I-frame inference jobs from *different sessions*
//! sharded onto the worker are gathered within a bounded window
//! (`max_batch` jobs or `max_wait`, whichever first) and charged as one
//! fused job via `SystolicModel::analyze_batch` — weights stream once,
//! fill/drain is paid per weight block instead of per request. The
//! batch is an *accounting* fusion: the NN itself is a modeled oracle
//! whose functional decisions are produced synchronously inside
//! `Session::push_frame`, so batching defers only the cycle/energy
//! attribution and per-session outcomes (decisions, accuracy, fields)
//! stay **bit-identical** to the unbatched path — the equivalence tests
//! assert exactly that. The amortized cost lands in
//! [`DrainReport::nn`]: batched vs `N×` solo cycles, energy, DRAM
//! traffic, and the realized batch-size histogram.
//!
//! Frames enter as [`Arc<FrameData>`] — ground truth plus the
//! ISP-exported motion field, i.e. what the paper's ISP ships to the
//! vision backend. Producing them (rendering, sensor, ISP) stays on the
//! client side of the ingress queue, e.g. via [`feed_sequence`], which
//! streams a synthetic [`Sequence`] through the O(1)-memory
//! `frame_source` pipeline with parked-producer backpressure. Each
//! feeder owns its renderer (and thus its `FramePool`) — the
//! per-worker-pool pattern documented in `euphrates_common::pool`.
//!
//! ```no_run
//! use euphrates_core::prelude::*;
//! use euphrates_nn::oracle::calib;
//! use euphrates_serve::{NnBatchConfig, ServeConfig, SessionServer};
//! use std::time::Duration;
//!
//! let schemes = vec![SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()];
//! let config = ServeConfig::default().with_nn_batching(NnBatchConfig {
//!     network: euphrates_nn::zoo::mdnet(),
//!     max_batch: 16,
//!     max_wait: Duration::from_micros(200),
//! });
//! let server = SessionServer::new(TrackerTask::new(calib::mdnet()), schemes, config).unwrap();
//! let suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! for (id, seq) in suite.iter().enumerate() {
//!     euphrates_serve::feed_sequence(&server, id as u64, "EW-4", seq, &MotionConfig::default()).unwrap();
//! }
//! let report = server.drain();
//! println!("p99 = {} ns over {} frames", report.latency.quantile(0.99), report.served);
//! if let Some(nn) = &report.nn {
//!     println!("amortization = {:.3} over {} batches", nn.amortization(), nn.batches);
//! }
//! ```

use euphrates_common::error::{Error, Result};
use euphrates_common::gate::CapacityGate;
use euphrates_common::image::Resolution;
use euphrates_common::par::default_threads;
use euphrates_common::rngx;
use euphrates_common::stats::LatencyHistogram;
use euphrates_core::api::{SchemeSpec, Session, VisionTask};
use euphrates_core::backend::TaskOutcome;
use euphrates_core::frontend::{frame_source, FrameData, MotionConfig};
use euphrates_datasets::Sequence;
use euphrates_nn::engine::{BatchPlan, InferencePlan, NnxEngine};
use euphrates_nn::layer::NetworkDescriptor;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client-chosen session identifier. Doubles as the session's oracle
/// stream index (the `stream` argument of [`Session::new`]), so serving
/// sequence `i` of a suite under id `i` reproduces the offline
/// evaluation's noise streams exactly.
pub type SessionId = u64;

/// Hash salt for the id → worker shard (any fixed key works; a mixed
/// hash keeps structured id spaces — 0, 1, 2, … — balanced).
const SHARD_STREAM: u64 = 0x5E4E;

/// Cross-session NN batching configuration (see the crate docs'
/// "Batching & backpressure" section).
#[derive(Debug, Clone)]
pub struct NnBatchConfig {
    /// The network whose I-frame inferences are fused.
    pub network: NetworkDescriptor,
    /// Jobs per fused batch at most; a full batch flushes immediately.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more jobs
    /// before flushing it short.
    pub max_wait: Duration,
}

/// Server sizing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (shards). Default: [`default_threads`], which
    /// honors `EUPHRATES_THREADS`.
    pub workers: usize,
    /// Per-worker ingress bound, in messages. Bounds server memory at
    /// `workers × queue_depth` in-flight frames; beyond it,
    /// [`try_submit`][SessionServer::try_submit] reports
    /// [`Submit::Busy`] and [`submit_blocking`][SessionServer::submit_blocking]
    /// parks.
    pub queue_depth: usize,
    /// Cross-session NN batching; `None` charges every inference solo.
    pub nn_batching: Option<NnBatchConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_threads(),
            queue_depth: 64,
            nn_batching: None,
        }
    }
}

impl ServeConfig {
    /// An explicitly sized server without NN batching.
    pub fn sized(workers: usize, queue_depth: usize) -> Self {
        ServeConfig {
            workers,
            queue_depth,
            nn_batching: None,
        }
    }

    /// Enables cross-session NN batching.
    pub fn with_nn_batching(mut self, batching: NnBatchConfig) -> Self {
        self.nn_batching = Some(batching);
        self
    }
}

/// The verdict of a non-blocking or deadline-bounded submit.
#[derive(Debug)]
#[must_use = "a Busy frame must be retried or dropped deliberately"]
pub enum Submit {
    /// The frame was accepted onto its session's lane.
    Enqueued,
    /// The lane is at its bound (or the deadline passed); the frame is
    /// handed back so the caller can retry, shed load, or slow the
    /// producer.
    Busy(Arc<FrameData>),
}

impl Submit {
    /// `true` if the frame was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Submit::Enqueued)
    }
}

/// One message on a worker's lane.
enum Msg {
    /// Open session `id` under scheme index `scheme` (re-opening an
    /// existing id flushes the old session into the report first).
    Open {
        id: SessionId,
        scheme: usize,
        resolution: Resolution,
    },
    /// One frame for session `id`; `at` is its submit timestamp.
    Frame {
        id: SessionId,
        frame: Arc<FrameData>,
        at: Instant,
    },
    /// Finish session `id` and stash its outcome.
    Close { id: SessionId },
}

/// Pre-planned batched-inference costs shared by all workers: one
/// [`BatchPlan`] per realizable batch size, plus the solo plan the
/// amortization ratio is defined against.
struct BatchRuntime {
    max_batch: usize,
    max_wait: Duration,
    /// `plans[b - 1]` prices a fused `b`-request batch.
    plans: Vec<BatchPlan>,
    solo: InferencePlan,
}

/// Read-only state shared by all workers.
struct Shared<T> {
    task: T,
    schemes: Vec<SchemeSpec>,
    batching: Option<BatchRuntime>,
}

/// A worker's session slot: a live session, or the error that killed it
/// (kept so late frames are counted as dropped, not "unknown session",
/// and so close/drain can report *why* the session died). Sessions are
/// boxed so a mostly-dead table stays small.
enum Slot<T: VisionTask> {
    Live(Box<Session<T>>),
    Dead(Error),
}

/// One worker shard's drained statistics.
#[derive(Debug)]
pub struct WorkerStats {
    /// Frames this shard received (served + dropped).
    pub frames: u64,
    /// Frames pushed through a live session successfully.
    pub served: u64,
    /// Frames discarded (dead or never-opened session).
    pub dropped: u64,
    /// Submit→dequeue wait per frame, nanoseconds.
    pub queue_wait: LatencyHistogram,
    /// Nanoseconds spent processing messages.
    pub busy_ns: u64,
    /// Nanoseconds from worker start to drain completion.
    pub wall_ns: u64,
    /// Producers that parked on this shard's gate.
    pub parked: u64,
    /// Wake-ups this shard's drains delivered.
    pub woken: u64,
}

impl WorkerStats {
    /// Fraction of the worker's wall time spent processing (`0..=1`).
    pub fn occupancy(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.wall_ns as f64).min(1.0)
        }
    }
}

/// Cross-session NN batching outcome, merged over all workers.
#[derive(Debug, Default)]
pub struct NnServeReport {
    /// I-frame inference jobs charged through batches.
    pub jobs: u64,
    /// Fused batches flushed.
    pub batches: u64,
    /// Array cycles actually charged (batched walk).
    pub batched_cycles: u64,
    /// Array cycles the same jobs would cost solo (`jobs ×` the
    /// per-inference plan).
    pub solo_cycles: u64,
    /// Accelerator energy charged, millijoules.
    pub energy_mj: f64,
    /// DRAM traffic charged, bytes.
    pub dram_bytes: u64,
    /// Realized batch sizes (p50/p99 of this histogram tune
    /// `max_batch`/`max_wait`).
    pub batch_sizes: LatencyHistogram,
}

impl NnServeReport {
    /// Charged cycles over solo cycles: 1.0 means batching bought
    /// nothing; lower is better.
    pub fn amortization(&self) -> f64 {
        if self.solo_cycles == 0 {
            1.0
        } else {
            self.batched_cycles as f64 / self.solo_cycles as f64
        }
    }

    /// Mean realized batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }

    fn merge(&mut self, other: &NnServeReport) {
        self.jobs += other.jobs;
        self.batches += other.batches;
        self.batched_cycles += other.batched_cycles;
        self.solo_cycles += other.solo_cycles;
        self.energy_mj += other.energy_mj;
        self.dram_bytes += other.dram_bytes;
        self.batch_sizes.merge(&other.batch_sizes);
    }
}

/// How frames got in: parked-producer and admission-control counters,
/// summed over all lanes.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngressReport {
    /// Producers that slept on a full lane.
    pub parked: u64,
    /// Wake-ups delivered by worker dequeues.
    pub woken: u64,
    /// Sends that found capacity immediately.
    pub immediate: u64,
    /// Retries of the structurally unreachable permit-held-but-full
    /// fallback. The saturation tests assert this stays **zero** — the
    /// executable form of "no spin-yield submit path remains".
    pub spin_retries: u64,
    /// Frames handed back by [`try_submit`][SessionServer::try_submit]
    /// or an expired [`submit_deadline`][SessionServer::submit_deadline].
    pub busy_rejections: u64,
}

/// What one worker hands back at drain.
struct WorkerOutput {
    outcomes: Vec<(SessionId, Result<TaskOutcome>)>,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    frames: u64,
    served: u64,
    dropped: u64,
    busy_ns: u64,
    wall_ns: u64,
    nn: Option<NnServeReport>,
}

/// The merged result of [`SessionServer::drain`]: every session's
/// outcome (keyed by id), cross-worker latency/queue-wait histograms,
/// the frame counters the throughput numbers derive from, per-shard
/// statistics, ingress counters, and (when batching is on) the NN
/// batching report.
#[derive(Debug)]
pub struct DrainReport {
    /// Per-session outcomes, one entry per opened session (errors for
    /// sessions that died).
    outcomes: HashMap<SessionId, Result<TaskOutcome>>,
    /// Submit→completion latency over every successfully served frame.
    pub latency: LatencyHistogram,
    /// Submit→dequeue wait over every received frame.
    pub queue_wait: LatencyHistogram,
    /// Frames received by workers (served + dropped).
    pub frames: u64,
    /// Frames pushed through a live session successfully.
    pub served: u64,
    /// Frames discarded: sent to a dead or never-opened session.
    pub dropped: u64,
    /// Frames received per worker, in worker order (shard balance).
    pub per_worker_frames: Vec<u64>,
    /// Full per-shard statistics, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Ingress counters summed over all lanes.
    pub ingress: IngressReport,
    /// Cross-session NN batching outcome; `None` when batching is off.
    pub nn: Option<NnServeReport>,
}

impl DrainReport {
    /// Number of sessions that reached the report.
    pub fn sessions(&self) -> usize {
        self.outcomes.len()
    }

    /// One session's outcome (or the error that killed it).
    pub fn outcome(&self, id: SessionId) -> Option<&Result<TaskOutcome>> {
        self.outcomes.get(&id)
    }

    /// Iterates `(id, outcome)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&SessionId, &Result<TaskOutcome>)> {
        self.outcomes.iter()
    }

    /// Number of sessions whose outcome is an error.
    pub fn failed_sessions(&self) -> usize {
        self.outcomes.values().filter(|o| o.is_err()).count()
    }
}

/// One worker's ingress lane: the bounded transport plus the capacity
/// gate whose permits mirror its bound.
struct Lane {
    tx: SyncSender<Msg>,
    gate: Arc<CapacityGate>,
}

/// A sharded, backpressured session server over `N` worker threads.
///
/// See the [crate docs](self) for the serving model. The server is
/// `Sync`: [`open`][SessionServer::open],
/// [`try_submit`][SessionServer::try_submit],
/// [`submit_blocking`][SessionServer::submit_blocking] and
/// [`close`][SessionServer::close] take `&self` and may be called from
/// any number of producer threads concurrently (each call resolves one
/// lane, takes one permit, and performs one channel operation).
/// [`drain`][SessionServer::drain] consumes the server.
pub struct SessionServer<T: VisionTask> {
    shared: Arc<Shared<T>>,
    lanes: Vec<Lane>,
    workers: Vec<JoinHandle<WorkerOutput>>,
    spin_retries: AtomicU64,
    busy_rejections: AtomicU64,
}

impl<T> SessionServer<T>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send,
{
    /// Starts a server: `config.workers` threads, each with a bounded,
    /// gated lane, all sharing one read-only scheme registry (and, when
    /// batching is enabled, one table of pre-planned batch costs).
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate-id scheme registry, zero-sized
    /// worker pools or queues, and a zero `max_batch`.
    pub fn new(
        task: T,
        schemes: impl IntoIterator<Item = SchemeSpec>,
        config: ServeConfig,
    ) -> Result<Self> {
        let schemes: Vec<SchemeSpec> = schemes.into_iter().collect();
        if schemes.is_empty() {
            return Err(Error::config("server needs at least one scheme"));
        }
        let mut seen = BTreeSet::new();
        for spec in &schemes {
            if !seen.insert(spec.id.clone()) {
                return Err(Error::config(format!("duplicate scheme id `{}`", spec.id)));
            }
        }
        if config.workers == 0 || config.queue_depth == 0 {
            return Err(Error::config(
                "server needs at least one worker and a positive queue depth",
            ));
        }
        let batching = match config.nn_batching {
            Some(nb) => {
                if nb.max_batch == 0 {
                    return Err(Error::config("nn batching needs max_batch >= 1"));
                }
                let engine = NnxEngine::default();
                let plans = (1..=nb.max_batch)
                    .map(|b| engine.plan_batch(&nb.network, b as u32))
                    .collect();
                Some(BatchRuntime {
                    max_batch: nb.max_batch,
                    max_wait: nb.max_wait,
                    plans,
                    solo: engine.plan(&nb.network),
                })
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            task,
            schemes,
            batching,
        });
        let mut lanes = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = sync_channel(config.queue_depth);
            let gate = Arc::new(CapacityGate::new(config.queue_depth));
            let shared = Arc::clone(&shared);
            let worker_gate = Arc::clone(&gate);
            lanes.push(Lane { tx, gate });
            workers.push(std::thread::spawn(move || {
                worker_loop(shared, rx, worker_gate)
            }));
        }
        Ok(SessionServer {
            shared,
            lanes,
            workers,
            spin_retries: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        })
    }

    /// The worker (shard) count.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The registered schemes, in registration order.
    pub fn schemes(&self) -> &[SchemeSpec] {
        &self.shared.schemes
    }

    /// Which worker serves `id`.
    fn shard(&self, id: SessionId) -> usize {
        (rngx::counter_hash(SHARD_STREAM, id) % self.lanes.len() as u64) as usize
    }

    /// Opens session `id` under the named scheme at `resolution`,
    /// parking if the lane is momentarily full (control messages are
    /// rare relative to frames and the lane is guaranteed to drain);
    /// re-opening a live id flushes the old session into the drain
    /// report and starts fresh.
    ///
    /// # Errors
    ///
    /// Rejects unknown scheme ids.
    pub fn open(&self, id: SessionId, scheme: &str, resolution: Resolution) -> Result<()> {
        let idx = self
            .shared
            .schemes
            .iter()
            .position(|s| s.id.as_str() == scheme)
            .ok_or_else(|| Error::config(format!("unknown scheme id `{scheme}`")))?;
        self.send_parked(
            self.shard(id),
            Msg::Open {
                id,
                scheme: idx,
                resolution,
            },
        )
    }

    /// Offers one frame to session `id`'s lane without blocking:
    /// [`Submit::Enqueued`] on success, [`Submit::Busy`] (frame handed
    /// back) when the lane is at its bound. Frames for ids that were
    /// never opened are accepted here and counted as dropped by the
    /// worker — admission control is per-lane, not per-session.
    pub fn try_submit(&self, id: SessionId, frame: Arc<FrameData>) -> Submit {
        let lane = self.shard(id);
        if !self.lanes[lane].gate.try_acquire() {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Submit::Busy(frame);
        }
        self.send_frame_with_permit(lane, id, frame)
    }

    /// Submits one frame, **parking** until its lane has capacity: the
    /// producer sleeps on the lane's condvar and is woken exactly when
    /// the worker drains a slot — never a spin-yield retry.
    ///
    /// # Errors
    ///
    /// Returns an error only if the worker has vanished (a server bug;
    /// workers isolate session panics).
    pub fn submit_blocking(&self, id: SessionId, frame: Arc<FrameData>) -> Result<()> {
        let lane = self.shard(id);
        self.lanes[lane].gate.acquire();
        match self.send_frame_with_permit(lane, id, frame) {
            Submit::Enqueued => Ok(()),
            Submit::Busy(_) => Err(Error::config(format!("serve worker {lane} is gone"))),
        }
    }

    /// Submits one frame, parking for at most `timeout`:
    /// [`Submit::Busy`] hands the frame back when the deadline passes
    /// with the lane still full.
    pub fn submit_deadline(
        &self,
        id: SessionId,
        frame: Arc<FrameData>,
        timeout: Duration,
    ) -> Submit {
        let lane = self.shard(id);
        if !self.lanes[lane].gate.acquire_timeout(timeout) {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Submit::Busy(frame);
        }
        self.send_frame_with_permit(lane, id, frame)
    }

    /// Completes a frame send under an already-held permit. A held
    /// permit guarantees a free channel slot (permits mirror the
    /// bound), so the `Full` branch is structurally unreachable — it is
    /// instrumented ([`IngressReport::spin_retries`]) rather than
    /// trusted, and the saturation tests assert it never fires.
    fn send_frame_with_permit(&self, lane: usize, id: SessionId, frame: Arc<FrameData>) -> Submit {
        let mut msg = Msg::Frame {
            id,
            frame,
            at: Instant::now(),
        };
        loop {
            match self.lanes[lane].tx.try_send(msg) {
                Ok(()) => return Submit::Enqueued,
                Err(TrySendError::Full(back)) => {
                    self.spin_retries.fetch_add(1, Ordering::Relaxed);
                    msg = back;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(back)) => {
                    self.lanes[lane].gate.release();
                    let Msg::Frame { frame, .. } = back else {
                        unreachable!("frame sends only carry frames")
                    };
                    return Submit::Busy(frame);
                }
            }
        }
    }

    /// Finishes session `id`: its outcome (or the error that killed it)
    /// becomes part of the drain report. Like
    /// [`open`][SessionServer::open], parks briefly on a momentarily
    /// full lane.
    ///
    /// # Errors
    ///
    /// Currently infallible for live servers; returns an error only if
    /// the worker has vanished.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.send_parked(self.shard(id), Msg::Close { id })
    }

    /// Shuts down gracefully: closes every lane, lets each worker
    /// finish its queued messages and flush all still-open sessions,
    /// then merges the per-worker reports.
    pub fn drain(self) -> DrainReport {
        let gates: Vec<Arc<CapacityGate>> = self
            .lanes
            .iter()
            .map(|lane| Arc::clone(&lane.gate))
            .collect();
        drop(self.lanes);
        let mut report = DrainReport {
            outcomes: HashMap::new(),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            frames: 0,
            served: 0,
            dropped: 0,
            per_worker_frames: Vec::with_capacity(self.workers.len()),
            per_worker: Vec::with_capacity(self.workers.len()),
            ingress: IngressReport {
                spin_retries: self.spin_retries.load(Ordering::Relaxed),
                busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
                ..IngressReport::default()
            },
            nn: self
                .shared
                .batching
                .as_ref()
                .map(|_| NnServeReport::default()),
        };
        for (handle, gate) in self.workers.into_iter().zip(gates) {
            let out = handle
                .join()
                .expect("serve workers isolate session panics and never die");
            let gs = gate.stats();
            report.ingress.parked += gs.parked;
            report.ingress.woken += gs.woken;
            report.ingress.immediate += gs.immediate;
            report.latency.merge(&out.latency);
            report.queue_wait.merge(&out.queue_wait);
            report.frames += out.frames;
            report.served += out.served;
            report.dropped += out.dropped;
            report.per_worker_frames.push(out.frames);
            report.per_worker.push(WorkerStats {
                frames: out.frames,
                served: out.served,
                dropped: out.dropped,
                queue_wait: out.queue_wait,
                busy_ns: out.busy_ns,
                wall_ns: out.wall_ns,
                parked: gs.parked,
                woken: gs.woken,
            });
            if let (Some(total), Some(nn)) = (report.nn.as_mut(), out.nn.as_ref()) {
                total.merge(nn);
            }
            for (id, outcome) in out.outcomes {
                report.outcomes.insert(id, outcome);
            }
        }
        report
    }

    /// A live snapshot of the ingress counters (the same numbers
    /// [`drain`][SessionServer::drain] reports, sampled mid-flight) —
    /// lets saturation tests and monitors observe parking as it
    /// happens.
    pub fn ingress_snapshot(&self) -> IngressReport {
        let mut report = IngressReport {
            spin_retries: self.spin_retries.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            ..IngressReport::default()
        };
        for lane in &self.lanes {
            let gs = lane.gate.stats();
            report.parked += gs.parked;
            report.woken += gs.woken;
            report.immediate += gs.immediate;
        }
        report
    }

    /// Parked send for rare control messages; maps a vanished worker to
    /// a clean error instead of a panic (drain will surface it).
    fn send_parked(&self, lane: usize, msg: Msg) -> Result<()> {
        self.lanes[lane].gate.acquire();
        let mut msg = msg;
        loop {
            match self.lanes[lane].tx.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    self.spin_retries.fetch_add(1, Ordering::Relaxed);
                    msg = back;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.lanes[lane].gate.release();
                    return Err(Error::config(format!("serve worker {lane} is gone")));
                }
            }
        }
    }
}

/// Per-worker accumulator for the cross-session batch window: counts
/// pending I-frame jobs (decisions are produced synchronously by the
/// session — only *cost attribution* is deferred) and remembers when
/// the window opened.
struct BatchCollector {
    pending: usize,
    opened_at: Option<Instant>,
}

impl BatchCollector {
    fn new() -> Self {
        BatchCollector {
            pending: 0,
            opened_at: None,
        }
    }

    /// Registers one inference job; returns `true` when the batch hit
    /// `max_batch` and must flush now.
    fn add(&mut self, max_batch: usize) -> bool {
        if self.pending == 0 {
            self.opened_at = Some(Instant::now());
        }
        self.pending += 1;
        self.pending >= max_batch
    }

    /// The instant the open window expires, if one is open.
    fn deadline(&self, max_wait: Duration) -> Option<Instant> {
        self.opened_at.map(|at| at + max_wait)
    }

    /// Closes the window, returning the fused batch size.
    fn take(&mut self) -> Option<usize> {
        self.opened_at = None;
        let n = std::mem::take(&mut self.pending);
        (n > 0).then_some(n)
    }
}

/// Charges one flushed batch of `jobs` inferences into the worker's NN
/// report using the pre-planned batch costs.
fn charge_batch(report: &mut NnServeReport, runtime: &BatchRuntime, jobs: usize) {
    let plan = &runtime.plans[jobs - 1];
    report.jobs += jobs as u64;
    report.batches += 1;
    report.batched_cycles += plan.compute_cycles();
    report.solo_cycles += jobs as u64 * runtime.solo.stats().total_compute_cycles().0;
    report.energy_mj += plan.energy().0;
    report.dram_bytes += plan.dram_read().0 + plan.dram_write().0;
    report.batch_sizes.record(jobs as u64);
}

/// One worker: owns its session table, histograms, counters, and batch
/// collector; runs until every sender is dropped, then flushes the open
/// batch and all remaining sessions. Releases one gate permit per
/// dequeued message — the other half of the parked-producer protocol.
fn worker_loop<T>(
    shared: Arc<Shared<T>>,
    rx: Receiver<Msg>,
    gate: Arc<CapacityGate>,
) -> WorkerOutput
where
    T: VisionTask + Clone,
{
    let started = Instant::now();
    let mut sessions: HashMap<SessionId, Slot<T>> = HashMap::new();
    let mut collector = BatchCollector::new();
    let mut out = WorkerOutput {
        outcomes: Vec::new(),
        latency: LatencyHistogram::new(),
        queue_wait: LatencyHistogram::new(),
        frames: 0,
        served: 0,
        dropped: 0,
        busy_ns: 0,
        wall_ns: 0,
        nn: shared.batching.as_ref().map(|_| NnServeReport::default()),
    };
    loop {
        // While a batch window is open, wait only until its deadline;
        // otherwise block indefinitely for the next message.
        let msg = match shared
            .batching
            .as_ref()
            .and_then(|b| collector.deadline(b.max_wait))
        {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => {
                        if let (Some(rt), Some(nn), Some(jobs)) =
                            (shared.batching.as_ref(), out.nn.as_mut(), collector.take())
                        {
                            charge_batch(nn, rt, jobs);
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => rx.recv().ok(),
        };
        let Some(msg) = msg else { break };
        gate.release();
        let busy_from = Instant::now();
        match msg {
            Msg::Open {
                id,
                scheme,
                resolution,
            } => {
                let spec = &shared.schemes[scheme];
                let slot = match Session::new(shared.task.clone(), spec.backend, resolution, id) {
                    Ok(session) => Slot::Live(Box::new(session)),
                    Err(e) => Slot::Dead(e),
                };
                if let Some(old) = sessions.insert(id, slot) {
                    out.outcomes.push((id, finish_slot(old)));
                }
            }
            Msg::Frame { id, frame, at } => {
                out.frames += 1;
                out.queue_wait.record(at.elapsed().as_nanos() as u64);
                match sessions.get_mut(&id) {
                    Some(Slot::Live(session)) => {
                        // One session's panic must not take down the
                        // worker (or the other sessions on this shard).
                        match catch_unwind(AssertUnwindSafe(|| session.push_frame(&frame))) {
                            Ok(Ok(decision)) => {
                                out.served += 1;
                                out.latency.record(at.elapsed().as_nanos() as u64);
                                if decision.is_inference() {
                                    if let Some(rt) = shared.batching.as_ref() {
                                        if collector.add(rt.max_batch) {
                                            if let (Some(nn), Some(jobs)) =
                                                (out.nn.as_mut(), collector.take())
                                            {
                                                charge_batch(nn, rt, jobs);
                                            }
                                        }
                                    }
                                }
                            }
                            Ok(Err(e)) => {
                                out.dropped += 1;
                                sessions.insert(id, Slot::Dead(e));
                            }
                            Err(payload) => {
                                out.dropped += 1;
                                sessions.insert(
                                    id,
                                    Slot::Dead(Error::config(format!(
                                        "session task panicked: {}",
                                        panic_text(payload)
                                    ))),
                                );
                            }
                        }
                    }
                    Some(Slot::Dead(_)) | None => out.dropped += 1,
                }
            }
            Msg::Close { id } => {
                let outcome = match sessions.remove(&id) {
                    Some(slot) => finish_slot(slot),
                    None => Err(Error::config(format!("close of unknown session {id}"))),
                };
                out.outcomes.push((id, outcome));
            }
        }
        out.busy_ns += busy_from.elapsed().as_nanos() as u64;
    }
    // Lanes closed: flush the open batch, then everything still open.
    if let (Some(rt), Some(jobs)) = (shared.batching.as_ref(), collector.take()) {
        if let Some(nn) = out.nn.as_mut() {
            charge_batch(nn, rt, jobs);
        }
    }
    for (id, slot) in sessions {
        out.outcomes.push((id, finish_slot(slot)));
    }
    out.wall_ns = started.elapsed().as_nanos() as u64;
    out
}

fn finish_slot<T: VisionTask>(slot: Slot<T>) -> Result<TaskOutcome> {
    match slot {
        Slot::Live(session) => Ok(session.finish()),
        Slot::Dead(e) => Err(e),
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Streams one synthetic sequence into the server under session `id`:
/// opens, renders frames lazily through the O(1)-memory `frame_source`
/// pipeline (client-side, with the renderer's own frame pool), submits
/// each with parked-producer backpressure
/// ([`submit_blocking`][SessionServer::submit_blocking] — the feeder
/// sleeps, not spins, when its lane is full), and closes.
///
/// # Errors
///
/// Propagates open/render errors; a lost worker surfaces as an error
/// from the open, submit, or close.
pub fn feed_sequence<T>(
    server: &SessionServer<T>,
    id: SessionId,
    scheme: &str,
    seq: &Sequence,
    motion: &MotionConfig,
) -> Result<()>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send,
{
    let source = frame_source(seq, motion)?;
    server.open(id, scheme, source.resolution())?;
    for frame in source {
        server.submit_blocking(id, Arc::new(frame?))?;
    }
    server.close(id)
}
