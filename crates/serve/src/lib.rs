//! Sharded concurrent session serving for the Euphrates pipeline.
//!
//! The paper's deployment target is "millions of users" of continuous
//! vision (§1): the per-frame schedule that `euphrates_core::Session`
//! implements is cheap enough that one machine should carry hundreds of
//! concurrent streams. This crate is that serving layer, shaped like an
//! inference server:
//!
//! * **Sharding** — every session id is hashed onto one of N worker
//!   threads, so a session's frames are processed *in order by a single
//!   worker*. Per-session outcomes are therefore bit-identical to
//!   running the same frames through a standalone [`Session`] (or the
//!   offline `Scenario::evaluate`, which is built on sessions): workers
//!   only decide *where* a session runs, never *what* it computes.
//! * **Backpressure** — each worker has a bounded ingress queue.
//!   [`submit`][SessionServer::submit] never blocks and never buffers
//!   beyond the bound: a full lane returns [`Submit::Busy`] handing the
//!   frame back to the caller (admission control instead of unbounded
//!   growth — memory is `O(workers × queue_depth)` frames).
//! * **Shared read-only state** — one scheme registry (the validated
//!   [`SchemeSpec`] list, the serving analog of the offline
//!   `PreparedCache`) lives behind an [`Arc`] shared by all workers;
//!   per-worker state (the session table, latency histogram, counters)
//!   is owned, unsynchronized scratch.
//! * **Instrumentation** — every frame's submit→completion latency is
//!   recorded into a per-worker
//!   [`LatencyHistogram`]
//!   (O(1) record, ~6% quantile error), merged at drain into one
//!   histogram reporting p50/p95/p99.
//! * **Isolation** — a panicking task step kills *its* session (the
//!   drain report carries the error), never the worker: the other
//!   sessions sharded onto the same lane keep streaming.
//!
//! Frames enter as [`Arc<FrameData>`] — ground truth plus the
//! ISP-exported motion field, i.e. what the paper's ISP ships to the
//! vision backend. Producing them (rendering, sensor, ISP) stays on the
//! client side of the ingress queue, e.g. via [`feed_sequence`], which
//! streams a synthetic [`Sequence`] through the O(1)-memory
//! `frame_source` pipeline with retry-on-busy. Each feeder owns its
//! renderer (and thus its `FramePool`) — the per-worker-pool pattern
//! documented in `euphrates_common::pool`.
//!
//! ```no_run
//! use euphrates_core::prelude::*;
//! use euphrates_nn::oracle::calib;
//! use euphrates_serve::{ServeConfig, SessionServer};
//!
//! let schemes = vec![SchemeSpec::new("EW-4", BackendConfig::new(EwPolicy::Constant(4))).unwrap()];
//! let server = SessionServer::new(
//!     TrackerTask::new(calib::mdnet()),
//!     schemes,
//!     ServeConfig::default(),
//! ).unwrap();
//! let suite = euphrates_datasets::otb100_like(42, DatasetScale::fraction(0.1));
//! for (id, seq) in suite.iter().enumerate() {
//!     euphrates_serve::feed_sequence(&server, id as u64, "EW-4", seq, &MotionConfig::default()).unwrap();
//! }
//! let report = server.drain();
//! println!("p99 = {} ns over {} frames", report.latency.quantile(0.99), report.served);
//! ```

use euphrates_common::error::{Error, Result};
use euphrates_common::image::Resolution;
use euphrates_common::par::default_threads;
use euphrates_common::rngx;
use euphrates_common::stats::LatencyHistogram;
use euphrates_core::api::{SchemeSpec, Session, VisionTask};
use euphrates_core::backend::TaskOutcome;
use euphrates_core::frontend::{frame_source, FrameData, MotionConfig};
use euphrates_datasets::Sequence;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Client-chosen session identifier. Doubles as the session's oracle
/// stream index (the `stream` argument of [`Session::new`]), so serving
/// sequence `i` of a suite under id `i` reproduces the offline
/// evaluation's noise streams exactly.
pub type SessionId = u64;

/// Hash salt for the id → worker shard (any fixed key works; a mixed
/// hash keeps structured id spaces — 0, 1, 2, … — balanced).
const SHARD_STREAM: u64 = 0x5E4E;

/// Server sizing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (shards). Default: [`default_threads`], which
    /// honors `EUPHRATES_THREADS`.
    pub workers: usize,
    /// Per-worker ingress bound, in messages. Bounds server memory at
    /// `workers × queue_depth` in-flight frames; beyond it,
    /// [`submit`][SessionServer::submit] reports [`Submit::Busy`].
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_threads(),
            queue_depth: 64,
        }
    }
}

/// The verdict of a non-blocking [`submit`][SessionServer::submit].
#[derive(Debug)]
#[must_use = "a Busy frame must be retried or dropped deliberately"]
pub enum Submit {
    /// The frame was accepted onto its session's lane.
    Enqueued,
    /// The lane is at its bound; the frame is handed back so the caller
    /// can retry, shed load, or slow the producer.
    Busy(Arc<FrameData>),
}

impl Submit {
    /// `true` if the frame was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Submit::Enqueued)
    }
}

/// One message on a worker's lane.
enum Msg {
    /// Open session `id` under scheme index `scheme` (re-opening an
    /// existing id flushes the old session into the report first).
    Open {
        id: SessionId,
        scheme: usize,
        resolution: Resolution,
    },
    /// One frame for session `id`; `at` is its submit timestamp.
    Frame {
        id: SessionId,
        frame: Arc<FrameData>,
        at: Instant,
    },
    /// Finish session `id` and stash its outcome.
    Close { id: SessionId },
}

/// Read-only state shared by all workers.
struct Shared<T> {
    task: T,
    schemes: Vec<SchemeSpec>,
}

/// A worker's session slot: a live session, or the error that killed it
/// (kept so late frames are counted as dropped, not "unknown session",
/// and so close/drain can report *why* the session died). Sessions are
/// boxed so a mostly-dead table stays small.
enum Slot<T: VisionTask> {
    Live(Box<Session<T>>),
    Dead(Error),
}

/// What one worker hands back at drain.
struct WorkerOutput {
    outcomes: Vec<(SessionId, Result<TaskOutcome>)>,
    latency: LatencyHistogram,
    frames: u64,
    served: u64,
    dropped: u64,
}

/// The merged result of [`SessionServer::drain`]: every session's
/// outcome (keyed by id), the cross-worker latency histogram, and the
/// frame counters the throughput numbers derive from.
#[derive(Debug)]
pub struct DrainReport {
    /// Per-session outcomes, one entry per opened session (errors for
    /// sessions that died).
    outcomes: HashMap<SessionId, Result<TaskOutcome>>,
    /// Submit→completion latency over every successfully served frame.
    pub latency: LatencyHistogram,
    /// Frames received by workers (served + dropped).
    pub frames: u64,
    /// Frames pushed through a live session successfully.
    pub served: u64,
    /// Frames discarded: sent to a dead or never-opened session.
    pub dropped: u64,
    /// Frames received per worker, in worker order (shard balance).
    pub per_worker_frames: Vec<u64>,
}

impl DrainReport {
    /// Number of sessions that reached the report.
    pub fn sessions(&self) -> usize {
        self.outcomes.len()
    }

    /// One session's outcome (or the error that killed it).
    pub fn outcome(&self, id: SessionId) -> Option<&Result<TaskOutcome>> {
        self.outcomes.get(&id)
    }

    /// Iterates `(id, outcome)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&SessionId, &Result<TaskOutcome>)> {
        self.outcomes.iter()
    }

    /// Number of sessions whose outcome is an error.
    pub fn failed_sessions(&self) -> usize {
        self.outcomes.values().filter(|o| o.is_err()).count()
    }
}

/// A sharded, backpressured session server over `N` worker threads.
///
/// See the [crate docs](self) for the serving model. The server is
/// `Sync`: [`open`][SessionServer::open],
/// [`submit`][SessionServer::submit] and [`close`][SessionServer::close]
/// take `&self` and may be called from any number of producer threads
/// concurrently (each call resolves one lane and performs one channel
/// operation). [`drain`][SessionServer::drain] consumes the server.
pub struct SessionServer<T: VisionTask> {
    shared: Arc<Shared<T>>,
    lanes: Vec<SyncSender<Msg>>,
    workers: Vec<JoinHandle<WorkerOutput>>,
}

impl<T> SessionServer<T>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send,
{
    /// Starts a server: `config.workers` threads, each with a bounded
    /// lane, all sharing one read-only scheme registry.
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate-id scheme registry and zero-sized
    /// worker pools or queues.
    pub fn new(
        task: T,
        schemes: impl IntoIterator<Item = SchemeSpec>,
        config: ServeConfig,
    ) -> Result<Self> {
        let schemes: Vec<SchemeSpec> = schemes.into_iter().collect();
        if schemes.is_empty() {
            return Err(Error::config("server needs at least one scheme"));
        }
        let mut seen = BTreeSet::new();
        for spec in &schemes {
            if !seen.insert(spec.id.clone()) {
                return Err(Error::config(format!("duplicate scheme id `{}`", spec.id)));
            }
        }
        if config.workers == 0 || config.queue_depth == 0 {
            return Err(Error::config(
                "server needs at least one worker and a positive queue depth",
            ));
        }
        let shared = Arc::new(Shared { task, schemes });
        let mut lanes = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = sync_channel(config.queue_depth);
            let shared = Arc::clone(&shared);
            lanes.push(tx);
            workers.push(std::thread::spawn(move || worker_loop(shared, rx)));
        }
        Ok(SessionServer {
            shared,
            lanes,
            workers,
        })
    }

    /// The worker (shard) count.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The registered schemes, in registration order.
    pub fn schemes(&self) -> &[SchemeSpec] {
        &self.shared.schemes
    }

    /// Which worker serves `id`.
    fn shard(&self, id: SessionId) -> usize {
        (rngx::counter_hash(SHARD_STREAM, id) % self.lanes.len() as u64) as usize
    }

    /// Opens session `id` under the named scheme at `resolution`.
    /// Control messages block briefly if the lane is momentarily full
    /// (they are rare relative to frames and the lane is guaranteed to
    /// drain); re-opening a live id flushes the old session into the
    /// drain report and starts fresh.
    ///
    /// # Errors
    ///
    /// Rejects unknown scheme ids.
    pub fn open(&self, id: SessionId, scheme: &str, resolution: Resolution) -> Result<()> {
        let idx = self
            .shared
            .schemes
            .iter()
            .position(|s| s.id.as_str() == scheme)
            .ok_or_else(|| Error::config(format!("unknown scheme id `{scheme}`")))?;
        self.send_control(
            self.shard(id),
            Msg::Open {
                id,
                scheme: idx,
                resolution,
            },
        )
    }

    /// Offers one frame to session `id`'s lane without blocking:
    /// [`Submit::Enqueued`] on success, [`Submit::Busy`] (frame handed
    /// back) when the lane is at its bound. Frames for ids that were
    /// never opened are accepted here and counted as dropped by the
    /// worker — admission control is per-lane, not per-session.
    pub fn submit(&self, id: SessionId, frame: Arc<FrameData>) -> Submit {
        let lane = self.shard(id);
        match self.lanes[lane].try_send(Msg::Frame {
            id,
            frame,
            at: Instant::now(),
        }) {
            Ok(()) => Submit::Enqueued,
            Err(TrySendError::Full(Msg::Frame { frame, .. })) => Submit::Busy(frame),
            Err(TrySendError::Full(_)) => unreachable!("submit only sends frames"),
            Err(TrySendError::Disconnected(_)) => {
                panic!("serve worker {lane} exited while the server was live (bug)")
            }
        }
    }

    /// Finishes session `id`: its outcome (or the error that killed it)
    /// becomes part of the drain report. Like
    /// [`open`][SessionServer::open], blocks briefly on a momentarily
    /// full lane.
    ///
    /// # Errors
    ///
    /// Currently infallible for live servers; returns an error only if
    /// the worker has vanished.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.send_control(self.shard(id), Msg::Close { id })
    }

    /// Shuts down gracefully: closes every lane, lets each worker
    /// finish its queued messages and flush all still-open sessions,
    /// then merges the per-worker reports.
    pub fn drain(self) -> DrainReport {
        drop(self.lanes);
        let mut report = DrainReport {
            outcomes: HashMap::new(),
            latency: LatencyHistogram::new(),
            frames: 0,
            served: 0,
            dropped: 0,
            per_worker_frames: Vec::with_capacity(self.workers.len()),
        };
        for handle in self.workers {
            let out = handle
                .join()
                .expect("serve workers isolate session panics and never die");
            report.latency.merge(&out.latency);
            report.frames += out.frames;
            report.served += out.served;
            report.dropped += out.dropped;
            report.per_worker_frames.push(out.frames);
            for (id, outcome) in out.outcomes {
                report.outcomes.insert(id, outcome);
            }
        }
        report
    }

    /// Blocking send for rare control messages; maps a vanished worker
    /// to a clean error instead of a panic (drain will surface it).
    fn send_control(&self, lane: usize, msg: Msg) -> Result<()> {
        self.lanes[lane]
            .send(msg)
            .map_err(|_| Error::config(format!("serve worker {lane} is gone")))
    }
}

/// One worker: owns its session table, histogram, and counters; runs
/// until every sender is dropped, then flushes all remaining sessions.
fn worker_loop<T>(shared: Arc<Shared<T>>, rx: Receiver<Msg>) -> WorkerOutput
where
    T: VisionTask + Clone,
{
    let mut sessions: HashMap<SessionId, Slot<T>> = HashMap::new();
    let mut out = WorkerOutput {
        outcomes: Vec::new(),
        latency: LatencyHistogram::new(),
        frames: 0,
        served: 0,
        dropped: 0,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Open {
                id,
                scheme,
                resolution,
            } => {
                let spec = &shared.schemes[scheme];
                let slot = match Session::new(shared.task.clone(), spec.backend, resolution, id) {
                    Ok(session) => Slot::Live(Box::new(session)),
                    Err(e) => Slot::Dead(e),
                };
                if let Some(old) = sessions.insert(id, slot) {
                    out.outcomes.push((id, finish_slot(old)));
                }
            }
            Msg::Frame { id, frame, at } => {
                out.frames += 1;
                match sessions.get_mut(&id) {
                    Some(Slot::Live(session)) => {
                        // One session's panic must not take down the
                        // worker (or the other sessions on this shard).
                        match catch_unwind(AssertUnwindSafe(|| session.push_frame(&frame))) {
                            Ok(Ok(_)) => {
                                out.served += 1;
                                out.latency.record(at.elapsed().as_nanos() as u64);
                            }
                            Ok(Err(e)) => {
                                out.dropped += 1;
                                sessions.insert(id, Slot::Dead(e));
                            }
                            Err(payload) => {
                                out.dropped += 1;
                                sessions.insert(
                                    id,
                                    Slot::Dead(Error::config(format!(
                                        "session task panicked: {}",
                                        panic_text(payload)
                                    ))),
                                );
                            }
                        }
                    }
                    Some(Slot::Dead(_)) | None => out.dropped += 1,
                }
            }
            Msg::Close { id } => {
                let outcome = match sessions.remove(&id) {
                    Some(slot) => finish_slot(slot),
                    None => Err(Error::config(format!("close of unknown session {id}"))),
                };
                out.outcomes.push((id, outcome));
            }
        }
    }
    // Lanes closed: graceful drain flushes everything still open.
    for (id, slot) in sessions {
        out.outcomes.push((id, finish_slot(slot)));
    }
    out
}

fn finish_slot<T: VisionTask>(slot: Slot<T>) -> Result<TaskOutcome> {
    match slot {
        Slot::Live(session) => Ok(session.finish()),
        Slot::Dead(e) => Err(e),
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Streams one synthetic sequence into the server under session `id`:
/// opens, renders frames lazily through the O(1)-memory `frame_source`
/// pipeline (client-side, with the renderer's own frame pool), submits
/// each with spin-yield retry under backpressure, and closes.
///
/// # Errors
///
/// Propagates open/render errors; a lost worker surfaces as an error
/// from the open or close.
pub fn feed_sequence<T>(
    server: &SessionServer<T>,
    id: SessionId,
    scheme: &str,
    seq: &Sequence,
    motion: &MotionConfig,
) -> Result<()>
where
    T: VisionTask + Clone + Send + Sync + 'static,
    T::State: Send,
{
    let source = frame_source(seq, motion)?;
    server.open(id, scheme, source.resolution())?;
    for frame in source {
        let mut frame = Arc::new(frame?);
        loop {
            match server.submit(id, frame) {
                Submit::Enqueued => break,
                Submit::Busy(back) => {
                    frame = back;
                    std::thread::yield_now();
                }
            }
        }
    }
    server.close(id)
}
