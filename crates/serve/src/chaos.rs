//! Deterministic fault injection for the session server.
//!
//! Robustness claims that are only exercised by clean traffic are
//! untested claims. [`ChaosConfig`] is a seeded fault plan wired
//! through [`SessionServer`][crate::SessionServer] behind a
//! zero-cost-when-off hook (an `Option` checked per event, exactly like
//! the NN batching runtime): when enabled it injects
//!
//! * **worker stalls** — a worker sleeps before processing a dequeue,
//!   simulating scheduling hiccups and slow frames;
//! * **session panics** — a task step panics mid-push, exercising the
//!   worker's `catch_unwind` isolation;
//! * **corrupted frames** — a frame is replaced with one of the wrong
//!   resolution *before* the session sees it, exercising the
//!   validation/poison path end to end;
//! * **forced queue saturation** — admissions are rejected as
//!   [`Submit::Busy`][crate::Submit] as if the lane were full,
//!   exercising producer retry/backoff and shedding;
//! * **worker kills** — the worker thread exits mid-message (keyed on
//!   `(id, arrival)` so the incident timeline is worker-count
//!   invariant), exercising the supervisor's checkpoint/replay
//!   resurrection path ([`crate::supervise`]);
//! * **heartbeat wedges** — the worker hangs long enough for the
//!   watchdog to miss its beats and depose it.
//!
//! Every decision derives from [`rngx::counter_hash`] over *logical*
//! counters — session id, per-session arrival index, per-worker dequeue
//! index, admission sequence number — never wall-clock. Same seed, same
//! plan, same faults, bit-for-bit, at any worker count (stall *timing*
//! varies with the scheduler, but stalls do not change any computed
//! outcome). Panic and corruption sites key on `(id, arrival index)`,
//! so per-session casualty sets are identical at 1 worker and at 8.
//!
//! [`PressurePlan`] drives the overload controller the same way: a pure
//! function of `(plan, epoch)` replaces the measured queue pressure, so
//! the degradation rung timeline becomes a deterministic function of
//! `(seed, config)` — the property the chaos suite asserts.

use euphrates_common::rngx;
use std::time::Duration;

/// Stream salts separating the independent fault channels.
const STALL_STREAM: u64 = 0xC4A0_57A1;
const PANIC_STREAM: u64 = 0xC4A0_57A2;
const CORRUPT_STREAM: u64 = 0xC4A0_57A3;
const REJECT_STREAM: u64 = 0xC4A0_57A4;
const KILL_STREAM: u64 = 0xC4A0_57A5;
const WEDGE_STREAM: u64 = 0xC4A0_57A6;

/// A synthetic pressure signal for the overload controller: replaces
/// the measured over-budget fraction with a pure function of the epoch,
/// making the whole degradation walk reproducible.
///
/// With a plan active, rungs advance on **per-session** epochs (a
/// session's arrival count / `eval_every`), so each session walks the
/// same deterministic ladder schedule regardless of how sessions
/// interleave across workers — per-session outcomes are identical at
/// `EUPHRATES_THREADS` 1 and 4, which the determinism tests assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PressurePlan {
    /// Full overload (`over_frac = 1.0`) for epochs in `[from, until)`,
    /// healthy (`0.0`) elsewhere.
    Burst {
        /// First overloaded epoch.
        from: u64,
        /// First epoch after the burst.
        until: u64,
    },
    /// Pseudo-random overload: epoch `e` is overloaded when
    /// `counter_hash(key, e) % 1000 < duty_milli`.
    Seeded {
        /// Hash key (combine with the chaos seed for variety).
        key: u64,
        /// Overload duty cycle in thousandths (0..=1000).
        duty_milli: u32,
    },
}

impl PressurePlan {
    /// The planned over-budget fraction for `epoch` — a pure function.
    pub fn over_frac(&self, epoch: u64) -> f64 {
        match *self {
            PressurePlan::Burst { from, until } => {
                if epoch >= from && epoch < until {
                    1.0
                } else {
                    0.0
                }
            }
            PressurePlan::Seeded { key, duty_milli } => {
                if rngx::counter_hash(key, epoch) % 1000 < u64::from(duty_milli.min(1000)) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A seeded, bit-reproducible fault plan. All channels default to
/// **off**; `*_every = n` arms a channel to fire on a pseudo-random
/// ~`1/n` of its events (`n = 1` fires on every event).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Stall ~1/n of worker dequeues (0 = off).
    pub stall_every: u64,
    /// How long a stalled worker sleeps (wall-clock by nature; affects
    /// timing only, never outcomes).
    pub stall: Duration,
    /// Panic ~1/n of live-session frame pushes (0 = off).
    pub panic_every: u64,
    /// Corrupt ~1/n of live-session frames to a wrong-resolution frame
    /// before the push (0 = off). The session poisons through its
    /// normal validation path.
    pub corrupt_every: u64,
    /// Forcibly reject ~1/n of non-blocking/deadline admissions as
    /// `Busy` (0 = off) — synthetic queue saturation.
    pub reject_every: u64,
    /// Kill the serving *worker* on ~1/n live-session frame pushes
    /// (0 = off): the worker thread exits mid-message, stranding every
    /// session sharded onto it, and the in-flight frame is handed to
    /// the supervisor. Keyed on `(id, arrival)` like the panic channel,
    /// so the kill incident timeline is identical at any worker count.
    /// Requires supervision
    /// ([`ServeConfig::with_supervision`][crate::ServeConfig::with_supervision]) —
    /// validated at server construction.
    pub kill_every: u64,
    /// Wedge the worker (a heartbeat-length stall, `wedge` long) before
    /// ~1/n dequeues (0 = off). Under supervision the watchdog detects
    /// the missed beats, deposes the worker, and respawns it; without
    /// supervision a wedge is just a long stall.
    pub wedge_every: u64,
    /// How long a wedged worker hangs. Must exceed the supervisor's
    /// `beat_interval × missed_beats` for detection to trigger.
    pub wedge: Duration,
    /// Synthetic pressure for the overload controller; requires an
    /// [`SloConfig`][crate::SloConfig] on the server.
    pub pressure: Option<PressurePlan>,
}

impl ChaosConfig {
    /// An all-channels-off plan with the given seed: arm channels with
    /// the builder methods.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            stall_every: 0,
            stall: Duration::from_micros(200),
            panic_every: 0,
            corrupt_every: 0,
            reject_every: 0,
            kill_every: 0,
            wedge_every: 0,
            wedge: Duration::from_millis(20),
            pressure: None,
        }
    }

    /// Arms worker stalls: ~1/`every` dequeues sleep for `stall`.
    pub fn with_stalls(mut self, every: u64, stall: Duration) -> Self {
        self.stall_every = every;
        self.stall = stall;
        self
    }

    /// Arms injected session panics on ~1/`every` pushes.
    pub fn with_panics(mut self, every: u64) -> Self {
        self.panic_every = every;
        self
    }

    /// Arms frame corruption on ~1/`every` pushes.
    pub fn with_corruption(mut self, every: u64) -> Self {
        self.corrupt_every = every;
        self
    }

    /// Arms forced admission rejections on ~1/`every` submits.
    pub fn with_rejections(mut self, every: u64) -> Self {
        self.reject_every = every;
        self
    }

    /// Arms worker kills on ~1/`every` live-session frame pushes
    /// (needs supervision on the server).
    pub fn with_worker_kills(mut self, every: u64) -> Self {
        self.kill_every = every;
        self
    }

    /// Arms heartbeat-stall wedges: ~1/`every` dequeues hang for
    /// `wedge` before processing.
    pub fn with_wedges(mut self, every: u64, wedge: Duration) -> Self {
        self.wedge_every = every;
        self.wedge = wedge;
        self
    }

    /// Sets the synthetic pressure plan for the overload controller.
    pub fn with_pressure(mut self, plan: PressurePlan) -> Self {
        self.pressure = Some(plan);
        self
    }

    #[inline]
    fn fires(&self, every: u64, stream: u64, counter: u64) -> bool {
        every != 0 && rngx::counter_hash(self.seed ^ stream, counter).is_multiple_of(every)
    }

    /// Should worker `worker` stall before its `dequeue`-th message?
    #[inline]
    pub(crate) fn stall_at(&self, worker: u64, dequeue: u64) -> bool {
        self.fires(
            self.stall_every,
            STALL_STREAM,
            rngx::counter_hash(worker, dequeue),
        )
    }

    /// Should session `id`'s `arrival`-th frame panic mid-push?
    #[inline]
    pub(crate) fn panic_at(&self, id: u64, arrival: u64) -> bool {
        self.fires(
            self.panic_every,
            PANIC_STREAM,
            rngx::counter_hash(id, arrival),
        )
    }

    /// Should session `id`'s `arrival`-th frame arrive corrupted?
    #[inline]
    pub(crate) fn corrupt_at(&self, id: u64, arrival: u64) -> bool {
        self.fires(
            self.corrupt_every,
            CORRUPT_STREAM,
            rngx::counter_hash(id, arrival),
        )
    }

    /// Should the `submit`-th admission be forcibly rejected?
    #[inline]
    pub(crate) fn reject_at(&self, submit: u64) -> bool {
        self.fires(self.reject_every, REJECT_STREAM, submit)
    }

    /// Should session `id`'s `arrival`-th frame kill its worker?
    #[inline]
    pub(crate) fn kill_at(&self, id: u64, arrival: u64) -> bool {
        self.fires(
            self.kill_every,
            KILL_STREAM,
            rngx::counter_hash(id, arrival),
        )
    }

    /// Should worker `worker` wedge before its `dequeue`-th message?
    #[inline]
    pub(crate) fn wedge_at(&self, worker: u64, dequeue: u64) -> bool {
        self.fires(
            self.wedge_every,
            WEDGE_STREAM,
            rngx::counter_hash(worker, dequeue),
        )
    }
}

/// Counters of the faults actually injected, merged over all workers
/// and the admission path; part of [`DrainReport`][crate::DrainReport]
/// when chaos is armed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Worker stalls taken.
    pub stalls: u64,
    /// Panics injected into task steps (each killed one session).
    pub panics: u64,
    /// Frames corrupted before their push (each poisoned one session).
    pub corrupted: u64,
    /// Admissions forcibly rejected as `Busy`.
    pub rejections: u64,
    /// Worker kills taken (each stranded a whole shard until respawn).
    pub kills: u64,
    /// Heartbeat-stall wedges taken.
    pub wedges: u64,
}

impl ChaosReport {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.stalls + self.panics + self.corrupted + self.rejections + self.kills + self.wedges
    }

    pub(crate) fn merge(&mut self, other: &ChaosReport) {
        self.stalls += other.stalls;
        self.panics += other.panics;
        self.corrupted += other.corrupted;
        self.rejections += other.rejections;
        self.kills += other.kills;
        self.wedges += other.wedges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_decisions_are_pure_and_rate_shaped() {
        let c = ChaosConfig::seeded(42)
            .with_stalls(8, Duration::from_micros(50))
            .with_panics(16)
            .with_corruption(32)
            .with_rejections(4);
        // Purity: identical plans agree everywhere.
        let c2 = c.clone();
        for i in 0..512 {
            assert_eq!(c.panic_at(3, i), c2.panic_at(3, i));
            assert_eq!(c.corrupt_at(3, i), c2.corrupt_at(3, i));
            assert_eq!(c.stall_at(1, i), c2.stall_at(1, i));
            assert_eq!(c.reject_at(i), c2.reject_at(i));
        }
        // Rate: ~1/n within loose bounds over 4096 events.
        let n = 4096u64;
        let panics = (0..n).filter(|&i| c.panic_at(7, i)).count() as f64 / n as f64;
        assert!((panics - 1.0 / 16.0).abs() < 0.02, "panic rate {panics}");
        let rejects = (0..n).filter(|&i| c.reject_at(i)).count() as f64 / n as f64;
        assert!((rejects - 1.0 / 4.0).abs() < 0.05, "reject rate {rejects}");
        // Off channels never fire.
        let off = ChaosConfig::seeded(42);
        assert!(!(0..n).any(|i| off.panic_at(7, i)
            || off.corrupt_at(7, i)
            || off.stall_at(0, i)
            || off.reject_at(i)));
    }

    #[test]
    fn channels_and_seeds_decorrelate() {
        let a = ChaosConfig::seeded(1).with_panics(4).with_corruption(4);
        let b = ChaosConfig::seeded(2).with_panics(4).with_corruption(4);
        let panics_a: Vec<bool> = (0..256).map(|i| a.panic_at(5, i)).collect();
        let panics_b: Vec<bool> = (0..256).map(|i| b.panic_at(5, i)).collect();
        assert_ne!(panics_a, panics_b, "seed must matter");
        let corrupts_a: Vec<bool> = (0..256).map(|i| a.corrupt_at(5, i)).collect();
        assert_ne!(panics_a, corrupts_a, "channels must be independent");
    }

    #[test]
    fn pressure_plans_are_pure_functions_of_the_epoch() {
        let burst = PressurePlan::Burst { from: 2, until: 5 };
        let expect: Vec<f64> = vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0];
        let got: Vec<f64> = (0..7).map(|e| burst.over_frac(e)).collect();
        assert_eq!(got, expect);

        let seeded = PressurePlan::Seeded {
            key: 99,
            duty_milli: 500,
        };
        let a: Vec<f64> = (0..128).map(|e| seeded.over_frac(e)).collect();
        let b: Vec<f64> = (0..128).map(|e| seeded.over_frac(e)).collect();
        assert_eq!(a, b);
        let on = a.iter().filter(|&&f| f == 1.0).count();
        assert!((40..=88).contains(&on), "~50% duty, got {on}/128");
    }
}
