//! LPDDR3 main-memory model (Table 1: 4-channel, 25.6 GB/s peak).
//!
//! Two layers:
//!
//! * An **energy model** in the DRAMPower spirit, reduced to an
//!   energy-per-byte plus background power. Calibrated so that the
//!   always-on 1080p60 camera-streaming workload dissipates ≈230 mW, the
//!   paper's Jetson TX2 measurement (§5.1).
//! * A **service model** for the discrete-event simulator: per-channel
//!   bandwidth with queueing (busy-until bookkeeping), used to time DMA
//!   transfers.

use euphrates_common::units::{Bytes, MilliJoules, MilliWatts, Picos};

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak aggregate bandwidth, bytes/second (Table 1: 25.6 GB/s).
    pub peak_bandwidth: f64,
    /// Achievable fraction of peak under mixed traffic.
    pub efficiency: f64,
    /// Number of channels (Table 1: 4).
    pub channels: u32,
    /// Access energy per byte (activate + read/write + I/O), picojoules.
    pub energy_per_byte_pj: f64,
    /// Background power (refresh, controller, PHY).
    pub background_power: MilliWatts,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            peak_bandwidth: 25.6e9,
            efficiency: 0.7,
            channels: 4,
            // Calibration: 38 pJ/B access + 200 mW background reproduces
            // both the TX2's ~230 mW DRAM power under 1080p60 streaming
            // (§5.1) and the Fig. 9b memory-vs-backend energy split.
            energy_per_byte_pj: 38.0,
            background_power: MilliWatts(200.0),
        }
    }
}

impl DramConfig {
    /// Effective sustained bandwidth, bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.efficiency
    }

    /// Time to move `bytes` at effective bandwidth (single stream using
    /// the full device).
    pub fn transfer_time(&self, bytes: Bytes) -> Picos {
        Picos::from_secs_f64(bytes.0 as f64 / self.effective_bandwidth())
    }

    /// Access energy for `bytes` (excluding background).
    pub fn access_energy(&self, bytes: Bytes) -> MilliJoules {
        MilliJoules(bytes.0 as f64 * self.energy_per_byte_pj * 1e-12 * 1e3)
    }

    /// Background energy over `span`.
    pub fn background_energy(&self, span: Picos) -> MilliJoules {
        self.background_power.over(span)
    }

    /// Total energy for `bytes` moved during `span`.
    pub fn energy(&self, bytes: Bytes, span: Picos) -> MilliJoules {
        self.access_energy(bytes) + self.background_energy(span)
    }

    /// Average power while sustaining `bytes_per_sec` of traffic.
    pub fn average_power(&self, bytes_per_sec: f64) -> MilliWatts {
        MilliWatts(self.background_power.0 + bytes_per_sec * self.energy_per_byte_pj * 1e-12 * 1e3)
    }
}

/// Per-channel queueing model for the DES.
#[derive(Debug, Clone)]
pub struct DramService {
    config: DramConfig,
    busy_until: Vec<Picos>,
    bytes_served: Bytes,
}

impl DramService {
    /// Creates a service model.
    pub fn new(config: DramConfig) -> Self {
        DramService {
            busy_until: vec![Picos::ZERO; config.channels as usize],
            config,
            bytes_served: Bytes::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Enqueues a transfer at `now` on the least-loaded channel; returns
    /// its completion time.
    pub fn request(&mut self, now: Picos, bytes: Bytes) -> Picos {
        let per_channel_bw = self.config.effective_bandwidth() / f64::from(self.config.channels);
        let duration = Picos::from_secs_f64(bytes.0 as f64 / per_channel_bw);
        let ch = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start = self.busy_until[ch].max(now);
        let done = start + duration;
        self.busy_until[ch] = done;
        self.bytes_served += bytes;
        done
    }

    /// Total bytes served so far.
    pub fn bytes_served(&self) -> Bytes {
        self.bytes_served
    }

    /// Earliest time all channels are idle.
    pub fn drained_at(&self) -> Picos {
        self.busy_until.iter().copied().max().unwrap_or(Picos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_1080p60_dissipates_about_230mw() {
        // Calibration target (§5.1): camera streaming traffic at 1080p60 —
        // RAW in/out of the ISP working buffers plus the RGB frame write
        // and the backend's read — is ~11.5 MB/frame.
        let cfg = DramConfig::default();
        let bytes_per_sec = 11.5e6 * 60.0;
        let p = cfg.average_power(bytes_per_sec);
        assert!((200.0..260.0).contains(&p.0), "streaming power {p}");
    }

    #[test]
    fn transfer_time_uses_effective_bandwidth() {
        let cfg = DramConfig::default();
        let t = cfg.transfer_time(Bytes(17_920_000_000 / 1000)); // 1/1000 s worth
        assert!((t.as_secs_f64() - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn energy_decomposes_into_access_plus_background() {
        let cfg = DramConfig::default();
        let span = Picos::from_millis(10);
        let bytes = Bytes::from_mib(100);
        let total = cfg.energy(bytes, span);
        let sum = cfg.access_energy(bytes) + cfg.background_energy(span);
        assert!((total.0 - sum.0).abs() < 1e-12);
        assert!(cfg.access_energy(bytes).0 > 0.0);
    }

    #[test]
    fn service_parallelizes_across_channels() {
        let mut svc = DramService::new(DramConfig::default());
        let b = Bytes::from_mib(10);
        let t1 = svc.request(Picos::ZERO, b);
        let t2 = svc.request(Picos::ZERO, b);
        // Two requests land on different channels: same completion time.
        assert_eq!(t1, t2);
        // Five requests on four channels: one queues behind.
        let mut svc = DramService::new(DramConfig::default());
        let times: Vec<Picos> = (0..5).map(|_| svc.request(Picos::ZERO, b)).collect();
        assert!(times[4] > times[0]);
        assert_eq!(svc.bytes_served(), Bytes(b.0 * 5));
    }

    #[test]
    fn queueing_respects_arrival_time() {
        let mut svc = DramService::new(DramConfig::default());
        let later = Picos::from_millis(5);
        let done = svc.request(later, Bytes::from_mib(1));
        assert!(done > later);
        assert!(svc.drained_at() == done);
    }
}
