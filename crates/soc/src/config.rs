//! The modeled SoC configuration — Table 1 of the paper — as a displayable
//! summary (the `table1_soc_config` bench prints it next to the paper's
//! values).

use crate::cpu::CpuConfig;
use crate::dram::DramConfig;
use crate::energy::EnergyModelConfig;
use std::fmt;

/// The full Table 1 configuration plus the calibrated model constants.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Camera sensor description.
    pub sensor: String,
    /// ISP description.
    pub isp: String,
    /// NNX description.
    pub nnx: String,
    /// Motion-controller description.
    pub mc: String,
    /// DRAM description.
    pub dram_desc: String,
    /// Energy-model constants.
    pub energy: EnergyModelConfig,
}

impl SocConfig {
    /// The Table 1 system.
    pub fn table1() -> Self {
        SocConfig {
            sensor: "AR1335-class, 1080p @ 60 FPS, 180 mW".into(),
            isp: "768 MHz, 1080p @ 60 FPS, 153 mW (+2.5% motion estimation)".into(),
            nnx: "24x24 systolic MAC array @ 1 GHz, 1.5 MB double-buffered SRAM, \
                  3-channel 128-bit AXI4 DMA, 651 mW (1.77 TOPS/W)"
                .into(),
            mc: "4-wide SIMD datapath @ 100 MHz, 8 KB SRAM, 3-channel 128-bit AXI4 DMA, \
                 2.2 mW, 0.035 mm2"
                .into(),
            dram_desc: "4-channel LPDDR3, 25.6 GB/s peak".into(),
            energy: EnergyModelConfig::default(),
        }
    }

    /// The DRAM model constants.
    pub fn dram(&self) -> &DramConfig {
        &self.energy.dram
    }

    /// The CPU model constants.
    pub fn cpu(&self) -> &CpuConfig {
        &self.energy.cpu
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig::table1()
    }
}

impl fmt::Display for SocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Component          Specification")?;
        writeln!(f, "{}", "-".repeat(72))?;
        writeln!(f, "Camera Sensor      {}", self.sensor)?;
        writeln!(f, "ISP                {}", self.isp)?;
        writeln!(f, "NN Accelerator     {}", self.nnx)?;
        writeln!(f, "Motion Controller  {}", self.mc)?;
        writeln!(f, "DRAM               {}", self.dram_desc)?;
        writeln!(
            f,
            "Energy model       frontend {:.0} mW, NNX {:.0}/{:.0} mW, MC {:.1} mW, \
             DRAM {:.0} pJ/B + {:.0} mW bg",
            self.energy.frontend_power.0,
            self.energy.nnx_active.0,
            self.energy.nnx_idle.0,
            self.energy.mc_active.0,
            self.energy.dram.energy_per_byte_pj,
            self.energy.dram.background_power.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_display_mentions_every_block() {
        let s = SocConfig::table1().to_string();
        for needle in [
            "1080p @ 60 FPS",
            "24x24 systolic",
            "1.5 MB",
            "4-wide SIMD",
            "8 KB SRAM",
            "LPDDR3",
            "25.6 GB/s",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn accessors_expose_model_constants() {
        let cfg = SocConfig::table1();
        assert!((cfg.dram().peak_bandwidth - 25.6e9).abs() < 1.0);
        assert!(cfg.cpu().active_power.0 > 1000.0);
    }
}
