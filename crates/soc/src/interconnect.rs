//! AXI-class system interconnect model (Fig. 5's backbone).
//!
//! All IPs — ISP DMA, NNX DMA, Motion Controller, CPU — reach DRAM and
//! each other's memory-mapped registers through a shared interconnect.
//! The model captures what matters at this abstraction level: per-master
//! bandwidth arbitration (round-robin), transfer latency, and utilization
//! accounting. Register-width accesses (the MC programming the NNX, ①/②
//! in Fig. 8) are charged a fixed hop latency.

use euphrates_common::error::{Error, Result};
use euphrates_common::units::{Bytes, Picos};

/// Identifier of a bus master.
pub type MasterId = usize;

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    /// Aggregate payload bandwidth, bytes/second (128-bit AXI at SoC
    /// fabric clock; Table 1-class fabrics sustain tens of GB/s).
    pub bandwidth: f64,
    /// Fixed per-transaction latency (address phase, arbitration, hops).
    pub transaction_latency: Picos,
    /// Fixed latency of a single register (MMIO) access.
    pub register_latency: Picos,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            bandwidth: 32.0e9,
            transaction_latency: Picos::from_nanos(80),
            register_latency: Picos::from_nanos(120),
        }
    }
}

/// Per-master accounting entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct MasterState {
    bytes: Bytes,
    transactions: u64,
    busy_until: Picos,
}

/// The shared-bus model.
#[derive(Debug, Clone)]
pub struct Interconnect {
    config: InterconnectConfig,
    masters: Vec<MasterState>,
    names: Vec<String>,
    bus_busy_until: Picos,
}

impl Interconnect {
    /// Creates an interconnect.
    pub fn new(config: InterconnectConfig) -> Self {
        Interconnect {
            config,
            masters: Vec::new(),
            names: Vec::new(),
            bus_busy_until: Picos::ZERO,
        }
    }

    /// Registers a master port, returning its id.
    pub fn add_master(&mut self, name: impl Into<String>) -> MasterId {
        self.masters.push(MasterState::default());
        self.names.push(name.into());
        self.masters.len() - 1
    }

    /// Number of registered masters.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Issues a burst transfer from `master` at `now`; returns its
    /// completion time. Transfers serialize on the shared bus (the
    /// arbitration-order tie-break is request order, which is how a
    /// round-robin arbiter behaves under back-to-back contention).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for an unknown master id.
    pub fn transfer(&mut self, master: MasterId, now: Picos, bytes: Bytes) -> Result<Picos> {
        let state = self
            .masters
            .get_mut(master)
            .ok_or_else(|| Error::not_found(format!("master {master}")))?;
        let start = now.max(self.bus_busy_until);
        let duration = Picos::from_secs_f64(bytes.0 as f64 / self.config.bandwidth)
            + self.config.transaction_latency;
        let done = start + duration;
        self.bus_busy_until = done;
        state.bytes += bytes;
        state.transactions += 1;
        state.busy_until = done;
        Ok(done)
    }

    /// Issues a memory-mapped register access (fixed latency, negligible
    /// payload — the MC↔NNX control path of Fig. 8).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for an unknown master id.
    pub fn register_access(&mut self, master: MasterId, now: Picos) -> Result<Picos> {
        let state = self
            .masters
            .get_mut(master)
            .ok_or_else(|| Error::not_found(format!("master {master}")))?;
        state.transactions += 1;
        Ok(now + self.config.register_latency)
    }

    /// Total bytes a master has moved.
    pub fn bytes_of(&self, master: MasterId) -> Bytes {
        self.masters
            .get(master)
            .map(|m| m.bytes)
            .unwrap_or(Bytes::ZERO)
    }

    /// Total transactions a master has issued.
    pub fn transactions_of(&self, master: MasterId) -> u64 {
        self.masters
            .get(master)
            .map(|m| m.transactions)
            .unwrap_or(0)
    }

    /// Bus utilization over `[0, horizon]`: fraction of time the bus was
    /// transferring payload.
    pub fn utilization(&self, horizon: Picos) -> f64 {
        if horizon == Picos::ZERO {
            return 0.0;
        }
        let total_bytes: u64 = self.masters.iter().map(|m| m.bytes.0).sum();
        let busy = total_bytes as f64 / self.config.bandwidth;
        (busy / horizon.as_secs_f64()).min(1.0)
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::new(InterconnectConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_on_the_shared_bus() {
        let mut ic = Interconnect::default();
        let a = ic.add_master("isp");
        let b = ic.add_master("nnx");
        let t1 = ic.transfer(a, Picos::ZERO, Bytes::from_mib(32)).unwrap();
        let t2 = ic.transfer(b, Picos::ZERO, Bytes::from_mib(32)).unwrap();
        assert!(t2 > t1, "second burst waits for the first");
        // Serialization is fair in request order: duration roughly doubles.
        assert!(t2.as_secs_f64() > 1.9 * t1.as_secs_f64());
    }

    #[test]
    fn idle_bus_adds_only_transaction_latency() {
        let mut ic = Interconnect::default();
        let m = ic.add_master("mc");
        let done = ic
            .transfer(m, Picos::from_millis(5), Bytes(32 * 1024))
            .unwrap();
        let expected = 32.0 * 1024.0 / 32.0e9 + 80e-9;
        assert!((done.as_secs_f64() - (5e-3 + expected)).abs() < 1e-9);
    }

    #[test]
    fn register_accesses_bypass_the_payload_path() {
        let mut ic = Interconnect::default();
        let m = ic.add_master("mc");
        // Saturate the bus with a huge burst...
        ic.transfer(m, Picos::ZERO, Bytes::from_mib(512)).unwrap();
        // ...register pokes still complete at fixed latency.
        let done = ic.register_access(m, Picos::from_nanos(10)).unwrap();
        assert_eq!(done, Picos::from_nanos(10 + 120));
        assert_eq!(ic.transactions_of(m), 2);
    }

    #[test]
    fn accounting_tracks_per_master_traffic() {
        let mut ic = Interconnect::default();
        let a = ic.add_master("isp");
        let b = ic.add_master("nnx");
        ic.transfer(a, Picos::ZERO, Bytes(1000)).unwrap();
        ic.transfer(a, Picos::ZERO, Bytes(500)).unwrap();
        ic.transfer(b, Picos::ZERO, Bytes(2000)).unwrap();
        assert_eq!(ic.bytes_of(a), Bytes(1500));
        assert_eq!(ic.bytes_of(b), Bytes(2000));
        assert_eq!(ic.transactions_of(a), 2);
    }

    #[test]
    fn unknown_masters_are_rejected() {
        let mut ic = Interconnect::default();
        assert!(ic.transfer(0, Picos::ZERO, Bytes(1)).is_err());
        assert!(ic.register_access(3, Picos::ZERO).is_err());
        assert_eq!(ic.bytes_of(9), Bytes::ZERO);
    }

    #[test]
    fn utilization_reflects_offered_load() {
        let mut ic = Interconnect::default();
        let m = ic.add_master("isp");
        // 16 MB over a 10 ms horizon at 32 GB/s = 5% utilization.
        ic.transfer(m, Picos::ZERO, Bytes(16_000_000)).unwrap();
        let u = ic.utilization(Picos::from_millis(10));
        assert!((u - 0.05).abs() < 0.01, "utilization {u}");
        assert_eq!(ic.utilization(Picos::ZERO), 0.0);
    }
}
