//! # euphrates-soc
//!
//! The mobile-SoC substrate: the performance and power models of the
//! paper's GemDroid-style in-house simulator (§5.1), calibrated against
//! its published Jetson TX2 measurements and RTL synthesis results.
//!
//! * [`energy`] — the analytical SoC energy/throughput model behind
//!   Fig. 9b/9c/10b: per-frame ledgers split into frontend / memory /
//!   backend / CPU, extrapolation-window amortization, real-time FPS.
//! * [`dram`] — LPDDR3 model (25.6 GB/s, DRAMPower-lite energy calibrated
//!   to ≈230 mW at 1080p60 streaming) with per-channel queueing for the
//!   event simulator.
//! * [`cpu`] — the wake/ramp/hold CPU episode model that quantifies why
//!   software extrapolation negates Euphrates' savings (the EW-N@CPU
//!   bars).
//! * [`sim`] — a discrete-event engine plus the Fig. 5 pipeline wiring
//!   (sensor → ISP → MC → NNX) with frame-drop semantics; cross-checks
//!   the analytical FPS and powers the `soc_trace` example.
//! * [`power`] — per-IP energy ledger and the figure-style breakdown.
//! * [`framebuffer`] — the DRAM frame-slot ring the IPs communicate
//!   through.
//! * [`config`] — the Table 1 system description.
//!
//! ## Example
//!
//! ```
//! use euphrates_soc::energy::{EnergyModel, SchemeParams};
//! use euphrates_common::units::{Bytes, Picos};
//!
//! # fn main() -> euphrates_common::Result<()> {
//! let model = EnergyModel::default();
//! let baseline = SchemeParams::baseline(
//!     Picos::from_millis(63),
//!     Bytes(643_000_000),
//!     Bytes(11_500_000),
//! );
//! let report = model.evaluate(&baseline, 56_500_000_000)?;
//! assert!(report.fps < 20.0); // YOLOv2-class inference every frame
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod cpu;
pub mod dram;
pub mod energy;
pub mod framebuffer;
pub mod interconnect;
pub mod memsim;
pub mod power;
pub mod sim;

pub use config::SocConfig;
pub use cpu::CpuConfig;
pub use dram::{DramConfig, DramService};
pub use energy::{
    EnergyModel, EnergyModelConfig, ExtrapolationExecutor, SchemeParams, SchemeReport,
};
pub use interconnect::{Interconnect, InterconnectConfig};
pub use memsim::{run_memory_aware, ComputeTimings, MemSimReport, MemoryTraffic};
pub use power::{EnergyBreakdown, EnergyLedger, IpBlock, NormalizedBreakdown};
pub use sim::{run_vision_pipeline, PipelineRun, PipelineTimings, Simulator};
