//! Discrete-event simulation of the vision pipeline's cross-IP timing —
//! the performance-model half of the paper's GemDroid-style in-house
//! simulator (§5.1).
//!
//! The generic engine ([`Simulator`], [`Component`]) delivers time-ordered
//! events to components, which react by posting more events. On top of it,
//! [`run_vision_pipeline`] wires the IPs of Fig. 5 — sensor → ISP →
//! motion controller → NNX — with parametric latencies
//! ([`PipelineTimings`]), and reports per-frame completion times, achieved
//! FPS, and drop statistics under real-time capture.

use euphrates_common::units::Picos;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Index of a component within a simulator.
pub type ComponentId = usize;

/// Event payloads exchanged between vision-pipeline components. The
/// `Custom` variant lets external components define their own protocols on
/// the same engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The sensor finished exposing a frame.
    FrameCaptured {
        /// Frame index.
        frame: u64,
    },
    /// The ISP finished processing; pixels + MV metadata are in DRAM.
    IspFrameDone {
        /// Frame index.
        frame: u64,
    },
    /// The MC finished an E-frame (or the pre-inference extrapolation).
    McFrameDone {
        /// Frame index.
        frame: u64,
        /// Whether this frame also triggered an inference.
        inference: bool,
    },
    /// The NNX finished an inference job.
    NnxJobDone {
        /// Frame index of the I-frame.
        frame: u64,
    },
    /// User-defined event.
    Custom(u32),
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Delivery time.
    pub time: Picos,
    /// Tie-break sequence number (FIFO among same-time events).
    pub seq: u64,
    /// Receiving component.
    pub target: ComponentId,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One line of the simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulation time.
    pub time: Picos,
    /// Component that logged the line.
    pub component: String,
    /// Message.
    pub message: String,
}

/// The interface a component uses to interact with the engine during
/// event delivery.
#[derive(Debug)]
pub struct SimContext<'a> {
    now: Picos,
    outbox: &'a mut Vec<(Picos, ComponentId, EventKind)>,
    trace: &'a mut Vec<TraceEntry>,
    component_name: &'a str,
    tracing: bool,
}

impl SimContext<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Posts an event `delay` after now.
    pub fn post(&mut self, delay: Picos, target: ComponentId, kind: EventKind) {
        self.outbox.push((self.now + delay, target, kind));
    }

    /// Appends a trace line (no-op when tracing is disabled).
    pub fn trace(&mut self, message: impl Into<String>) {
        if self.tracing {
            self.trace.push(TraceEntry {
                time: self.now,
                component: self.component_name.to_string(),
                message: message.into(),
            });
        }
    }
}

/// A simulated component.
pub trait Component {
    /// Display name for traces.
    fn name(&self) -> &str;
    /// Reacts to an event.
    fn handle(&mut self, event: &Event, ctx: &mut SimContext<'_>);
}

/// The discrete-event engine.
pub struct Simulator {
    components: Vec<Box<dyn Component>>,
    heap: BinaryHeap<Reverse<Event>>,
    now: Picos,
    seq: u64,
    trace: Vec<TraceEntry>,
    tracing: bool,
    events_processed: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("components", &self.components.len())
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Simulator {
            components: Vec::new(),
            heap: BinaryHeap::new(),
            now: Picos::ZERO,
            seq: 0,
            trace: Vec::new(),
            tracing: false,
            events_processed: 0,
        }
    }

    /// Enables trace collection (off by default; traces grow linearly with
    /// events).
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Registers a component, returning its id.
    pub fn add_component(&mut self, c: Box<dyn Component>) -> ComponentId {
        self.components.push(c);
        self.components.len() - 1
    }

    /// Schedules an event at absolute `time`.
    pub fn post_at(&mut self, time: Picos, target: ComponentId, kind: EventKind) {
        let ev = Event {
            time,
            seq: self.seq,
            target,
            kind,
        };
        self.seq += 1;
        self.heap.push(Reverse(ev));
    }

    /// Current simulation time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The collected trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Runs until the event queue empties or `deadline` passes. Returns
    /// the number of events delivered.
    pub fn run_until(&mut self, deadline: Picos) -> u64 {
        let mut delivered = 0;
        let mut outbox: Vec<(Picos, ComponentId, EventKind)> = Vec::new();
        while let Some(Reverse(ev)) = self.heap.peek().copied() {
            if ev.time > deadline {
                break;
            }
            self.heap.pop();
            self.now = ev.time;
            if ev.target >= self.components.len() {
                continue; // dangling target: drop
            }
            let component = &mut self.components[ev.target];
            let name_owned = component.name().to_string();
            {
                let mut ctx = SimContext {
                    now: self.now,
                    outbox: &mut outbox,
                    trace: &mut self.trace,
                    component_name: &name_owned,
                    tracing: self.tracing,
                };
                component.handle(&ev, &mut ctx);
            }
            for (time, target, kind) in outbox.drain(..) {
                let e = Event {
                    time,
                    seq: self.seq,
                    target,
                    kind,
                };
                self.seq += 1;
                self.heap.push(Reverse(e));
            }
            delivered += 1;
            self.events_processed += 1;
        }
        self.now = self.now.max(deadline.min(self.now));
        delivered
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new()
    }
}

// ---------------------------------------------------------------------------
// The concrete vision pipeline (Fig. 5) on top of the engine.
// ---------------------------------------------------------------------------

/// Parametric latencies of the vision pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTimings {
    /// Capture period (16.67 ms at 60 FPS).
    pub frame_period: Picos,
    /// Sensor exposure/readout latency.
    pub sensor_latency: Picos,
    /// ISP processing latency per frame.
    pub isp_latency: Picos,
    /// MC latency for an E-frame (fetch + extrapolate + write).
    pub mc_e_frame: Picos,
    /// MC-side latency around an I-frame (program + compare + write).
    pub mc_i_frame: Picos,
    /// NNX inference latency.
    pub nnx_latency: Picos,
    /// Extrapolation window (1 = inference every frame).
    pub window: u32,
}

/// Outcome counters of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineRun {
    /// Completion time of each produced result (frame index, time).
    pub results: Vec<(u64, Picos)>,
    /// Frames dropped because the NNX was still busy at their I-slot.
    pub dropped: u64,
    /// Inferences executed.
    pub inferences: u64,
}

impl PipelineRun {
    /// Achieved results/second over the span of the run.
    pub fn achieved_fps(&self) -> f64 {
        match (self.results.first(), self.results.last()) {
            (Some((_, t0)), Some((_, t1))) if t1 > t0 && self.results.len() > 1 => {
                (self.results.len() - 1) as f64 / (*t1 - *t0).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

struct SensorComp {
    isp: ComponentId,
    period: Picos,
    latency: Picos,
    frames_left: u64,
    next_frame: u64,
}

impl Component for SensorComp {
    fn name(&self) -> &str {
        "sensor"
    }
    fn handle(&mut self, event: &Event, ctx: &mut SimContext<'_>) {
        if let EventKind::FrameCaptured { frame } = event.kind {
            ctx.trace(format!("frame {frame} captured"));
            ctx.post(self.latency, self.isp, EventKind::IspFrameDone { frame });
            if self.frames_left > 0 {
                self.frames_left -= 1;
                self.next_frame += 1;
                let f = self.next_frame;
                // Sensors self-schedule: the next capture strobe.
                // The event's target is this component: self-schedule.
                ctx.post(
                    self.period,
                    event.target,
                    EventKind::FrameCaptured { frame: f },
                );
            }
        }
    }
}

struct IspComp {
    mc: ComponentId,
    latency: Picos,
}

impl Component for IspComp {
    fn name(&self) -> &str {
        "isp"
    }
    fn handle(&mut self, event: &Event, ctx: &mut SimContext<'_>) {
        if let EventKind::IspFrameDone { frame } = event.kind {
            ctx.trace(format!("frame {frame} processed; MVs exported"));
            ctx.post(self.latency, self.mc, EventKind::FrameCaptured { frame });
        }
    }
}

struct McComp {
    self_id: ComponentId,
    timings: PipelineTimings,
    nnx_busy_until: Picos,
    frames_since_inference: u32,
    run: Rc<RefCell<PipelineRun>>,
}

impl Component for McComp {
    fn name(&self) -> &str {
        "mc"
    }
    fn handle(&mut self, event: &Event, ctx: &mut SimContext<'_>) {
        match event.kind {
            // A frame (with MV metadata) is ready for the backend.
            EventKind::FrameCaptured { frame } => {
                let due_inference = self.frames_since_inference == 0
                    || self.frames_since_inference >= self.timings.window;
                if due_inference {
                    if ctx.now() < self.nnx_busy_until {
                        // NNX still busy: real-time frame drop (§6.1 —
                        // this is what limits the baseline to ~17 FPS).
                        self.run.borrow_mut().dropped += 1;
                        ctx.trace(format!("frame {frame} dropped (NNX busy)"));
                        return;
                    }
                    self.frames_since_inference = 1;
                    self.run.borrow_mut().inferences += 1;
                    let done = ctx.now() + self.timings.mc_i_frame + self.timings.nnx_latency;
                    self.nnx_busy_until = done;
                    ctx.trace(format!("frame {frame}: I-frame, NNX job started"));
                    ctx.post(
                        self.timings.mc_i_frame + self.timings.nnx_latency,
                        self.self_id,
                        EventKind::NnxJobDone { frame },
                    );
                } else {
                    self.frames_since_inference += 1;
                    ctx.trace(format!("frame {frame}: E-frame extrapolated"));
                    ctx.post(
                        self.timings.mc_e_frame,
                        self.self_id,
                        EventKind::McFrameDone {
                            frame,
                            inference: false,
                        },
                    );
                }
            }
            EventKind::NnxJobDone { frame } => {
                ctx.trace(format!("frame {frame}: inference complete"));
                self.run.borrow_mut().results.push((frame, ctx.now()));
            }
            EventKind::McFrameDone { frame, .. } => {
                self.run.borrow_mut().results.push((frame, ctx.now()));
            }
            _ => {}
        }
    }
}

/// Builds and runs the Fig. 5 pipeline for `frames` captured frames;
/// returns the run statistics and, when `tracing`, the event trace.
pub fn run_vision_pipeline(
    timings: PipelineTimings,
    frames: u64,
    tracing: bool,
) -> (PipelineRun, Vec<TraceEntry>) {
    let mut sim = Simulator::new();
    if tracing {
        sim.enable_tracing();
    }
    // Wire backwards: MC id is known last, so pre-compute ids.
    let sensor_id = 0;
    let isp_id = 1;
    let mc_id = 2;
    sim.add_component(Box::new(SensorComp {
        isp: isp_id,
        period: timings.frame_period,
        latency: timings.sensor_latency,
        frames_left: frames.saturating_sub(1),
        next_frame: 0,
    }));
    sim.add_component(Box::new(IspComp {
        mc: mc_id,
        latency: timings.isp_latency,
    }));
    let run = Rc::new(RefCell::new(PipelineRun::default()));
    sim.add_component(Box::new(McComp {
        self_id: mc_id,
        timings,
        nnx_busy_until: Picos::ZERO,
        frames_since_inference: 0,
        run: Rc::clone(&run),
    }));
    sim.post_at(
        Picos::ZERO,
        sensor_id,
        EventKind::FrameCaptured { frame: 0 },
    );
    sim.run_until(Picos::from_secs_f64(3600.0));

    let result = run.borrow().clone();
    (result, sim.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(window: u32, nnx_ms: u64) -> PipelineTimings {
        PipelineTimings {
            frame_period: Picos::from_micros(16_667),
            sensor_latency: Picos::from_millis(4),
            isp_latency: Picos::from_millis(3),
            mc_e_frame: Picos::from_micros(60),
            mc_i_frame: Picos::from_micros(30),
            nnx_latency: Picos::from_millis(nnx_ms),
            window,
        }
    }

    #[test]
    fn events_are_delivered_in_time_order() {
        struct Recorder {
            seen: Rc<RefCell<Vec<u32>>>,
        }
        impl Component for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn handle(&mut self, event: &Event, _ctx: &mut SimContext<'_>) {
                if let EventKind::Custom(v) = event.kind {
                    self.seen.borrow_mut().push(v);
                }
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new();
        let id = sim.add_component(Box::new(Recorder {
            seen: Rc::clone(&seen),
        }));
        sim.post_at(Picos(300), id, EventKind::Custom(3));
        sim.post_at(Picos(100), id, EventKind::Custom(1));
        sim.post_at(Picos(200), id, EventKind::Custom(2));
        // Same-time events keep FIFO order.
        sim.post_at(Picos(300), id, EventKind::Custom(4));
        let n = sim.run_until(Picos::from_millis(1));
        assert_eq!(n, 4);
        assert_eq!(*seen.borrow(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn deadline_stops_the_run() {
        struct Echo {
            id: ComponentId,
        }
        impl Component for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn handle(&mut self, _event: &Event, ctx: &mut SimContext<'_>) {
                ctx.post(Picos::from_millis(1), self.id, EventKind::Custom(0));
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_component(Box::new(Echo { id: 0 }));
        sim.post_at(Picos::ZERO, id, EventKind::Custom(0));
        let delivered = sim.run_until(Picos::from_millis(10));
        assert!(delivered <= 11, "delivered {delivered}");
    }

    #[test]
    fn baseline_pipeline_drops_to_inference_rate() {
        // 63.5 ms inference at 60 FPS capture: ~15.7 results/s, rest drop.
        let (run, _) = run_vision_pipeline(timings(1, 63), 300, false);
        let fps = run.achieved_fps();
        assert!((13.0..18.5).contains(&fps), "baseline fps {fps}");
        assert!(run.dropped > 200, "dropped {}", run.dropped);
    }

    #[test]
    fn ew4_reaches_capture_rate() {
        let (run, _) = run_vision_pipeline(timings(4, 63), 300, false);
        let fps = run.achieved_fps();
        assert!(fps > 55.0, "EW-4 fps {fps}");
        assert!(run.dropped < 20, "dropped {}", run.dropped);
        // Inference rate ~25%.
        let rate = run.inferences as f64 / run.results.len() as f64;
        assert!((0.2..0.3).contains(&rate), "inference rate {rate}");
    }

    #[test]
    fn ew2_lands_between() {
        let (run, _) = run_vision_pipeline(timings(2, 63), 300, false);
        let fps = run.achieved_fps();
        assert!((25.0..40.0).contains(&fps), "EW-2 fps {fps}");
    }

    #[test]
    fn fast_network_sustains_60fps_even_as_baseline() {
        // MDNet-class 12 ms inference keeps up with 60 FPS at EW-1.
        let (run, _) = run_vision_pipeline(timings(1, 12), 300, false);
        assert!(run.achieved_fps() > 55.0, "fps {}", run.achieved_fps());
        assert_eq!(run.dropped, 0);
    }

    #[test]
    fn tracing_captures_pipeline_activity() {
        let (_, trace) = run_vision_pipeline(timings(2, 30), 10, true);
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|t| t.component == "sensor"));
        assert!(trace.iter().any(|t| t.component == "isp"));
        assert!(trace.iter().any(|t| t.message.contains("E-frame")));
        // Trace is time-sorted.
        for pair in trace.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }
}
