//! Host CPU model — used only by the "extrapolation in software" variant
//! (the EW-N@CPU bars of Fig. 9b).
//!
//! The paper's argument for the Motion Controller IP (§4.1) is that
//! software extrapolation, though computationally trivial, forces a CPU
//! wake-up on every E-frame: the core must leave its low-power state, ramp
//! its clock/voltage, take the interrupt, run cache-cold code, and linger
//! at the governor's hold time before descending again. The energy of one
//! such episode dwarfs the ~10 K arithmetic operations involved, which is
//! why "EW-8 with CPU-based extrapolation consumes almost as much energy
//! as EW-4" (§6.1).

use euphrates_common::units::{MilliJoules, MilliWatts, Picos};

/// CPU energy/timing parameters (big-core mobile cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Power while awake and executing (a single big core with its L2 and
    /// fabric share; §2.1 notes the cluster alone can exceed 3 W).
    pub active_power: MilliWatts,
    /// Deep-idle power (not charged to vision tasks; kept for reference).
    pub idle_power: MilliWatts,
    /// Wake-up + DVFS ramp latency before useful work starts.
    pub wake_latency: Picos,
    /// Governor hold time after the work completes (the core stays up).
    pub hold_time: Picos,
    /// Sustained throughput on the extrapolation kernel, ops/second.
    pub ops_per_second: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            active_power: MilliWatts(2000.0),
            idle_power: MilliWatts(30.0),
            wake_latency: Picos::from_millis(2),
            hold_time: Picos::from_micros(2_400),
            ops_per_second: 2.0e9,
        }
    }
}

impl CpuConfig {
    /// Wall-clock time the CPU is awake to execute one extrapolation
    /// episode of `ops` operations.
    pub fn episode_time(&self, ops: u64) -> Picos {
        let work = Picos::from_secs_f64(ops as f64 / self.ops_per_second);
        self.wake_latency + work + self.hold_time
    }

    /// Energy of one wake-execute-sleep episode.
    pub fn episode_energy(&self, ops: u64) -> MilliJoules {
        self.active_power.over(self.episode_time(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_energy_is_dominated_by_wake_not_work() {
        let cpu = CpuConfig::default();
        // The §3.2 workload: ~10 K fixed-point ops.
        let e_work_only = MilliJoules(cpu.active_power.0 * (10_000.0 / cpu.ops_per_second));
        let e_episode = cpu.episode_energy(10_000);
        assert!(
            e_episode.0 > 100.0 * e_work_only.0,
            "episode {} vs pure work {}",
            e_episode.0,
            e_work_only.0
        );
    }

    #[test]
    fn episode_energy_matches_calibration_target() {
        // Calibrated so EW-8@CPU lands near EW-4's total energy in Fig. 9b:
        // ~8-10 mJ per E-frame episode.
        let e = CpuConfig::default().episode_energy(10_000);
        assert!((7.0..12.0).contains(&e.0), "episode energy {e}");
    }

    #[test]
    fn episode_time_scales_with_ops() {
        let cpu = CpuConfig::default();
        let small = cpu.episode_time(1_000);
        let large = cpu.episode_time(2_000_000_000);
        assert!(large > small);
        assert!(
            large.as_secs_f64() > 1.0,
            "2G ops at 2 GOPS ≈ 1 s + overhead"
        );
    }
}
