//! The SoC-level energy/throughput model behind Fig. 9b, Fig. 9c, and
//! Fig. 10b.
//!
//! Evaluation convention (matching §6.1): the frontend captures at a
//! constant rate (60 FPS), so *frontend energy per frame is identical
//! across schemes*; what varies is how often the expensive inference runs
//! (the extrapolation window `N`), the DRAM traffic, and the backend duty
//! cycle. Accuracy is measured offline on every frame; the FPS reported
//! here is the throughput the scheme would sustain in real time:
//!
//! ```text
//! window time  T_w = max(N / fps_capture, T_inf + T_seq)
//! fps          = N / T_w   (≤ fps_capture)
//! ```
//!
//! Per processed frame, the ledger charges:
//! * frontend: active sensor+ISP power over one capture period;
//! * NNX: one inference per window (active power over its latency) plus
//!   idle power for the remainder;
//! * MC: its (tiny) per-frame energy — or, for `@CPU` schemes, a CPU
//!   wake episode per E-frame instead;
//! * DRAM: inference traffic once per window, streaming + metadata
//!   traffic every frame, background power over the frame's share of the
//!   window.

use crate::cpu::CpuConfig;
use crate::dram::DramConfig;
use crate::power::{EnergyBreakdown, EnergyLedger, IpBlock};
use euphrates_common::error::{Error, Result};
use euphrates_common::units::{Bytes, MilliJoules, MilliWatts, Picos};

/// Who executes the extrapolation arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtrapolationExecutor {
    /// The dedicated Motion Controller IP (the Euphrates design).
    MotionController,
    /// The host CPU, waking up on every E-frame (the §6.1 comparison).
    Cpu,
}

/// Platform-level constants of the energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModelConfig {
    /// Frontend capture rate (frames/second).
    pub capture_fps: f64,
    /// Combined active power of sensor + ISP.
    pub frontend_power: MilliWatts,
    /// NNX active power (§5.1: 651 mW).
    pub nnx_active: MilliWatts,
    /// NNX idle power.
    pub nnx_idle: MilliWatts,
    /// MC active power (§5.1: 2.2 mW).
    pub mc_active: MilliWatts,
    /// DRAM model.
    pub dram: DramConfig,
    /// CPU model for `@CPU` schemes.
    pub cpu: CpuConfig,
}

impl Default for EnergyModelConfig {
    fn default() -> Self {
        EnergyModelConfig {
            capture_fps: 60.0,
            // 1080p60 calibration: sensor 205 mW + ISP 157 mW (§5.1).
            frontend_power: MilliWatts(362.0),
            nnx_active: MilliWatts(651.0),
            nnx_idle: MilliWatts(33.0),
            mc_active: MilliWatts(2.2),
            dram: DramConfig::default(),
            cpu: CpuConfig::default(),
        }
    }
}

/// Per-scheme workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeParams {
    /// Mean extrapolation window `N` (1 = baseline; fractional for the
    /// adaptive mode, `N = 1 / inference_rate`).
    pub window: f64,
    /// One inference's latency on the NNX.
    pub inference_latency: Picos,
    /// One inference's DRAM traffic (reads + writes).
    pub inference_traffic: Bytes,
    /// Always-on streaming traffic per captured frame (RAW in/out, RGB
    /// frame write, backend frame read).
    pub streaming_traffic: Bytes,
    /// Motion-vector metadata + result traffic per frame (zero for the
    /// baseline, which does not export MVs).
    pub metadata_traffic: Bytes,
    /// MC sequencer + datapath time per frame (its clock domain already
    /// applied).
    pub mc_time_per_frame: Picos,
    /// Extrapolation arithmetic per E-frame (for CPU-executed schemes).
    pub extrapolation_ops: u64,
    /// Who runs the extrapolation.
    pub executor: ExtrapolationExecutor,
}

impl SchemeParams {
    /// Baseline parameters: inference every frame, no MV export.
    pub fn baseline(inference_latency: Picos, inference_traffic: Bytes, streaming: Bytes) -> Self {
        SchemeParams {
            window: 1.0,
            inference_latency,
            inference_traffic,
            streaming_traffic: streaming,
            metadata_traffic: Bytes::ZERO,
            mc_time_per_frame: Picos::ZERO,
            extrapolation_ops: 0,
            executor: ExtrapolationExecutor::MotionController,
        }
    }
}

/// The evaluated scheme: throughput plus a per-frame energy breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeReport {
    /// Mean window used.
    pub window: f64,
    /// Sustained real-time throughput (≤ capture rate).
    pub fps: f64,
    /// Wall-clock time per processed frame.
    pub time_per_frame: Picos,
    /// Energy per processed frame, by IP.
    pub ledger: EnergyLedger,
    /// DRAM traffic per processed frame.
    pub traffic_per_frame: Bytes,
    /// Arithmetic operations per frame on the backend (inference share).
    pub backend_ops_per_frame: f64,
}

impl SchemeReport {
    /// Per-frame energy in the figure grouping.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.ledger.breakdown()
    }

    /// Total per-frame energy.
    pub fn energy_per_frame(&self) -> MilliJoules {
        self.ledger.total()
    }
}

/// The energy/throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyModel {
    config: EnergyModelConfig,
}

impl EnergyModel {
    /// Creates a model.
    pub fn new(config: EnergyModelConfig) -> Self {
        EnergyModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EnergyModelConfig {
        &self.config
    }

    /// Evaluates a scheme.
    ///
    /// `inference_ops` is the arithmetic cost of one inference (for the
    /// ops-per-frame output of Fig. 9c).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a window below 1.
    pub fn evaluate(&self, params: &SchemeParams, inference_ops: u64) -> Result<SchemeReport> {
        if params.window < 1.0 {
            return Err(Error::config(format!(
                "extrapolation window {} must be >= 1",
                params.window
            )));
        }
        let cfg = &self.config;
        let n = params.window;
        let capture_period = Picos::from_secs_f64(1.0 / cfg.capture_fps);

        // Window wall time: frontend-limited or inference-limited.
        let frontend_window = Picos::from_secs_f64(n / cfg.capture_fps);
        let inference_window = params.inference_latency + params.mc_time_per_frame;
        let window_time = frontend_window.max(inference_window);
        let time_per_frame = Picos::from_secs_f64(window_time.as_secs_f64() / n);
        let fps = (n / window_time.as_secs_f64()).min(cfg.capture_fps);

        let mut ledger = EnergyLedger::new();

        // Frontend: constant per captured frame (§6.1).
        let fe = cfg.frontend_power.over(capture_period);
        // Split sensor/ISP 55/45 per the §5.1 measurements (205/157 mW).
        ledger.add(IpBlock::Sensor, fe * 0.566);
        ledger.add(IpBlock::Isp, fe * 0.434);

        // Backend NNX: one inference per window + idle remainder.
        let nnx_active = cfg.nnx_active.over(params.inference_latency) / n;
        let idle_time = window_time.saturating_sub(params.inference_latency);
        let nnx_idle = cfg.nnx_idle.over(idle_time) / n;
        ledger.add(IpBlock::Nnx, nnx_active + nnx_idle);

        // Extrapolation executor.
        match params.executor {
            ExtrapolationExecutor::MotionController => {
                ledger.add(IpBlock::Mc, cfg.mc_active.over(params.mc_time_per_frame));
            }
            ExtrapolationExecutor::Cpu => {
                // One wake episode per E-frame: (n-1) of n frames.
                let episodes_per_frame = (n - 1.0) / n;
                let e = cfg.cpu.episode_energy(params.extrapolation_ops);
                ledger.add(IpBlock::Cpu, e * episodes_per_frame);
            }
        }

        // DRAM: inference traffic amortized over the window; streaming and
        // metadata every frame; background over the frame's time share.
        let traffic_per_frame = Bytes(
            (params.inference_traffic.0 as f64 / n).round() as u64
                + params.streaming_traffic.0
                + params.metadata_traffic.0,
        );
        let dram =
            cfg.dram.access_energy(traffic_per_frame) + cfg.dram.background_energy(time_per_frame);
        ledger.add(IpBlock::Dram, dram);

        Ok(SchemeReport {
            window: n,
            fps,
            time_per_frame,
            ledger,
            traffic_per_frame,
            backend_ops_per_frame: inference_ops as f64 / n + params.extrapolation_ops as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// YOLOv2-class parameters matching the calibrated nn model.
    fn yolov2_params(window: f64) -> SchemeParams {
        SchemeParams {
            window,
            inference_latency: Picos::from_micros(63_500),
            inference_traffic: Bytes(643_000_000),
            streaming_traffic: Bytes(11_500_000),
            metadata_traffic: if window > 1.0 {
                Bytes(40_000)
            } else {
                Bytes::ZERO
            },
            mc_time_per_frame: Picos::from_micros(50),
            extrapolation_ops: 10_000,
            executor: ExtrapolationExecutor::MotionController,
        }
    }

    const YOLOV2_OPS: u64 = 56_500_000_000;

    #[test]
    fn baseline_fps_matches_inference_latency() {
        let model = EnergyModel::default();
        let r = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        assert!((r.fps - 15.7).abs() < 0.5, "baseline fps {}", r.fps);
    }

    #[test]
    fn ew2_saves_around_45_percent() {
        // §6.1: EW-2 reduces total energy by ~45% and reaches ~35 FPS.
        let model = EnergyModel::default();
        let base = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        let ew2 = model.evaluate(&yolov2_params(2.0), YOLOV2_OPS).unwrap();
        let saving = 1.0 - ew2.energy_per_frame().0 / base.energy_per_frame().0;
        assert!((0.35..0.52).contains(&saving), "EW-2 saving {saving}");
        assert!((28.0..38.0).contains(&ew2.fps), "EW-2 fps {}", ew2.fps);
    }

    #[test]
    fn ew4_saves_around_66_percent_and_hits_60fps() {
        let model = EnergyModel::default();
        let base = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        let ew4 = model.evaluate(&yolov2_params(4.0), YOLOV2_OPS).unwrap();
        let saving = 1.0 - ew4.energy_per_frame().0 / base.energy_per_frame().0;
        assert!((0.58..0.72).contains(&saving), "EW-4 saving {saving}");
        assert!(ew4.fps > 58.0, "EW-4 fps {}", ew4.fps);
    }

    #[test]
    fn savings_diminish_beyond_ew8() {
        // Fig. 9b: the frontend+memory floor limits further gains.
        let model = EnergyModel::default();
        let base = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        let e8 = model.evaluate(&yolov2_params(8.0), YOLOV2_OPS).unwrap();
        let e32 = model.evaluate(&yolov2_params(32.0), YOLOV2_OPS).unwrap();
        let s8 = 1.0 - e8.energy_per_frame().0 / base.energy_per_frame().0;
        let s32 = 1.0 - e32.energy_per_frame().0 / base.energy_per_frame().0;
        assert!(s32 > s8, "monotone savings");
        assert!(s32 - s8 < 0.15, "diminishing returns: {s8} -> {s32}");
    }

    #[test]
    fn cpu_extrapolation_negates_most_of_ew8_benefit() {
        // §6.1: EW-8@CPU ≈ EW-4 total energy.
        let model = EnergyModel::default();
        let ew4 = model.evaluate(&yolov2_params(4.0), YOLOV2_OPS).unwrap();
        let mut p = yolov2_params(8.0);
        p.executor = ExtrapolationExecutor::Cpu;
        let cpu8 = model.evaluate(&p, YOLOV2_OPS).unwrap();
        let ratio = cpu8.energy_per_frame().0 / ew4.energy_per_frame().0;
        assert!(
            (0.8..1.25).contains(&ratio),
            "EW-8@CPU / EW-4 = {ratio} ({} vs {})",
            cpu8.energy_per_frame().0,
            ew4.energy_per_frame().0
        );
        // And the CPU entry is what did it.
        assert!(cpu8.ledger.of(IpBlock::Cpu).0 > 5.0);
    }

    #[test]
    fn frontend_energy_is_scheme_invariant() {
        let model = EnergyModel::default();
        let a = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        let b = model.evaluate(&yolov2_params(16.0), YOLOV2_OPS).unwrap();
        assert!(
            (a.breakdown().frontend.0 - b.breakdown().frontend.0).abs() < 1e-9,
            "frontend must not vary across schemes"
        );
    }

    #[test]
    fn traffic_per_frame_drops_with_window() {
        // Fig. 9c: E-frames avoid the inference's SRAM-spill traffic.
        let model = EnergyModel::default();
        let base = model.evaluate(&yolov2_params(1.0), YOLOV2_OPS).unwrap();
        let ew8 = model.evaluate(&yolov2_params(8.0), YOLOV2_OPS).unwrap();
        assert!(base.traffic_per_frame.0 > 5 * ew8.traffic_per_frame.0);
        assert!(
            base.backend_ops_per_frame > 7.0 * ew8.backend_ops_per_frame,
            "ops/frame must fall with the window"
        );
    }

    #[test]
    fn fractional_windows_model_adaptive_mode() {
        let model = EnergyModel::default();
        let r = model.evaluate(&yolov2_params(3.5), YOLOV2_OPS).unwrap();
        assert!(r.fps > 50.0);
        let e2 = model.evaluate(&yolov2_params(2.0), YOLOV2_OPS).unwrap();
        let e4 = model.evaluate(&yolov2_params(4.0), YOLOV2_OPS).unwrap();
        assert!(r.energy_per_frame() < e2.energy_per_frame());
        assert!(r.energy_per_frame() > e4.energy_per_frame());
    }

    #[test]
    fn invalid_window_is_rejected() {
        let model = EnergyModel::default();
        assert!(model.evaluate(&yolov2_params(0.5), YOLOV2_OPS).is_err());
    }
}
