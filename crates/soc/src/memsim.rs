//! Memory-aware pipeline simulation: the Fig. 5 pipeline with DMA traffic
//! routed through the shared [`crate::dram::DramService`] and
//! [`crate::interconnect::Interconnect`], instead of fixed latencies.
//!
//! This closes the loop between the three SoC substrates: the ISP's
//! frame-buffer writes, the MC's metadata fetches, and the NNX's
//! inference traffic all contend for the same channels, so an inference's
//! effective latency *stretches* under frontend streaming load — the
//! second-order effect the analytical model of [`crate::energy`]
//! approximates with a flat efficiency factor.

use crate::dram::{DramConfig, DramService};
use crate::interconnect::{Interconnect, InterconnectConfig};
use euphrates_common::units::{Bytes, Picos};

/// Traffic each pipeline stage puts on the memory system, per frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTraffic {
    /// CSI RAW write + ISP RAW read + RGB frame write.
    pub isp_bytes: Bytes,
    /// Motion-vector metadata write (ISP) + read (MC) + results.
    pub metadata_bytes: Bytes,
    /// Inference traffic per I-frame (weights/activations refetch).
    pub inference_bytes: Bytes,
}

impl MemoryTraffic {
    /// The Table 1 operating point with a YOLOv2-class inference.
    pub fn table1_yolov2() -> Self {
        MemoryTraffic {
            isp_bytes: Bytes(11_400_000),
            metadata_bytes: Bytes(34_000),
            inference_bytes: Bytes(643_000_000),
        }
    }
}

/// Compute-side latencies (memory time is simulated, not assumed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeTimings {
    /// Capture period.
    pub frame_period: Picos,
    /// ISP pixel-pipeline time per frame (compute only).
    pub isp_compute: Picos,
    /// MC extrapolation time per frame.
    pub mc_compute: Picos,
    /// NNX MAC-array time per inference (compute only; the memory share
    /// of the inference is simulated from `inference_bytes`).
    pub nnx_compute: Picos,
    /// Extrapolation window.
    pub window: u32,
}

/// Result of a memory-aware run.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSimReport {
    /// Results produced (frame index, completion time).
    pub completions: Vec<(u64, Picos)>,
    /// Inference count.
    pub inferences: u64,
    /// Total bytes served by DRAM.
    pub dram_bytes: Bytes,
    /// Mean effective inference latency (compute + simulated memory,
    /// under contention with streaming).
    pub mean_inference_latency: Picos,
}

impl MemSimReport {
    /// Achieved results/second.
    pub fn achieved_fps(&self) -> f64 {
        match (self.completions.first(), self.completions.last()) {
            (Some((_, t0)), Some((_, t1))) if t1 > t0 && self.completions.len() > 1 => {
                (self.completions.len() - 1) as f64 / (*t1 - *t0).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

/// Runs `frames` captured frames through the memory-aware pipeline.
///
/// Per frame: the ISP streams its traffic through the interconnect into
/// DRAM while its pixel pipeline runs; the backend then either
/// extrapolates (fetching metadata) or — on I-frames, if the NNX is free —
/// runs an inference whose memory traffic is issued in bursts that share
/// the channels with the next frames' streaming. Frames whose I-slot
/// finds the NNX busy are dropped, as in [`crate::sim`].
pub fn run_memory_aware(
    compute: ComputeTimings,
    traffic: MemoryTraffic,
    dram: DramConfig,
    frames: u64,
) -> MemSimReport {
    let mut dram_svc = DramService::new(dram);
    let mut noc = Interconnect::new(InterconnectConfig::default());
    let isp_port = noc.add_master("isp");
    let mc_port = noc.add_master("mc");
    let nnx_port = noc.add_master("nnx");

    let mut completions = Vec::new();
    let mut inferences = 0u64;
    let mut inference_latencies = Vec::new();
    let mut nnx_busy_until = Picos::ZERO;
    let mut since_inference = 0u32;

    // Inference traffic is issued in bursts so streaming interleaves.
    const INFERENCE_BURSTS: u64 = 32;

    for f in 0..frames {
        let capture = Picos(compute.frame_period.0 * f);
        // Frontend: ISP streams while computing; frame ready when both done.
        let isp_compute_done = capture + compute.isp_compute;
        let isp_dma_done = {
            let t = noc
                .transfer(isp_port, capture, traffic.isp_bytes)
                .expect("isp port exists");
            dram_svc.request(t, traffic.isp_bytes)
        };
        let frame_ready = isp_compute_done.max(isp_dma_done);

        // Backend.
        let due_inference = since_inference == 0 || since_inference >= compute.window;
        if due_inference {
            if frame_ready < nnx_busy_until {
                // Real-time drop.
                since_inference = since_inference.saturating_add(1).min(compute.window);
                continue;
            }
            since_inference = 1;
            inferences += 1;
            // The inference's DRAM traffic, burst by burst. The DMA queues
            // bursts as soon as the interconnect grants them (multiple
            // outstanding requests spread across the channels); memory is
            // done when the last burst lands.
            let burst = Bytes(traffic.inference_bytes.0 / INFERENCE_BURSTS);
            let mut issue = frame_ready;
            let mut memory_done = frame_ready;
            for _ in 0..INFERENCE_BURSTS {
                let granted = noc
                    .transfer(nnx_port, issue, burst)
                    .expect("nnx port exists");
                issue = granted;
                memory_done = memory_done.max(dram_svc.request(granted, burst));
            }
            let compute_done = frame_ready + compute.nnx_compute;
            let done = memory_done.max(compute_done);
            inference_latencies.push(done.saturating_sub(frame_ready));
            nnx_busy_until = done;
            completions.push((f, done));
        } else {
            since_inference += 1;
            let meta = noc
                .transfer(mc_port, frame_ready, traffic.metadata_bytes)
                .expect("mc port exists");
            let meta_done = dram_svc.request(meta, traffic.metadata_bytes);
            completions.push((f, meta_done.max(frame_ready) + compute.mc_compute));
        }
    }

    let mean_inference_latency = if inference_latencies.is_empty() {
        Picos::ZERO
    } else {
        Picos(
            inference_latencies.iter().map(|p| p.0).sum::<u64>() / inference_latencies.len() as u64,
        )
    };
    MemSimReport {
        completions,
        inferences,
        dram_bytes: dram_svc.bytes_served(),
        mean_inference_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(window: u32) -> ComputeTimings {
        ComputeTimings {
            frame_period: Picos::from_micros(16_667),
            isp_compute: Picos::from_millis(3),
            mc_compute: Picos::from_micros(50),
            // YOLOv2 compute share: ~52 ms of the ~63 ms total.
            nnx_compute: Picos::from_millis(52),
            window,
        }
    }

    #[test]
    fn memory_overlaps_compute_at_the_table1_point_but_not_below() {
        // At the Table 1 bandwidth, 643 MB spread over four channels
        // (~36 ms) hides entirely under the 52 ms of MAC-array time: the
        // burst-level simulation shows the whole job is compute-bound.
        let r = run_memory_aware(
            timings(4),
            MemoryTraffic::table1_yolov2(),
            DramConfig::default(),
            240,
        );
        let lat = r.mean_inference_latency.as_secs_f64();
        assert!((lat - 0.052).abs() < 0.004, "latency {lat}");

        // Halve the bandwidth and the memory time (~72 ms) emerges as the
        // new critical path — latency stretches past compute.
        let slow = run_memory_aware(
            timings(4),
            MemoryTraffic::table1_yolov2(),
            DramConfig {
                peak_bandwidth: 12.8e9,
                ..DramConfig::default()
            },
            240,
        );
        let slow_lat = slow.mean_inference_latency.as_secs_f64();
        assert!(slow_lat > 0.065, "reduced-bandwidth latency {slow_lat}");
    }

    #[test]
    fn fps_is_consistent_with_the_fixed_latency_des() {
        // The memory-aware EW-4 run must land in the same FPS regime as
        // the analytical/fixed-latency models (≈60 FPS).
        let r = run_memory_aware(
            timings(4),
            MemoryTraffic::table1_yolov2(),
            DramConfig::default(),
            240,
        );
        assert!(r.achieved_fps() > 50.0, "fps {}", r.achieved_fps());
    }

    #[test]
    fn baseline_is_memory_and_compute_bound() {
        let r = run_memory_aware(
            timings(1),
            MemoryTraffic::table1_yolov2(),
            DramConfig::default(),
            240,
        );
        let fps = r.achieved_fps();
        assert!((10.0..20.0).contains(&fps), "baseline fps {fps}");
        assert_eq!(r.completions.len() as u64, r.inferences);
    }

    #[test]
    fn e_frames_put_only_metadata_on_the_bus() {
        let heavy = run_memory_aware(
            timings(1),
            MemoryTraffic::table1_yolov2(),
            DramConfig::default(),
            64,
        );
        let light = run_memory_aware(
            timings(8),
            MemoryTraffic::table1_yolov2(),
            DramConfig::default(),
            64,
        );
        // Per *result produced*, EW-8 moves far less data. (Total bytes
        // compare less starkly because the baseline drops most frames —
        // its traffic is bounded by NNX throughput, not capture rate.)
        let per_result = |r: &MemSimReport| r.dram_bytes.0 as f64 / r.completions.len() as f64;
        assert!(
            per_result(&light) < per_result(&heavy) / 4.0,
            "EW-8 {:.1} MB/result vs baseline {:.1} MB/result",
            per_result(&light) / 1e6,
            per_result(&heavy) / 1e6
        );
    }

    #[test]
    fn faster_dram_shortens_inference() {
        let slow = run_memory_aware(
            timings(4),
            MemoryTraffic::table1_yolov2(),
            DramConfig {
                peak_bandwidth: 12.8e9,
                ..DramConfig::default()
            },
            120,
        );
        let fast = run_memory_aware(
            timings(4),
            MemoryTraffic::table1_yolov2(),
            DramConfig {
                peak_bandwidth: 51.2e9,
                ..DramConfig::default()
            },
            120,
        );
        assert!(fast.mean_inference_latency < slow.mean_inference_latency);
    }
}
