//! Frame-buffer manager: the DRAM region through which the frontend and
//! backend communicate (§2.1, §4.2).
//!
//! The manager allocates a ring of frame slots, each with a pixel section
//! and a metadata section (where the augmented ISP deposits motion
//! vectors and the MC deposits results). It is bookkeeping — addresses and
//! sizes for DMA descriptors and traffic attribution — not storage.

use euphrates_common::error::{Error, Result};
use euphrates_common::units::Bytes;

/// One frame slot's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSlot {
    /// Slot index within the ring.
    pub index: u32,
    /// Base address of the pixel section.
    pub pixel_base: u64,
    /// Pixel section size.
    pub pixel_size: Bytes,
    /// Base address of the metadata section (MVs + results).
    pub metadata_base: u64,
    /// Metadata section size.
    pub metadata_size: Bytes,
}

impl FrameSlot {
    /// Total slot footprint.
    pub fn size(&self) -> Bytes {
        self.pixel_size + self.metadata_size
    }
}

/// A ring of frame slots in DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBuffer {
    base: u64,
    slots: Vec<FrameSlot>,
    next: u64,
}

impl FrameBuffer {
    /// Allocates a ring of `depth` slots at `base`, each with the given
    /// pixel and metadata sizes (4 KiB-aligned sections).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero depth or zero pixel size.
    pub fn new(base: u64, depth: u32, pixel_size: Bytes, metadata_size: Bytes) -> Result<Self> {
        if depth == 0 {
            return Err(Error::config("frame buffer depth must be >= 1"));
        }
        if pixel_size.0 == 0 {
            return Err(Error::config("pixel section must be non-empty"));
        }
        let align = |v: u64| v.div_ceil(4096) * 4096;
        let mut slots = Vec::with_capacity(depth as usize);
        let mut cursor = base;
        for index in 0..depth {
            let pixel_base = cursor;
            let metadata_base = align(pixel_base + pixel_size.0);
            cursor = align(metadata_base + metadata_size.0);
            slots.push(FrameSlot {
                index,
                pixel_base,
                pixel_size,
                metadata_base,
                metadata_size,
            });
        }
        Ok(FrameBuffer {
            base,
            slots,
            next: 0,
        })
    }

    /// Ring depth.
    pub fn depth(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Total DRAM footprint.
    pub fn footprint(&self) -> Bytes {
        let last = self.slots.last().expect("non-empty ring");
        Bytes(last.metadata_base + last.metadata_size.0 + 4096 - self.base)
    }

    /// The slot frame `n` lands in (round-robin).
    pub fn slot_for(&self, frame: u64) -> &FrameSlot {
        &self.slots[(frame % self.slots.len() as u64) as usize]
    }

    /// Acquires the slot for the next produced frame, advancing the ring.
    pub fn produce(&mut self) -> FrameSlot {
        let slot = *self.slot_for(self.next);
        self.next += 1;
        slot
    }

    /// Frames produced so far.
    pub fn frames_produced(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_do_not_overlap_and_are_aligned() {
        let fb =
            FrameBuffer::new(0x8000_0000, 3, Bytes(1920 * 1080 * 3), Bytes(32 * 1024)).unwrap();
        for i in 0..3u64 {
            let s = fb.slot_for(i);
            assert_eq!(s.pixel_base % 4096, 0);
            assert_eq!(s.metadata_base % 4096, 0);
            assert!(s.metadata_base >= s.pixel_base + s.pixel_size.0);
        }
        let a = fb.slot_for(0);
        let b = fb.slot_for(1);
        assert!(b.pixel_base >= a.metadata_base + a.metadata_size.0);
    }

    #[test]
    fn ring_wraps_round_robin() {
        let mut fb = FrameBuffer::new(0, 2, Bytes(4096), Bytes(4096)).unwrap();
        let s0 = fb.produce();
        let s1 = fb.produce();
        let s2 = fb.produce();
        assert_eq!(s0.index, 0);
        assert_eq!(s1.index, 1);
        assert_eq!(s2.index, 0, "wraps after depth");
        assert_eq!(fb.frames_produced(), 3);
    }

    #[test]
    fn footprint_covers_all_slots() {
        let fb = FrameBuffer::new(0, 4, Bytes::from_mib(6), Bytes::from_kib(32)).unwrap();
        // 4 slots x ~6 MiB plus alignment.
        assert!(fb.footprint().as_mib_f64() > 24.0);
        assert!(fb.footprint().as_mib_f64() < 26.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FrameBuffer::new(0, 0, Bytes(4096), Bytes(0)).is_err());
        assert!(FrameBuffer::new(0, 2, Bytes(0), Bytes(0)).is_err());
    }
}
