//! Energy accounting: per-IP ledger and the frontend/memory/backend/CPU
//! breakdown used by Fig. 9b and Fig. 10b.

use euphrates_common::units::{MilliJoules, Picos};
use std::fmt;

/// The SoC blocks the ledger distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpBlock {
    /// Camera sensor (frontend).
    Sensor,
    /// Image signal processor (frontend).
    Isp,
    /// CNN accelerator (backend).
    Nnx,
    /// Motion controller (backend).
    Mc,
    /// Main memory.
    Dram,
    /// Host CPU (only charged when the scheme involves it).
    Cpu,
}

impl IpBlock {
    /// All blocks, in display order.
    pub const ALL: [IpBlock; 6] = [
        IpBlock::Sensor,
        IpBlock::Isp,
        IpBlock::Nnx,
        IpBlock::Mc,
        IpBlock::Dram,
        IpBlock::Cpu,
    ];

    fn index(self) -> usize {
        match self {
            IpBlock::Sensor => 0,
            IpBlock::Isp => 1,
            IpBlock::Nnx => 2,
            IpBlock::Mc => 3,
            IpBlock::Dram => 4,
            IpBlock::Cpu => 5,
        }
    }
}

impl fmt::Display for IpBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpBlock::Sensor => "sensor",
            IpBlock::Isp => "isp",
            IpBlock::Nnx => "nnx",
            IpBlock::Mc => "mc",
            IpBlock::Dram => "dram",
            IpBlock::Cpu => "cpu",
        };
        f.write_str(s)
    }
}

/// Accumulated energy per IP block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    energies: [MilliJoules; 6],
}

impl EnergyLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds energy to a block.
    pub fn add(&mut self, block: IpBlock, energy: MilliJoules) {
        self.energies[block.index()] += energy;
    }

    /// Energy of one block.
    pub fn of(&self, block: IpBlock) -> MilliJoules {
        self.energies[block.index()]
    }

    /// Total energy.
    pub fn total(&self) -> MilliJoules {
        self.energies.iter().copied().sum()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for b in IpBlock::ALL {
            self.add(b, other.of(b));
        }
    }

    /// Scales all entries (e.g. to per-frame values).
    #[must_use]
    pub fn scaled(&self, k: f64) -> EnergyLedger {
        let mut out = *self;
        for e in &mut out.energies {
            *e = *e * k;
        }
        out
    }

    /// The figure-style grouping: frontend (sensor + ISP), memory (DRAM),
    /// backend (NNX + MC), CPU.
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            frontend: self.of(IpBlock::Sensor) + self.of(IpBlock::Isp),
            memory: self.of(IpBlock::Dram),
            backend: self.of(IpBlock::Nnx) + self.of(IpBlock::Mc),
            cpu: self.of(IpBlock::Cpu),
        }
    }
}

/// The Fig. 9b / Fig. 10b energy grouping.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Sensor + ISP.
    pub frontend: MilliJoules,
    /// DRAM.
    pub memory: MilliJoules,
    /// NNX + motion controller.
    pub backend: MilliJoules,
    /// Host CPU (zero for autonomous schemes).
    pub cpu: MilliJoules,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> MilliJoules {
        self.frontend + self.memory + self.backend + self.cpu
    }

    /// This breakdown normalized to another's total (the figures' y-axis).
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> NormalizedBreakdown {
        let t = baseline.total().0;
        let n = |v: MilliJoules| if t <= 0.0 { 0.0 } else { v.0 / t };
        NormalizedBreakdown {
            frontend: n(self.frontend),
            memory: n(self.memory),
            backend: n(self.backend),
            cpu: n(self.cpu),
        }
    }

    /// Average power over `span`.
    pub fn average_power(&self, span: Picos) -> euphrates_common::units::MilliWatts {
        self.total().average_power(span)
    }
}

/// A breakdown expressed as fractions of a baseline total.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NormalizedBreakdown {
    /// Frontend fraction.
    pub frontend: f64,
    /// Memory fraction.
    pub memory: f64,
    /// Backend fraction.
    pub backend: f64,
    /// CPU fraction.
    pub cpu: f64,
}

impl NormalizedBreakdown {
    /// Sum of all fractions (1.0 when normalizing a baseline to itself).
    pub fn total(&self) -> f64 {
        self.frontend + self.memory + self.backend + self.cpu
    }

    /// Energy saving vs. the baseline (`1 − total`).
    pub fn saving(&self) -> f64 {
        1.0 - self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_totals() {
        let mut l = EnergyLedger::new();
        l.add(IpBlock::Nnx, MilliJoules(40.0));
        l.add(IpBlock::Nnx, MilliJoules(2.0));
        l.add(IpBlock::Dram, MilliJoules(25.0));
        l.add(IpBlock::Sensor, MilliJoules(3.0));
        l.add(IpBlock::Isp, MilliJoules(3.0));
        assert!((l.of(IpBlock::Nnx).0 - 42.0).abs() < 1e-12);
        assert!((l.total().0 - 73.0).abs() < 1e-12);
        let b = l.breakdown();
        assert!((b.frontend.0 - 6.0).abs() < 1e-12);
        assert!((b.backend.0 - 42.0).abs() < 1e-12);
        assert!((b.memory.0 - 25.0).abs() < 1e-12);
        assert_eq!(b.cpu.0, 0.0);
    }

    #[test]
    fn breakdown_totals_equal_ledger_total() {
        let mut l = EnergyLedger::new();
        for (i, b) in IpBlock::ALL.iter().enumerate() {
            l.add(*b, MilliJoules(i as f64 + 1.0));
        }
        assert!((l.breakdown().total().0 - l.total().0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let baseline = EnergyBreakdown {
            frontend: MilliJoules(10.0),
            memory: MilliJoules(30.0),
            backend: MilliJoules(60.0),
            cpu: MilliJoules(0.0),
        };
        let scheme = EnergyBreakdown {
            frontend: MilliJoules(10.0),
            memory: MilliJoules(15.0),
            backend: MilliJoules(20.0),
            cpu: MilliJoules(0.0),
        };
        let n = scheme.normalized_to(&baseline);
        assert!((n.total() - 0.45).abs() < 1e-12);
        assert!((n.saving() - 0.55).abs() < 1e-12);
        let self_n = baseline.normalized_to(&baseline);
        assert!((self_n.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = EnergyLedger::new();
        a.add(IpBlock::Cpu, MilliJoules(8.0));
        let mut b = EnergyLedger::new();
        b.add(IpBlock::Cpu, MilliJoules(2.0));
        a.merge(&b);
        assert!((a.of(IpBlock::Cpu).0 - 10.0).abs() < 1e-12);
        let half = a.scaled(0.5);
        assert!((half.of(IpBlock::Cpu).0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalizing_to_zero_baseline_is_zero() {
        let z = EnergyBreakdown::default();
        let n = z.normalized_to(&z);
        assert_eq!(n.total(), 0.0);
    }
}
