//! Integration: the ISP's block matcher run on *rendered* scene frames must
//! recover object motion — the end-to-end premise of the Euphrates paper's
//! frontend (camera → ISP → motion vectors).

use euphrates_camera::scene::{SceneBuilder, SceneObject};
use euphrates_camera::sprite::{Shape, Sprite};
use euphrates_camera::texture::Texture;
use euphrates_camera::trajectory::{Profile, Trajectory};
use euphrates_common::geom::Vec2f;
use euphrates_common::image::{rgb_to_luma, Resolution};
use euphrates_isp::motion::{BlockMatcher, SearchStrategy};
use proptest::prelude::*;

fn moving_object_scene(velocity: Vec2f, seed: u64) -> euphrates_camera::scene::Scene {
    let res = Resolution::new(160, 120);
    SceneBuilder::new(res, seed)
        .object(SceneObject {
            id: 0,
            label: 1,
            sprite: Sprite::rigid(
                48.0,
                40.0,
                Shape::Rectangle,
                Texture::object_noise(seed + 7),
            ),
            trajectory: Trajectory::Linear {
                start: Vec2f::new(50.0, 60.0),
                velocity,
            },
            scale: Profile::one(),
            rotation: Profile::zero(),
            aspect: Profile::one(),
            z: 1,
            enter_frame: 0.0,
            exit_frame: f64::INFINITY,
            tracked: true,
        })
        .build()
}

/// Average motion vector over the blocks covered by the object's box.
fn object_motion(
    scene: &euphrates_camera::scene::Scene,
    frame: u32,
    strategy: SearchStrategy,
) -> (f64, f64) {
    let mut renderer = scene.renderer();
    let prev = renderer.render(frame - 1);
    let cur = renderer.render(frame);
    let matcher = BlockMatcher::new(16, 7, strategy).unwrap();
    let field = matcher
        .estimate(&rgb_to_luma(&cur.rgb), &rgb_to_luma(&prev.rgb))
        .unwrap();
    // Shrink the ROI slightly so edge blocks (half background) don't dilute
    // the average.
    let roi = cur.truth[0].rect.scaled_about_center(0.7);
    let mut sum = (0.0, 0.0);
    let mut n = 0;
    for (_, _, mv) in field.blocks_in_roi(&roi) {
        sum.0 += f64::from(mv.v.x);
        sum.1 += f64::from(mv.v.y);
        n += 1;
    }
    assert!(n > 0, "ROI must cover at least one block");
    (sum.0 / f64::from(n), sum.1 / f64::from(n))
}

#[test]
fn block_matching_recovers_object_velocity_from_rendered_frames() {
    for (vx, vy) in [(2.0, 0.0), (0.0, 3.0), (-3.0, 2.0)] {
        let scene = moving_object_scene(Vec2f::new(vx, vy), 11);
        let (mx, my) = object_motion(&scene, 10, SearchStrategy::Exhaustive);
        assert!(
            (mx - vx).abs() < 1.0 && (my - vy).abs() < 1.0,
            "velocity ({vx},{vy}) estimated as ({mx:.2},{my:.2})"
        );
    }
}

#[test]
fn tss_and_es_agree_on_rendered_scenes() {
    let scene = moving_object_scene(Vec2f::new(3.0, -2.0), 13);
    let es = object_motion(&scene, 8, SearchStrategy::Exhaustive);
    let tss = object_motion(&scene, 8, SearchStrategy::ThreeStep);
    assert!(
        (es.0 - tss.0).abs() < 1.0 && (es.1 - tss.1).abs() < 1.0,
        "ES {es:?} vs TSS {tss:?}"
    );
}

#[test]
fn background_blocks_report_near_zero_motion() {
    let scene = moving_object_scene(Vec2f::new(3.0, 0.0), 17);
    let mut renderer = scene.renderer();
    let prev = renderer.render(4);
    let cur = renderer.render(5);
    let matcher = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
    let field = matcher
        .estimate(&rgb_to_luma(&cur.rgb), &rgb_to_luma(&prev.rgb))
        .unwrap();
    // Far corner away from the object: static background. Per-frame pixel
    // noise (sigma 2.0) can make a 1-px shift win the SAD race on flat
    // content, so "near zero" tolerates a single pixel of jitter.
    let mv = field.at_block(field.blocks_x() - 1, field.blocks_y() - 1);
    assert!(mv.v.norm_sq() <= 1, "background moved: {:?}", mv.v);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn recovered_motion_tracks_velocity_within_search_range(
        vx in -5.0f64..5.0,
        vy in -5.0f64..5.0,
        seed in 0u64..50,
    ) {
        let scene = moving_object_scene(Vec2f::new(vx, vy), seed);
        let (mx, my) = object_motion(&scene, 6, SearchStrategy::Exhaustive);
        // Block-granular estimates of sub-pixel motion can be off by <1 px.
        prop_assert!((mx - vx).abs() <= 1.5, "vx {vx} got {mx}");
        prop_assert!((my - vy).abs() <= 1.5, "vy {vy} got {my}");
    }
}
