//! Property tests for the pluggable motion-search engines: every
//! strategy must (a) never return a match worse than the zero vector,
//! (b) recover pure global translation within its search range, and
//! (c) stay within its declared probe-budget cost model — the contract
//! that keeps new strategies honest about their compute claims
//! (ISSUE 2 satellites; acceptance: Diamond/Hierarchical match
//! exhaustive on translations at ≥5× fewer measured probes).

use euphrates_common::image::LumaFrame;
use euphrates_common::rngx;
use euphrates_isp::motion::{BlockMatcher, CachedPlanes, RowPrefix, SearchStrategy};
use proptest::prelude::*;
use rand::Rng;

/// A textured frame that block matching can lock onto.
fn textured(width: u32, height: u32, seed: u64) -> LumaFrame {
    let mut f = LumaFrame::new(width, height).unwrap();
    for y in 0..height {
        for x in 0..width {
            let v = (rngx::lattice_hash(seed, i64::from(x / 4), i64::from(y / 4)) * 255.0) as u8;
            f.set(x, y, v);
        }
    }
    f
}

/// Shifts frame content by (dx, dy) with clamped edges.
fn shifted(src: &LumaFrame, dx: i32, dy: i32) -> LumaFrame {
    let mut out = LumaFrame::new(src.width(), src.height()).unwrap();
    for y in 0..src.height() {
        for x in 0..src.width() {
            out.set(
                x,
                y,
                src.at_clamped(i64::from(x) - i64::from(dx), i64::from(y) - i64::from(dy)),
            );
        }
    }
    out
}

/// SAD of the co-located (zero-offset) blocks — the bound no strategy may
/// exceed, computed independently of the search machinery.
fn zero_vector_sad(cur: &LumaFrame, prev: &LumaFrame, x0: u32, y0: u32, bw: u32, bh: u32) -> u32 {
    let mut sad = 0u32;
    for y in y0..y0 + bh {
        for x in x0..x0 + bw {
            sad += u32::from(cur.at(x, y).abs_diff(prev.at(x, y)));
        }
    }
    sad
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SWAR SAD micro-kernel must be bit-identical to a scalar
    /// per-pixel reference over arbitrary blocks — partial edge blocks
    /// and clamped-edge reference reads included. The reference
    /// evaluates every candidate in full (no early exit) with the
    /// row-major first-wins tie-break, which the engine's total-order
    /// tie-break (SAD, |v|², then (vy, vx)) reproduces exactly, so any
    /// kernel or walk divergence shows up as a field mismatch.
    #[test]
    fn swar_sad_kernel_bit_matches_scalar_reference(
        seed_a in 0u64..500,
        seed_b in 0u64..500,
        w in 33u32..90,
        h in 25u32..70,
        dx in -9i32..=9,
        dy in -9i32..=9,
    ) {
        let prev = textured(w, h, seed_a);
        let cur = shifted(&textured(w, h, seed_b), dx, dy);
        let (mb, d) = (16u32, 7i32);
        let m = BlockMatcher::new(mb, d as u32, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        for by in 0..field.blocks_y() {
            for bx in 0..field.blocks_x() {
                let x0 = bx * mb;
                let y0 = by * mb;
                let bw = (w - x0).min(mb);
                let bh = (h - y0).min(mb);
                // Scalar reference: full SAD of every window offset,
                // per-pixel clamped reads, row-major first-wins.
                let mut best: Option<(u32, i32, i32)> = None;
                for vy in -d..=d {
                    for vx in -d..=d {
                        let mut sad = 0u32;
                        for row in 0..bh {
                            for col in 0..bw {
                                let a = cur.at(x0 + col, y0 + row);
                                let b = prev.at_clamped(
                                    i64::from(x0 + col) - i64::from(vx),
                                    i64::from(y0 + row) - i64::from(vy),
                                );
                                sad += u32::from(a.abs_diff(b));
                            }
                        }
                        let better = match best {
                            None => true,
                            Some((bs, bx_, by_)) => {
                                sad < bs
                                    || (sad == bs
                                        && vx * vx + vy * vy < bx_ * bx_ + by_ * by_)
                            }
                        };
                        if better {
                            best = Some((sad, vx, vy));
                        }
                    }
                }
                let (ref_sad, ref_vx, ref_vy) = best.unwrap();
                let mv = field.at_block(bx, by);
                prop_assert_eq!(
                    (mv.sad, i32::from(mv.v.x), i32::from(mv.v.y)),
                    (ref_sad, ref_vx, ref_vy),
                    "block ({}, {}) of {}x{} shift ({},{})", bx, by, w, h, dx, dy
                );
            }
        }
    }

    /// Pyramid-cached hierarchical search must return exactly the
    /// motion vectors (and measured effort) of the per-call pyramid it
    /// replaces, on arbitrary content — including frames whose halved
    /// dimensions are odd.
    #[test]
    fn pyramid_cached_hierarchical_matches_per_call(
        seed_a in 0u64..500,
        w in 33u32..101,
        h in 25u32..81,
        dx in -7i32..=7,
        dy in -7i32..=7,
    ) {
        let prev = textured(w, h, seed_a);
        let cur = shifted(&prev, dx, dy);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Hierarchical).unwrap();
        prop_assert!(m.wants_pyramid());
        let (per_call, per_call_stats) = m.estimate_with_stats(&cur, &prev).unwrap();
        let ccur = euphrates_common::image::downsample2(&cur);
        let cprev = euphrates_common::image::downsample2(&prev);
        let (cached, cached_stats) =
            m.estimate_with_pyramid(&cur, &prev, &ccur, &cprev).unwrap();
        prop_assert_eq!(per_call, cached);
        prop_assert_eq!(per_call_stats, cached_stats);
        // Mis-shaped coarse planes are rejected, not silently accepted.
        prop_assert!(m.estimate_with_pyramid(&cur, &prev, &prev, &cprev).is_err());
        // Strategies that never consult the pyramid ignore it.
        let es = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        prop_assert!(!es.wants_pyramid());
        let (a, _) = es.estimate_with_pyramid(&cur, &prev, &ccur, &cprev).unwrap();
        prop_assert_eq!(a, es.estimate(&cur, &prev).unwrap());
    }

    /// The SAD lower-bound prefilter must be a pure optimization: on
    /// arbitrary noisy content — partial edge blocks and clamped-edge
    /// candidates included — every strategy returns a bit-identical
    /// motion field with a bit-identical measured probe count whether
    /// the prefilter is on or off (a rejected candidate is charged
    /// exactly like the evaluation it replaced). Only `sad_ops` (work
    /// actually done) and `lb_skips` (rejections) may differ, and a
    /// caller-cached [`RowPrefix`] must behave exactly like the
    /// internally built one.
    #[test]
    fn prefiltered_search_bit_matches_unfiltered(
        seed in 0u64..1000,
        w in 33u32..101,
        h in 25u32..81,
        dx in -7i32..=7,
        dy in -7i32..=7,
    ) {
        let prev = textured(w, h, seed);
        let mut cur = shifted(&prev, dx, dy);
        let mut rng = rngx::derived_rng(seed, 1, 2);
        for px in cur.samples_mut() {
            let noise: i16 = rng.gen_range(-6..=6);
            *px = (i16::from(*px) + noise).clamp(0, 255) as u8;
        }
        let prefix = RowPrefix::build(&prev);
        for strategy in SearchStrategy::BUILTIN {
            let off = BlockMatcher::new(16, 7, strategy).unwrap();
            prop_assert!(!off.prefilter());
            let on = off.with_prefilter(true);
            let (f_on, s_on) = on.estimate_with_stats(&cur, &prev).unwrap();
            let (f_off, s_off) = off.estimate_with_stats(&cur, &prev).unwrap();
            prop_assert_eq!(&f_on, &f_off, "{:?} field diverged", strategy);
            prop_assert_eq!(s_on.blocks, s_off.blocks);
            prop_assert_eq!(
                s_on.probes, s_off.probes,
                "{:?}: probe count not invariant under the prefilter", strategy
            );
            prop_assert_eq!(s_off.lb_skips, 0);
            prop_assert!(s_on.sad_ops <= s_off.sad_ops);
            // A caller-cached prefix table is the same computation.
            let (f_cached, s_cached) = on
                .estimate_cached(
                    &cur,
                    &prev,
                    CachedPlanes { prefix_prev: Some(&prefix), ..CachedPlanes::default() },
                )
                .unwrap();
            prop_assert_eq!(&f_on, &f_cached, "{:?} cached-prefix field diverged", strategy);
            prop_assert_eq!(s_on, s_cached);
        }
        // Mis-shaped prefix tables are rejected, not silently accepted.
        let wrong = RowPrefix::build(&textured(w + 1, h, seed));
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        prop_assert!(m
            .estimate_cached(
                &cur,
                &prev,
                CachedPlanes { prefix_prev: Some(&wrong), ..CachedPlanes::default() },
            )
            .is_err());
    }

    /// (a) No strategy may return a SAD worse than the zero vector, on
    /// any content — including uncorrelated frames where search can only
    /// flail.
    #[test]
    fn no_strategy_is_worse_than_the_zero_vector(
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
        dx in -9i32..=9,
        dy in -9i32..=9,
    ) {
        let prev = textured(80, 64, seed_a);
        let moved = shifted(&textured(80, 64, seed_b), dx, dy);
        for strategy in SearchStrategy::BUILTIN {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let field = m.estimate(&moved, &prev).unwrap();
            for by in 0..field.blocks_y() {
                for bx in 0..field.blocks_x() {
                    let x0 = bx * 16;
                    let y0 = by * 16;
                    let bw = (80 - x0).min(16);
                    let bh = (64 - y0).min(16);
                    let bound = zero_vector_sad(&moved, &prev, x0, y0, bw, bh);
                    prop_assert!(
                        field.at_block(bx, by).sad <= bound,
                        "{strategy:?} block ({bx},{by}): sad {} > zero-vector bound {bound}",
                        field.at_block(bx, by).sad
                    );
                }
            }
        }
    }

    /// (b) Every strategy recovers a pure global translation exactly on
    /// interior blocks, within its reliable envelope: exhaustive anywhere
    /// in the window, the fixed-shape walks (TSS, hierarchical) up to
    /// |shift|∞ = 4, diamond (which trades large-motion reach for the
    /// lowest probe count on smooth motion) up to |shift|∞ = 3. The
    /// envelopes were measured by scanning every shift in the ±7 window
    /// over 20 textures: the first heuristic misses appear at magnitude
    /// 6 (TSS, hierarchical) and 4 (diamond).
    #[test]
    fn every_strategy_recovers_global_translation(
        seed in 0u64..1000,
        dx in -7i32..=7,
        dy in -7i32..=7,
    ) {
        let prev = textured(96, 96, seed);
        let cur = shifted(&prev, dx, dy);
        let mag = dx.abs().max(dy.abs());
        for strategy in SearchStrategy::BUILTIN {
            let envelope = match strategy {
                SearchStrategy::Exhaustive => 7,
                SearchStrategy::Diamond => 3,
                _ => 4,
            };
            if mag > envelope {
                continue;
            }
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            let mv = field.at_block(2, 2);
            prop_assert_eq!(
                (i32::from(mv.v.x), i32::from(mv.v.y)),
                (dx, dy),
                "{:?} missed shift ({},{})", strategy, dx, dy
            );
            prop_assert_eq!(mv.sad, 0);
        }
    }

    /// (c) Measured probe counts stay within each strategy's declared
    /// budget: the model is an upper bound that adaptive walks never
    /// exceed, and it is tight enough to be meaningful (walks use at
    /// least a quarter of it; exhaustive uses it exactly).
    #[test]
    fn measured_probes_stay_within_the_cost_model(
        seed in 0u64..1000,
        dx in -7i32..=7,
        dy in -7i32..=7,
        d in 3u32..=9,
    ) {
        let prev = textured(96, 96, seed);
        let cur = shifted(&prev, dx, dy);
        for strategy in SearchStrategy::BUILTIN {
            let m = BlockMatcher::new(16, d, strategy).unwrap();
            let (_, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
            let budget = stats.blocks * strategy.probes_per_block(d);
            prop_assert!(
                stats.probes <= budget,
                "{strategy:?} at d={d}: measured {} probes exceed budget {budget}",
                stats.probes
            );
            match strategy {
                // Exhaustive probes every window offset exactly once.
                SearchStrategy::Exhaustive => {
                    prop_assert_eq!(stats.probes, budget);
                }
                // Diamond's budget is a worst-case walk bound; the
                // honest floor is its fixed pattern cost (center + LDSP
                // + SDSP).
                SearchStrategy::Diamond => {
                    prop_assert!(stats.probes >= 13 * stats.blocks);
                }
                // The fixed-shape walks track their model tightly.
                _ => {
                    prop_assert!(
                        4 * stats.probes >= budget,
                        "{strategy:?} at d={d}: measured {} probes, budget {budget} is not tight",
                        stats.probes
                    );
                }
            }
        }
    }
}

/// Acceptance: on global translations the cheap searches agree with
/// exhaustive on interior blocks while measuring ≥5× fewer probes.
#[test]
fn diamond_and_hierarchical_match_exhaustive_at_5x_fewer_probes() {
    let prev = textured(128, 128, 77);
    let es = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
    for (dx, dy) in [(2, 1), (-3, 2), (0, -3), (3, 3), (-2, -2)] {
        let cur = shifted(&prev, dx, dy);
        let (ref_field, ref_stats) = es.estimate_with_stats(&cur, &prev).unwrap();
        for strategy in [SearchStrategy::Diamond, SearchStrategy::Hierarchical] {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let (field, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
            // Interior blocks (clamped edges excluded) agree exactly.
            for by in 2..6 {
                for bx in 2..6 {
                    assert_eq!(
                        field.at_block(bx, by).v,
                        ref_field.at_block(bx, by).v,
                        "{strategy:?} block ({bx},{by}) shift ({dx},{dy})"
                    );
                }
            }
            assert!(
                stats.probes * 5 <= ref_stats.probes,
                "{strategy:?} shift ({dx},{dy}): {} probes vs exhaustive {} — less than 5x saving",
                stats.probes,
                ref_stats.probes
            );
        }
    }
}

/// Acceptance: the lower-bound prefilter resolves a substantial share
/// of probes without pixel work on realistic (textured + sensor-noise)
/// content, for both the exhaustive walk and the hierarchical pyramid
/// walk (whose coarse probes go through the coarse prefix table) — and
/// the fully cached-planes streaming path is the same computation.
///
/// The thresholds are strategy-specific because the walks differ in
/// how separable their candidates are: the exhaustive ring walk spends
/// most probes on far-off losers the bound rejects outright (measured
/// 65 % skipped here, 91 % on rendered noisy VGA), while the
/// hierarchical fine pass probes a coarse-seeded neighborhood whose
/// candidates are all near-winners (measured 20 % here, 58 % on
/// rendered VGA). Content and engine are deterministic, so the
/// measured counts are exact; the asserted floors leave ≥1.3× slack.
#[test]
fn prefilter_skips_substantially_on_noisy_content() {
    let prev = textured(128, 96, 55);
    let mut cur = shifted(&prev, 3, -2);
    let mut rng = rngx::derived_rng(55, 3, 4);
    for px in cur.samples_mut() {
        let noise: i16 = rng.gen_range(-5..=5);
        *px = (i16::from(*px) + noise).clamp(0, 255) as u8;
    }
    for (strategy, denom) in [
        (SearchStrategy::Exhaustive, 2),
        (SearchStrategy::Hierarchical, 8),
    ] {
        let m = BlockMatcher::new(16, 7, strategy)
            .unwrap()
            .with_prefilter(true);
        let (_, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
        assert!(
            stats.lb_skips * denom >= stats.probes,
            "{strategy:?}: only {} of {} probes prefilter-skipped",
            stats.lb_skips,
            stats.probes
        );
    }
    // The streaming shape: every derived plane caller-cached at once.
    let m = BlockMatcher::new(16, 7, SearchStrategy::Hierarchical)
        .unwrap()
        .with_prefilter(true);
    let (ccur, cprev) = (
        euphrates_common::image::downsample2(&cur),
        euphrates_common::image::downsample2(&prev),
    );
    let (prefix, cprefix) = (RowPrefix::build(&prev), RowPrefix::build(&cprev));
    let (cached_field, cached_stats) = m
        .estimate_cached(
            &cur,
            &prev,
            CachedPlanes {
                pyramid: Some((&ccur, &cprev)),
                prefix_prev: Some(&prefix),
                coarse_prefix_prev: Some(&cprefix),
            },
        )
        .unwrap();
    let (field, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
    assert_eq!(field, cached_field);
    assert_eq!(stats, cached_stats);
    // A coarse prefix without its pyramid is rejected.
    assert!(m
        .estimate_cached(
            &cur,
            &prev,
            CachedPlanes {
                coarse_prefix_prev: Some(&cprefix),
                ..CachedPlanes::default()
            },
        )
        .is_err());
}

/// The TSS cost-model satellite: the reported budget tracks the probes
/// the walk actually performs (within tolerance), at every range — the
/// historical closed form drifted at ranges that are not 2^k − 1.
#[test]
fn tss_model_matches_measured_probes_within_tolerance() {
    let prev = textured(96, 96, 31);
    let cur = shifted(&prev, 3, -2);
    for d in [1u32, 3, 4, 7, 10, 15] {
        let m = BlockMatcher::new(16, d, SearchStrategy::ThreeStep).unwrap();
        let (_, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
        let model = SearchStrategy::ThreeStep.probes_per_block(d) as f64;
        let measured = stats.probes_per_block();
        assert!(
            measured <= model && measured >= 0.6 * model,
            "d={d}: measured {measured:.1} probes/block vs model {model}"
        );
    }
}
