//! Property tests for the motion-source extensions: predictive search,
//! raw-domain matching, and frame interpolation.

use euphrates_common::geom::Vec2i;
use euphrates_common::image::{BayerFrame, LumaFrame};
use euphrates_common::rngx;
use euphrates_isp::interpolate::{mc_interpolate, mean_abs_error};
use euphrates_isp::motion::{BlockMatcher, SearchStrategy};
use euphrates_isp::predictive::PredictiveBlockMatcher;
use euphrates_isp::raw_motion::RawBlockMatcher;
use proptest::prelude::*;

fn textured(shift: (i64, i64), seed: u64) -> LumaFrame {
    let mut f = LumaFrame::new(96, 96).unwrap();
    for y in 0..96 {
        for x in 0..96 {
            let v = (rngx::lattice_hash(
                seed,
                (i64::from(x) - shift.0) / 4,
                (i64::from(y) - shift.1) / 4,
            ) * 255.0) as u8;
            f.set(x, y, v);
        }
    }
    f
}

fn bayer_textured(shift: (i64, i64), seed: u64) -> BayerFrame {
    let mut f = BayerFrame::new(96, 96).unwrap();
    for y in 0..96 {
        for x in 0..96 {
            let v = (rngx::lattice_hash(
                seed,
                (i64::from(x) - shift.0) / 4,
                (i64::from(y) - shift.1) / 4,
            ) * 255.0) as u8;
            f.set(x, y, v);
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn predictive_matches_plain_on_in_window_motion(
        dx in -6i64..=6,
        dy in -6i64..=6,
        seed in 0u64..20,
    ) {
        let prev = textured((0, 0), seed);
        let cur = textured((dx, dy), seed);
        let plain = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let mut pred = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let fp = plain.estimate(&cur, &prev).unwrap();
        let fq = pred.estimate(&cur, &prev).unwrap();
        // With a zero predictor (first frame), the two are equivalent on
        // interior blocks.
        for by in 1..fp.blocks_y() - 1 {
            for bx in 1..fp.blocks_x() - 1 {
                prop_assert_eq!(fp.at_block(bx, by).v, fq.at_block(bx, by).v);
            }
        }
    }

    #[test]
    fn global_predictor_is_equivalent_to_shifted_search(
        dx in -20i64..=20,
        seed in 0u64..10,
    ) {
        let prev = textured((0, 0), seed);
        let cur = textured((dx, 0), seed);
        let pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = pm
            .estimate_with_global_predictor(&cur, &prev, Vec2i::new(dx as i16, 0))
            .unwrap();
        // With the true motion as predictor, interior blocks recover it
        // exactly regardless of magnitude.
        let mv = field.at_block(2, 2);
        prop_assert_eq!(i64::from(mv.v.x), dx);
        prop_assert_eq!(mv.v.y, 0);
    }

    #[test]
    fn raw_and_rgb_paths_agree_on_even_motion(
        dx in -3i64..=3,
        dy in -3i64..=3,
        seed in 0u64..10,
    ) {
        let (dx, dy) = (dx * 2, dy * 2); // raw path resolves even offsets
        let rgb = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let raw = RawBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let f_rgb = rgb
            .estimate(&textured((dx, dy), seed), &textured((0, 0), seed))
            .unwrap();
        let f_raw = raw
            .estimate(&bayer_textured((dx, dy), seed), &bayer_textured((0, 0), seed))
            .unwrap();
        let a = f_rgb.at_block(2, 2).v;
        let b = f_raw.at_block(2, 2).v;
        prop_assert!((i32::from(a.x) - i32::from(b.x)).abs() <= 2, "{a:?} vs {b:?}");
        prop_assert!((i32::from(a.y) - i32::from(b.y)).abs() <= 2, "{a:?} vs {b:?}");
    }

    #[test]
    fn interpolation_error_is_bounded_by_endpoint_distance(
        dx in -6i64..=6,
        t in 0.0f64..=1.0,
        seed in 0u64..10,
    ) {
        let prev = textured((0, 0), seed);
        let cur = textured((dx, 0), seed);
        let field = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive)
            .unwrap()
            .estimate(&cur, &prev)
            .unwrap();
        let mid = mc_interpolate(&prev, &cur, &field, t, 0.5).unwrap();
        // The interpolant is at least as close to its nearer endpoint as
        // the endpoints are to each other (plus block-rounding slack).
        // (The distance to the *farther* endpoint may legitimately exceed
        // d_endpoints near t = 0 or t = 1 by a rounding margin.)
        let d_endpoints = mean_abs_error(&prev, &cur);
        let d_prev = mean_abs_error(&mid, &prev);
        let d_cur = mean_abs_error(&mid, &cur);
        prop_assert!(
            d_prev.min(d_cur) <= d_endpoints + 1.0,
            "nearer-endpoint distance {} vs endpoint gap {}",
            d_prev.min(d_cur),
            d_endpoints
        );
    }
}
