//! Motion-compensated frame interpolation — one of the motion-consuming
//! ISP algorithms of §2.2 ("frame upsampling can artificially increase the
//! frame rate by interpolating new frames between successive real frames
//! based on object motion").
//!
//! Included both for ISP-substrate completeness and because it shares the
//! exact data Euphrates exports: given the motion field between two real
//! frames, an intermediate frame at phase `t ∈ (0, 1)` is synthesized by
//! splatting each block along its (scaled) motion vector, with a
//! confidence-gated fallback to plain blending — the same Equ. 2 signal
//! the extrapolation engine uses.

use crate::motion::MotionField;
use euphrates_common::error::{Error, Result};
use euphrates_common::image::LumaFrame;

/// Synthesizes the frame at phase `t` (0 = `prev`, 1 = `cur`).
///
/// Blocks whose confidence exceeds `confidence_floor` are motion-
/// compensated (each output pixel samples `prev` forward along `t·v` and
/// `cur` backward along `(1−t)·v`, blended by phase); low-confidence
/// blocks fall back to a plain temporal blend, which degrades gracefully
/// instead of tearing.
///
/// # Errors
///
/// Returns shape errors if the frames or the field disagree in size, and
/// [`Error::InvalidConfig`] if `t` is outside `[0, 1]`.
pub fn mc_interpolate(
    prev: &LumaFrame,
    cur: &LumaFrame,
    field: &MotionField,
    t: f64,
    confidence_floor: f64,
) -> Result<LumaFrame> {
    if !prev.same_shape(cur) {
        return Err(Error::shape("frames differ in size"));
    }
    if field.resolution().width != cur.width() || field.resolution().height != cur.height() {
        return Err(Error::shape("motion field does not match the frames"));
    }
    if !(0.0..=1.0).contains(&t) {
        return Err(Error::config(format!("phase {t} outside [0, 1]")));
    }
    let mut out = LumaFrame::new(cur.width(), cur.height())?;
    for by in 0..field.blocks_y() {
        for bx in 0..field.blocks_x() {
            let mv = field.at_block(bx, by);
            let conf = field.confidence(bx, by);
            let rect = field.block_rect(bx, by);
            let (x0, y0) = (rect.x as u32, rect.y as u32);
            let (bw, bh) = (rect.w as u32, rect.h as u32);
            let compensate = conf >= confidence_floor;
            // Forward/backward fractional offsets, rounded per block.
            let fwd = (
                (f64::from(mv.v.x) * t).round() as i64,
                (f64::from(mv.v.y) * t).round() as i64,
            );
            let bwd = (
                (f64::from(mv.v.x) * (1.0 - t)).round() as i64,
                (f64::from(mv.v.y) * (1.0 - t)).round() as i64,
            );
            for dy in 0..bh {
                for dx in 0..bw {
                    let (x, y) = (x0 + dx, y0 + dy);
                    let (a, b) = if compensate {
                        (
                            prev.at_clamped(i64::from(x) - fwd.0, i64::from(y) - fwd.1),
                            cur.at_clamped(i64::from(x) + bwd.0, i64::from(y) + bwd.1),
                        )
                    } else {
                        (prev.at(x, y), cur.at(x, y))
                    };
                    let v = f64::from(a) * (1.0 - t) + f64::from(b) * t;
                    out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
                }
            }
        }
    }
    Ok(out)
}

/// Mean absolute error between two frames (used to score interpolation
/// quality in tests and benches).
pub fn mean_abs_error(a: &LumaFrame, b: &LumaFrame) -> f64 {
    assert!(a.same_shape(b), "MAE requires equal shapes");
    let sum: u64 = a
        .samples()
        .iter()
        .zip(b.samples())
        .map(|(x, y)| u64::from(x.abs_diff(*y)))
        .sum();
    sum as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{BlockMatcher, SearchStrategy};
    use euphrates_common::rngx;

    fn textured(shift: i64, seed: u64) -> LumaFrame {
        let mut f = LumaFrame::new(96, 96).unwrap();
        for y in 0..96 {
            for x in 0..96 {
                let v = (rngx::lattice_hash(seed, (i64::from(x) - shift) / 5, i64::from(y) / 5)
                    * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    #[test]
    fn endpoints_reproduce_the_inputs() {
        let prev = textured(0, 1);
        let cur = textured(6, 1);
        let field = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive)
            .unwrap()
            .estimate(&cur, &prev)
            .unwrap();
        let at0 = mc_interpolate(&prev, &cur, &field, 0.0, 0.5).unwrap();
        let at1 = mc_interpolate(&prev, &cur, &field, 1.0, 0.5).unwrap();
        assert!(mean_abs_error(&at0, &prev) < 1.0);
        assert!(mean_abs_error(&at1, &cur) < 1.0);
    }

    #[test]
    fn midpoint_beats_plain_blending_on_moving_content() {
        // Ground truth mid-frame: the same texture shifted by 3 (half of 6).
        let prev = textured(0, 2);
        let cur = textured(6, 2);
        let truth = textured(3, 2);
        let field = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive)
            .unwrap()
            .estimate(&cur, &prev)
            .unwrap();
        let mc = mc_interpolate(&prev, &cur, &field, 0.5, 0.5).unwrap();
        let blend = mc_interpolate(&prev, &cur, &field, 0.5, 2.0).unwrap(); // floor > 1: never compensate
        let e_mc = mean_abs_error(&mc, &truth);
        let e_blend = mean_abs_error(&blend, &truth);
        assert!(
            e_mc < e_blend * 0.6,
            "MC error {e_mc} should clearly beat blend {e_blend}"
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let a = textured(0, 3);
        let field = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)
            .unwrap()
            .estimate(&a, &a)
            .unwrap();
        assert!(mc_interpolate(&a, &a, &field, 1.5, 0.5).is_err());
        let small = LumaFrame::new(32, 32).unwrap();
        assert!(mc_interpolate(&a, &small, &field, 0.5, 0.5).is_err());
    }

    #[test]
    fn static_content_is_unchanged_at_any_phase() {
        let a = textured(0, 4);
        let field = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)
            .unwrap()
            .estimate(&a, &a)
            .unwrap();
        for t in [0.25, 0.5, 0.75] {
            let out = mc_interpolate(&a, &a, &field, t, 0.5).unwrap();
            assert!(mean_abs_error(&out, &a) < 0.5, "phase {t}");
        }
    }
}
