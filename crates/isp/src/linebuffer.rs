//! Temporal-denoise SRAM and ISP timing model — the §4.2 design choice.
//!
//! The ISP's local SRAMs are sized exactly for their stage's working set
//! ("thanks to the deterministic data-flow in imaging algorithms"). Reusing
//! the TD-stage MV SRAM as the DMA staging buffer for motion-vector
//! write-back therefore stalls the pipeline: the next block row of motion
//! estimation cannot overwrite the SRAM until the DMA has drained it.
//! Euphrates instead *double-buffers* that SRAM: write-back proceeds from
//! one bank while ME fills the other, at a small area cost.
//!
//! [`TdSramModel::frame_timing`] quantifies both designs; the
//! `ablation_double_buffer` bench sweeps it.

use euphrates_common::image::Resolution;
use euphrates_common::units::{Bytes, Clock, Cycles};

/// Bytes of MV metadata per macroblock (1 B per MV component + 2 B
/// SAD/confidence), matching [`crate::motion::MotionField::metadata_bytes`].
pub const BYTES_PER_BLOCK: u64 = 4;

/// Configuration of the temporal-denoise SRAM and its DMA path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdSramConfig {
    /// Whether the MV SRAM is double-buffered (the Euphrates design).
    pub double_buffered: bool,
    /// DMA payload bytes per ISP cycle when the channel is granted
    /// (128-bit AXI: 16 B/cycle).
    pub dma_bytes_per_cycle: u32,
    /// Fraction of DMA bandwidth available to MV write-back; pixel
    /// write-back dominates the channel (§4.2's "opportunistically").
    pub dma_share: f64,
    /// Fixed DMA burst-setup latency in ISP cycles.
    pub dma_setup_cycles: u32,
    /// ISP clock (Table 1: 768 MHz).
    pub clock: Clock,
}

impl Default for TdSramConfig {
    fn default() -> Self {
        TdSramConfig {
            double_buffered: true,
            dma_bytes_per_cycle: 16,
            dma_share: 0.15,
            dma_setup_cycles: 200,
            clock: Clock::from_mhz(768.0),
        }
    }
}

/// Per-frame ISP timing broken into useful work and stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspTiming {
    /// Cycles doing pipeline work (1 pixel/cycle streaming).
    pub active_cycles: Cycles,
    /// Cycles stalled on MV write-back SRAM contention.
    pub stall_cycles: Cycles,
}

impl IspTiming {
    /// Total cycles for the frame.
    pub fn total(&self) -> Cycles {
        self.active_cycles + self.stall_cycles
    }

    /// Stall share of total time, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total().0;
        if t == 0 {
            0.0
        } else {
            self.stall_cycles.0 as f64 / t as f64
        }
    }
}

/// The TD SRAM + write-back timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdSramModel {
    config: TdSramConfig,
}

impl TdSramModel {
    /// Creates the model.
    pub fn new(config: TdSramConfig) -> Self {
        TdSramModel { config }
    }

    /// The model configuration.
    pub fn config(&self) -> &TdSramConfig {
        &self.config
    }

    /// SRAM bytes needed to hold one frame's motion vectors.
    pub fn mv_sram_bytes(resolution: Resolution, mb_size: u32) -> Bytes {
        let (bx, by) = resolution.macroblocks(mb_size);
        Bytes(u64::from(bx) * u64::from(by) * BYTES_PER_BLOCK)
    }

    /// Total SRAM provisioned: 2× for the double-buffered design.
    pub fn provisioned_sram_bytes(&self, resolution: Resolution, mb_size: u32) -> Bytes {
        let base = Self::mv_sram_bytes(resolution, mb_size);
        if self.config.double_buffered {
            Bytes(base.0 * 2)
        } else {
            base
        }
    }

    /// Estimated area of the provisioned SRAM in mm² (16 nm SRAM macro
    /// density ≈ 0.6 mm²/MB — the "slight cost in area overhead" of §4.2).
    pub fn sram_area_mm2(&self, resolution: Resolution, mb_size: u32) -> f64 {
        const MM2_PER_MB: f64 = 0.6;
        self.provisioned_sram_bytes(resolution, mb_size).0 as f64 / (1024.0 * 1024.0) * MM2_PER_MB
    }

    /// Per-frame timing at the given resolution and macroblock size.
    ///
    /// Active work streams at 1 pixel/cycle. When single-buffered, each
    /// block row's MVs must drain through the (shared) DMA before the next
    /// row of motion estimation may reuse the SRAM; the drain time beyond
    /// the row's own processing time is a stall. When double-buffered the
    /// drain overlaps the other bank and costs nothing.
    pub fn frame_timing(&self, resolution: Resolution, mb_size: u32) -> IspTiming {
        let active = Cycles(resolution.pixels());
        if self.config.double_buffered {
            return IspTiming {
                active_cycles: active,
                stall_cycles: Cycles::ZERO,
            };
        }
        let (bx, by) = resolution.macroblocks(mb_size);
        let row_bytes = u64::from(bx) * BYTES_PER_BLOCK;
        let effective_bpc =
            (f64::from(self.config.dma_bytes_per_cycle) * self.config.dma_share).max(0.125);
        let drain_per_row =
            f64::from(self.config.dma_setup_cycles) + row_bytes as f64 / effective_bpc;
        // Cycles the pipeline spends producing one block row of pixels.
        let row_processing = (resolution.pixels() / u64::from(by)) as f64;
        let stall_per_row = (drain_per_row - row_processing).max(0.0)
            // Even when the drain nominally fits, arbitration inserts a
            // small bubble per burst.
            + f64::from(self.config.dma_setup_cycles) * 0.25;
        IspTiming {
            active_cycles: active,
            stall_cycles: Cycles((stall_per_row * f64::from(by)).round() as u64),
        }
    }

    /// Whether the ISP still meets a frame-rate target despite stalls.
    pub fn meets_rate(&self, resolution: Resolution, mb_size: u32, fps: f64) -> bool {
        let timing = self.frame_timing(resolution, mb_size);
        let frame_time = self.config.clock.to_time(timing.total());
        frame_time.as_secs_f64() <= 1.0 / fps
    }
}

impl Default for TdSramModel {
    fn default() -> Self {
        TdSramModel::new(TdSramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv_sram_fits_8kb_at_1080p_with_1byte_mvs() {
        // §5.1 sizes the MC's SRAM at 8 KB for one 1080p frame of MVs at
        // 16x16; our 4 B/block storage is 120*68*4 = 32.6 KB, and the raw
        // MV payload (1 B/block... 2 B/block) is within 8-16 KB. Check the
        // block math.
        let bytes = TdSramModel::mv_sram_bytes(Resolution::FULL_HD, 16);
        assert_eq!(bytes.0, 120 * 68 * BYTES_PER_BLOCK);
    }

    #[test]
    fn double_buffer_doubles_provisioned_sram() {
        let single = TdSramModel::new(TdSramConfig {
            double_buffered: false,
            ..TdSramConfig::default()
        });
        let double = TdSramModel::default();
        let res = Resolution::FULL_HD;
        assert_eq!(
            double.provisioned_sram_bytes(res, 16).0,
            2 * single.provisioned_sram_bytes(res, 16).0
        );
        assert!(double.sram_area_mm2(res, 16) > single.sram_area_mm2(res, 16));
        // And the area is tiny (well under 0.1 mm²).
        assert!(double.sram_area_mm2(res, 16) < 0.1);
    }

    #[test]
    fn double_buffering_eliminates_stalls() {
        let m = TdSramModel::default();
        let t = m.frame_timing(Resolution::FULL_HD, 16);
        assert_eq!(t.stall_cycles, Cycles::ZERO);
        assert_eq!(t.total(), t.active_cycles);
    }

    #[test]
    fn single_buffering_stalls_the_pipeline() {
        let m = TdSramModel::new(TdSramConfig {
            double_buffered: false,
            ..TdSramConfig::default()
        });
        let t = m.frame_timing(Resolution::FULL_HD, 16);
        assert!(t.stall_cycles.0 > 0);
        assert!(t.stall_fraction() > 0.0);
        // Stalls are real but not catastrophic (a few percent at most).
        assert!(t.stall_fraction() < 0.2, "fraction {}", t.stall_fraction());
    }

    #[test]
    fn both_designs_meet_60fps_at_1080p() {
        // 2.07M cycles @768 MHz = 2.7 ms << 16.7 ms; stalls must not break
        // the rate either (the paper's point is determinism, not rate).
        let single = TdSramModel::new(TdSramConfig {
            double_buffered: false,
            ..TdSramConfig::default()
        });
        let double = TdSramModel::default();
        assert!(double.meets_rate(Resolution::FULL_HD, 16, 60.0));
        assert!(single.meets_rate(Resolution::FULL_HD, 16, 60.0));
    }

    #[test]
    fn smaller_macroblocks_stall_more() {
        // Smaller blocks -> more MVs -> more write-back traffic.
        let m = TdSramModel::new(TdSramConfig {
            double_buffered: false,
            ..TdSramConfig::default()
        });
        let t8 = m.frame_timing(Resolution::FULL_HD, 8);
        let t32 = m.frame_timing(Resolution::FULL_HD, 32);
        assert!(t8.stall_cycles.0 > t32.stall_cycles.0);
    }

    #[test]
    fn stall_fraction_of_zero_total_is_zero() {
        let t = IspTiming {
            active_cycles: Cycles::ZERO,
            stall_cycles: Cycles::ZERO,
        };
        assert_eq!(t.stall_fraction(), 0.0);
    }
}
