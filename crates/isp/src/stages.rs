//! The classic ISP pipeline stages of Fig. 2: dead-pixel correction and
//! demosaicing in the Bayer domain, then white balance in the RGB domain,
//! and finally motion-compensated temporal denoising.
//!
//! Each stage is a small struct with a `process` method and an
//! operations-per-pixel estimate that feeds the ISP compute model. The
//! stages are deliberately simple, standard algorithms — the paper's
//! contribution is not the ISP internals but *exporting* the temporal-
//! denoise stage's motion vectors (§4.2), which [`crate::pipeline`] wires
//! up.

use crate::motion::MotionField;
use euphrates_common::error::Result;
use euphrates_common::image::{rggb_color, BayerFrame, CfaColor, LumaFrame, Rgb, RgbFrame};

/// Dead-pixel correction: replaces samples that deviate strongly from the
/// median of their same-color neighbors (stuck/hot photosites).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadPixelCorrection {
    /// Deviation (0–255) beyond which a sample is considered dead.
    pub threshold: u8,
}

impl Default for DeadPixelCorrection {
    fn default() -> Self {
        DeadPixelCorrection { threshold: 60 }
    }
}

impl DeadPixelCorrection {
    /// Corrects dead pixels in place, returning the number of corrections.
    pub fn process(&self, raw: &mut BayerFrame) -> u32 {
        let (w, h) = (raw.width(), raw.height());
        let src = raw.clone();
        let mut corrected = 0;
        for y in 0..h {
            for x in 0..w {
                // Same-color neighbors in the Bayer mosaic are 2 apart.
                let mut neighbors = [0u8; 4];
                for (n, (dx, dy)) in [(-2i64, 0i64), (2, 0), (0, -2), (0, 2)]
                    .into_iter()
                    .enumerate()
                {
                    neighbors[n] = src.at_clamped(i64::from(x) + dx, i64::from(y) + dy);
                }
                neighbors.sort_unstable();
                let median = u16::from(neighbors[1]).midpoint(u16::from(neighbors[2])) as u8;
                let v = src.at(x, y);
                if v.abs_diff(median) > self.threshold {
                    raw.set(x, y, median);
                    corrected += 1;
                }
            }
        }
        corrected
    }

    /// Arithmetic operations per pixel (4 loads, sort network, compare).
    pub fn ops_per_pixel(&self) -> u64 {
        12
    }
}

/// Bilinear demosaicing of the RGGB mosaic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Demosaic;

impl Demosaic {
    /// Reconstructs a full RGB frame from the Bayer mosaic.
    ///
    /// # Errors
    ///
    /// Propagates plane-construction failures (zero-sized frames cannot be
    /// constructed, so in practice this does not fail).
    pub fn process(&self, raw: &BayerFrame) -> Result<RgbFrame> {
        let (w, h) = (raw.width(), raw.height());
        let mut rgb = RgbFrame::new(w, h)?;
        // Averages the clamped neighborhood samples whose CFA color is `c`.
        let avg = |x: u32, y: u32, c: CfaColor, offsets: &[(i64, i64)]| -> u8 {
            let mut sum = 0u32;
            let mut n = 0u32;
            for &(dx, dy) in offsets {
                let sx = i64::from(x) + dx;
                let sy = i64::from(y) + dy;
                let cx = sx.clamp(0, i64::from(w) - 1) as u32;
                let cy = sy.clamp(0, i64::from(h) - 1) as u32;
                if rggb_color(cx, cy) == c {
                    sum += u32::from(raw.at(cx, cy));
                    n += 1;
                }
            }
            sum.checked_div(n).unwrap_or(0) as u8
        };
        type Offsets = [(i64, i64)];
        const CROSS: &Offsets = &[(-1, 0), (1, 0), (0, -1), (0, 1)];
        const DIAG: &Offsets = &[(-1, -1), (1, -1), (-1, 1), (1, 1)];
        const HORIZ: &Offsets = &[(-1, 0), (1, 0)];
        const VERT: &Offsets = &[(0, -1), (0, 1)];
        for y in 0..h {
            for x in 0..w {
                let v = raw.at(x, y);
                let px = match rggb_color(x, y) {
                    CfaColor::Red => Rgb::new(v, avg(x, y, CfaColor::Green, CROSS), {
                        avg(x, y, CfaColor::Blue, DIAG)
                    }),
                    CfaColor::Blue => Rgb::new(
                        avg(x, y, CfaColor::Red, DIAG),
                        avg(x, y, CfaColor::Green, CROSS),
                        v,
                    ),
                    CfaColor::Green => {
                        // Red neighbors are horizontal on even rows,
                        // vertical on odd rows (RGGB).
                        let (r_off, b_off) = if y & 1 == 0 {
                            (HORIZ, VERT)
                        } else {
                            (VERT, HORIZ)
                        };
                        Rgb::new(
                            avg(x, y, CfaColor::Red, r_off),
                            v,
                            avg(x, y, CfaColor::Blue, b_off),
                        )
                    }
                };
                rgb.set(x, y, px);
            }
        }
        Ok(rgb)
    }

    /// Arithmetic operations per pixel.
    pub fn ops_per_pixel(&self) -> u64 {
        10
    }
}

/// Gray-world auto white balance: scales R and B so the channel means match
/// the green mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhiteBalance {
    /// Maximum per-channel gain (guards against division blow-up on
    /// pathological frames).
    pub max_gain: f64,
}

impl Default for WhiteBalance {
    fn default() -> Self {
        WhiteBalance { max_gain: 4.0 }
    }
}

impl WhiteBalance {
    /// Balances the frame in place and returns the applied `(r, b)` gains.
    pub fn process(&self, rgb: &mut RgbFrame) -> (f64, f64) {
        let mut sums = [0f64; 3];
        for p in rgb.samples() {
            sums[0] += f64::from(p.r);
            sums[1] += f64::from(p.g);
            sums[2] += f64::from(p.b);
        }
        let gain = |target: f64, actual: f64| -> f64 {
            if actual <= 0.0 {
                1.0
            } else {
                (target / actual).clamp(1.0 / self.max_gain, self.max_gain)
            }
        };
        let rg = gain(sums[1], sums[0]);
        let bg = gain(sums[1], sums[2]);
        if (rg - 1.0).abs() > 1e-3 || (bg - 1.0).abs() > 1e-3 {
            for p in rgb.samples_mut() {
                p.r = (f64::from(p.r) * rg).round().clamp(0.0, 255.0) as u8;
                p.b = (f64::from(p.b) * bg).round().clamp(0.0, 255.0) as u8;
            }
        }
        (rg, bg)
    }

    /// Arithmetic operations per pixel.
    pub fn ops_per_pixel(&self) -> u64 {
        5
    }
}

/// Motion-compensated temporal denoising — the stage that *generates* the
/// motion vectors Euphrates exposes (Fig. 7).
///
/// Each pixel is blended with its motion-compensated counterpart from the
/// previous frame; the blend weight scales with the block confidence so
/// badly matched blocks fall back to the noisy current pixel rather than
/// ghosting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalDenoise {
    /// Maximum blend weight toward the previous frame (0.5 = equal blend).
    pub strength: f64,
}

impl Default for TemporalDenoise {
    fn default() -> Self {
        TemporalDenoise { strength: 0.5 }
    }
}

impl TemporalDenoise {
    /// Denoises `cur` against the previous denoised luma using the motion
    /// field, returning the denoised luma plane.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the field's resolution differs from the
    /// frames'.
    pub fn process(
        &self,
        cur: &LumaFrame,
        prev_denoised: &LumaFrame,
        field: &MotionField,
    ) -> Result<LumaFrame> {
        if !cur.same_shape(prev_denoised) {
            return Err(euphrates_common::Error::shape(
                "current and previous frames differ in size",
            ));
        }
        if field.resolution().width != cur.width() || field.resolution().height != cur.height() {
            return Err(euphrates_common::Error::shape(
                "motion field resolution differs from frame",
            ));
        }
        let mut out = LumaFrame::new(cur.width(), cur.height())?;
        for by in 0..field.blocks_y() {
            for bx in 0..field.blocks_x() {
                let mv = field.at_block(bx, by);
                let conf = field.confidence(bx, by);
                let w = self.strength * conf;
                let rect = field.block_rect(bx, by);
                let (x0, y0) = (rect.x as u32, rect.y as u32);
                let (bw, bh) = (rect.w as u32, rect.h as u32);
                for dy in 0..bh {
                    for dx in 0..bw {
                        let (x, y) = (x0 + dx, y0 + dy);
                        let c = f64::from(cur.at(x, y));
                        let p = f64::from(prev_denoised.at_clamped(
                            i64::from(x) - i64::from(mv.v.x),
                            i64::from(y) - i64::from(mv.v.y),
                        ));
                        out.set(x, y, (c * (1.0 - w) + p * w).round() as u8);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Arithmetic operations per pixel (blend only; motion estimation is
    /// accounted separately by the block matcher's cost model).
    pub fn ops_per_pixel(&self) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{BlockMatcher, SearchStrategy};
    use euphrates_common::image::Resolution;
    use euphrates_common::rngx;

    fn noisy_gray(width: u32, height: u32, base: u8, sigma: f64, seed: u64) -> LumaFrame {
        let mut rng = rngx::derived_rng(seed, 1, 1);
        let mut f = LumaFrame::new(width, height).unwrap();
        for px in f.samples_mut() {
            *px = (f64::from(base) + rngx::gaussian(&mut rng, 0.0, sigma))
                .round()
                .clamp(0.0, 255.0) as u8;
        }
        f
    }

    #[test]
    fn dead_pixel_correction_fixes_hot_pixels() {
        let mut raw = BayerFrame::new(16, 16).unwrap();
        for px in raw.samples_mut() {
            *px = 100;
        }
        raw.set(8, 8, 255); // hot
        raw.set(4, 4, 0); // dead
        let dpc = DeadPixelCorrection::default();
        let fixed = dpc.process(&mut raw);
        assert_eq!(fixed, 2);
        assert_eq!(raw.at(8, 8), 100);
        assert_eq!(raw.at(4, 4), 100);
    }

    #[test]
    fn dead_pixel_correction_leaves_clean_frames_alone() {
        let mut raw = BayerFrame::new(16, 16).unwrap();
        for (i, px) in raw.samples_mut().iter_mut().enumerate() {
            *px = 90 + (i % 16) as u8; // gentle gradient
        }
        let before = raw.clone();
        let fixed = DeadPixelCorrection::default().process(&mut raw);
        assert_eq!(fixed, 0);
        assert_eq!(raw, before);
    }

    #[test]
    fn demosaic_recovers_solid_color() {
        // A solid color mosaiced then demosaiced should come back exactly.
        let color = Rgb::new(180, 120, 60);
        let mut raw = BayerFrame::new(16, 16).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                let v = match rggb_color(x, y) {
                    CfaColor::Red => color.r,
                    CfaColor::Green => color.g,
                    CfaColor::Blue => color.b,
                };
                raw.set(x, y, v);
            }
        }
        let rgb = Demosaic.process(&raw).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(rgb.at(x, y), color, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn demosaic_preserves_native_samples() {
        let mut raw = BayerFrame::new(8, 8).unwrap();
        for (i, px) in raw.samples_mut().iter_mut().enumerate() {
            *px = (i * 3 % 251) as u8;
        }
        let rgb = Demosaic.process(&raw).unwrap();
        // Each photosite's own channel passes through unchanged.
        assert_eq!(rgb.at(0, 0).r, raw.at(0, 0));
        assert_eq!(rgb.at(1, 0).g, raw.at(1, 0));
        assert_eq!(rgb.at(1, 1).b, raw.at(1, 1));
    }

    #[test]
    fn white_balance_equalizes_channel_means() {
        let mut rgb = RgbFrame::new(32, 32).unwrap();
        for p in rgb.samples_mut() {
            *p = Rgb::new(50, 100, 200); // strong blue cast
        }
        let (rg, bg) = WhiteBalance::default().process(&mut rgb);
        assert!(rg > 1.5, "red gain {rg}");
        assert!(bg < 0.75, "blue gain {bg}");
        let p = rgb.at(0, 0);
        assert!(p.r.abs_diff(p.g) <= 2);
        assert!(p.b.abs_diff(p.g) <= 2);
    }

    #[test]
    fn white_balance_is_noop_on_neutral_frames() {
        let mut rgb = RgbFrame::new(8, 8).unwrap();
        for p in rgb.samples_mut() {
            *p = Rgb::gray(128);
        }
        let before = rgb.clone();
        let (rg, bg) = WhiteBalance::default().process(&mut rgb);
        assert!((rg - 1.0).abs() < 1e-9 && (bg - 1.0).abs() < 1e-9);
        assert_eq!(rgb, before);
    }

    #[test]
    fn white_balance_clamps_extreme_gains() {
        let mut rgb = RgbFrame::new(8, 8).unwrap();
        for p in rgb.samples_mut() {
            *p = Rgb::new(1, 200, 200);
        }
        let (rg, _) = WhiteBalance::default().process(&mut rgb);
        assert!(rg <= 4.0);
    }

    #[test]
    fn temporal_denoise_reduces_noise_variance() {
        let res = Resolution::new(64, 64);
        let clean = 128u8;
        let a = noisy_gray(64, 64, clean, 8.0, 1);
        let b = noisy_gray(64, 64, clean, 8.0, 2);
        let matcher = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let field = matcher.estimate(&b, &a).unwrap();
        let _ = res;
        let out = TemporalDenoise::default().process(&b, &a, &field).unwrap();
        let var = |f: &LumaFrame| {
            let mean = f.samples().iter().map(|&v| f64::from(v)).sum::<f64>() / f.len() as f64;
            f.samples()
                .iter()
                .map(|&v| (f64::from(v) - mean).powi(2))
                .sum::<f64>()
                / f.len() as f64
        };
        assert!(
            var(&out) < var(&b) * 0.8,
            "denoised variance {} vs input {}",
            var(&out),
            var(&b)
        );
    }

    #[test]
    fn temporal_denoise_rejects_mismatched_shapes() {
        let a = LumaFrame::new(64, 64).unwrap();
        let b = LumaFrame::new(32, 32).unwrap();
        let field = MotionField::zeroed(Resolution::new(64, 64), 16, 7).unwrap();
        assert!(TemporalDenoise::default().process(&a, &b, &field).is_err());
        let field32 = MotionField::zeroed(Resolution::new(32, 32), 16, 7).unwrap();
        assert!(TemporalDenoise::default()
            .process(&a, &a, &field32)
            .is_err());
    }

    #[test]
    fn ops_estimates_are_positive() {
        assert!(DeadPixelCorrection::default().ops_per_pixel() > 0);
        assert!(Demosaic.ops_per_pixel() > 0);
        assert!(WhiteBalance::default().ops_per_pixel() > 0);
        assert!(TemporalDenoise::default().ops_per_pixel() > 0);
    }
}
