//! Motion estimation directly on RAW Bayer data — the §8 future-work item
//! ("recent work has shown that motion can be directly estimated from raw
//! image sensor data using block matching. We leave it as future work to
//! port Euphrates to support raw data").
//!
//! Rationale: if the vision pipeline consumes raw data (RedEye/ASP-Vision
//! style), the ISP's RGB stages may be bypassed entirely — but Euphrates
//! still needs motion vectors. Block matching works on the Bayer mosaic's
//! green channel: G sites form a quincunx covering half the pixels, which
//! we collapse into a half-resolution luma-like plane and match with the
//! standard engine. Motion vectors are then scaled back to full-resolution
//! pixel units.

use crate::motion::{BlockMatcher, MotionField, MotionVector, SearchStrategy};
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Vec2i;
use euphrates_common::image::{rggb_color, BayerFrame, CfaColor, LumaFrame, Resolution};

/// Extracts the green quincunx of an RGGB frame into a half-width,
/// half-height plane (averaging the two G sites of each 2×2 cell).
pub fn green_plane(raw: &BayerFrame) -> Result<LumaFrame> {
    if raw.width() < 2 || raw.height() < 2 {
        return Err(Error::config("frame too small for Bayer green extraction"));
    }
    let (w, h) = (raw.width() / 2, raw.height() / 2);
    let mut out = LumaFrame::new(w, h)?;
    for y in 0..h {
        for x in 0..w {
            let (x0, y0) = (2 * x, 2 * y);
            // RGGB: G sits at (x0+1, y0) and (x0, y0+1).
            debug_assert_eq!(rggb_color(x0 + 1, y0), CfaColor::Green);
            let g0 = u16::from(raw.at(x0 + 1, y0));
            let g1 = u16::from(raw.at(x0, y0 + 1));
            out.set(x, y, (g0.midpoint(g1)) as u8);
        }
    }
    Ok(out)
}

/// Block matcher operating on RAW Bayer frames.
///
/// Uses a half-size macroblock and search range on the green plane so the
/// effective pixel-domain geometry matches the RGB-path matcher; output
/// motion vectors are rescaled to full-resolution pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawBlockMatcher {
    inner: BlockMatcher,
    full_mb: u32,
    full_range: u32,
}

impl RawBlockMatcher {
    /// Creates a raw-domain matcher with *full-resolution* macroblock size
    /// and search range (halved internally).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the halved parameters are
    /// invalid (macroblock size must be an even number ≥ 4).
    pub fn new(mb_size: u32, search_range: u32, strategy: SearchStrategy) -> Result<Self> {
        if !mb_size.is_multiple_of(2) || mb_size < 4 {
            return Err(Error::config(format!(
                "raw-domain macroblock size must be even and >= 4, got {mb_size}"
            )));
        }
        let inner = BlockMatcher::new(mb_size / 2, (search_range / 2).max(1), strategy)?;
        Ok(RawBlockMatcher {
            inner,
            full_mb: mb_size,
            full_range: search_range,
        })
    }

    /// Estimates full-resolution motion from two RAW frames.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn estimate(&self, cur: &BayerFrame, prev: &BayerFrame) -> Result<MotionField> {
        let g_cur = green_plane(cur)?;
        let g_prev = green_plane(prev)?;
        let half = self.inner.estimate(&g_cur, &g_prev)?;
        // Upscale: same block grid (half-res blocks of size mb/2 cover the
        // same image area as full-res blocks of size mb), vectors double.
        let res = Resolution::new(cur.width(), cur.height());
        let mut full = MotionField::zeroed(res, self.full_mb, self.full_range)?;
        let bx = full.blocks_x().min(half.blocks_x());
        let by = full.blocks_y().min(half.blocks_y());
        for y in 0..by {
            for x in 0..bx {
                let mv = half.at_block(x, y);
                full.set_block(
                    x,
                    y,
                    MotionVector {
                        v: Vec2i::new(mv.v.x * 2, mv.v.y * 2),
                        // SADs compare half as many pixels at the same bit
                        // depth: scale to keep Equ. 2 confidences
                        // comparable with the RGB path.
                        sad: mv.sad * 4,
                    },
                );
            }
        }
        Ok(full)
    }

    /// The underlying half-resolution matcher.
    pub fn inner(&self) -> &BlockMatcher {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::rngx;

    fn bayer_textured(width: u32, height: u32, seed: u64, shift: i64) -> BayerFrame {
        let mut f = BayerFrame::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                let v = (rngx::lattice_hash(seed, (i64::from(x) - shift) / 4, i64::from(y) / 4)
                    * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    #[test]
    fn green_plane_halves_dimensions() {
        let raw = bayer_textured(64, 48, 1, 0);
        let g = green_plane(&raw).unwrap();
        assert_eq!((g.width(), g.height()), (32, 24));
    }

    #[test]
    fn green_plane_averages_the_two_sites() {
        let mut raw = BayerFrame::new(4, 4).unwrap();
        raw.set(1, 0, 100); // G site
        raw.set(0, 1, 200); // G site
        let g = green_plane(&raw).unwrap();
        assert_eq!(g.at(0, 0), 150);
    }

    #[test]
    fn raw_matcher_recovers_even_translations() {
        let prev = bayer_textured(128, 128, 2, 0);
        let cur = bayer_textured(128, 128, 2, 6);
        let m = RawBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        let mv = field.at_block(3, 3);
        assert_eq!(i32::from(mv.v.x), 6, "detected {:?}", mv.v);
        assert_eq!(i32::from(mv.v.y), 0);
    }

    #[test]
    fn raw_field_geometry_matches_rgb_path() {
        let prev = bayer_textured(128, 96, 3, 0);
        let cur = bayer_textured(128, 96, 3, 2);
        let m = RawBlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        assert_eq!(field.mb_size(), 16);
        assert_eq!((field.blocks_x(), field.blocks_y()), (8, 6));
        assert_eq!(field.resolution(), Resolution::new(128, 96));
    }

    #[test]
    fn odd_macroblock_sizes_are_rejected() {
        assert!(RawBlockMatcher::new(15, 7, SearchStrategy::ThreeStep).is_err());
        assert!(RawBlockMatcher::new(2, 7, SearchStrategy::ThreeStep).is_err());
        assert!(RawBlockMatcher::new(16, 7, SearchStrategy::ThreeStep).is_ok());
    }

    #[test]
    fn confidences_remain_in_range() {
        let prev = bayer_textured(64, 64, 5, 0);
        let cur = bayer_textured(64, 64, 99, 0); // uncorrelated
        let m = RawBlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        for by in 0..field.blocks_y() {
            for bx in 0..field.blocks_x() {
                let c = field.confidence(bx, by);
                assert!((0.0..=1.0).contains(&c), "confidence {c}");
            }
        }
    }
}
