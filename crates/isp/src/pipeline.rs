//! The end-to-end ISP pipeline (Fig. 2 / Fig. 7).
//!
//! [`IspPipeline`] is stateful: it keeps the previous frame's denoised luma
//! so the temporal-denoise stage can estimate motion against it. Per frame
//! it produces an [`IspOutput`] containing the processed RGB frame, the
//! denoised luma plane, and — the Euphrates augmentation — the
//! [`MotionField`] that a stock ISP would have discarded (§2.2).

use crate::color::{ColorCorrection, Gamma};
use crate::motion::{BlockMatcher, MotionField, SearchStrategy};
use crate::stages::{DeadPixelCorrection, Demosaic, TemporalDenoise, WhiteBalance};
use euphrates_common::error::{Error, Result};
use euphrates_common::image::{rgb_to_luma, BayerFrame, LumaFrame, Resolution, RgbFrame};

/// Static ISP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IspConfig {
    /// Input resolution; all frames must match.
    pub resolution: Resolution,
    /// Macroblock size for motion estimation (Table 1 default: 16).
    pub mb_size: u32,
    /// Block-matching search range `d` (default 7, §2.3).
    pub search_range: u32,
    /// Block-matching strategy (default TSS, the efficient choice).
    pub strategy: SearchStrategy,
    /// Enable dead-pixel correction.
    pub dead_pixel_correction: bool,
    /// Enable gray-world white balance.
    pub white_balance: bool,
    /// Enable motion-compensated temporal denoising (the stage that
    /// produces the motion vectors).
    pub temporal_denoise: bool,
    /// Enable the RGB-domain finishing stages (color-correction matrix +
    /// gamma). Applied to the output frame only; motion estimation runs in
    /// the linear domain before them, as in real ISPs.
    pub finishing: bool,
}

impl IspConfig {
    /// The Table 1 configuration at the given resolution.
    pub fn standard(resolution: Resolution) -> Self {
        IspConfig {
            resolution,
            mb_size: 16,
            search_range: 7,
            strategy: SearchStrategy::ThreeStep,
            dead_pixel_correction: true,
            white_balance: true,
            temporal_denoise: true,
            finishing: true,
        }
    }
}

/// One frame's worth of ISP output.
#[derive(Debug, Clone)]
pub struct IspOutput {
    /// Frame index within the stream (0-based).
    pub frame_index: u64,
    /// Processed RGB frame (what gets written to the frame buffer).
    pub rgb: RgbFrame,
    /// Denoised luma plane (input to next frame's motion estimation).
    pub luma: LumaFrame,
    /// Motion metadata exported to the frame buffer (zero for frame 0,
    /// which has no predecessor).
    pub motion: MotionField,
    /// Number of dead pixels corrected this frame.
    pub dead_pixels_corrected: u32,
}

/// The stateful ISP pipeline.
#[derive(Debug, Clone)]
pub struct IspPipeline {
    config: IspConfig,
    dpc: DeadPixelCorrection,
    demosaic: Demosaic,
    wb: WhiteBalance,
    td: TemporalDenoise,
    ccm: ColorCorrection,
    gamma: Gamma,
    matcher: BlockMatcher,
    prev_luma: Option<LumaFrame>,
    frame_count: u64,
}

impl IspPipeline {
    /// Creates a pipeline for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid block-matching
    /// parameters.
    pub fn new(config: IspConfig) -> Result<Self> {
        let matcher = BlockMatcher::new(config.mb_size, config.search_range, config.strategy)?;
        Ok(IspPipeline {
            config,
            dpc: DeadPixelCorrection::default(),
            demosaic: Demosaic,
            wb: WhiteBalance::default(),
            td: TemporalDenoise::default(),
            ccm: ColorCorrection::default(),
            gamma: Gamma::default(),
            matcher,
            prev_luma: None,
            frame_count: 0,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IspConfig {
        &self.config
    }

    /// Number of frames processed since construction or [`reset`].
    ///
    /// [`reset`]: IspPipeline::reset
    pub fn frames_processed(&self) -> u64 {
        self.frame_count
    }

    /// Drops temporal state (previous frame); the next frame becomes frame
    /// 0 of a new stream.
    pub fn reset(&mut self) {
        self.prev_luma = None;
        self.frame_count = 0;
    }

    /// Processes one RAW frame through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `raw` does not match the
    /// configured resolution.
    pub fn process(&mut self, raw: &BayerFrame) -> Result<IspOutput> {
        if raw.width() != self.config.resolution.width
            || raw.height() != self.config.resolution.height
        {
            return Err(Error::shape(format!(
                "ISP configured for {} but frame is {}x{}",
                self.config.resolution,
                raw.width(),
                raw.height()
            )));
        }

        // Bayer domain.
        let mut raw = raw.clone();
        let dead_pixels_corrected = if self.config.dead_pixel_correction {
            self.dpc.process(&mut raw)
        } else {
            0
        };

        // Conversion + RGB domain.
        let mut rgb = self.demosaic.process(&raw)?; // stays mutable through finishing
        if self.config.white_balance {
            self.wb.process(&mut rgb);
        }
        let noisy_luma = rgb_to_luma(&rgb);

        // Temporal-denoise stage: motion estimation against the previous
        // denoised frame, then motion compensation (Fig. 7).
        let (motion, luma) = match (&self.prev_luma, self.config.temporal_denoise) {
            (Some(prev), true) => {
                let field = self.matcher.estimate(&noisy_luma, prev)?;
                let denoised = self.td.process(&noisy_luma, prev, &field)?;
                (field, denoised)
            }
            (Some(prev), false) => {
                // ME can run without MC (metadata export only).
                let field = self.matcher.estimate(&noisy_luma, prev)?;
                (field, noisy_luma)
            }
            (None, _) => (
                MotionField::zeroed(
                    self.config.resolution,
                    self.config.mb_size,
                    self.config.search_range,
                )?,
                noisy_luma,
            ),
        };

        // RGB-domain finishing on the output frame (linear-domain data —
        // including the luma used for ME — is already captured above).
        if self.config.finishing {
            self.ccm.process(&mut rgb);
            self.gamma.process(&mut rgb);
        }

        self.prev_luma = Some(luma.clone());
        let frame_index = self.frame_count;
        self.frame_count += 1;
        Ok(IspOutput {
            frame_index,
            rgb,
            luma,
            motion,
            dead_pixels_corrected,
        })
    }

    /// Total arithmetic operations per frame for the compute model: stencil
    /// stages at ops/pixel plus the block-matching cost (§2.3 formulas).
    pub fn ops_per_frame(&self) -> u64 {
        let px = self.config.resolution.pixels();
        let mut ops = self.demosaic.ops_per_pixel() * px;
        if self.config.dead_pixel_correction {
            ops += self.dpc.ops_per_pixel() * px;
        }
        if self.config.white_balance {
            ops += self.wb.ops_per_pixel() * px;
        }
        if self.config.temporal_denoise {
            ops += self.td.ops_per_pixel() * px;
        }
        if self.config.finishing {
            ops += (self.ccm.ops_per_pixel() + self.gamma.ops_per_pixel()) * px;
        }
        ops + self.matcher.ops_per_frame(self.config.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::rngx;

    fn textured_raw(res: Resolution, seed: u64, shift: i64) -> BayerFrame {
        let mut f = BayerFrame::new(res.width, res.height).unwrap();
        for y in 0..res.height {
            for x in 0..res.width {
                let v = (rngx::lattice_hash(seed, (i64::from(x) - shift) / 4, i64::from(y) / 4)
                    * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    #[test]
    fn first_frame_has_zero_motion() {
        let res = Resolution::new(64, 48);
        let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
        let out = isp.process(&textured_raw(res, 1, 0)).unwrap();
        assert_eq!(out.frame_index, 0);
        assert_eq!(out.motion.mean_magnitude(), 0.0);
        assert_eq!(out.rgb.width(), 64);
    }

    #[test]
    fn motion_is_detected_across_frames() {
        let res = Resolution::new(96, 96);
        let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
        isp.process(&textured_raw(res, 2, 0)).unwrap();
        let out = isp.process(&textured_raw(res, 2, 4)).unwrap();
        assert_eq!(out.frame_index, 1);
        // The dominant horizontal motion should be ~4 px.
        let mv = out.motion.at_block(2, 2);
        assert!(
            (i32::from(mv.v.x) - 4).abs() <= 1,
            "detected {:?} expected ~(4,0)",
            mv.v
        );
    }

    #[test]
    fn reset_clears_temporal_state() {
        let res = Resolution::new(64, 48);
        let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
        isp.process(&textured_raw(res, 3, 0)).unwrap();
        isp.process(&textured_raw(res, 3, 2)).unwrap();
        assert_eq!(isp.frames_processed(), 2);
        isp.reset();
        assert_eq!(isp.frames_processed(), 0);
        let out = isp.process(&textured_raw(res, 3, 4)).unwrap();
        assert_eq!(out.frame_index, 0);
        assert_eq!(out.motion.mean_magnitude(), 0.0);
    }

    #[test]
    fn wrong_resolution_is_rejected() {
        let mut isp = IspPipeline::new(IspConfig::standard(Resolution::new(64, 48))).unwrap();
        let raw = BayerFrame::new(32, 32).unwrap();
        assert!(isp.process(&raw).is_err());
    }

    #[test]
    fn stages_can_be_disabled() {
        let res = Resolution::new(64, 48);
        let mut cfg = IspConfig::standard(res);
        cfg.dead_pixel_correction = false;
        cfg.white_balance = false;
        cfg.temporal_denoise = false;
        cfg.finishing = false;
        let mut isp = IspPipeline::new(cfg).unwrap();
        let out = isp.process(&textured_raw(res, 4, 0)).unwrap();
        assert_eq!(out.dead_pixels_corrected, 0);
        // ME still runs from the second frame even without denoise.
        let out2 = isp.process(&textured_raw(res, 4, 3)).unwrap();
        assert!(out2.motion.mean_magnitude() > 0.5);
    }

    #[test]
    fn ops_per_frame_is_dominated_by_stencils_at_16x16() {
        // §5.1: ME is ~2.5% overhead on a research ISP; our stencil ops
        // estimate should keep ME a small fraction at TSS.
        let isp = IspPipeline::new(IspConfig::standard(Resolution::FULL_HD)).unwrap();
        let total = isp.ops_per_frame() as f64;
        let me = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)
            .unwrap()
            .ops_per_frame(Resolution::FULL_HD) as f64;
        let frac = me / total;
        assert!(
            (0.2..0.6).contains(&frac),
            "ME fraction {frac} (me={me}, total={total})"
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let res = Resolution::new(64, 48);
        let run = || {
            let mut isp = IspPipeline::new(IspConfig::standard(res)).unwrap();
            isp.process(&textured_raw(res, 5, 0)).unwrap();
            isp.process(&textured_raw(res, 5, 3)).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.rgb, b.rgb);
        assert_eq!(a.motion, b.motion);
    }
}
