//! # euphrates-isp
//!
//! The Image Signal Processor substrate: the pipeline of Fig. 2/Fig. 7 of
//! the Euphrates paper, including the temporal-denoise stage whose
//! block-matching motion estimation produces the motion vectors that the
//! whole system is built around.
//!
//! The crate has two faces:
//!
//! * **Functional** — [`pipeline::IspPipeline`] turns RAW Bayer frames into
//!   RGB frames and, per frame, a [`motion::MotionField`]: one motion
//!   vector, SAD, and confidence (Equ. 2) per macroblock, computed by a
//!   real [`motion::BlockMatcher`] driving a pluggable
//!   [`motion::MotionSearch`] engine (exhaustive, three-step, diamond,
//!   two-level hierarchical, or anything installed via
//!   [`motion::register_search`]).
//! * **Architectural** — [`linebuffer::TdSramModel`] models the
//!   temporal-denoise SRAM with single vs. double buffering (the §4.2
//!   design choice that keeps MV write-back off the ISP critical path),
//!   [`dma`] accounts the frame-buffer and metadata traffic, and
//!   [`power`] provides the calibrated ISP power (153 mW @1080p60 plus the
//!   2.5 % motion-estimation overhead from §5.1).
//!
//! ## Performance notes
//!
//! Block matching is the frontend's arithmetic hot path; the matcher
//! keeps it as fast as one core allows without ever changing results:
//!
//! * **SWAR SAD micro-kernel** — [`motion`]'s SAD evaluates rows as
//!   8-pixel lanes in fixed-width reductions the compiler lowers to the
//!   hardware SAD instruction (`psadbw` on x86-64), addressed by
//!   running offsets into the flat sample storage with the ubiquitous
//!   16-px block width fully unrolled (two rows per early-exit check).
//!   `ablation_motion_engine` asserts it bit-identical to the scalar
//!   kernel it replaced and ≥1.5× on VGA exhaustive search (measured
//!   ~2×).
//! * **Total-order tie-break** — the best match is the minimum under
//!   (SAD, |v|², vy, vx), so the winner is independent of probe order.
//!   That lets the exhaustive walk probe the window in center-out
//!   rings: the incumbent drops early and the kernel's early exit
//!   abandons losing candidates after a row or two (~40 % fewer
//!   absolute-difference ops at VGA, identical fields).
//! * **Pyramid caching** — strategies that want the 2×-downsampled
//!   level ([`motion::MotionSearch::wants_pyramid`]) can be fed
//!   caller-cached planes via
//!   [`motion::BlockMatcher::estimate_with_pyramid`]; the streaming
//!   frontend in `euphrates-core` builds each frame's coarse plane
//!   once (reused buffer, O(1) allocations) and double-buffers it
//!   alongside the fine plane, where a bare `estimate` call rebuilds
//!   both levels per frame pair. Since PR 5 the *evaluated default*
//!   strategy is [`motion::SearchStrategy::Hierarchical`] — the
//!   Fig. 11b sweep pins every built-in strategy within 0.008 success
//!   rate of exhaustive search, and hierarchical runs ~27 measured
//!   probes/block against ES's 225 (the paper's modelled ISP stage,
//!   TSS, stays selectable).
//!
//! ## Example
//!
//! ```
//! use euphrates_isp::motion::{BlockMatcher, SearchStrategy};
//! use euphrates_common::image::LumaFrame;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! let prev = LumaFrame::new(64, 64)?;
//! let mut cur = LumaFrame::new(64, 64)?;
//! cur.set(32, 32, 255);
//! let matcher = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)?;
//! let field = matcher.estimate(&cur, &prev)?;
//! assert_eq!(field.blocks_x(), 4);
//! # Ok(())
//! # }
//! ```

pub mod color;
pub mod dma;
pub mod interpolate;
pub mod linebuffer;
pub mod motion;
pub mod pipeline;
pub mod power;
pub mod predictive;
pub mod raw_motion;
pub mod stages;

pub use motion::{
    register_search, BlockMatcher, CachedPlanes, MotionField, MotionSearch, MotionVector,
    RowPrefix, SearchCtx, SearchStats, SearchStrategy,
};
pub use pipeline::{IspOutput, IspPipeline};
pub use predictive::PredictiveBlockMatcher;
pub use raw_motion::RawBlockMatcher;
