//! # euphrates-isp
//!
//! The Image Signal Processor substrate: the pipeline of Fig. 2/Fig. 7 of
//! the Euphrates paper, including the temporal-denoise stage whose
//! block-matching motion estimation produces the motion vectors that the
//! whole system is built around.
//!
//! The crate has two faces:
//!
//! * **Functional** — [`pipeline::IspPipeline`] turns RAW Bayer frames into
//!   RGB frames and, per frame, a [`motion::MotionField`]: one motion
//!   vector, SAD, and confidence (Equ. 2) per macroblock, computed by a
//!   real [`motion::BlockMatcher`] driving a pluggable
//!   [`motion::MotionSearch`] engine (exhaustive, three-step, diamond,
//!   two-level hierarchical, or anything installed via
//!   [`motion::register_search`]).
//! * **Architectural** — [`linebuffer::TdSramModel`] models the
//!   temporal-denoise SRAM with single vs. double buffering (the §4.2
//!   design choice that keeps MV write-back off the ISP critical path),
//!   [`dma`] accounts the frame-buffer and metadata traffic, and
//!   [`power`] provides the calibrated ISP power (153 mW @1080p60 plus the
//!   2.5 % motion-estimation overhead from §5.1).
//!
//! ## Example
//!
//! ```
//! use euphrates_isp::motion::{BlockMatcher, SearchStrategy};
//! use euphrates_common::image::LumaFrame;
//!
//! # fn main() -> euphrates_common::Result<()> {
//! let prev = LumaFrame::new(64, 64)?;
//! let mut cur = LumaFrame::new(64, 64)?;
//! cur.set(32, 32, 255);
//! let matcher = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep)?;
//! let field = matcher.estimate(&cur, &prev)?;
//! assert_eq!(field.blocks_x(), 4);
//! # Ok(())
//! # }
//! ```

pub mod color;
pub mod dma;
pub mod interpolate;
pub mod linebuffer;
pub mod motion;
pub mod pipeline;
pub mod power;
pub mod predictive;
pub mod raw_motion;
pub mod stages;

pub use motion::{
    register_search, BlockMatcher, MotionField, MotionSearch, MotionVector, SearchCtx, SearchStats,
    SearchStrategy,
};
pub use pipeline::{IspOutput, IspPipeline};
pub use predictive::PredictiveBlockMatcher;
pub use raw_motion::RawBlockMatcher;
