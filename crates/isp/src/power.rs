//! ISP power model, calibrated to the paper's Jetson TX2 measurement
//! (§5.1): 153 mW at 1080p60, plus a conservatively assessed 2.5 % overhead
//! for running block-matching motion estimation in the ISP.

use euphrates_common::image::Resolution;
use euphrates_common::units::MilliWatts;

/// Calibrated ISP power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspPowerModel {
    /// Measured active power at the 1080p60 reference point.
    pub reference_power: MilliWatts,
    /// Fractional overhead of in-ISP motion estimation (§5.1: 2.5 %).
    pub motion_estimation_overhead: f64,
    /// Static floor that does not scale with pixel rate.
    pub static_power: MilliWatts,
}

impl Default for IspPowerModel {
    fn default() -> Self {
        IspPowerModel {
            reference_power: MilliWatts(153.0),
            motion_estimation_overhead: 0.025,
            static_power: MilliWatts(12.0),
        }
    }
}

impl IspPowerModel {
    /// Active power at the given operating point.
    pub fn active_power(
        &self,
        resolution: Resolution,
        fps: f64,
        motion_estimation: bool,
    ) -> MilliWatts {
        let ref_rate = Resolution::FULL_HD.pixels() as f64 * 60.0;
        let rate = resolution.pixels() as f64 * fps;
        let mut dynamic = (self.reference_power.0 - self.static_power.0) * rate / ref_rate;
        if motion_estimation {
            dynamic *= 1.0 + self.motion_estimation_overhead;
        }
        MilliWatts(self.static_power.0 + dynamic)
    }

    /// Idle (clock-gated) power.
    pub fn idle_power(&self) -> MilliWatts {
        self.static_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_matches_tx2_measurement() {
        let m = IspPowerModel::default();
        let p = m.active_power(Resolution::FULL_HD, 60.0, false);
        assert!((p.0 - 153.0).abs() < 0.5, "got {p}");
    }

    #[test]
    fn me_overhead_is_2_5_percent_of_dynamic() {
        let m = IspPowerModel::default();
        let base = m.active_power(Resolution::FULL_HD, 60.0, false);
        let me = m.active_power(Resolution::FULL_HD, 60.0, true);
        let overhead = (me.0 - base.0) / (base.0 - m.static_power.0);
        assert!((overhead - 0.025).abs() < 1e-9);
    }

    #[test]
    fn power_scales_down_at_vga() {
        let m = IspPowerModel::default();
        let vga = m.active_power(Resolution::VGA, 60.0, true);
        let hd = m.active_power(Resolution::FULL_HD, 60.0, true);
        assert!(vga.0 < hd.0 / 3.0);
        assert!(vga.0 > m.idle_power().0);
    }

    #[test]
    fn idle_is_static_floor() {
        let m = IspPowerModel::default();
        assert_eq!(m.idle_power(), m.static_power);
    }
}
