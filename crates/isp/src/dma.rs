//! Frame-buffer DMA traffic accounting.
//!
//! The vision frontend communicates with the backend through DRAM
//! (§2.1/§4.2): the ISP DMA-writes each processed frame — and, in
//! Euphrates, the motion-vector metadata — into the frame buffer, and the
//! backend reads what it needs (pixels on I-frames, metadata on E-frames).
//! These byte counts drive the DRAM energy model in `euphrates-soc`.

use euphrates_common::image::Resolution;
use euphrates_common::units::Bytes;

/// Pixel storage format in the frame buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 8-bit RGB, 3 bytes/pixel — the paper's "6 MB frame pixel data" for
    /// 1080p (§4.2).
    Rgb888,
    /// Planar YUV 4:2:0, 1.5 bytes/pixel.
    Yuv420,
}

impl PixelFormat {
    /// Storage bytes for one frame at `resolution`.
    pub fn frame_bytes(self, resolution: Resolution) -> Bytes {
        let px = resolution.pixels();
        match self {
            PixelFormat::Rgb888 => Bytes(px * 3),
            PixelFormat::Yuv420 => Bytes(px * 3 / 2),
        }
    }
}

/// Per-frame traffic the ISP puts on the SoC interconnect/DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IspFrameTraffic {
    /// Pixel data written to the frame buffer.
    pub pixel_write: Bytes,
    /// Motion-vector metadata written to the frame buffer's metadata
    /// section (zero for a stock, non-Euphrates ISP).
    pub metadata_write: Bytes,
}

impl IspFrameTraffic {
    /// Total bytes written per frame.
    pub fn total(&self) -> Bytes {
        self.pixel_write + self.metadata_write
    }

    /// Metadata overhead relative to pixel traffic (the §4.2 argument that
    /// piggybacking is nearly free: ~8–32 KB vs ~6 MB).
    pub fn metadata_overhead(&self) -> f64 {
        if self.pixel_write.0 == 0 {
            return 0.0;
        }
        self.metadata_write.0 as f64 / self.pixel_write.0 as f64
    }
}

/// Computes the ISP's per-frame write traffic.
pub fn isp_frame_traffic(
    resolution: Resolution,
    format: PixelFormat,
    mb_size: u32,
    export_motion: bool,
) -> IspFrameTraffic {
    let pixel_write = format.frame_bytes(resolution);
    let metadata_write = if export_motion {
        let (bx, by) = resolution.macroblocks(mb_size);
        Bytes(u64::from(bx) * u64::from(by) * crate::linebuffer::BYTES_PER_BLOCK)
    } else {
        Bytes::ZERO
    };
    IspFrameTraffic {
        pixel_write,
        metadata_write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_1080p_is_about_6mb() {
        let b = PixelFormat::Rgb888.frame_bytes(Resolution::FULL_HD);
        assert_eq!(b.0, 1920 * 1080 * 3);
        assert!((b.as_mib_f64() - 5.93).abs() < 0.1);
    }

    #[test]
    fn yuv420_is_half_of_rgb() {
        let res = Resolution::FULL_HD;
        let rgb = PixelFormat::Rgb888.frame_bytes(res);
        let yuv = PixelFormat::Yuv420.frame_bytes(res);
        assert_eq!(yuv.0 * 2, rgb.0);
    }

    #[test]
    fn metadata_overhead_is_tiny() {
        // §4.2: MV metadata is "a very small fraction" of pixel data.
        let t = isp_frame_traffic(Resolution::FULL_HD, PixelFormat::Rgb888, 16, true);
        assert!(t.metadata_write.0 > 0);
        assert!(
            t.metadata_overhead() < 0.01,
            "overhead {}",
            t.metadata_overhead()
        );
    }

    #[test]
    fn stock_isp_writes_no_metadata() {
        let t = isp_frame_traffic(Resolution::FULL_HD, PixelFormat::Rgb888, 16, false);
        assert_eq!(t.metadata_write, Bytes::ZERO);
        assert_eq!(t.total(), t.pixel_write);
    }

    #[test]
    fn overhead_of_empty_traffic_is_zero() {
        let t = IspFrameTraffic::default();
        assert_eq!(t.metadata_overhead(), 0.0);
    }
}
