//! Block-matching motion estimation (§2.3 of the paper) behind a
//! pluggable [`MotionSearch`] engine.
//!
//! The frame is divided into `L × L` macroblocks; for each, the matcher
//! finds the offset within a `(2d+1)²` search window of the *previous*
//! frame minimizing the Sum of Absolute Differences (SAD). *How* the
//! window is explored is a strategy: the paper evaluates exhaustive
//! search against the three-step search (Fig. 11b), and related work
//! treats the search pattern as a first-class accuracy/compute knob.
//! This module therefore exposes the search as a trait with an explicit
//! probe-budget cost model:
//!
//! * [`MotionSearch`] — one search algorithm: a cost model
//!   ([`MotionSearch::probes_per_block`]) plus the walk itself
//!   ([`MotionSearch::search`]), driven through a [`SearchCtx`] that
//!   meters every SAD evaluation (so reported probe counts are measured,
//!   not assumed).
//! * [`SearchStrategy`] — the copyable *name* of a strategy, resolvable
//!   to its engine. Built-ins: [`Exhaustive`](SearchStrategy::Exhaustive)
//!   (`(2d+1)²` probes), [`ThreeStep`](SearchStrategy::ThreeStep) (Koga
//!   et al., `1 + 8·steps` probes), [`Diamond`](SearchStrategy::Diamond)
//!   (Zhu & Ma's LDSP/SDSP walk), and
//!   [`Hierarchical`](SearchStrategy::Hierarchical) (two-level pyramid:
//!   coarse TSS on a 2×-downsampled plane, ±1 refinement at full
//!   resolution). Additional engines plug in at runtime via
//!   [`register_search`] and [`SearchStrategy::Custom`].
//!
//! Each motion vector carries its SAD, from which the per-block confidence
//! of Equ. 2 is derived: `α = 1 − SAD / (255 · n)`, with `n` the number of
//! pixels actually compared (edge blocks may be partial).
//!
//! The SAD kernel is a SWAR micro-kernel: rows are evaluated as 8-pixel
//! lanes in fixed-width per-byte reductions the compiler lowers to the
//! hardware SAD instruction where one exists (`psadbw` on x86-64), with
//! rows addressed by running offsets into the flat sample storage, the
//! ubiquitous 16-px block width fully unrolled (two rows per early-exit
//! check), and candidates abandoned once they provably exceed the
//! incumbent best — abandoned, never mis-scored, so results are
//! bit-identical to the naive kernel. Ahead of the kernel an opt-in SAD
//! *lower-bound prefilter* can be enabled (see
//! [`BlockMatcher::with_prefilter`]): per-row sums of the reference
//! frame are prefix-summed once per frame pair ([`RowPrefix`]), so each
//! fully in-bounds candidate gets a triangle-inequality bound on its
//! SAD from `bh` additions — candidates whose bound already exceeds the
//! incumbent are rejected before a single pixel load, with fields and
//! probe counts provably unchanged. On noisy VGA content the prefilter
//! eliminates ~91 % of exhaustive-search candidate evaluations (4.8×
//! fewer absolute-difference ops) and ~58 % of hierarchical ones
//! (1.55× fewer ops) — the right default for a hardware ISP or any
//! expensive [`MotionSearch`] evaluator, where pixel fetches are the
//! cost. It is *off* by default on the host path because the SWAR
//! early exit already floors a losing candidate at roughly the price
//! of the bound walk itself, so host wall-clock is neutral while the
//! bound adds work to every surviving candidate (measured, not
//! hypothesized — see `ablation_motion_engine`).
//! The best-match tie-break is a
//! *total* order (SAD, then |v|², then `(vy, vx)`), which makes the
//! winner independent of probe order and lets walks reorder probes for
//! early-exit efficiency (the exhaustive walk probes center-out rings).
//! Pyramid strategies can reuse caller-cached 2×-downsampled planes via
//! [`BlockMatcher::estimate_with_pyramid`] — how the streaming frontend
//! avoids rebuilding both levels every frame pair.
//! [`BlockMatcher::estimate_parallel`] additionally spreads macroblock
//! rows across worker threads (blocks are independent, so the field is
//! identical to the serial result).

use euphrates_common::error::{Error, Result};
use euphrates_common::geom::{Rect, Vec2i};
use euphrates_common::image::{downsample2, downsample2_dims, LumaFrame, Resolution};
use euphrates_common::par::parallel_map;
use euphrates_common::units::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// A motion vector with its matching cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Offset of the best match in the previous frame: the block at `(x,y)`
    /// matched the block at `(x−vx, y−vy)` of the previous frame, i.e. the
    /// content *moved by* `v` between the frames.
    pub v: Vec2i,
    /// Sum of absolute differences of the best match.
    pub sad: u32,
}

// ---------------------------------------------------------------------------
// Strategy names + registry
// ---------------------------------------------------------------------------

/// The name of a block-matching search strategy.
///
/// This is the cheap, copyable, hashable identifier carried by
/// configuration structs; [`SearchStrategy::resolve`] yields the actual
/// [`MotionSearch`] engine. [`SearchStrategy::Custom`] names an engine
/// previously installed with [`register_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Full search of every offset in the window (most accurate).
    Exhaustive,
    /// Three-step search: logarithmic refinement (≈9× cheaper at d=7).
    ThreeStep,
    /// Diamond search: large/small diamond pattern walk (Zhu & Ma); fewest
    /// probes on smooth motion, gracefully degrades toward TSS cost.
    Diamond,
    /// Two-level hierarchical (pyramid) search: coarse TSS at half
    /// resolution, ±1 full-resolution refinement.
    Hierarchical,
    /// A runtime-registered engine (see [`register_search`]).
    Custom(&'static str),
}

impl SearchStrategy {
    /// The four built-in strategies, in cost-descending order.
    pub const BUILTIN: [SearchStrategy; 4] = [
        SearchStrategy::Exhaustive,
        SearchStrategy::ThreeStep,
        SearchStrategy::Diamond,
        SearchStrategy::Hierarchical,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::ThreeStep => "three-step",
            SearchStrategy::Diamond => "diamond",
            SearchStrategy::Hierarchical => "hierarchical",
            SearchStrategy::Custom(name) => name,
        }
    }

    /// Resolves the name to its search engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for a [`SearchStrategy::Custom`] name
    /// that was never passed to [`register_search`].
    pub fn resolve(self) -> Result<Arc<dyn MotionSearch>> {
        match self {
            SearchStrategy::Exhaustive => Ok(Arc::new(ExhaustiveSearch)),
            SearchStrategy::ThreeStep => Ok(Arc::new(ThreeStepSearch)),
            SearchStrategy::Diamond => Ok(Arc::new(DiamondSearch)),
            SearchStrategy::Hierarchical => Ok(Arc::new(HierarchicalSearch)),
            SearchStrategy::Custom(name) => registry()
                .read()
                .expect("search registry never poisons")
                .get(name)
                .cloned()
                .ok_or_else(|| {
                    Error::not_found(format!(
                        "no motion search registered under `{name}` (call register_search first)"
                    ))
                }),
        }
    }

    /// SAD probes per macroblock under this strategy's cost model.
    ///
    /// # Panics
    ///
    /// Panics for an unregistered [`SearchStrategy::Custom`] name
    /// (construction-time validation in [`BlockMatcher::new`] rejects
    /// those before any cost model is consulted).
    pub fn probes_per_block(self, search_range: u32) -> u64 {
        self.resolve()
            .expect("strategy validated at construction")
            .probes_per_block(search_range)
    }

    /// Arithmetic operations per macroblock for this strategy, per the
    /// paper's cost model (§2.3).
    ///
    /// # Panics
    ///
    /// Panics for an unregistered [`SearchStrategy::Custom`] name.
    pub fn ops_per_block(self, mb_size: u32, search_range: u32) -> u64 {
        self.resolve()
            .expect("strategy validated at construction")
            .ops_per_block(mb_size, search_range)
    }
}

impl fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn registry() -> &'static RwLock<BTreeMap<&'static str, Arc<dyn MotionSearch>>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<&'static str, Arc<dyn MotionSearch>>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Installs a custom search engine under its [`MotionSearch::name`],
/// returning the [`SearchStrategy::Custom`] handle that names it (use the
/// handle anywhere a strategy is configured — `MotionConfig`,
/// [`BlockMatcher::new`], the ISP pipeline).
///
/// # Errors
///
/// Rejects names that collide with a built-in strategy or a previously
/// registered engine (the registry is process-global; last-wins
/// replacement would make results order-dependent).
pub fn register_search(search: Arc<dyn MotionSearch>) -> Result<SearchStrategy> {
    let name = search.name();
    if SearchStrategy::BUILTIN.iter().any(|b| b.name() == name) {
        return Err(Error::config(format!(
            "`{name}` is a built-in search strategy name"
        )));
    }
    let mut map = registry().write().expect("search registry never poisons");
    if map.contains_key(name) {
        return Err(Error::config(format!(
            "a motion search is already registered under `{name}`"
        )));
    }
    map.insert(name, search);
    Ok(SearchStrategy::Custom(name))
}

// ---------------------------------------------------------------------------
// MotionSearch trait + metered search context
// ---------------------------------------------------------------------------

/// One block-matching search algorithm: a probe-budget cost model plus
/// the search walk itself.
///
/// Implementations explore the window exclusively through
/// [`SearchCtx::probe`] (and [`SearchCtx::probe_coarse`] for pyramid
/// strategies), which meters every SAD evaluation, memoizes visited
/// offsets, early-exits against the incumbent best, and maintains the
/// best-so-far under the deterministic tie-break (lower SAD, then
/// shorter vector, then smaller `(vy, vx)` lexicographically). The
/// tie-break is a *total* order, so the winner over any candidate set is
/// independent of visiting order — which is what lets walks reorder
/// probes for better early-exit behaviour without changing results. The
/// zero offset is always probed before `search` runs, so no strategy can
/// return a match worse than the zero vector.
pub trait MotionSearch: fmt::Debug + Send + Sync {
    /// Stable engine name (registry key, bench label).
    fn name(&self) -> &'static str;

    /// Cost model: SAD probes per macroblock at search range `d`. An
    /// upper bound for adaptive walks; measured counts
    /// ([`SearchStats::probes`]) must never exceed it.
    fn probes_per_block(&self, search_range: u32) -> u64;

    /// Cost model: arithmetic operations per `mb_size²` macroblock. The
    /// default charges one op per pixel per probe; pyramid strategies
    /// override it to price coarse probes at their smaller block size.
    fn ops_per_block(&self, mb_size: u32, search_range: u32) -> u64 {
        u64::from(mb_size) * u64::from(mb_size) * self.probes_per_block(search_range)
    }

    /// `true` if the engine needs the 2×-downsampled pyramid level
    /// ([`SearchCtx::probe_coarse`]); the matcher then builds it once per
    /// frame pair.
    fn wants_pyramid(&self) -> bool {
        false
    }

    /// Explores the window for the block described by `ctx`. The result
    /// is whatever [`SearchCtx::best`] holds afterwards.
    fn search(&self, ctx: &mut SearchCtx<'_>);
}

/// Measured search-effort counters for one [`BlockMatcher::estimate_with_stats`]
/// call (or an aggregate of several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Macroblocks searched.
    pub blocks: u64,
    /// Candidate evaluations charged: every offset accepted by
    /// [`SearchCtx::probe`] / [`SearchCtx::probe_coarse`] (memoized
    /// re-probes and out-of-range candidates are not counted). The
    /// count is *invariant* under the lower-bound prefilter — a probe
    /// the prefilter resolves without touching pixels is charged
    /// exactly like the full evaluation it replaced
    /// ([`lb_skips`][SearchStats::lb_skips] says how many went that
    /// way).
    pub probes: u64,
    /// Absolute-difference operations actually performed (early-exited
    /// probes charge only the rows they evaluated; prefilter-skipped
    /// probes charge none).
    pub sad_ops: u64,
    /// Probes resolved by the SAD lower-bound prefilter alone — the
    /// row-sum bound already exceeded the incumbent, so no pixel data
    /// was loaded. A subset of [`probes`][SearchStats::probes]; zero
    /// when the prefilter is disabled.
    pub lb_skips: u64,
}

impl SearchStats {
    /// Mean measured probes per macroblock.
    pub fn probes_per_block(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.probes as f64 / self.blocks as f64
        }
    }

    /// Accumulates another run's counters.
    pub fn merge(&mut self, other: &SearchStats) {
        self.blocks += other.blocks;
        self.probes += other.probes;
        self.sad_ops += other.sad_ops;
        self.lb_skips += other.lb_skips;
    }
}

// ---------------------------------------------------------------------------
// Row-prefix tables (SAD lower-bound prefilter)
// ---------------------------------------------------------------------------

/// Per-row inclusive prefix sums of a luma plane: the sum of any row
/// segment in O(1). One table per *reference* frame serves every
/// macroblock and every candidate offset of a frame pair — the fuel for
/// the SAD lower-bound prefilter (see [`SearchCtx::probe`]). Per row,
/// `|Σ cur − Σ cand| = |Σ (cur − cand)| ≤ Σ |cur − cand|` (triangle
/// inequality), so summing the per-row absolute sum differences bounds
/// the block SAD from below; a candidate whose bound already exceeds
/// the incumbent is rejected from `bh` additions instead of up to
/// `bh·bw` pixel loads — and provably could not have won, so fields are
/// bit-identical. Streaming callers build each frame's table once
/// ([`rebuild`][RowPrefix::rebuild] into a reused buffer) and
/// double-buffer it alongside the luma planes, exactly like the
/// pyramid level (see [`BlockMatcher::estimate_cached`]).
#[derive(Debug, Clone, Default)]
pub struct RowPrefix {
    /// Row stride: plane width + 1 (each row leads with a zero).
    w1: usize,
    h: usize,
    data: Vec<u32>,
}

impl RowPrefix {
    /// Builds the table for `frame`.
    pub fn build(frame: &LumaFrame) -> Self {
        let mut t = RowPrefix::default();
        t.rebuild(frame);
        t
    }

    /// Rebuilds the table in place for `frame`, reusing the allocation
    /// (the steady-state entry point for streaming callers).
    pub fn rebuild(&mut self, frame: &LumaFrame) {
        let w = frame.width() as usize;
        self.w1 = w + 1;
        self.h = frame.height() as usize;
        self.data.resize(self.w1 * self.h, 0);
        for (out, row) in self
            .data
            .chunks_exact_mut(self.w1)
            .zip(frame.samples().chunks_exact(w))
        {
            let mut run = 0u32;
            out[0] = 0;
            for (o, &px) in out[1..].iter_mut().zip(row) {
                run += u32::from(px);
                *o = run;
            }
        }
    }

    /// `true` if the table was built for a plane of `frame`'s shape.
    pub fn matches(&self, frame: &LumaFrame) -> bool {
        self.w1 == frame.width() as usize + 1 && self.h == frame.height() as usize
    }

    /// `true` if the candidate block at `(rx, ry)` provably cannot beat
    /// `limit`: the running row-sum bound is compared against `limit`
    /// after every row, so clear losers are rejected after a couple of
    /// additions — the same early-exit shape as the SAD kernel itself.
    /// The row walk is a strength-reduced stride over one up-front
    /// subslice (no per-row multiply, one range check for the window).
    #[inline]
    fn rejects(&self, cur_rows: &[u32], rx: usize, ry: usize, bw: usize, limit: u32) -> bool {
        let Some(last) = cur_rows.len().checked_sub(1) else {
            return false;
        };
        let start = ry * self.w1 + rx;
        let tab = &self.data[start..start + last * self.w1 + bw + 1];
        let mut bound = 0u32;
        let mut base = 0usize;
        for &cr in cur_rows {
            bound += cr.abs_diff(tab[base + bw] - tab[base]);
            if bound > limit {
                return true;
            }
            base += self.w1;
        }
        false
    }
}

/// Reusable per-worker scratch (visited-offset bitmaps and the current
/// block's row sums), so per-block bookkeeping costs a `fill` instead
/// of an allocation.
#[derive(Debug, Default)]
struct Scratch {
    visited: Vec<bool>,
    coarse_visited: Vec<bool>,
    cur_rows: Vec<u32>,
    ccur_rows: Vec<u32>,
}

/// The metered view of one macroblock's search a [`MotionSearch`] engine
/// operates through.
#[derive(Debug)]
pub struct SearchCtx<'a> {
    cur: &'a LumaFrame,
    prev: &'a LumaFrame,
    coarse: Option<(&'a LumaFrame, &'a LumaFrame)>,
    x0: u32,
    y0: u32,
    bw: u32,
    bh: u32,
    /// Coarse block geometry (origin + extent in the pyramid plane),
    /// hoisted out of the per-probe path: halved origin/extent, clamped
    /// into the plane (odd origins floor toward it).
    cgeom: (u32, u32, u32, u32),
    d: i32,
    dc: i32,
    best: MotionVector,
    probes: u64,
    sad_ops: u64,
    lb_skips: u64,
    visited: &'a mut [bool],
    coarse_visited: &'a mut [bool],
    /// Reference-frame row-prefix tables (fine, coarse) — present only
    /// when the matcher's lower-bound prefilter is enabled.
    prefix: Option<&'a RowPrefix>,
    cprefix: Option<&'a RowPrefix>,
    /// Row sums of the current block (fine, coarse), filled when the
    /// matching prefix table is present.
    cur_rows: &'a [u32],
    ccur_rows: &'a [u32],
}

impl<'a> SearchCtx<'a> {
    #[allow(clippy::too_many_arguments)] // constructed in one place, by the matcher
    fn new(
        cur: &'a LumaFrame,
        prev: &'a LumaFrame,
        coarse: Option<(&'a LumaFrame, &'a LumaFrame)>,
        prefix: Option<&'a RowPrefix>,
        cprefix: Option<&'a RowPrefix>,
        scratch: &'a mut Scratch,
        x0: u32,
        y0: u32,
        bw: u32,
        bh: u32,
        d: i32,
    ) -> Self {
        let dc = coarse_range(d);
        let fine_cells = ((2 * d + 1) * (2 * d + 1)) as usize;
        let coarse_cells = ((2 * dc + 1) * (2 * dc + 1)) as usize;
        scratch.visited.resize(fine_cells, false);
        scratch.visited.fill(false);
        scratch.coarse_visited.resize(coarse_cells, false);
        scratch.coarse_visited.fill(false);
        let cgeom = match coarse {
            Some((ccur, _)) => {
                let cw = ccur.width();
                let ch = ccur.height();
                let cx0 = (x0 / 2).min(cw - 1);
                let cy0 = (y0 / 2).min(ch - 1);
                (
                    cx0,
                    cy0,
                    (bw / 2).max(1).min(cw - cx0),
                    (bh / 2).max(1).min(ch - cy0),
                )
            }
            None => (0, 0, 0, 0),
        };
        // Block row sums for the prefilter bound, once per block — the
        // cost of roughly one probe, amortized over the whole walk.
        scratch.cur_rows.clear();
        if prefix.is_some() {
            for r in 0..bh {
                let row = &cur.row(y0 + r)[x0 as usize..(x0 + bw) as usize];
                scratch.cur_rows.push(row_total(row));
            }
        }
        scratch.ccur_rows.clear();
        if cprefix.is_some() {
            if let Some((ccur, _)) = coarse {
                let (cx0, cy0, cbw, cbh) = cgeom;
                for r in 0..cbh {
                    let row = &ccur.row(cy0 + r)[cx0 as usize..(cx0 + cbw) as usize];
                    scratch.ccur_rows.push(row_total(row));
                }
            }
        }
        let mut ctx = SearchCtx {
            cur,
            prev,
            coarse,
            x0,
            y0,
            bw,
            bh,
            cgeom,
            d,
            dc,
            best: MotionVector {
                v: Vec2i::ZERO,
                sad: u32::MAX,
            },
            probes: 0,
            sad_ops: 0,
            lb_skips: 0,
            visited: &mut scratch.visited,
            coarse_visited: &mut scratch.coarse_visited,
            prefix,
            cprefix,
            cur_rows: &scratch.cur_rows,
            ccur_rows: &scratch.ccur_rows,
        };
        // Seed: the zero offset is always evaluated first, so no strategy
        // can return a match worse than the zero vector.
        ctx.probe(0, 0);
        ctx
    }

    /// Search range `d`: probes are confined to `|vx|, |vy| ≤ d`.
    pub fn range(&self) -> i32 {
        self.d
    }

    /// Coarse-level search range (pyramid strategies).
    pub fn coarse_range(&self) -> i32 {
        self.dc
    }

    /// `true` if the matcher built the 2×-downsampled pyramid level for
    /// this frame pair (i.e. the engine declared
    /// [`MotionSearch::wants_pyramid`]).
    pub fn has_pyramid(&self) -> bool {
        self.coarse.is_some()
    }

    /// The best match found so far (the zero offset is always probed
    /// before the engine runs).
    pub fn best(&self) -> MotionVector {
        self.best
    }

    /// The block's pixel size (edge blocks may be partial).
    pub fn block_size(&self) -> (u32, u32) {
        (self.bw, self.bh)
    }

    fn visited_index(&self, vx: i32, vy: i32) -> usize {
        let w = 2 * self.d + 1;
        ((vy + self.d) * w + (vx + self.d)) as usize
    }

    /// Probes offset `(vx, vy)`: evaluates the block SAD (early-exiting
    /// once it provably exceeds the incumbent best) and folds the result
    /// into [`SearchCtx::best`]. Returns `false` without evaluating
    /// anything for out-of-range or already-probed offsets, so adaptive
    /// walks may revisit freely at zero cost.
    ///
    /// When the matcher's lower-bound prefilter is enabled, a fully
    /// in-bounds candidate whose row-sum bound (see [`RowPrefix`])
    /// *strictly* exceeds the incumbent SAD is rejected without loading
    /// a pixel: its true SAD is at least the bound, so it could not
    /// have displaced the best under the `(SAD, |v|², (vy, vx))` total
    /// order. Exact-bound ties are always fully evaluated, keeping the
    /// shorter-vector tie-break bit-identical to the unfiltered walk;
    /// the rejection is metered as a probe, so probe counts are
    /// invariant too.
    pub fn probe(&mut self, vx: i32, vy: i32) -> bool {
        if vx.abs() > self.d || vy.abs() > self.d {
            return false;
        }
        let idx = self.visited_index(vx, vy);
        if self.visited[idx] {
            return false;
        }
        self.visited[idx] = true;
        let limit = self.best.sad;
        if let Some(pf) = self.prefix {
            let rx = i64::from(self.x0) - i64::from(vx);
            let ry = i64::from(self.y0) - i64::from(vy);
            let in_bounds = rx >= 0
                && ry >= 0
                && rx + i64::from(self.bw) <= i64::from(self.prev.width())
                && ry + i64::from(self.bh) <= i64::from(self.prev.height());
            if in_bounds
                && pf.rejects(
                    self.cur_rows,
                    rx as usize,
                    ry as usize,
                    self.bw as usize,
                    limit,
                )
            {
                self.probes += 1;
                self.lb_skips += 1;
                return true;
            }
        }
        let (sad, rows) = sad_block(
            self.cur, self.prev, self.x0, self.y0, self.bw, self.bh, vx, vy, limit,
        );
        self.probes += 1;
        self.sad_ops += u64::from(rows) * u64::from(self.bw);
        let v = Vec2i::new(vx as i16, vy as i16);
        if sad < self.best.sad
            || (sad == self.best.sad
                && (v.norm_sq(), v.y, v.x) < (self.best.v.norm_sq(), self.best.v.y, self.best.v.x))
        {
            self.best = MotionVector { v, sad };
        }
        true
    }

    /// Probes offset `(vx, vy)` at the coarse pyramid level, returning
    /// the coarse SAD. Coarse probes are metered like fine ones (at the
    /// coarse block's smaller pixel count) but do not touch
    /// [`SearchCtx::best`] — the engine owns coarse-level bookkeeping,
    /// including the early-exit `limit`: a returned SAD strictly greater
    /// than `limit` may be partial (the evaluation abandoned the
    /// candidate as soon as it provably lost to the engine's coarse
    /// incumbent), so it is only meaningful as "worse than limit". Pass
    /// `u32::MAX` for exact SADs. Returns `None` when out of coarse
    /// range, already probed, or no pyramid was built.
    pub fn probe_coarse(&mut self, vx: i32, vy: i32, limit: u32) -> Option<u32> {
        let (ccur, cprev) = self.coarse?;
        if vx.abs() > self.dc || vy.abs() > self.dc {
            return None;
        }
        let w = 2 * self.dc + 1;
        let idx = ((vy + self.dc) * w + (vx + self.dc)) as usize;
        if self.coarse_visited[idx] {
            return None;
        }
        self.coarse_visited[idx] = true;
        let (cx0, cy0, cbw, cbh) = self.cgeom;
        if let Some(pf) = self.cprefix {
            let rx = i64::from(cx0) - i64::from(vx);
            let ry = i64::from(cy0) - i64::from(vy);
            let in_bounds = rx >= 0
                && ry >= 0
                && rx + i64::from(cbw) <= i64::from(cprev.width())
                && ry + i64::from(cbh) <= i64::from(cprev.height());
            if in_bounds
                && pf.rejects(
                    self.ccur_rows,
                    rx as usize,
                    ry as usize,
                    cbw as usize,
                    limit,
                )
            {
                // Contract-compatible rejection: the (partial) bound
                // is a lower bound on the true SAD and strictly
                // exceeds `limit`, which is exactly the "partial SAD"
                // shape an early-exited evaluation would return — the
                // engine's incumbent test rejects it the same way, so
                // coarse walks are bit-identical. `limit + 1` is the
                // smallest value with that property.
                self.probes += 1;
                self.lb_skips += 1;
                return Some(limit.saturating_add(1));
            }
        }
        let (sad, rows) = sad_block(ccur, cprev, cx0, cy0, cbw, cbh, vx, vy, limit);
        self.probes += 1;
        self.sad_ops += u64::from(rows) * u64::from(cbw);
        Some(sad)
    }
}

/// Coarse pyramid search range covering fine range `d` after ×2 upscale.
fn coarse_range(d: i32) -> i32 {
    ((d + 1) / 2).max(1)
}

// ---------------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------------

/// Full-window search: every offset probed, in center-out Chebyshev
/// rings. Ring order reaches the true match (small for typical tracking
/// motion) after ~`(2|v|+1)²` probes instead of half the window, so the
/// incumbent drops early and the SAD kernel's early exit abandons the
/// remaining candidates after a row or two — same probe count, same
/// result (the tie-break is visit-order-independent), much less
/// arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSearch;

impl MotionSearch for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn probes_per_block(&self, search_range: u32) -> u64 {
        let w = 2 * u64::from(search_range) + 1;
        w * w
    }

    fn search(&self, ctx: &mut SearchCtx<'_>) {
        let d = ctx.range();
        for r in 1..=d {
            for vx in -r..=r {
                ctx.probe(vx, -r);
                ctx.probe(vx, r);
            }
            for vy in (-r + 1)..r {
                ctx.probe(-r, vy);
                ctx.probe(r, vy);
            }
        }
    }
}

/// The TSS starting step at range `d`: the largest power of two ≤
/// max(1, ⌈d/2⌉). The single source of truth shared by the walks and
/// their cost models, so neither can silently drift from the other.
fn tss_initial_step(d: i32) -> i32 {
    let mut step = 1i32;
    while step * 2 <= (d + 1) / 2 {
        step *= 2;
    }
    step
}

/// The number of step-halving rounds TSS performs at range `d`.
fn tss_steps(search_range: u32) -> u32 {
    (tss_initial_step(search_range as i32) as u32).ilog2() + 1
}

const RING8: [(i32, i32); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Three-step search (Koga et al.): probe 8 neighbors at logarithmically
/// shrinking steps, re-centering on the best.
#[derive(Debug, Clone, Copy)]
pub struct ThreeStepSearch;

impl MotionSearch for ThreeStepSearch {
    fn name(&self) -> &'static str {
        "three-step"
    }

    /// Exact probe count of the walk: the center plus 8 ring probes per
    /// step round. (The historical `1 + 8·log₂(d+1)` closed form
    /// over-counted at ranges that are not `2^k − 1`; this model counts
    /// the rounds the walk actually performs, and the conformance test
    /// in `crates/isp/tests` keeps measured counts within it.)
    fn probes_per_block(&self, search_range: u32) -> u64 {
        1 + 8 * u64::from(tss_steps(search_range))
    }

    fn search(&self, ctx: &mut SearchCtx<'_>) {
        let d = ctx.range();
        let mut center = Vec2i::ZERO;
        let mut step = tss_initial_step(d);
        while step >= 1 {
            for (sx, sy) in RING8 {
                ctx.probe(
                    i32::from(center.x) + sx * step,
                    i32::from(center.y) + sy * step,
                );
            }
            center = ctx.best().v;
            step /= 2;
        }
    }
}

/// Large diamond search pattern: the 8 non-center points of a radius-2
/// diamond.
const LDSP: [(i32, i32); 8] = [
    (0, -2),
    (1, -1),
    (2, 0),
    (1, 1),
    (0, 2),
    (-1, 1),
    (-2, 0),
    (-1, -1),
];

/// Small diamond search pattern (final refinement).
const SDSP: [(i32, i32); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

/// Diamond search (Zhu & Ma, 2000): walk the large diamond pattern until
/// the best stays at the center, then refine with the small diamond.
#[derive(Debug, Clone, Copy)]
pub struct DiamondSearch;

impl MotionSearch for DiamondSearch {
    fn name(&self) -> &'static str {
        "diamond"
    }

    /// Sound upper bound: the walk performs at most `2d` large-diamond
    /// rounds (enforced by the loop cap below), each probing at most 8
    /// new points (memoization keeps revisits free), plus the seed probe
    /// and the 4-point small diamond — and never more than the window
    /// holds. Typical measured cost on tracking content is ~13–20 probes.
    fn probes_per_block(&self, search_range: u32) -> u64 {
        let window = (2 * u64::from(search_range) + 1).pow(2);
        (13 + 16 * u64::from(search_range)).min(window)
    }

    fn search(&self, ctx: &mut SearchCtx<'_>) {
        let d = ctx.range();
        let mut center = Vec2i::ZERO;
        // The incumbent (SAD, |v|²) strictly improves every re-centering
        // round, so the walk cannot cycle; the `2d`-round cap both bounds
        // pathological winding paths and makes `probes_per_block` a true
        // upper bound (1 seed + 8·2d LDSP + 4 SDSP ≤ 13 + 16d).
        for _ in 0..(2 * d.max(1)) {
            for (ox, oy) in LDSP {
                ctx.probe(i32::from(center.x) + ox, i32::from(center.y) + oy);
            }
            let best = ctx.best().v;
            if best == center {
                break;
            }
            center = best;
        }
        for (ox, oy) in SDSP {
            ctx.probe(i32::from(center.x) + ox, i32::from(center.y) + oy);
        }
    }
}

/// Two-level hierarchical (pyramid) search: a coarse TSS walk on the
/// 2×-downsampled plane picks a candidate, which a ±1 full-resolution
/// window refines (covering the ×2 upscale quantization).
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalSearch;

impl MotionSearch for HierarchicalSearch {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    /// One fine seed probe + the coarse TSS walk + the 3×3 refinement.
    fn probes_per_block(&self, search_range: u32) -> u64 {
        let dc = coarse_range(search_range as i32) as u32;
        1 + (1 + 8 * u64::from(tss_steps(dc))) + 9
    }

    /// Coarse probes compare quarter-size blocks; price them accordingly.
    fn ops_per_block(&self, mb_size: u32, search_range: u32) -> u64 {
        let dc = coarse_range(search_range as i32) as u32;
        let l2 = u64::from(mb_size) * u64::from(mb_size);
        let coarse = (1 + 8 * u64::from(tss_steps(dc))) * (l2 / 4).max(1);
        let fine = 10 * l2; // seed + 3×3 refinement
        coarse + fine
    }

    fn wants_pyramid(&self) -> bool {
        true
    }

    fn search(&self, ctx: &mut SearchCtx<'_>) {
        if !ctx.has_pyramid() {
            // Degenerate fallback (never reached through BlockMatcher,
            // which builds the pyramid for us): plain three-step.
            ThreeStepSearch.search(ctx);
            return;
        }
        // Coarse TSS walk. Coarse bookkeeping is local: probe_coarse
        // meters evaluations but the fine incumbent is untouched; the
        // coarse incumbent doubles as the early-exit limit, so losing
        // candidates abandon after a row or two (a partial SAD is by
        // contract > best.0, which the `better` test rejects exactly as
        // the full SAD would).
        let dc = ctx.coarse_range();
        let mut center = (0i32, 0i32);
        let mut best = (
            ctx.probe_coarse(0, 0, u32::MAX).unwrap_or(u32::MAX),
            (0i32, 0i32),
        );
        let mut step = tss_initial_step(dc);
        while step >= 1 {
            for (sx, sy) in RING8 {
                let (vx, vy) = (center.0 + sx * step, center.1 + sy * step);
                if let Some(sad) = ctx.probe_coarse(vx, vy, best.0) {
                    let better = sad < best.0
                        || (sad == best.0
                            && vx * vx + vy * vy < best.1 .0.pow(2) + best.1 .1.pow(2));
                    if better {
                        best = (sad, (vx, vy));
                    }
                }
            }
            center = best.1;
            step /= 2;
        }
        // Fine refinement: ±1 around the upscaled coarse candidate (the
        // seed probe already covered the zero offset). The candidate
        // itself goes first — it is the likeliest winner, and a low fine
        // incumbent makes the 8 neighbours abandon early (probe order
        // cannot change the result: the tie-break is a total order).
        let (fx, fy) = (2 * best.1 .0, 2 * best.1 .1);
        ctx.probe(fx, fy);
        for ey in -1..=1 {
            for ex in -1..=1 {
                ctx.probe(fx + ex, fy + ey);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MotionField
// ---------------------------------------------------------------------------

/// Per-frame motion metadata: one [`MotionVector`] per macroblock.
///
/// This is the data structure the augmented ISP writes into the frame
/// buffer's metadata section (§4.2) and the Motion Controller consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionField {
    mb_size: u32,
    search_range: u32,
    width: u32,
    height: u32,
    blocks_x: u32,
    blocks_y: u32,
    vectors: Vec<MotionVector>,
}

impl MotionField {
    /// Creates a zero-motion field (used for the first frame of a stream,
    /// which has no predecessor).
    pub fn zeroed(resolution: Resolution, mb_size: u32, search_range: u32) -> Result<Self> {
        validate_params(mb_size, search_range)?;
        let (bx, by) = resolution.macroblocks(mb_size);
        Ok(MotionField {
            mb_size,
            search_range,
            width: resolution.width,
            height: resolution.height,
            blocks_x: bx,
            blocks_y: by,
            vectors: vec![MotionVector::default(); (bx * by) as usize],
        })
    }

    /// Macroblock edge length.
    pub fn mb_size(&self) -> u32 {
        self.mb_size
    }

    /// Search range `d` the field was estimated with.
    pub fn search_range(&self) -> u32 {
        self.search_range
    }

    /// Number of macroblock columns.
    pub fn blocks_x(&self) -> u32 {
        self.blocks_x
    }

    /// Number of macroblock rows.
    pub fn blocks_y(&self) -> u32 {
        self.blocks_y
    }

    /// Frame resolution the field describes.
    pub fn resolution(&self) -> Resolution {
        Resolution::new(self.width, self.height)
    }

    /// Total number of macroblocks.
    pub fn block_count(&self) -> usize {
        self.vectors.len()
    }

    /// The motion vector of block `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn at_block(&self, bx: u32, by: u32) -> MotionVector {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        self.vectors[(by * self.blocks_x + bx) as usize]
    }

    /// Overwrites the motion vector of block `(bx, by)` (used by
    /// alternative motion sources: raw-domain matching, codec MVs, IMU
    /// fusion).
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn set_block(&mut self, bx: u32, by: u32, mv: MotionVector) {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        self.vectors[(by * self.blocks_x + bx) as usize] = mv;
    }

    /// The motion vector inherited by pixel `(x, y)` — each pixel takes the
    /// MV of the macroblock containing it (§3.2).
    pub fn at_pixel(&self, x: u32, y: u32) -> MotionVector {
        let bx = (x / self.mb_size).min(self.blocks_x - 1);
        let by = (y / self.mb_size).min(self.blocks_y - 1);
        self.at_block(bx, by)
    }

    /// Number of pixels block `(bx, by)` actually covers (edge blocks may
    /// be partial).
    pub fn block_pixels(&self, bx: u32, by: u32) -> u32 {
        let w = (self.width - bx * self.mb_size).min(self.mb_size);
        let h = (self.height - by * self.mb_size).min(self.mb_size);
        w * h
    }

    /// Confidence of block `(bx, by)` per Equ. 2: `1 − SAD/(255·n)`,
    /// clamped to `[0, 1]`.
    pub fn confidence(&self, bx: u32, by: u32) -> f64 {
        let mv = self.at_block(bx, by);
        let n = self.block_pixels(bx, by);
        if n == 0 {
            return 0.0;
        }
        (1.0 - f64::from(mv.sad) / (255.0 * f64::from(n))).clamp(0.0, 1.0)
    }

    /// The pixel rectangle covered by block `(bx, by)`.
    pub fn block_rect(&self, bx: u32, by: u32) -> Rect {
        let x = f64::from(bx * self.mb_size);
        let y = f64::from(by * self.mb_size);
        let w = f64::from((self.width - bx * self.mb_size).min(self.mb_size));
        let h = f64::from((self.height - by * self.mb_size).min(self.mb_size));
        Rect::new(x, y, w, h)
    }

    /// Iterates over `(bx, by, MotionVector)` for blocks whose rectangle
    /// intersects `roi`. This is the access pattern of the extrapolation
    /// engine (Equ. 1 averages the MVs an ROI covers).
    pub fn blocks_in_roi<'a>(
        &'a self,
        roi: &Rect,
    ) -> impl Iterator<Item = (u32, u32, MotionVector)> + 'a {
        let mb = f64::from(self.mb_size);
        let bx0 = (roi.x / mb).floor().max(0.0) as u32;
        let by0 = (roi.y / mb).floor().max(0.0) as u32;
        let bx1 = ((roi.right() / mb).ceil() as i64).clamp(0, i64::from(self.blocks_x)) as u32;
        let by1 = ((roi.bottom() / mb).ceil() as i64).clamp(0, i64::from(self.blocks_y)) as u32;
        let roi = *roi;
        (by0..by1).flat_map(move |by| {
            (bx0..bx1).filter_map(move |bx| {
                let r = self.block_rect(bx, by);
                if r.intersection(&roi).area() > 0.0 {
                    Some((bx, by, self.at_block(bx, by)))
                } else {
                    None
                }
            })
        })
    }

    /// Bytes of frame-buffer metadata this field occupies: per block, 1 byte
    /// per MV component (d ≤ 127) plus 2 bytes of SAD-derived confidence,
    /// matching the §4.2 estimate of ~8 KB per 1080p frame for the MVs.
    pub fn metadata_bytes(&self) -> Bytes {
        Bytes(self.vectors.len() as u64 * 4)
    }

    /// Mean motion magnitude over all blocks (diagnostic).
    pub fn mean_magnitude(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .vectors
            .iter()
            .map(|mv| (mv.v.norm_sq() as f64).sqrt())
            .sum();
        sum / self.vectors.len() as f64
    }
}

fn validate_params(mb_size: u32, search_range: u32) -> Result<()> {
    if mb_size == 0 {
        return Err(Error::config("macroblock size must be positive"));
    }
    if search_range == 0 || search_range > 127 {
        return Err(Error::config(format!(
            "search range must be in 1..=127, got {search_range}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// BlockMatcher
// ---------------------------------------------------------------------------

/// Caller-cached derived planes for [`BlockMatcher::estimate_cached`].
///
/// Streaming callers build each frame's derived planes exactly once and
/// double-buffer them alongside the luma planes; anything left `None`
/// that the configuration needs is built internally per call (results
/// are bit-identical either way — the search sees the same data).
#[derive(Debug, Default, Clone, Copy)]
pub struct CachedPlanes<'a> {
    /// 2×-downsampled planes of the current / previous frame
    /// ([`downsample2`] of each), consumed by pyramid strategies.
    pub pyramid: Option<(&'a LumaFrame, &'a LumaFrame)>,
    /// Row-prefix table of the *previous* (reference) frame, consumed
    /// by the lower-bound prefilter.
    pub prefix_prev: Option<&'a RowPrefix>,
    /// Row-prefix table of the coarse previous plane (requires
    /// `pyramid`).
    pub coarse_prefix_prev: Option<&'a RowPrefix>,
}

/// Block-matching motion estimator driving a pluggable [`MotionSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatcher {
    mb_size: u32,
    search_range: u32,
    strategy: SearchStrategy,
    prefilter: bool,
}

impl BlockMatcher {
    /// Creates a matcher with macroblock size `mb_size` (typically 16),
    /// search range `d` (typically 7), and the given strategy. The SAD
    /// lower-bound prefilter starts disabled (it never changes results
    /// — see [`BlockMatcher::with_prefilter`] for when to turn it on).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero macroblock size or a
    /// search range outside `1..=127` (MVs must fit the 1-byte encoding),
    /// and [`Error::NotFound`] for an unregistered custom strategy.
    pub fn new(mb_size: u32, search_range: u32, strategy: SearchStrategy) -> Result<Self> {
        validate_params(mb_size, search_range)?;
        strategy.resolve()?; // custom names must already be registered
        Ok(BlockMatcher {
            mb_size,
            search_range,
            strategy,
            prefilter: false,
        })
    }

    /// Enables or disables the SAD lower-bound prefilter (default:
    /// disabled). The prefilter rejects candidates whose per-row
    /// bound (see [`RowPrefix`]) already exceeds the incumbent SAD
    /// before any pixel is loaded; motion fields and measured probe
    /// counts are bit-identical either way (pinned by the property
    /// suite in `tests/search_properties.rs`), only
    /// [`SearchStats::sad_ops`] / [`SearchStats::lb_skips`] change.
    ///
    /// Enable it when candidate evaluation is expensive — a custom
    /// [`MotionSearch`] with a scalar or non-early-exit kernel, or when
    /// modelling the hardware ISP, where every absolute-difference op
    /// is a pixel fetch and the op-count cut is the point (4.8× on
    /// noisy VGA exhaustive search, 1.55× hierarchical; see the module
    /// docs and `ablation_motion_engine`). On the host's SWAR kernel
    /// the early exit already floors losing candidates at roughly the
    /// bound's own cost, so wall-clock stays neutral and the default
    /// is off.
    #[must_use]
    pub fn with_prefilter(mut self, enabled: bool) -> Self {
        self.prefilter = enabled;
        self
    }

    /// `true` if the SAD lower-bound prefilter is enabled.
    pub fn prefilter(&self) -> bool {
        self.prefilter
    }

    /// Macroblock size.
    pub fn mb_size(&self) -> u32 {
        self.mb_size
    }

    /// Search range `d`.
    pub fn search_range(&self) -> u32 {
        self.search_range
    }

    /// Search strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Arithmetic operations per frame at `resolution` under the
    /// strategy's cost model (feeds the ISP power overhead estimate).
    pub fn ops_per_frame(&self, resolution: Resolution) -> u64 {
        let (bx, by) = resolution.macroblocks(self.mb_size);
        u64::from(bx) * u64::from(by) * self.strategy.ops_per_block(self.mb_size, self.search_range)
    }

    /// SAD probes per frame at `resolution` under the strategy's cost
    /// model (an upper bound for adaptive walks).
    pub fn probes_per_frame(&self, resolution: Resolution) -> u64 {
        let (bx, by) = resolution.macroblocks(self.mb_size);
        u64::from(bx) * u64::from(by) * self.strategy.probes_per_block(self.search_range)
    }

    /// Estimates the motion field of `cur` relative to `prev`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size.
    pub fn estimate(&self, cur: &LumaFrame, prev: &LumaFrame) -> Result<MotionField> {
        self.estimate_with_stats(cur, prev).map(|(field, _)| field)
    }

    /// Estimates the motion field, also returning measured search-effort
    /// counters (actual SAD probes and absolute-difference operations).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size.
    pub fn estimate_with_stats(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
    ) -> Result<(MotionField, SearchStats)> {
        self.estimate_inner(cur, prev, CachedPlanes::default(), 1)
    }

    /// `true` if this matcher's strategy consumes the 2×-downsampled
    /// pyramid level — the signal for streaming callers to cache one
    /// [`downsample2`] plane per frame slot and pass it to
    /// [`estimate_with_pyramid`][BlockMatcher::estimate_with_pyramid]
    /// instead of letting every [`estimate`][BlockMatcher::estimate]
    /// call rebuild both levels.
    pub fn wants_pyramid(&self) -> bool {
        self.strategy
            .resolve()
            .expect("strategy validated at construction")
            .wants_pyramid()
    }

    /// [`estimate_with_stats`][BlockMatcher::estimate_with_stats] with
    /// caller-cached pyramid planes: `coarse_cur` / `coarse_prev` must be
    /// the [`downsample2`] of `cur` / `prev`. A streaming frontend
    /// computes each frame's coarse plane exactly once (into a reused
    /// buffer, see [`downsample2_into`][euphrates_common::image::downsample2_into])
    /// and double-buffers it alongside the fine plane, where a bare
    /// `estimate` would rebuild *both* levels every call. Results are
    /// bit-identical to [`estimate`][BlockMatcher::estimate] by
    /// construction — the engine sees the same planes either way. For
    /// strategies that never ask for a pyramid
    /// ([`wants_pyramid`][BlockMatcher::wants_pyramid] `== false`) the
    /// coarse planes are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size, or
    /// if a coarse plane does not have the pyramid dimensions of its
    /// fine plane.
    pub fn estimate_with_pyramid(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        coarse_cur: &LumaFrame,
        coarse_prev: &LumaFrame,
    ) -> Result<(MotionField, SearchStats)> {
        self.estimate_cached(
            cur,
            prev,
            CachedPlanes {
                pyramid: Some((coarse_cur, coarse_prev)),
                ..CachedPlanes::default()
            },
        )
    }

    /// [`estimate_with_stats`][BlockMatcher::estimate_with_stats] with
    /// any subset of caller-cached derived planes — the generalization
    /// of [`estimate_with_pyramid`][BlockMatcher::estimate_with_pyramid]
    /// that also accepts the prefilter's [`RowPrefix`] tables. A
    /// streaming frontend builds each frame's derived planes exactly
    /// once (coarse plane via
    /// [`downsample2_into`][euphrates_common::image::downsample2_into],
    /// prefix tables via [`RowPrefix::rebuild`]) and double-buffers
    /// them alongside the fine planes, where a bare
    /// [`estimate`][BlockMatcher::estimate] call would rebuild
    /// everything per frame pair. Results are bit-identical to
    /// [`estimate`][BlockMatcher::estimate] by construction. Planes the
    /// configuration does not need (no pyramid strategy, prefilter
    /// disabled) are ignored; needed planes left `None` are built
    /// internally for this call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size,
    /// if a coarse plane does not have the pyramid dimensions of its
    /// fine plane, if `prefix_prev` was not built for `prev`'s shape,
    /// or if `coarse_prefix_prev` is supplied without its pyramid or
    /// does not match the coarse plane's shape.
    pub fn estimate_cached(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        planes: CachedPlanes<'_>,
    ) -> Result<(MotionField, SearchStats)> {
        if let Some((coarse_cur, coarse_prev)) = planes.pyramid {
            let (cw, ch) = downsample2_dims(cur);
            for (name, plane) in [("coarse_cur", coarse_cur), ("coarse_prev", coarse_prev)] {
                if plane.width() != cw || plane.height() != ch {
                    return Err(Error::shape(format!(
                        "{name} is {}x{}, expected pyramid level {cw}x{ch}",
                        plane.width(),
                        plane.height()
                    )));
                }
            }
        }
        if let Some(pf) = planes.prefix_prev {
            if !pf.matches(prev) {
                return Err(Error::shape(
                    "prefix_prev was not built for the previous frame's shape",
                ));
            }
        }
        if let Some(cpf) = planes.coarse_prefix_prev {
            match planes.pyramid {
                Some((_, coarse_prev)) if cpf.matches(coarse_prev) => {}
                Some(_) => {
                    return Err(Error::shape(
                        "coarse_prefix_prev was not built for the coarse plane's shape",
                    ));
                }
                None => {
                    return Err(Error::shape(
                        "coarse_prefix_prev supplied without its pyramid planes",
                    ));
                }
            }
        }
        self.estimate_inner(cur, prev, planes, 1)
    }

    /// Estimates the motion field with macroblock rows spread over up to
    /// `threads` worker threads. Blocks are independent, so the result is
    /// bit-identical to [`BlockMatcher::estimate`]; only wall-clock
    /// changes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size.
    pub fn estimate_parallel(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        threads: usize,
    ) -> Result<(MotionField, SearchStats)> {
        self.estimate_inner(cur, prev, CachedPlanes::default(), threads)
    }

    fn estimate_inner(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        ext: CachedPlanes<'_>,
        threads: usize,
    ) -> Result<(MotionField, SearchStats)> {
        if !cur.same_shape(prev) {
            return Err(Error::shape(format!(
                "current {}x{} vs previous {}x{}",
                cur.width(),
                cur.height(),
                prev.width(),
                prev.height()
            )));
        }
        let search = self.strategy.resolve()?;
        let res = Resolution::new(cur.width(), cur.height());
        let mut field = MotionField::zeroed(res, self.mb_size, self.search_range)?;
        let (blocks_x, blocks_y) = (field.blocks_x, field.blocks_y);
        // Derived planes are shared by every block of the frame pair:
        // prefer the caller's cached ones; build once per call only
        // what the configuration needs and nobody supplied.
        let owned_pyramid = if search.wants_pyramid() && ext.pyramid.is_none() {
            Some((downsample2(cur), downsample2(prev)))
        } else {
            None
        };
        let coarse = if search.wants_pyramid() {
            ext.pyramid
                .or_else(|| owned_pyramid.as_ref().map(|(a, b)| (a, b)))
        } else {
            None
        };
        let owned_prefix = if self.prefilter && ext.prefix_prev.is_none() {
            Some(RowPrefix::build(prev))
        } else {
            None
        };
        let prefix = if self.prefilter {
            ext.prefix_prev.or(owned_prefix.as_ref())
        } else {
            None
        };
        let owned_cprefix = if self.prefilter && ext.coarse_prefix_prev.is_none() {
            coarse.map(|(_, cprev)| RowPrefix::build(cprev))
        } else {
            None
        };
        let cprefix = if self.prefilter && coarse.is_some() {
            ext.coarse_prefix_prev.or(owned_cprefix.as_ref())
        } else {
            None
        };
        let d = self.search_range as i32;
        let mb = self.mb_size;
        let search = &*search;

        let rows: Vec<u32> = (0..blocks_y).collect();
        let row_results: Vec<(Vec<MotionVector>, SearchStats)> =
            parallel_map(&rows, threads, |_, &by| {
                let mut scratch = Scratch::default();
                let mut mvs = Vec::with_capacity(blocks_x as usize);
                let mut stats = SearchStats::default();
                for bx in 0..blocks_x {
                    let x0 = bx * mb;
                    let y0 = by * mb;
                    let bw = (cur.width() - x0).min(mb);
                    let bh = (cur.height() - y0).min(mb);
                    let mut ctx = SearchCtx::new(
                        cur,
                        prev,
                        coarse,
                        prefix,
                        cprefix,
                        &mut scratch,
                        x0,
                        y0,
                        bw,
                        bh,
                        d,
                    );
                    search.search(&mut ctx);
                    mvs.push(ctx.best());
                    stats.blocks += 1;
                    stats.probes += ctx.probes;
                    stats.sad_ops += ctx.sad_ops;
                    stats.lb_skips += ctx.lb_skips;
                }
                (mvs, stats)
            });

        let mut stats = SearchStats::default();
        for (by, (mvs, row_stats)) in row_results.into_iter().enumerate() {
            stats.merge(&row_stats);
            let base = by * blocks_x as usize;
            field.vectors[base..base + blocks_x as usize].copy_from_slice(&mvs);
        }
        Ok((field, stats))
    }
}

// ---------------------------------------------------------------------------
// SAD kernel
// ---------------------------------------------------------------------------

/// SAD of one 8-pixel lane pair: the per-byte absolute differences of
/// two 8-byte lanes reduced into one u32 chunk. Written as a fixed
/// 8-wide reduction so the compiler keeps the whole lane in one vector
/// register and lowers it to the hardware SAD instruction where one
/// exists (`psadbw` on x86-64).
#[inline]
fn lane_sad(x: &[u8; 8], y: &[u8; 8]) -> u32 {
    let mut chunk = 0u32;
    for k in 0..8 {
        chunk += u32::from(x[k].abs_diff(y[k]));
    }
    chunk
}

/// Borrows an 8-pixel lane as a fixed-size array.
#[inline]
fn lane(p: &[u8]) -> &[u8; 8] {
    p.try_into().expect("8-byte lane")
}

/// SAD of one 16-pixel row (two packed lanes) — the macroblock-width
/// special case, reduced in one fixed 16-wide pass so the compiler can
/// use a full-width vector SAD.
#[inline]
fn row_sad16(a: &[u8; 16], b: &[u8; 16]) -> u32 {
    let mut chunk = 0u32;
    for k in 0..16 {
        chunk += u32::from(a[k].abs_diff(b[k]));
    }
    chunk
}

/// Borrows a 16-pixel row as a fixed-size array.
#[inline]
fn row16(p: &[u8]) -> &[u8; 16] {
    p.try_into().expect("16-byte row")
}

/// Total of one block row — `Σ px = SAD(row, 0)`, so the 8-wide lanes
/// lower to the same hardware SAD instruction as the match kernel.
/// Feeds the current-block side of the lower-bound prefilter.
#[inline]
fn row_total(p: &[u8]) -> u32 {
    const ZERO: [u8; 8] = [0; 8];
    let mut sum = 0u32;
    let mut c = p.chunks_exact(8);
    for lane8 in c.by_ref() {
        sum += lane_sad(lane(lane8), &ZERO);
    }
    for &x in c.remainder() {
        sum += u32::from(x);
    }
    sum
}

/// Sum of absolute differences of two equal-length rows: 8-pixel lanes
/// accumulated in u32 chunks (see [`lane_sad`]).
#[inline]
fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        sum += lane_sad(lane(pa), lane(pb));
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += u32::from(x.abs_diff(*y));
    }
    sum
}

/// SAD between the block at `(x0, y0)` of `cur` and the block displaced by
/// `(-vx, -vy)` in `prev` (the content moved *by* `(vx, vy)`). Reference
/// pixels outside the frame are clamped to the edge. Evaluation walks row
/// slices and stops after any row whose running total strictly exceeds
/// `limit` — such a candidate can never beat the incumbent, and exact
/// ties (`== limit`) are always fully evaluated so the shorter-vector
/// tie-break stays deterministic. Returns the (possibly partial) SAD and
/// the number of rows actually evaluated.
#[allow(clippy::too_many_arguments)] // mirrors the hardware datapath's ports
#[inline]
fn sad_block(
    cur: &LumaFrame,
    prev: &LumaFrame,
    x0: u32,
    y0: u32,
    bw: u32,
    bh: u32,
    vx: i32,
    vy: i32,
    limit: u32,
) -> (u32, u32) {
    let rx = i64::from(x0) - i64::from(vx);
    let ry = i64::from(y0) - i64::from(vy);
    let w = i64::from(prev.width());
    let h = i64::from(prev.height());
    let in_bounds = rx >= 0 && ry >= 0 && rx + i64::from(bw) <= w && ry + i64::from(bh) <= h;
    let mut sad = 0u32;
    if in_bounds {
        // Fast path: whole reference block is inside the frame. Rows are
        // addressed by running offsets into the flat sample storage (one
        // slice-bounds check per row instead of the row()+subslice pair),
        // with the ubiquitous 16-px block width fully unrolled into two
        // u64 lanes per row.
        let ca = cur.samples();
        let pa = prev.samples();
        let mut ai = y0 as usize * cur.width() as usize + x0 as usize;
        let mut bi = ry as usize * prev.width() as usize + rx as usize;
        let (cw, pw) = (cur.width() as usize, prev.width() as usize);
        if bw == 16 {
            // Two rows (four u64 lanes) per early-exit check: the lane
            // SADs of a row pair are independent and pipeline, and the
            // abandon test still only rejects candidates whose partial
            // SAD already exceeds the incumbent.
            let mut row = 0;
            while row + 2 <= bh {
                let a0 = row16(&ca[ai..ai + 16]);
                let b0 = row16(&pa[bi..bi + 16]);
                let a1 = row16(&ca[ai + cw..ai + cw + 16]);
                let b1 = row16(&pa[bi + pw..bi + pw + 16]);
                sad += row_sad16(a0, b0) + row_sad16(a1, b1);
                row += 2;
                if sad > limit {
                    return (sad, row);
                }
                ai += 2 * cw;
                bi += 2 * pw;
            }
            if row < bh {
                sad += row_sad16(row16(&ca[ai..ai + 16]), row16(&pa[bi..bi + 16]));
                row += 1;
                if sad > limit {
                    return (sad, row);
                }
            }
        } else if bw == 8 {
            // The coarse pyramid level's block width: one lane per row,
            // two rows per early-exit check.
            let mut row = 0;
            while row + 2 <= bh {
                sad += lane_sad(lane(&ca[ai..ai + 8]), lane(&pa[bi..bi + 8]))
                    + lane_sad(
                        lane(&ca[ai + cw..ai + cw + 8]),
                        lane(&pa[bi + pw..bi + pw + 8]),
                    );
                row += 2;
                if sad > limit {
                    return (sad, row);
                }
                ai += 2 * cw;
                bi += 2 * pw;
            }
            if row < bh {
                sad += lane_sad(lane(&ca[ai..ai + 8]), lane(&pa[bi..bi + 8]));
                row += 1;
                if sad > limit {
                    return (sad, row);
                }
            }
        } else {
            for row in 0..bh {
                sad += row_sad(&ca[ai..ai + bw as usize], &pa[bi..bi + bw as usize]);
                if sad > limit {
                    return (sad, row + 1);
                }
                ai += cw;
                bi += pw;
            }
        }
        return (sad, bh);
    }
    // Clamped path: split each row into a left edge-clamped run, an
    // in-bounds middle slice, and a right edge-clamped run.
    let lo = (-rx).clamp(0, i64::from(bw)) as u32; // columns clamped to x = 0
    let hi = (w - rx).clamp(i64::from(lo), i64::from(bw)) as u32; // first right-clamped column
    for row in 0..bh {
        let a = &cur.row(y0 + row)[x0 as usize..(x0 + bw) as usize];
        let ry_c = (ry + i64::from(row)).clamp(0, h - 1) as u32;
        let b = prev.row(ry_c);
        let mut row_total = 0u32;
        if lo > 0 {
            let left = b[0];
            for &pa in &a[..lo as usize] {
                row_total += u32::from(pa.abs_diff(left));
            }
        }
        if hi > lo {
            let bx0 = (rx + i64::from(lo)) as usize;
            row_total += row_sad(
                &a[lo as usize..hi as usize],
                &b[bx0..bx0 + (hi - lo) as usize],
            );
        }
        if hi < bw {
            let right = b[b.len() - 1];
            for &pa in &a[hi as usize..] {
                row_total += u32::from(pa.abs_diff(right));
            }
        }
        sad += row_total;
        if sad > limit {
            return (sad, row + 1);
        }
    }
    (sad, bh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::rngx;
    use rand::Rng;

    /// A textured frame that block matching can lock onto.
    fn textured(width: u32, height: u32, seed: u64) -> LumaFrame {
        let mut f = LumaFrame::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                let v =
                    (rngx::lattice_hash(seed, i64::from(x / 4), i64::from(y / 4)) * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    /// Shifts frame content by (dx, dy) with clamped edges: the returned
    /// frame shows the same texture moved by (dx, dy).
    fn shifted(src: &LumaFrame, dx: i32, dy: i32) -> LumaFrame {
        let mut out = LumaFrame::new(src.width(), src.height()).unwrap();
        for y in 0..src.height() {
            for x in 0..src.width() {
                out.set(
                    x,
                    y,
                    src.at_clamped(i64::from(x) - i64::from(dx), i64::from(y) - i64::from(dy)),
                );
            }
        }
        out
    }

    #[test]
    fn static_scene_yields_zero_motion() {
        let f = textured(64, 64, 1);
        for strategy in SearchStrategy::BUILTIN {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let field = m.estimate(&f, &f).unwrap();
            for by in 0..field.blocks_y() {
                for bx in 0..field.blocks_x() {
                    let mv = field.at_block(bx, by);
                    assert_eq!(mv.v, Vec2i::ZERO, "{strategy:?} block ({bx},{by})");
                    assert_eq!(mv.sad, 0);
                    assert_eq!(field.confidence(bx, by), 1.0);
                }
            }
        }
    }

    #[test]
    fn exhaustive_recovers_global_translation() {
        let prev = textured(96, 96, 2);
        for (dx, dy) in [(3, 0), (0, -5), (4, 4), (-7, 6)] {
            let cur = shifted(&prev, dx, dy);
            let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            // Interior blocks (away from clamped edges) must see (dx, dy).
            let mv = field.at_block(2, 2);
            assert_eq!(
                (i32::from(mv.v.x), i32::from(mv.v.y)),
                (dx, dy),
                "shift ({dx},{dy})"
            );
            assert_eq!(mv.sad, 0);
        }
    }

    #[test]
    fn tss_recovers_global_translation() {
        let prev = textured(96, 96, 3);
        for (dx, dy) in [(2, 0), (0, 4), (-3, -3), (6, -1)] {
            let cur = shifted(&prev, dx, dy);
            let m = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            let mv = field.at_block(2, 2);
            assert_eq!(
                (i32::from(mv.v.x), i32::from(mv.v.y)),
                (dx, dy),
                "shift ({dx},{dy})"
            );
        }
    }

    #[test]
    fn diamond_and_hierarchical_recover_global_translation() {
        // Shifts within both strategies' reliable envelope (the property
        // suite in tests/search_properties.rs maps the envelopes).
        let prev = textured(96, 96, 12);
        for strategy in [SearchStrategy::Diamond, SearchStrategy::Hierarchical] {
            for (dx, dy) in [(2, 0), (0, 3), (-3, -3), (3, -2)] {
                let cur = shifted(&prev, dx, dy);
                let m = BlockMatcher::new(16, 7, strategy).unwrap();
                let field = m.estimate(&cur, &prev).unwrap();
                let mv = field.at_block(2, 2);
                assert_eq!(
                    (i32::from(mv.v.x), i32::from(mv.v.y)),
                    (dx, dy),
                    "{strategy:?} shift ({dx},{dy})"
                );
                assert_eq!(mv.sad, 0, "{strategy:?} shift ({dx},{dy})");
            }
        }
    }

    #[test]
    fn motion_beyond_search_range_is_not_recovered() {
        // §7 of the paper: fast motion beyond the window is fundamentally
        // unobtainable. A 12-px shift with d=7 must NOT come back as 12.
        let prev = textured(128, 128, 4);
        let cur = shifted(&prev, 12, 0);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        let mv = field.at_block(3, 3);
        assert!(i32::from(mv.v.x) <= 7);
        // And the match quality is poor: confidence drops.
        assert!(field.confidence(3, 3) < 0.999);
    }

    #[test]
    fn confidence_reflects_match_quality() {
        let prev = textured(64, 64, 5);
        let cur = shifted(&prev, 2, 1);
        // Replace one block of `cur` with uncorrelated noise: its best match
        // will be bad.
        let mut cur = cur;
        let junk = textured(64, 64, 999);
        for y in 16..32 {
            for x in 16..32 {
                cur.set(x, y, junk.at(x, y));
            }
        }
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        let good = field.confidence(3, 3);
        let bad = field.confidence(1, 1);
        assert!(
            good > bad + 0.05,
            "good {good} should exceed bad {bad} clearly"
        );
    }

    #[test]
    fn partial_edge_blocks_are_handled() {
        // 70x50 with mb=16 -> 5x4 blocks, last column 6 px, last row 2 px.
        let prev = textured(70, 50, 6);
        let cur = shifted(&prev, 1, 1);
        for strategy in SearchStrategy::BUILTIN {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            assert_eq!((field.blocks_x(), field.blocks_y()), (5, 4));
            assert_eq!(field.block_pixels(4, 0), 6 * 16);
            assert_eq!(field.block_pixels(0, 3), 16 * 2);
            assert_eq!(field.block_pixels(4, 3), 6 * 2);
            // Confidence of partial blocks is still within [0,1].
            let c = field.confidence(4, 3);
            assert!((0.0..=1.0).contains(&c), "{strategy:?}");
        }
    }

    #[test]
    fn at_pixel_inherits_block_mv() {
        let prev = textured(64, 64, 7);
        let cur = shifted(&prev, 3, 2);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        assert_eq!(field.at_pixel(40, 40), field.at_block(2, 2));
        assert_eq!(field.at_pixel(0, 0), field.at_block(0, 0));
        // Clamp beyond-last-block pixels to the last block.
        assert_eq!(field.at_pixel(63, 63), field.at_block(3, 3));
    }

    #[test]
    fn blocks_in_roi_selects_intersecting_blocks() {
        let field = MotionField::zeroed(Resolution::new(64, 64), 16, 7).unwrap();
        // ROI covering the central 2x2 blocks.
        let roi = Rect::new(20.0, 20.0, 24.0, 24.0);
        let blocks: Vec<(u32, u32)> = field.blocks_in_roi(&roi).map(|(x, y, _)| (x, y)).collect();
        assert_eq!(blocks, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
        // Out-of-frame ROI yields nothing.
        let far = Rect::new(500.0, 500.0, 10.0, 10.0);
        assert_eq!(field.blocks_in_roi(&far).count(), 0);
        // Empty ROI yields nothing.
        let empty = Rect::new(10.0, 10.0, 0.0, 0.0);
        assert_eq!(field.blocks_in_roi(&empty).count(), 0);
    }

    #[test]
    fn ops_model_matches_paper_formulas() {
        // ES at L=16, d=7: 16^2 * 15^2 = 57,600 ops/block.
        assert_eq!(SearchStrategy::Exhaustive.ops_per_block(16, 7), 256 * 225);
        // TSS at L=16, d=7: 16^2 * (1 + 8*3 steps) = 256 * 25 = 6,400.
        assert_eq!(SearchStrategy::ThreeStep.ops_per_block(16, 7), 256 * 25);
        // The paper's 8/9 reduction claim: 6400 / 57600 = 1/9.
        let es = SearchStrategy::Exhaustive.ops_per_block(16, 7) as f64;
        let tss = SearchStrategy::ThreeStep.ops_per_block(16, 7) as f64;
        assert!((tss / es - 1.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn tss_probe_model_counts_actual_steps() {
        // d=7: initial step 4 -> rounds {4,2,1} -> 1 + 8*3 = 25 probes.
        assert_eq!(SearchStrategy::ThreeStep.probes_per_block(7), 25);
        // d=10: (d+1)/2 = 5 -> initial step 4 (not 8) -> still 3 rounds.
        // The old closed form `1 + 8*log2(d+1)` rounded this up to 29.
        assert_eq!(SearchStrategy::ThreeStep.probes_per_block(10), 25);
        // d=1: initial step 1 -> single round -> the full 3x3 window.
        assert_eq!(SearchStrategy::ThreeStep.probes_per_block(1), 9);
        // d=15: initial step 8 -> 4 rounds.
        assert_eq!(SearchStrategy::ThreeStep.probes_per_block(15), 33);
    }

    #[test]
    fn cheaper_strategies_model_fewer_probes_than_exhaustive() {
        // TSS never exceeds the window at any range.
        for d in [1u32, 4, 7, 15] {
            assert!(
                SearchStrategy::ThreeStep.probes_per_block(d)
                    <= SearchStrategy::Exhaustive.probes_per_block(d),
                "three-step budget exceeds exhaustive at d={d}"
            );
        }
        // Diamond and hierarchical carry fixed pattern/pyramid overheads
        // that only amortize at realistic ranges (the paper uses d=7).
        for d in [4u32, 7, 15] {
            let es = SearchStrategy::Exhaustive.probes_per_block(d);
            for s in [SearchStrategy::Diamond, SearchStrategy::Hierarchical] {
                assert!(
                    s.probes_per_block(d) <= es,
                    "{s} budget exceeds exhaustive at d={d}"
                );
            }
        }
    }

    #[test]
    fn frame_ops_at_1080p_match_paper_scale() {
        // §5.1: "a 1080p image requires about 50 million arithmetic
        // operations to generate motion vectors" (TSS).
        let m = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let ops = m.ops_per_frame(Resolution::FULL_HD);
        assert!(
            (40_000_000..70_000_000).contains(&ops),
            "got {ops} ops/frame"
        );
    }

    #[test]
    fn metadata_size_matches_paper_estimate() {
        // §4.2: 1080p with 16x16 blocks -> ~8,100 MVs ≈ 8 KB (1 B/MV); we
        // store 4 B/block (MV + confidence), i.e. ~32 KB, same order.
        let field = MotionField::zeroed(Resolution::FULL_HD, 16, 7).unwrap();
        let bytes = field.metadata_bytes().0;
        assert_eq!(bytes, u64::from(field.blocks_x() * field.blocks_y()) * 4);
        assert!(bytes < 64 * 1024);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(BlockMatcher::new(0, 7, SearchStrategy::Exhaustive).is_err());
        assert!(BlockMatcher::new(16, 0, SearchStrategy::Exhaustive).is_err());
        assert!(BlockMatcher::new(16, 128, SearchStrategy::Exhaustive).is_err());
        assert!(MotionField::zeroed(Resolution::VGA, 0, 7).is_err());
        // Unregistered custom strategies are rejected at construction.
        assert!(BlockMatcher::new(16, 7, SearchStrategy::Custom("nonexistent")).is_err());
    }

    #[test]
    fn mismatched_frames_are_rejected() {
        let a = LumaFrame::new(64, 64).unwrap();
        let b = LumaFrame::new(32, 64).unwrap();
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        assert!(m.estimate(&a, &b).is_err());
    }

    #[test]
    fn tss_close_to_es_on_noisy_translation() {
        // Fig. 11b's premise: TSS tracks ES closely. On a noisy shifted
        // frame, the two fields should agree on the dominant motion.
        let prev = textured(96, 96, 8);
        let mut cur = shifted(&prev, 4, -3);
        let mut rng = rngx::derived_rng(0xA5, 0, 0);
        for px in cur.samples_mut() {
            let noise: i16 = rng.gen_range(-4..=4);
            *px = (i16::from(*px) + noise).clamp(0, 255) as u8;
        }
        let es = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let tss = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let fe = es.estimate(&cur, &prev).unwrap();
        let ft = tss.estimate(&cur, &prev).unwrap();
        let mut agree = 0;
        let interior: Vec<(u32, u32)> = (1..5).flat_map(|y| (1..5).map(move |x| (x, y))).collect();
        for &(bx, by) in &interior {
            if fe.at_block(bx, by).v == ft.at_block(bx, by).v {
                agree += 1;
            }
        }
        assert!(
            agree >= interior.len() - 2,
            "agree {agree}/{}",
            interior.len()
        );
    }

    #[test]
    fn mean_magnitude_tracks_shift_size() {
        let prev = textured(96, 96, 9);
        let small = shifted(&prev, 1, 0);
        let large = shifted(&prev, 6, 0);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let f_small = m.estimate(&small, &prev).unwrap();
        let f_large = m.estimate(&large, &prev).unwrap();
        assert!(f_large.mean_magnitude() > f_small.mean_magnitude());
    }

    #[test]
    fn stats_meter_actual_probes() {
        let prev = textured(96, 96, 10);
        let cur = shifted(&prev, 3, -2);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let (field, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
        assert_eq!(stats.blocks, field.block_count() as u64);
        // ES probes every window offset exactly once per block.
        assert_eq!(stats.probes, stats.blocks * 225);
        // Early exit means far fewer ops than the full 225 * 256 model.
        assert!(stats.sad_ops < stats.blocks * 225 * 256);
        assert!(stats.sad_ops > 0);
    }

    #[test]
    fn parallel_estimate_matches_serial() {
        let prev = textured(128, 96, 11);
        let cur = shifted(&prev, -4, 3);
        for strategy in SearchStrategy::BUILTIN {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let (serial, s_stats) = m.estimate_with_stats(&cur, &prev).unwrap();
            let (parallel, p_stats) = m.estimate_parallel(&cur, &prev, 4).unwrap();
            assert_eq!(serial, parallel, "{strategy:?}");
            assert_eq!(s_stats, p_stats, "{strategy:?}");
        }
    }

    #[test]
    fn custom_strategies_are_pluggable() {
        /// A cross-pattern search: scan both axes of the window.
        #[derive(Debug)]
        struct CrossSearch;
        impl MotionSearch for CrossSearch {
            fn name(&self) -> &'static str {
                "test-cross"
            }
            fn probes_per_block(&self, search_range: u32) -> u64 {
                1 + 4 * u64::from(search_range)
            }
            fn search(&self, ctx: &mut SearchCtx<'_>) {
                for step in 1..=ctx.range() {
                    for (sx, sy) in [(0, -1), (1, 0), (0, 1), (-1, 0)] {
                        ctx.probe(sx * step, sy * step);
                    }
                }
            }
        }

        let strategy = register_search(Arc::new(CrossSearch)).unwrap();
        assert_eq!(strategy, SearchStrategy::Custom("test-cross"));
        // Duplicate and built-in-colliding names are rejected.
        assert!(register_search(Arc::new(CrossSearch)).is_err());

        let prev = textured(64, 64, 13);
        let cur = shifted(&prev, 0, 2); // axis-aligned: cross can find it
        let m = BlockMatcher::new(16, 7, strategy).unwrap();
        let (field, stats) = m.estimate_with_stats(&cur, &prev).unwrap();
        assert_eq!((field.at_block(2, 2).v.x, field.at_block(2, 2).v.y), (0, 2));
        assert!(stats.probes <= stats.blocks * strategy.probes_per_block(7));
    }
}
