//! Block-matching motion estimation (§2.3 of the paper).
//!
//! The frame is divided into `L × L` macroblocks; for each, the matcher
//! finds the offset within a `(2d+1)²` search window of the *previous*
//! frame minimizing the Sum of Absolute Differences (SAD). Two search
//! strategies are provided, trading accuracy for compute:
//!
//! * [`SearchStrategy::Exhaustive`] — every offset; `L²·(2d+1)²` operations
//!   per block.
//! * [`SearchStrategy::ThreeStep`] — the classic TSS (Koga et al.), probing
//!   8 neighbors at logarithmically shrinking steps; `L²·(1+8·log2(d+1))`
//!   operations per block (a ~8/9 reduction at `d = 7`).
//!
//! Each motion vector carries its SAD, from which the per-block confidence
//! of Equ. 2 is derived: `α = 1 − SAD / (255 · n)`, with `n` the number of
//! pixels actually compared (edge blocks may be partial).

use euphrates_common::error::{Error, Result};
use euphrates_common::geom::{Rect, Vec2i};
use euphrates_common::image::{LumaFrame, Resolution};
use euphrates_common::units::Bytes;

/// A motion vector with its matching cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Offset of the best match in the previous frame: the block at `(x,y)`
    /// matched the block at `(x−vx, y−vy)` of the previous frame, i.e. the
    /// content *moved by* `v` between the frames.
    pub v: Vec2i,
    /// Sum of absolute differences of the best match.
    pub sad: u32,
}

/// The block-matching search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Full search of every offset in the window (most accurate).
    Exhaustive,
    /// Three-step search: logarithmic refinement (≈9× cheaper at d=7).
    ThreeStep,
}

impl SearchStrategy {
    /// Arithmetic operations per macroblock for this strategy, per the
    /// paper's cost model (§2.3).
    pub fn ops_per_block(self, mb_size: u32, search_range: u32) -> u64 {
        let l2 = u64::from(mb_size) * u64::from(mb_size);
        match self {
            SearchStrategy::Exhaustive => {
                let w = 2 * u64::from(search_range) + 1;
                l2 * w * w
            }
            SearchStrategy::ThreeStep => {
                let steps = f64::from(search_range + 1).log2().max(1.0);
                l2 * (1 + (8.0 * steps).round() as u64)
            }
        }
    }
}

/// Per-frame motion metadata: one [`MotionVector`] per macroblock.
///
/// This is the data structure the augmented ISP writes into the frame
/// buffer's metadata section (§4.2) and the Motion Controller consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionField {
    mb_size: u32,
    search_range: u32,
    width: u32,
    height: u32,
    blocks_x: u32,
    blocks_y: u32,
    vectors: Vec<MotionVector>,
}

impl MotionField {
    /// Creates a zero-motion field (used for the first frame of a stream,
    /// which has no predecessor).
    pub fn zeroed(resolution: Resolution, mb_size: u32, search_range: u32) -> Result<Self> {
        validate_params(mb_size, search_range)?;
        let (bx, by) = resolution.macroblocks(mb_size);
        Ok(MotionField {
            mb_size,
            search_range,
            width: resolution.width,
            height: resolution.height,
            blocks_x: bx,
            blocks_y: by,
            vectors: vec![MotionVector::default(); (bx * by) as usize],
        })
    }

    /// Macroblock edge length.
    pub fn mb_size(&self) -> u32 {
        self.mb_size
    }

    /// Search range `d` the field was estimated with.
    pub fn search_range(&self) -> u32 {
        self.search_range
    }

    /// Number of macroblock columns.
    pub fn blocks_x(&self) -> u32 {
        self.blocks_x
    }

    /// Number of macroblock rows.
    pub fn blocks_y(&self) -> u32 {
        self.blocks_y
    }

    /// Frame resolution the field describes.
    pub fn resolution(&self) -> Resolution {
        Resolution::new(self.width, self.height)
    }

    /// Total number of macroblocks.
    pub fn block_count(&self) -> usize {
        self.vectors.len()
    }

    /// The motion vector of block `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn at_block(&self, bx: u32, by: u32) -> MotionVector {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        self.vectors[(by * self.blocks_x + bx) as usize]
    }

    /// Overwrites the motion vector of block `(bx, by)` (used by
    /// alternative motion sources: raw-domain matching, codec MVs, IMU
    /// fusion).
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn set_block(&mut self, bx: u32, by: u32, mv: MotionVector) {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        self.vectors[(by * self.blocks_x + bx) as usize] = mv;
    }

    /// The motion vector inherited by pixel `(x, y)` — each pixel takes the
    /// MV of the macroblock containing it (§3.2).
    pub fn at_pixel(&self, x: u32, y: u32) -> MotionVector {
        let bx = (x / self.mb_size).min(self.blocks_x - 1);
        let by = (y / self.mb_size).min(self.blocks_y - 1);
        self.at_block(bx, by)
    }

    /// Number of pixels block `(bx, by)` actually covers (edge blocks may
    /// be partial).
    pub fn block_pixels(&self, bx: u32, by: u32) -> u32 {
        let w = (self.width - bx * self.mb_size).min(self.mb_size);
        let h = (self.height - by * self.mb_size).min(self.mb_size);
        w * h
    }

    /// Confidence of block `(bx, by)` per Equ. 2: `1 − SAD/(255·n)`,
    /// clamped to `[0, 1]`.
    pub fn confidence(&self, bx: u32, by: u32) -> f64 {
        let mv = self.at_block(bx, by);
        let n = self.block_pixels(bx, by);
        if n == 0 {
            return 0.0;
        }
        (1.0 - f64::from(mv.sad) / (255.0 * f64::from(n))).clamp(0.0, 1.0)
    }

    /// The pixel rectangle covered by block `(bx, by)`.
    pub fn block_rect(&self, bx: u32, by: u32) -> Rect {
        let x = f64::from(bx * self.mb_size);
        let y = f64::from(by * self.mb_size);
        let w = f64::from((self.width - bx * self.mb_size).min(self.mb_size));
        let h = f64::from((self.height - by * self.mb_size).min(self.mb_size));
        Rect::new(x, y, w, h)
    }

    /// Iterates over `(bx, by, MotionVector)` for blocks whose rectangle
    /// intersects `roi`. This is the access pattern of the extrapolation
    /// engine (Equ. 1 averages the MVs an ROI covers).
    pub fn blocks_in_roi<'a>(
        &'a self,
        roi: &Rect,
    ) -> impl Iterator<Item = (u32, u32, MotionVector)> + 'a {
        let mb = f64::from(self.mb_size);
        let bx0 = (roi.x / mb).floor().max(0.0) as u32;
        let by0 = (roi.y / mb).floor().max(0.0) as u32;
        let bx1 = ((roi.right() / mb).ceil() as i64).clamp(0, i64::from(self.blocks_x)) as u32;
        let by1 = ((roi.bottom() / mb).ceil() as i64).clamp(0, i64::from(self.blocks_y)) as u32;
        let roi = *roi;
        (by0..by1).flat_map(move |by| {
            (bx0..bx1).filter_map(move |bx| {
                let r = self.block_rect(bx, by);
                if r.intersection(&roi).area() > 0.0 {
                    Some((bx, by, self.at_block(bx, by)))
                } else {
                    None
                }
            })
        })
    }

    /// Bytes of frame-buffer metadata this field occupies: per block, 1 byte
    /// per MV component (d ≤ 127) plus 2 bytes of SAD-derived confidence,
    /// matching the §4.2 estimate of ~8 KB per 1080p frame for the MVs.
    pub fn metadata_bytes(&self) -> Bytes {
        Bytes(self.vectors.len() as u64 * 4)
    }

    /// Mean motion magnitude over all blocks (diagnostic).
    pub fn mean_magnitude(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .vectors
            .iter()
            .map(|mv| (mv.v.norm_sq() as f64).sqrt())
            .sum();
        sum / self.vectors.len() as f64
    }
}

fn validate_params(mb_size: u32, search_range: u32) -> Result<()> {
    if mb_size == 0 {
        return Err(Error::config("macroblock size must be positive"));
    }
    if search_range == 0 || search_range > 127 {
        return Err(Error::config(format!(
            "search range must be in 1..=127, got {search_range}"
        )));
    }
    Ok(())
}

/// Block-matching motion estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatcher {
    mb_size: u32,
    search_range: u32,
    strategy: SearchStrategy,
}

impl BlockMatcher {
    /// Creates a matcher with macroblock size `mb_size` (typically 16),
    /// search range `d` (typically 7), and the given strategy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero macroblock size or a
    /// search range outside `1..=127` (MVs must fit the 1-byte encoding).
    pub fn new(mb_size: u32, search_range: u32, strategy: SearchStrategy) -> Result<Self> {
        validate_params(mb_size, search_range)?;
        Ok(BlockMatcher {
            mb_size,
            search_range,
            strategy,
        })
    }

    /// Macroblock size.
    pub fn mb_size(&self) -> u32 {
        self.mb_size
    }

    /// Search range `d`.
    pub fn search_range(&self) -> u32 {
        self.search_range
    }

    /// Search strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Arithmetic operations per frame at `resolution` (the paper's cost
    /// model; feeds the ISP power overhead estimate).
    pub fn ops_per_frame(&self, resolution: Resolution) -> u64 {
        let (bx, by) = resolution.macroblocks(self.mb_size);
        u64::from(bx) * u64::from(by) * self.strategy.ops_per_block(self.mb_size, self.search_range)
    }

    /// Estimates the motion field of `cur` relative to `prev`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the frames differ in size.
    pub fn estimate(&self, cur: &LumaFrame, prev: &LumaFrame) -> Result<MotionField> {
        if !cur.same_shape(prev) {
            return Err(Error::shape(format!(
                "current {}x{} vs previous {}x{}",
                cur.width(),
                cur.height(),
                prev.width(),
                prev.height()
            )));
        }
        let res = Resolution::new(cur.width(), cur.height());
        let mut field = MotionField::zeroed(res, self.mb_size, self.search_range)?;
        let (blocks_x, blocks_y) = (field.blocks_x, field.blocks_y);
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let x0 = bx * self.mb_size;
                let y0 = by * self.mb_size;
                let bw = (cur.width() - x0).min(self.mb_size);
                let bh = (cur.height() - y0).min(self.mb_size);
                let mv = match self.strategy {
                    SearchStrategy::Exhaustive => self.search_exhaustive(cur, prev, x0, y0, bw, bh),
                    SearchStrategy::ThreeStep => self.search_tss(cur, prev, x0, y0, bw, bh),
                };
                field.vectors[(by * blocks_x + bx) as usize] = mv;
            }
        }
        Ok(field)
    }

    fn search_exhaustive(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        x0: u32,
        y0: u32,
        bw: u32,
        bh: u32,
    ) -> MotionVector {
        let d = self.search_range as i32;
        let mut best = MotionVector {
            v: Vec2i::ZERO,
            sad: sad_block(cur, prev, x0, y0, bw, bh, 0, 0),
        };
        for vy in -d..=d {
            for vx in -d..=d {
                if vx == 0 && vy == 0 {
                    continue;
                }
                let sad = sad_block(cur, prev, x0, y0, bw, bh, vx, vy);
                if better(sad, Vec2i::new(vx as i16, vy as i16), &best) {
                    best = MotionVector {
                        v: Vec2i::new(vx as i16, vy as i16),
                        sad,
                    };
                }
            }
        }
        best
    }

    fn search_tss(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        x0: u32,
        y0: u32,
        bw: u32,
        bh: u32,
    ) -> MotionVector {
        let d = self.search_range as i32;
        let mut center = Vec2i::ZERO;
        let mut best = MotionVector {
            v: Vec2i::ZERO,
            sad: sad_block(cur, prev, x0, y0, bw, bh, 0, 0),
        };
        // Initial step: largest power of two ≤ max(1, (d+1)/2).
        let mut step = 1i32;
        while step * 2 <= (d + 1) / 2 {
            step *= 2;
        }
        while step >= 1 {
            let mut improved = best;
            for (sx, sy) in [
                (-1, -1),
                (0, -1),
                (1, -1),
                (-1, 0),
                (1, 0),
                (-1, 1),
                (0, 1),
                (1, 1),
            ] {
                let vx = i32::from(center.x) + sx * step;
                let vy = i32::from(center.y) + sy * step;
                if vx.abs() > d || vy.abs() > d {
                    continue;
                }
                let sad = sad_block(cur, prev, x0, y0, bw, bh, vx, vy);
                if better(sad, Vec2i::new(vx as i16, vy as i16), &improved) {
                    improved = MotionVector {
                        v: Vec2i::new(vx as i16, vy as i16),
                        sad,
                    };
                }
            }
            best = improved;
            center = best.v;
            step /= 2;
        }
        best
    }
}

/// Strict-improvement comparison with a deterministic tie-break: prefer the
/// lower SAD; on equal SAD prefer the shorter vector (so static content
/// yields zero motion even when many offsets match equally well).
fn better(sad: u32, v: Vec2i, incumbent: &MotionVector) -> bool {
    sad < incumbent.sad || (sad == incumbent.sad && v.norm_sq() < incumbent.v.norm_sq())
}

/// SAD between the block at `(x0, y0)` of `cur` and the block displaced by
/// `(-vx, -vy)` in `prev` (the content moved *by* `(vx, vy)`). Reference
/// pixels outside the frame are clamped to the edge.
#[allow(clippy::too_many_arguments)] // mirrors the hardware datapath's ports
fn sad_block(
    cur: &LumaFrame,
    prev: &LumaFrame,
    x0: u32,
    y0: u32,
    bw: u32,
    bh: u32,
    vx: i32,
    vy: i32,
) -> u32 {
    let rx = i64::from(x0) - i64::from(vx);
    let ry = i64::from(y0) - i64::from(vy);
    let in_bounds = rx >= 0
        && ry >= 0
        && rx + i64::from(bw) <= i64::from(prev.width())
        && ry + i64::from(bh) <= i64::from(prev.height());
    let mut sad = 0u32;
    if in_bounds {
        // Fast path: whole reference block is inside the frame.
        let (rx, ry) = (rx as u32, ry as u32);
        for row in 0..bh {
            let a = &cur.row(y0 + row)[x0 as usize..(x0 + bw) as usize];
            let b = &prev.row(ry + row)[rx as usize..(rx + bw) as usize];
            for (pa, pb) in a.iter().zip(b) {
                sad += u32::from(pa.abs_diff(*pb));
            }
        }
    } else {
        for row in 0..bh {
            for col in 0..bw {
                let a = cur.at(x0 + col, y0 + row);
                let b = prev.at_clamped(rx + i64::from(col), ry + i64::from(row));
                sad += u32::from(a.abs_diff(b));
            }
        }
    }
    sad
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::rngx;
    use rand::Rng;

    /// A textured frame that block matching can lock onto.
    fn textured(width: u32, height: u32, seed: u64) -> LumaFrame {
        let mut f = LumaFrame::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                let v =
                    (rngx::lattice_hash(seed, i64::from(x / 4), i64::from(y / 4)) * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    /// Shifts frame content by (dx, dy) with clamped edges: the returned
    /// frame shows the same texture moved by (dx, dy).
    fn shifted(src: &LumaFrame, dx: i32, dy: i32) -> LumaFrame {
        let mut out = LumaFrame::new(src.width(), src.height()).unwrap();
        for y in 0..src.height() {
            for x in 0..src.width() {
                out.set(
                    x,
                    y,
                    src.at_clamped(i64::from(x) - i64::from(dx), i64::from(y) - i64::from(dy)),
                );
            }
        }
        out
    }

    #[test]
    fn static_scene_yields_zero_motion() {
        let f = textured(64, 64, 1);
        for strategy in [SearchStrategy::Exhaustive, SearchStrategy::ThreeStep] {
            let m = BlockMatcher::new(16, 7, strategy).unwrap();
            let field = m.estimate(&f, &f).unwrap();
            for by in 0..field.blocks_y() {
                for bx in 0..field.blocks_x() {
                    let mv = field.at_block(bx, by);
                    assert_eq!(mv.v, Vec2i::ZERO, "{strategy:?} block ({bx},{by})");
                    assert_eq!(mv.sad, 0);
                    assert_eq!(field.confidence(bx, by), 1.0);
                }
            }
        }
    }

    #[test]
    fn exhaustive_recovers_global_translation() {
        let prev = textured(96, 96, 2);
        for (dx, dy) in [(3, 0), (0, -5), (4, 4), (-7, 6)] {
            let cur = shifted(&prev, dx, dy);
            let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            // Interior blocks (away from clamped edges) must see (dx, dy).
            let mv = field.at_block(2, 2);
            assert_eq!(
                (i32::from(mv.v.x), i32::from(mv.v.y)),
                (dx, dy),
                "shift ({dx},{dy})"
            );
            assert_eq!(mv.sad, 0);
        }
    }

    #[test]
    fn tss_recovers_global_translation() {
        let prev = textured(96, 96, 3);
        for (dx, dy) in [(2, 0), (0, 4), (-3, -3), (6, -1)] {
            let cur = shifted(&prev, dx, dy);
            let m = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
            let field = m.estimate(&cur, &prev).unwrap();
            let mv = field.at_block(2, 2);
            assert_eq!(
                (i32::from(mv.v.x), i32::from(mv.v.y)),
                (dx, dy),
                "shift ({dx},{dy})"
            );
        }
    }

    #[test]
    fn motion_beyond_search_range_is_not_recovered() {
        // §7 of the paper: fast motion beyond the window is fundamentally
        // unobtainable. A 12-px shift with d=7 must NOT come back as 12.
        let prev = textured(128, 128, 4);
        let cur = shifted(&prev, 12, 0);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        let mv = field.at_block(3, 3);
        assert!(i32::from(mv.v.x) <= 7);
        // And the match quality is poor: confidence drops.
        assert!(field.confidence(3, 3) < 0.999);
    }

    #[test]
    fn confidence_reflects_match_quality() {
        let prev = textured(64, 64, 5);
        let cur = shifted(&prev, 2, 1);
        // Replace one block of `cur` with uncorrelated noise: its best match
        // will be bad.
        let mut cur = cur;
        let junk = textured(64, 64, 999);
        for y in 16..32 {
            for x in 16..32 {
                cur.set(x, y, junk.at(x, y));
            }
        }
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        let good = field.confidence(3, 3);
        let bad = field.confidence(1, 1);
        assert!(
            good > bad + 0.05,
            "good {good} should exceed bad {bad} clearly"
        );
    }

    #[test]
    fn partial_edge_blocks_are_handled() {
        // 70x50 with mb=16 -> 5x4 blocks, last column 6 px, last row 2 px.
        let prev = textured(70, 50, 6);
        let cur = shifted(&prev, 1, 1);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        assert_eq!((field.blocks_x(), field.blocks_y()), (5, 4));
        assert_eq!(field.block_pixels(4, 0), 6 * 16);
        assert_eq!(field.block_pixels(0, 3), 16 * 2);
        assert_eq!(field.block_pixels(4, 3), 6 * 2);
        // Confidence of partial blocks is still within [0,1].
        let c = field.confidence(4, 3);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn at_pixel_inherits_block_mv() {
        let prev = textured(64, 64, 7);
        let cur = shifted(&prev, 3, 2);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        assert_eq!(field.at_pixel(40, 40), field.at_block(2, 2));
        assert_eq!(field.at_pixel(0, 0), field.at_block(0, 0));
        // Clamp beyond-last-block pixels to the last block.
        assert_eq!(field.at_pixel(63, 63), field.at_block(3, 3));
    }

    #[test]
    fn blocks_in_roi_selects_intersecting_blocks() {
        let field = MotionField::zeroed(Resolution::new(64, 64), 16, 7).unwrap();
        // ROI covering the central 2x2 blocks.
        let roi = Rect::new(20.0, 20.0, 24.0, 24.0);
        let blocks: Vec<(u32, u32)> = field.blocks_in_roi(&roi).map(|(x, y, _)| (x, y)).collect();
        assert_eq!(blocks, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
        // Out-of-frame ROI yields nothing.
        let far = Rect::new(500.0, 500.0, 10.0, 10.0);
        assert_eq!(field.blocks_in_roi(&far).count(), 0);
        // Empty ROI yields nothing.
        let empty = Rect::new(10.0, 10.0, 0.0, 0.0);
        assert_eq!(field.blocks_in_roi(&empty).count(), 0);
    }

    #[test]
    fn ops_model_matches_paper_formulas() {
        // ES at L=16, d=7: 16^2 * 15^2 = 57,600 ops/block.
        assert_eq!(SearchStrategy::Exhaustive.ops_per_block(16, 7), 256 * 225);
        // TSS at L=16, d=7: 16^2 * (1 + 8*log2(8)) = 256 * 25 = 6,400.
        assert_eq!(SearchStrategy::ThreeStep.ops_per_block(16, 7), 256 * 25);
        // The paper's 8/9 reduction claim: 6400 / 57600 = 1/9.
        let es = SearchStrategy::Exhaustive.ops_per_block(16, 7) as f64;
        let tss = SearchStrategy::ThreeStep.ops_per_block(16, 7) as f64;
        assert!((tss / es - 1.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn frame_ops_at_1080p_match_paper_scale() {
        // §5.1: "a 1080p image requires about 50 million arithmetic
        // operations to generate motion vectors" (TSS).
        let m = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let ops = m.ops_per_frame(Resolution::FULL_HD);
        assert!(
            (40_000_000..70_000_000).contains(&ops),
            "got {ops} ops/frame"
        );
    }

    #[test]
    fn metadata_size_matches_paper_estimate() {
        // §4.2: 1080p with 16x16 blocks -> ~8,100 MVs ≈ 8 KB (1 B/MV); we
        // store 4 B/block (MV + confidence), i.e. ~32 KB, same order.
        let field = MotionField::zeroed(Resolution::FULL_HD, 16, 7).unwrap();
        let bytes = field.metadata_bytes().0;
        assert_eq!(bytes, u64::from(field.blocks_x() * field.blocks_y()) * 4);
        assert!(bytes < 64 * 1024);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(BlockMatcher::new(0, 7, SearchStrategy::Exhaustive).is_err());
        assert!(BlockMatcher::new(16, 0, SearchStrategy::Exhaustive).is_err());
        assert!(BlockMatcher::new(16, 128, SearchStrategy::Exhaustive).is_err());
        assert!(MotionField::zeroed(Resolution::VGA, 0, 7).is_err());
    }

    #[test]
    fn mismatched_frames_are_rejected() {
        let a = LumaFrame::new(64, 64).unwrap();
        let b = LumaFrame::new(32, 64).unwrap();
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        assert!(m.estimate(&a, &b).is_err());
    }

    #[test]
    fn tss_close_to_es_on_noisy_translation() {
        // Fig. 11b's premise: TSS tracks ES closely. On a noisy shifted
        // frame, the two fields should agree on the dominant motion.
        let prev = textured(96, 96, 8);
        let mut cur = shifted(&prev, 4, -3);
        let mut rng = rngx::derived_rng(0xA5, 0, 0);
        for px in cur.samples_mut() {
            let noise: i16 = rng.gen_range(-4..=4);
            *px = (i16::from(*px) + noise).clamp(0, 255) as u8;
        }
        let es = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let tss = BlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let fe = es.estimate(&cur, &prev).unwrap();
        let ft = tss.estimate(&cur, &prev).unwrap();
        let mut agree = 0;
        let interior: Vec<(u32, u32)> = (1..5).flat_map(|y| (1..5).map(move |x| (x, y))).collect();
        for &(bx, by) in &interior {
            if fe.at_block(bx, by).v == ft.at_block(bx, by).v {
                agree += 1;
            }
        }
        assert!(
            agree >= interior.len() - 2,
            "agree {agree}/{}",
            interior.len()
        );
    }

    #[test]
    fn mean_magnitude_tracks_shift_size() {
        let prev = textured(96, 96, 9);
        let small = shifted(&prev, 1, 0);
        let large = shifted(&prev, 6, 0);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let f_small = m.estimate(&small, &prev).unwrap();
        let f_large = m.estimate(&large, &prev).unwrap();
        assert!(f_large.mean_magnitude() > f_small.mean_magnitude());
    }
}
