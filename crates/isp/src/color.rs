//! RGB-domain finishing stages: color-correction matrix and gamma — the
//! remaining "…" boxes of Fig. 2's RGB domain.
//!
//! These stages complete the ISP's photographic path. They matter to
//! Euphrates only indirectly: gamma changes the luma statistics that
//! block matching sees, so the pipeline applies motion estimation before
//! gamma (as real ISPs do — ME runs in the linear domain).

use euphrates_common::image::{Rgb, RgbFrame};

/// A 3×3 color-correction matrix applied to linear RGB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorCorrection {
    /// Row-major 3×3 matrix; rows must roughly sum to 1 to preserve
    /// neutral tones.
    pub matrix: [[f64; 3]; 3],
}

impl Default for ColorCorrection {
    fn default() -> Self {
        // A mild sensor-to-sRGB matrix: boosts saturation slightly while
        // keeping grays neutral (rows sum to 1).
        ColorCorrection {
            matrix: [
                [1.35, -0.25, -0.10],
                [-0.15, 1.40, -0.25],
                [-0.05, -0.30, 1.35],
            ],
        }
    }
}

impl ColorCorrection {
    /// Identity (bypass) matrix.
    pub fn identity() -> Self {
        ColorCorrection {
            matrix: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Applies the matrix in place.
    pub fn process(&self, rgb: &mut RgbFrame) {
        let m = &self.matrix;
        for p in rgb.samples_mut() {
            let (r, g, b) = (f64::from(p.r), f64::from(p.g), f64::from(p.b));
            let out = |row: &[f64; 3]| -> u8 {
                (row[0] * r + row[1] * g + row[2] * b)
                    .round()
                    .clamp(0.0, 255.0) as u8
            };
            *p = Rgb::new(out(&m[0]), out(&m[1]), out(&m[2]));
        }
    }

    /// Arithmetic operations per pixel (9 multiplies + 6 adds + clamps).
    pub fn ops_per_pixel(&self) -> u64 {
        18
    }
}

/// Display gamma encoding (power law over normalized channels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Encoding exponent (sRGB-class displays use ≈1/2.2).
    pub encode_exponent: f64,
}

impl Default for Gamma {
    fn default() -> Self {
        Gamma {
            encode_exponent: 1.0 / 2.2,
        }
    }
}

impl Gamma {
    /// Applies gamma encoding in place via a 256-entry lookup table — the
    /// way ISP hardware implements it.
    pub fn process(&self, rgb: &mut RgbFrame) {
        let lut = self.lut();
        for p in rgb.samples_mut() {
            *p = Rgb::new(lut[p.r as usize], lut[p.g as usize], lut[p.b as usize]);
        }
    }

    /// The 256-entry encoding table.
    pub fn lut(&self) -> [u8; 256] {
        let mut lut = [0u8; 256];
        for (i, v) in lut.iter_mut().enumerate() {
            let x = i as f64 / 255.0;
            *v = (x.powf(self.encode_exponent) * 255.0).round() as u8;
        }
        lut
    }

    /// Arithmetic operations per pixel (three table lookups).
    pub fn ops_per_pixel(&self) -> u64 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(px: Rgb) -> RgbFrame {
        let mut f = RgbFrame::new(8, 8).unwrap();
        for p in f.samples_mut() {
            *p = px;
        }
        f
    }

    #[test]
    fn identity_matrix_is_a_noop() {
        let mut f = solid(Rgb::new(120, 80, 200));
        let before = f.clone();
        ColorCorrection::identity().process(&mut f);
        assert_eq!(f, before);
    }

    #[test]
    fn default_ccm_preserves_neutral_gray() {
        let mut f = solid(Rgb::gray(128));
        ColorCorrection::default().process(&mut f);
        let p = f.at(0, 0);
        assert!(p.r.abs_diff(128) <= 1, "r {}", p.r);
        assert!(p.g.abs_diff(128) <= 1, "g {}", p.g);
        assert!(p.b.abs_diff(128) <= 1, "b {}", p.b);
    }

    #[test]
    fn default_ccm_increases_saturation() {
        let mut f = solid(Rgb::new(180, 90, 90));
        ColorCorrection::default().process(&mut f);
        let p = f.at(0, 0);
        // Red channel separates further from green/blue.
        assert!(p.r > 180, "r {}", p.r);
        assert!(p.g < 90, "g {}", p.g);
    }

    #[test]
    fn gamma_preserves_black_and_white() {
        let lut = Gamma::default().lut();
        assert_eq!(lut[0], 0);
        assert_eq!(lut[255], 255);
    }

    #[test]
    fn gamma_brightens_midtones() {
        let mut f = solid(Rgb::gray(64));
        Gamma::default().process(&mut f);
        assert!(f.at(0, 0).r > 120, "encoded {}", f.at(0, 0).r);
    }

    #[test]
    fn gamma_lut_is_monotone() {
        let lut = Gamma::default().lut();
        for pair in lut.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn ops_estimates_are_positive() {
        assert!(ColorCorrection::default().ops_per_pixel() > 0);
        assert!(Gamma::default().ops_per_pixel() > 0);
    }
}
