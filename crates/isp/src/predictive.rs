//! Predictive block matching — the codec-style motion search of the §7
//! discussion.
//!
//! The paper notes that fast motion beyond the ±d search window is
//! fundamentally unrecoverable for memoryless block matching, and that
//! "enlarging the search window might improve the accuracy, but has
//! significant overhead". Video codecs solve this cheaply with *predicted
//! motion vectors*: each block's search is centered on its own motion in
//! the previous frame, so a constant-velocity object stays matchable at
//! any speed while the per-block arithmetic stays that of a small window.
//! This module implements that scheme as the future-work extension the
//! paper sketches for codec/vision co-design.

use crate::motion::{BlockMatcher, MotionField, MotionVector, SearchStrategy};
use euphrates_common::error::{Error, Result};
use euphrates_common::geom::Vec2i;
use euphrates_common::image::{LumaFrame, Resolution};

/// A block matcher whose per-block search window is re-centered on the
/// block's previous motion (codec-style PMV search).
#[derive(Debug, Clone)]
pub struct PredictiveBlockMatcher {
    mb_size: u32,
    search_range: u32,
    strategy: SearchStrategy,
    /// Cap on the predictor magnitude (bounds worst-case memory access
    /// strides in hardware; MVs stay representable in one byte).
    max_predictor: i16,
    prev_field: Option<MotionField>,
}

impl PredictiveBlockMatcher {
    /// Creates a predictive matcher with the same parameters as
    /// [`BlockMatcher::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid block parameters.
    pub fn new(mb_size: u32, search_range: u32, strategy: SearchStrategy) -> Result<Self> {
        // Validate eagerly via a throwaway inner matcher.
        let _ = BlockMatcher::new(mb_size, search_range, strategy)?;
        Ok(PredictiveBlockMatcher {
            mb_size,
            search_range,
            strategy,
            max_predictor: 64,
            prev_field: None,
        })
    }

    /// Drops the motion history (start of a new stream).
    pub fn reset(&mut self) {
        self.prev_field = None;
    }

    /// Stateless variant: searches every block around one externally
    /// supplied global predictor (e.g. an IMU's camera-motion estimate —
    /// the §7 sensor-fusion direction). Unlike post-hoc compensation,
    /// re-centering the *search window* lets block matching measure
    /// motion whose global component exceeds ±d.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn estimate_with_global_predictor(
        &self,
        cur: &LumaFrame,
        prev: &LumaFrame,
        predictor: Vec2i,
    ) -> Result<MotionField> {
        if !cur.same_shape(prev) {
            return Err(Error::shape("current and previous frames differ in size"));
        }
        let res = Resolution::new(cur.width(), cur.height());
        let inner = BlockMatcher::new(self.mb_size, self.search_range, self.strategy)?;
        let clamped = Vec2i::new(
            predictor.x.clamp(-self.max_predictor, self.max_predictor),
            predictor.y.clamp(-self.max_predictor, self.max_predictor),
        );
        let mut field = MotionField::zeroed(res, self.mb_size, self.search_range)?;
        for by in 0..field.blocks_y() {
            for bx in 0..field.blocks_x() {
                let mv = search_around(&inner, cur, prev, bx, by, clamped);
                field.set_block(bx, by, mv);
            }
        }
        Ok(field)
    }

    /// Estimates motion, warm-starting every block from its previous MV.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn estimate(&mut self, cur: &LumaFrame, prev: &LumaFrame) -> Result<MotionField> {
        if !cur.same_shape(prev) {
            return Err(Error::shape("current and previous frames differ in size"));
        }
        let res = Resolution::new(cur.width(), cur.height());
        let inner = BlockMatcher::new(self.mb_size, self.search_range, self.strategy)?;
        let mut field = MotionField::zeroed(res, self.mb_size, self.search_range)?;
        let predictor_ok = self
            .prev_field
            .as_ref()
            .is_some_and(|f| f.resolution() == res && f.mb_size() == self.mb_size);

        for by in 0..field.blocks_y() {
            for bx in 0..field.blocks_x() {
                let predictor = if predictor_ok {
                    let p = self
                        .prev_field
                        .as_ref()
                        .expect("checked above")
                        .at_block(bx, by)
                        .v;
                    Vec2i::new(
                        p.x.clamp(-self.max_predictor, self.max_predictor),
                        p.y.clamp(-self.max_predictor, self.max_predictor),
                    )
                } else {
                    Vec2i::ZERO
                };
                let mv = search_around(&inner, cur, prev, bx, by, predictor);
                field.set_block(bx, by, mv);
            }
        }
        self.prev_field = Some(field.clone());
        Ok(field)
    }
}

/// Runs the small-window search displaced by `predictor`: equivalent to
/// matching the current block against a window of the previous frame
/// centered at `-predictor`.
fn search_around(
    matcher: &BlockMatcher,
    cur: &LumaFrame,
    prev: &LumaFrame,
    bx: u32,
    by: u32,
    predictor: Vec2i,
) -> MotionVector {
    // Reuse the public estimator on a shifted view is not possible without
    // copying; instead run a direct window scan here. The cost model is
    // identical to the inner matcher's.
    let mb = matcher.mb_size();
    let d = matcher.search_range() as i32;
    let x0 = bx * mb;
    let y0 = by * mb;
    let bw = (cur.width() - x0).min(mb);
    let bh = (cur.height() - y0).min(mb);

    let sad_at = |vx: i32, vy: i32| -> u32 {
        let mut sad = 0u32;
        for row in 0..bh {
            for col in 0..bw {
                let a = cur.at(x0 + col, y0 + row);
                let b = prev.at_clamped(
                    i64::from(x0 + col) - i64::from(vx),
                    i64::from(y0 + row) - i64::from(vy),
                );
                sad += u32::from(a.abs_diff(b));
            }
        }
        sad
    };

    let (px, py) = (i32::from(predictor.x), i32::from(predictor.y));
    let mut best = MotionVector {
        v: Vec2i::new(px as i16, py as i16),
        sad: sad_at(px, py),
    };
    // Exhaustive scan of the displaced window (TSS refinement would also
    // work; the window is small so ES keeps this simple and exact).
    for vy in (py - d)..=(py + d) {
        for vx in (px - d)..=(px + d) {
            if vx == px && vy == py {
                continue;
            }
            let sad = sad_at(vx, vy);
            let v = Vec2i::new(vx as i16, vy as i16);
            if sad < best.sad || (sad == best.sad && v.norm_sq() < best.v.norm_sq()) {
                best = MotionVector { v, sad };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::rngx;

    fn textured(width: u32, height: u32, seed: u64, shift: i64) -> LumaFrame {
        let mut f = LumaFrame::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                let v = (rngx::lattice_hash(seed, (i64::from(x) - shift) / 4, i64::from(y) / 4)
                    * 255.0) as u8;
                f.set(x, y, v);
            }
        }
        f
    }

    #[test]
    fn first_frame_behaves_like_plain_matching() {
        let prev = textured(96, 96, 1, 0);
        let cur = textured(96, 96, 1, 4);
        let mut pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = pm.estimate(&cur, &prev).unwrap();
        assert_eq!(i32::from(field.at_block(2, 2).v.x), 4);
    }

    #[test]
    fn predictor_tracks_motion_beyond_the_window() {
        // 12 px/frame: unreachable for d=7 memoryless matching, trivially
        // tracked once the predictor locks on.
        let mut pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let speed = 12i64;
        let mut found = Vec::new();
        for step in 1..5i64 {
            let prev = textured(160, 96, 2, speed * (step - 1));
            let cur = textured(160, 96, 2, speed * step);
            let field = pm.estimate(&cur, &prev).unwrap();
            found.push(i32::from(field.at_block(4, 3).v.x));
        }
        // First frame saturates at <= 7; later frames converge to 12.
        assert!(found[0] <= 7, "first estimate {found:?}");
        assert_eq!(*found.last().unwrap(), 12, "history {found:?}");
    }

    #[test]
    fn plain_matcher_cannot_do_this() {
        let prev = textured(160, 96, 2, 0);
        let cur = textured(160, 96, 2, 12);
        let m = BlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let field = m.estimate(&cur, &prev).unwrap();
        assert!(i32::from(field.at_block(4, 3).v.x) <= 7);
    }

    #[test]
    fn reset_clears_the_predictor() {
        let mut pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::Exhaustive).unwrap();
        let prev = textured(96, 96, 3, 0);
        let cur = textured(96, 96, 3, 6);
        pm.estimate(&cur, &prev).unwrap();
        pm.reset();
        // After reset the next estimate starts from zero predictors: a
        // static pair must return zero motion.
        let field = pm.estimate(&prev, &prev).unwrap();
        assert_eq!(field.mean_magnitude(), 0.0);
    }

    #[test]
    fn resolution_changes_invalidate_the_predictor() {
        let mut pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let a = textured(96, 96, 4, 0);
        pm.estimate(&a, &a).unwrap();
        let b = textured(64, 64, 4, 0);
        let field = pm.estimate(&b, &b).unwrap();
        assert_eq!(field.resolution(), Resolution::new(64, 64));
        assert_eq!(field.mean_magnitude(), 0.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut pm = PredictiveBlockMatcher::new(16, 7, SearchStrategy::ThreeStep).unwrap();
        let a = textured(96, 96, 5, 0);
        let b = textured(64, 96, 5, 0);
        assert!(pm.estimate(&a, &b).is_err());
    }
}
