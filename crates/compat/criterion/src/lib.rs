//! A self-contained, offline drop-in for the subset of the `criterion`
//! 0.5 API the micro-benchmarks use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size` / `finish`), `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is plain wall clock: each benchmark is warmed up, then run for
//! `sample_size` samples whose per-iteration means are reported as
//! `min/mean/max`. No statistics beyond that — the point is a usable
//! `cargo bench` without registry access, not rigorous inference.

use std::time::{Duration, Instant};

/// Runs the closure under test repeatedly and records per-iteration time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count so one sample takes
    /// roughly 10 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + iteration-count calibration.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let el = t0.elapsed();
            if el >= Duration::from_millis(5) || iters >= 1 << 20 {
                let target = Duration::from_millis(10).as_nanos() as u64;
                let per = (el.as_nanos() as u64 / iters).max(1);
                iters = (target / per).clamp(1, 1 << 24);
                break;
            }
            iters *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let ns: Vec<f64> = self.samples.iter().map(|d| d.as_nanos() as f64).collect();
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ns.iter().copied().fold(0.0f64, f64::max);
        let fmt = |v: f64| -> String {
            if v >= 1e9 {
                format!("{:.3} s", v / 1e9)
            } else if v >= 1e6 {
                format!("{:.3} ms", v / 1e6)
            } else if v >= 1e3 {
                format!("{:.3} µs", v / 1e3)
            } else {
                format!("{v:.1} ns")
            }
        };
        println!("{name:<40} [{} {} {}]", fmt(min), fmt(mean), fmt(max));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (a no-op; output is printed as it is produced).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Declares a function that runs the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_honor_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("id", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
