//! A self-contained, offline drop-in for the subset of the `rand` 0.8 API
//! this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The build environment has no registry access, and everything in the
//! simulator must be seed-deterministic anyway, so the implementation is a
//! fixed xoshiro256++ generator seeded through SplitMix64. The statistical
//! quality is more than sufficient for the oracle-noise and scene-layout
//! sampling this workspace does; the stream differs from upstream
//! `StdRng` (ChaCha12), which only matters to tests calibrated against
//! exact upstream sequences (none are).

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable over a half-open or closed interval.
///
/// The single blanket [`SampleRange`] impl below is what lets integer- and
/// float-literal ranges unify with the surrounding expression's type the
/// way upstream `rand` does.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Panics if the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The user-facing extension trait (blanket-implemented for any core
/// source, matching `rand` 0.8).
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
            let u = rng.gen_range(0u32..8);
            assert!(u < 8);
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = 0.0;
        const N: u32 = 100_000;
        for _ in 0..N {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= f64::from(N);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
