//! A self-contained, offline drop-in for the subset of the `proptest` 1.x
//! API this workspace's property tests use: the `proptest!` macro, range
//! and tuple strategies, `prop_map`, `any::<T>()`, `collection::vec`, the
//! `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! Cases are sampled deterministically (the RNG is seeded from the test
//! name), so failures reproduce exactly. There is no shrinking: a failing
//! case panics with the standard assertion message, which for these tests
//! already prints the offending values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value over the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over a type's full domain.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..200)` — the `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property-case condition (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-case equality (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// The `proptest!` block macro: each contained `fn name(x in strat, ...)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in -5.0f64..5.0,
            pair in (0u32..10, 0.0f64..=1.0),
            v in collection::vec(0i64..=3, 1..20),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(pair.0 < 10 && (0.0..=1.0).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| (0..=3).contains(&e)));
        }

        #[test]
        fn prop_map_applies(y in (0.0f64..1.0).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0.0f64..1.0;
        prop_assert_eq!(
            crate::Strategy::sample(&s, &mut a).to_bits(),
            crate::Strategy::sample(&s, &mut b).to_bits()
        );
    }
}
