//! # euphrates-nn
//!
//! The neural-network substrate of the Euphrates reproduction:
//!
//! * [`layer`] / [`zoo`] — layer-accurate descriptors of the evaluated
//!   networks (YOLOv2, Tiny YOLO, MDNet, plus the Fig. 1 comparison
//!   points), with MAC/parameter/GOPS accounting that reproduces Table 2.
//! * [`systolic`] — a SCALE-Sim-style analytical model of the 24×24
//!   systolic-array accelerator of Table 1 (cycles, utilization, SRAM
//!   refetch, DRAM traffic — including the ~646 MB-per-YOLOv2-inference
//!   headline number).
//! * [`engine`] — the NNX IP wrapper: job interface, busy/idle state, and
//!   the calibrated 651 mW / 1.77 TOPS/W power model.
//! * [`oracle`] — functional accuracy models substituting for trained
//!   weights (see `DESIGN.md` §2 for why this preserves the paper's
//!   experiments); calibrated per network in [`oracle::calib`].
//! * [`classic`] — Haar/HOG sliding-window cost models for Fig. 1.
//!
//! ## Example
//!
//! ```
//! use euphrates_nn::{engine::NnxEngine, zoo};
//!
//! let engine = NnxEngine::default();
//! let plan = engine.plan(&zoo::yolov2());
//! // Baseline YOLOv2 cannot reach 60 FPS on a mobile accelerator (Fig. 1).
//! assert!(plan.fps() < 25.0);
//! ```

pub mod classic;
pub mod energy;
pub mod engine;
pub mod layer;
pub mod oracle;
pub mod systolic;
pub mod zoo;

pub use engine::{BatchPlan, InferencePlan, NnxConfig, NnxEngine};
pub use layer::{Layer, LayerKind, NetworkDescriptor, TensorShape};
pub use oracle::{
    Detection, DetectorOracle, DetectorProfile, OracleTarget, TrackerOracle, TrackerProfile,
};
pub use systolic::{Dataflow, NetworkStats, SystolicConfig, SystolicModel};
