//! The NNX accelerator IP model: job-level interface, state machine, and
//! power, wrapping the systolic performance model.
//!
//! Per the paper's design principle (§4.1), the CNN engine is *unmodified*
//! by Euphrates: it exposes the same slave interface to the interconnect
//! and simply runs whatever job descriptors it is given. In the baseline
//! system the host CPU programs it; in Euphrates the Motion Controller
//! does (master role), with results flowing back over memory-mapped
//! registers.

use crate::layer::NetworkDescriptor;
use crate::systolic::{NetworkStats, SystolicConfig, SystolicModel};
use euphrates_common::error::{Error, Result};
use euphrates_common::units::{Bytes, MilliJoules, MilliWatts, Picos};

/// Static NNX configuration: the systolic array plus calibrated power
/// (§5.1: post-layout 651 mW at 1 GHz in 16 nm, 1.77 TOPS/W).
#[derive(Debug, Clone, PartialEq)]
pub struct NnxConfig {
    /// Underlying array/SRAM/dataflow configuration.
    pub systolic: SystolicConfig,
    /// Power while running a job.
    pub active_power: MilliWatts,
    /// Idle (clock-gated) power.
    pub idle_power: MilliWatts,
}

impl Default for NnxConfig {
    fn default() -> Self {
        NnxConfig {
            systolic: SystolicConfig::table1(),
            active_power: MilliWatts(651.0),
            idle_power: MilliWatts(33.0),
        }
    }
}

impl NnxConfig {
    /// Power efficiency at peak throughput, TOPS/W.
    pub fn tops_per_watt(&self) -> f64 {
        self.systolic.peak_ops_per_sec() / 1e12 / (self.active_power.0 / 1000.0)
    }
}

/// A planned inference: the per-network analysis reused across frames.
#[derive(Debug, Clone, PartialEq)]
pub struct InferencePlan {
    stats: NetworkStats,
    active_power: MilliWatts,
}

impl InferencePlan {
    /// Per-inference latency.
    pub fn latency(&self) -> Picos {
        self.stats.latency()
    }

    /// Per-inference accelerator energy (active power over the latency —
    /// the §5.1 measurement convention).
    pub fn energy(&self) -> MilliJoules {
        self.active_power.over(self.latency())
    }

    /// DRAM bytes read per inference.
    pub fn dram_read(&self) -> Bytes {
        self.stats.dram_read()
    }

    /// DRAM bytes written per inference.
    pub fn dram_write(&self) -> Bytes {
        self.stats.dram_write()
    }

    /// The underlying per-layer statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Sustained FPS for back-to-back jobs.
    pub fn fps(&self) -> f64 {
        self.stats.fps()
    }
}

/// A planned batched inference: `requests` same-network jobs fused into
/// one weight-resident pass over the array (see
/// [`SystolicModel::analyze_batch`]).
///
/// Where [`InferencePlan`] prices one request, a `BatchPlan` prices the
/// whole fused batch; the `per_request_*` accessors hand back the
/// amortized share the serving layer charges to each session.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    requests: u32,
    stats: NetworkStats,
    active_power: MilliWatts,
}

impl BatchPlan {
    /// Number of fused requests.
    pub fn requests(&self) -> u32 {
        self.requests
    }

    /// Latency of the whole batch.
    pub fn latency(&self) -> Picos {
        self.stats.latency()
    }

    /// Accelerator energy for the whole batch.
    pub fn energy(&self) -> MilliJoules {
        self.active_power.over(self.latency())
    }

    /// Total array cycles for the whole batch.
    pub fn compute_cycles(&self) -> u64 {
        self.stats.total_compute_cycles().0
    }

    /// DRAM bytes read by the whole batch.
    pub fn dram_read(&self) -> Bytes {
        self.stats.dram_read()
    }

    /// DRAM bytes written by the whole batch.
    pub fn dram_write(&self) -> Bytes {
        self.stats.dram_write()
    }

    /// Amortized per-request latency (batch latency / requests; the
    /// remainder is charged to request 0 so shares sum to the total).
    pub fn per_request_latency(&self) -> Picos {
        Picos(self.latency().0 / u64::from(self.requests))
    }

    /// Amortized per-request energy.
    pub fn per_request_energy(&self) -> MilliJoules {
        MilliJoules(self.energy().0 / f64::from(self.requests))
    }

    /// The underlying per-layer statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Compute-cycle amortization against a solo plan: batched cycles
    /// divided by `requests ×` the solo cycles. 1.0 means batching
    /// bought nothing; lower is better.
    pub fn amortization_vs(&self, solo: &InferencePlan) -> f64 {
        let solo_total =
            u128::from(self.requests) * u128::from(solo.stats.total_compute_cycles().0);
        if solo_total == 0 {
            return 1.0;
        }
        self.compute_cycles() as f64 / solo_total as f64
    }
}

/// Runtime state of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NnxState {
    Idle,
    Busy { until: Picos },
}

/// The CNN accelerator IP.
#[derive(Debug, Clone)]
pub struct NnxEngine {
    config: NnxConfig,
    model: SystolicModel,
    state: NnxState,
    jobs_completed: u64,
}

impl NnxEngine {
    /// Creates an engine.
    pub fn new(config: NnxConfig) -> Self {
        let model = SystolicModel::new(config.systolic.clone());
        NnxEngine {
            config,
            model,
            state: NnxState::Idle,
            jobs_completed: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &NnxConfig {
        &self.config
    }

    /// Plans inference for a network (run once, reuse per frame).
    pub fn plan(&self, net: &NetworkDescriptor) -> InferencePlan {
        InferencePlan {
            stats: self.model.analyze(net),
            active_power: self.config.active_power,
        }
    }

    /// Plans a fused batch of `requests` same-network inferences (run
    /// once per batch size, reuse across batches).
    pub fn plan_batch(&self, net: &NetworkDescriptor, requests: u32) -> BatchPlan {
        let requests = requests.max(1);
        BatchPlan {
            requests,
            stats: self.model.analyze_batch(net, requests),
            active_power: self.config.active_power,
        }
    }

    /// `true` if a job is in flight at time `now`.
    pub fn is_busy(&self, now: Picos) -> bool {
        match self.state {
            NnxState::Idle => false,
            NnxState::Busy { until } => now < until,
        }
    }

    /// Starts a job at `now`; returns its completion time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidState`] if a job is already in flight.
    pub fn start(&mut self, plan: &InferencePlan, now: Picos) -> Result<Picos> {
        if self.is_busy(now) {
            return Err(Error::state("NNX already running a job"));
        }
        let done = now + plan.latency();
        self.state = NnxState::Busy { until: done };
        self.jobs_completed += 1;
        Ok(done)
    }

    /// Number of jobs started since construction.
    pub fn jobs_started(&self) -> u64 {
        self.jobs_completed
    }
}

impl Default for NnxEngine {
    fn default() -> Self {
        NnxEngine::new(NnxConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn efficiency_matches_paper_silicon() {
        // §5.1: 1.77 TOPS/W.
        let eff = NnxConfig::default().tops_per_watt();
        assert!((eff - 1.77).abs() < 0.02, "TOPS/W = {eff}");
    }

    #[test]
    fn plan_energy_is_power_times_latency() {
        let engine = NnxEngine::default();
        let plan = engine.plan(&zoo::tiny_yolo());
        let expected = 651.0 * plan.latency().as_secs_f64();
        assert!((plan.energy().0 - expected).abs() < 1e-9);
    }

    #[test]
    fn yolov2_inference_energy_is_tens_of_mj() {
        let engine = NnxEngine::default();
        let plan = engine.plan(&zoo::yolov2());
        // ~651 mW × ~55-70 ms ≈ 36-46 mJ.
        assert!(
            (20.0..70.0).contains(&plan.energy().0),
            "energy {} mJ",
            plan.energy().0
        );
    }

    #[test]
    fn engine_rejects_overlapping_jobs() {
        let mut engine = NnxEngine::default();
        let plan = engine.plan(&zoo::mdnet());
        let done = engine.start(&plan, Picos::ZERO).unwrap();
        assert!(engine.is_busy(Picos(done.0 / 2)));
        assert!(engine.start(&plan, Picos(done.0 / 2)).is_err());
        // After completion it accepts again.
        assert!(!engine.is_busy(done));
        assert!(engine.start(&plan, done).is_ok());
        assert_eq!(engine.jobs_started(), 2);
    }

    #[test]
    fn batch_plan_amortizes_cycles_and_energy() {
        let engine = NnxEngine::default();
        let net = zoo::mdnet();
        let solo = engine.plan(&net);
        for b in [2u32, 8, 16] {
            let batch = engine.plan_batch(&net, b);
            assert_eq!(batch.requests(), b);
            let ratio = batch.amortization_vs(&solo);
            assert!(ratio < 1.0, "B={b}: amortization ratio {ratio} not below 1");
            assert!(
                batch.per_request_energy().0 < solo.energy().0,
                "B={b}: per-request energy did not shrink"
            );
            assert!(batch.per_request_latency().0 < solo.latency().0);
        }
    }

    #[test]
    fn batch_plan_of_zero_clamps_to_one_request() {
        let engine = NnxEngine::default();
        let net = zoo::tiny_yolo();
        let zero = engine.plan_batch(&net, 0);
        assert_eq!(zero.requests(), 1);
        assert_eq!(zero, engine.plan_batch(&net, 1));
        // A single-request batch still uses the weight-resident walk, so
        // its shares are self-consistent even though it is not the solo
        // conservative walk (documented in the systolic crate docs).
        assert_eq!(zero.per_request_latency(), zero.latency());
    }

    #[test]
    fn plan_is_reusable_and_consistent() {
        let engine = NnxEngine::default();
        let a = engine.plan(&zoo::yolov2());
        let b = engine.plan(&zoo::yolov2());
        assert_eq!(a, b);
        assert_eq!(a.dram_read().0 + a.dram_write().0, a.stats().dram_total().0);
    }
}
