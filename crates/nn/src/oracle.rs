//! Functional accuracy oracles — the substitution for trained CNN weights.
//!
//! Euphrates never modifies the CNN; it only changes *how often* inference
//! runs. What the reproduction therefore needs from "the CNN" is (a) a
//! baseline accuracy level matching the paper's networks, (b) realistic
//! failure responses to visual conditions (blur, occlusion, small/fast
//! objects), and (c) determinism. The oracles provide exactly that: they
//! consume exact ground truth ([`OracleTarget`]) and emit noisy results
//! whose error statistics are calibrated (module [`calib`]) so that the
//! baseline curves land where Fig. 9a / Fig. 10a put them. Timing and
//! energy of inference come from the systolic model, not from the oracle.
//!
//! Determinism: every decision derives its RNG from
//! `(seed, object/stream id, frame index)`, so results are independent of
//! evaluation order and thread count.

use euphrates_common::geom::Rect;
use euphrates_common::rngx;
use rand::Rng;

/// Ground-truth view handed to an oracle (decoupled from the camera crate's
/// richer scene types).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleTarget {
    /// Stable object id.
    pub id: u32,
    /// Class label.
    pub label: u32,
    /// True bounding box (clipped to the frame).
    pub rect: Rect,
    /// Visible fraction in `[0, 1]` (occlusion / out-of-view).
    pub visibility: f64,
    /// Motion-blur extent in pixels.
    pub blur: f64,
}

/// A detection emitted by a detector oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted box.
    pub rect: Rect,
    /// Predicted class label.
    pub label: u32,
    /// Confidence score in `(0, 1]`.
    pub score: f64,
    /// Ground-truth object this detection arose from; `None` for false
    /// positives. (Scoring does not use this — it re-matches greedily —
    /// but the tracker seeding does.)
    pub source_id: Option<u32>,
}

/// Error-statistics profile of a detector-class network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorProfile {
    /// Display name.
    pub name: &'static str,
    /// Localization noise: center jitter sigma as a fraction of box size.
    pub sigma_frac: f64,
    /// Size (log-scale) jitter sigma.
    pub size_sigma: f64,
    /// Probability of missing a fully visible object.
    pub miss_rate: f64,
    /// Extra relative sigma per pixel of motion blur.
    pub blur_sigma_per_px: f64,
    /// Expected false positives per frame.
    pub fp_per_frame: f64,
    /// Below this visibility the object is never detected.
    pub min_visibility: f64,
}

/// Calibration constants for all modeled networks.
///
/// The accuracy targets (AP at IoU 0.5 under the paper's precision metric,
/// success rate at 0.5 for the tracker) are taken from Fig. 1 / Fig. 9a /
/// Fig. 10a; `EXPERIMENTS.md` records the measured values.
pub mod calib {
    use super::{DetectorProfile, TrackerProfile};

    /// YOLOv2: AP@0.5 ≈ 0.80.
    pub fn yolov2() -> DetectorProfile {
        DetectorProfile {
            name: "YOLOv2",
            sigma_frac: 0.105,
            size_sigma: 0.06,
            miss_rate: 0.04,
            blur_sigma_per_px: 0.012,
            fp_per_frame: 0.70,
            min_visibility: 0.15,
        }
    }

    /// Tiny YOLO: AP@0.5 ≈ 0.58 (the "20 % accuracy loss" §5.2).
    pub fn tiny_yolo() -> DetectorProfile {
        DetectorProfile {
            name: "TinyYOLO",
            sigma_frac: 0.175,
            size_sigma: 0.11,
            miss_rate: 0.18,
            blur_sigma_per_px: 0.02,
            fp_per_frame: 1.5,
            min_visibility: 0.25,
        }
    }

    /// SSD: AP@0.5 ≈ 0.74 (Fig. 1).
    pub fn ssd() -> DetectorProfile {
        DetectorProfile {
            name: "SSD",
            sigma_frac: 0.12,
            size_sigma: 0.07,
            miss_rate: 0.06,
            blur_sigma_per_px: 0.014,
            fp_per_frame: 0.9,
            min_visibility: 0.18,
        }
    }

    /// Faster R-CNN: AP@0.5 ≈ 0.83 (Fig. 1).
    pub fn faster_rcnn() -> DetectorProfile {
        DetectorProfile {
            name: "FasterR-CNN",
            sigma_frac: 0.095,
            size_sigma: 0.05,
            miss_rate: 0.03,
            blur_sigma_per_px: 0.010,
            fp_per_frame: 0.5,
            min_visibility: 0.12,
        }
    }

    /// HOG+SVM: AP@0.5 ≈ 0.46 (Fig. 1, hand-crafted features).
    pub fn hog() -> DetectorProfile {
        DetectorProfile {
            name: "HOG",
            sigma_frac: 0.22,
            size_sigma: 0.15,
            miss_rate: 0.30,
            blur_sigma_per_px: 0.03,
            fp_per_frame: 2.6,
            min_visibility: 0.35,
        }
    }

    /// Haar cascade: AP@0.5 ≈ 0.33 (Fig. 1).
    pub fn haar() -> DetectorProfile {
        DetectorProfile {
            name: "Haar",
            sigma_frac: 0.27,
            size_sigma: 0.20,
            miss_rate: 0.40,
            blur_sigma_per_px: 0.04,
            fp_per_frame: 3.6,
            min_visibility: 0.45,
        }
    }

    /// MDNet: success@0.5 ≈ 0.9 on OTB-like content (the paper's Fig. 10a
    /// baseline reads ≈0.88 at IoU 0.5).
    pub fn mdnet() -> TrackerProfile {
        TrackerProfile {
            name: "MDNet",
            sigma_frac: 0.075,
            size_sigma: 0.05,
            blur_sigma_per_px: 0.012,
            relock_iou: 0.18,
            min_visibility: 0.25,
            lost_drift_sigma: 1.2,
        }
    }
}

/// A deterministic detector oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorOracle {
    profile: DetectorProfile,
    seed: u64,
}

impl DetectorOracle {
    /// Creates an oracle with the given profile and noise seed.
    pub fn new(profile: DetectorProfile, seed: u64) -> Self {
        DetectorOracle { profile, seed }
    }

    /// The oracle's profile.
    pub fn profile(&self) -> &DetectorProfile {
        &self.profile
    }

    /// Runs "inference" on one frame: produces detections for the given
    /// targets plus false positives. `frame_bounds` bounds false-positive
    /// placement; `stream` disambiguates multiple sequences sharing a seed.
    pub fn detect(
        &self,
        targets: &[OracleTarget],
        frame_bounds: &Rect,
        stream: u64,
        frame_index: u64,
    ) -> Vec<Detection> {
        let p = &self.profile;
        let mut out = Vec::with_capacity(targets.len() + 1);
        for t in targets {
            let mut rng = rngx::derived_rng(
                self.seed ^ (u64::from(t.id) << 32) ^ stream.rotate_left(17),
                u64::from(t.id),
                frame_index,
            );
            if t.rect.is_empty() || t.visibility < p.min_visibility {
                continue;
            }
            // Degraded visibility raises the miss probability smoothly.
            let miss_p = p.miss_rate + (1.0 - t.visibility) * 0.6;
            if rng.gen::<f64>() < miss_p {
                continue;
            }
            let rect = jitter_box(
                &mut rng,
                &t.rect,
                effective_sigma(p, t),
                p.size_sigma * (1.0 + 0.5 * (1.0 - t.visibility)),
            );
            out.push(Detection {
                rect,
                label: t.label,
                score: (0.55 + 0.45 * rng.gen::<f64>()) * t.visibility.max(0.3),
                source_id: Some(t.id),
            });
        }
        // False positives: Poisson-ish via a Bernoulli chain (cheap, and the
        // expected count matches fp_per_frame for rates < ~3).
        let mut rng = rngx::derived_rng(self.seed ^ 0x0F9E, stream, frame_index);
        let mut budget = p.fp_per_frame;
        while budget > 0.0 {
            let prob = budget.min(1.0);
            if rng.gen::<f64>() < prob {
                out.push(random_fp(&mut rng, frame_bounds));
            }
            budget -= 1.0;
        }
        out
    }
}

/// Error-statistics profile of a tracker-class network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerProfile {
    /// Display name.
    pub name: &'static str,
    /// Localization noise when locked onto the target.
    pub sigma_frac: f64,
    /// Size jitter sigma.
    pub size_sigma: f64,
    /// Extra relative sigma per pixel of motion blur.
    pub blur_sigma_per_px: f64,
    /// Minimum IoU between the previous prediction and the current truth
    /// for the tracker's local search to re-acquire the target.
    pub relock_iou: f64,
    /// Below this visibility the target cannot be re-acquired.
    pub min_visibility: f64,
    /// Random-walk sigma (pixels) of a lost tracker's box.
    pub lost_drift_sigma: f64,
}

/// A deterministic single-object tracker oracle (MDNet-class).
///
/// MDNet searches candidate windows around its previous prediction: if the
/// target still overlaps that neighborhood it re-locks (with localization
/// noise); once the target is gone — occluded, out of view, or the previous
/// box has drifted off — the tracker latches onto background and drifts.
/// This "lost is lost" dynamic is what makes long extrapolation windows
/// risky in the tracking experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerOracle {
    profile: TrackerProfile,
    seed: u64,
}

impl TrackerOracle {
    /// Creates a tracker oracle.
    pub fn new(profile: TrackerProfile, seed: u64) -> Self {
        TrackerOracle { profile, seed }
    }

    /// The oracle's profile.
    pub fn profile(&self) -> &TrackerProfile {
        &self.profile
    }

    /// One inference step: given the tracker's previous output box and the
    /// current ground truth, returns the new predicted box.
    pub fn track(&self, prev: &Rect, target: &OracleTarget, stream: u64, frame_index: u64) -> Rect {
        let p = &self.profile;
        let mut rng = rngx::derived_rng(self.seed ^ 0x7EAC, stream, frame_index);
        let locked = !target.rect.is_empty()
            && target.visibility >= p.min_visibility
            && prev.iou(&target.rect) >= p.relock_iou;
        if locked {
            let sigma = p.sigma_frac
                * (1.0 + p.blur_sigma_per_px * target.blur / p.sigma_frac.max(1e-9) * p.sigma_frac)
                * (1.0 + 0.8 * (1.0 - target.visibility))
                + p.blur_sigma_per_px * target.blur;
            jitter_box(&mut rng, &target.rect, sigma, p.size_sigma)
        } else {
            // Lost: drift on background.
            let dx = rngx::gaussian(&mut rng, 0.0, p.lost_drift_sigma);
            let dy = rngx::gaussian(&mut rng, 0.0, p.lost_drift_sigma);
            Rect::new(prev.x + dx, prev.y + dy, prev.w, prev.h)
        }
    }
}

/// Applies center + log-size jitter to a box.
fn jitter_box<R: Rng + ?Sized>(rng: &mut R, rect: &Rect, sigma_frac: f64, size_sigma: f64) -> Rect {
    let cx = rect.x + rect.w / 2.0 + rngx::gaussian(rng, 0.0, sigma_frac * rect.w);
    let cy = rect.y + rect.h / 2.0 + rngx::gaussian(rng, 0.0, sigma_frac * rect.h);
    let kw = rngx::gaussian(rng, 0.0, size_sigma).exp();
    let kh = rngx::gaussian(rng, 0.0, size_sigma).exp();
    Rect::from_center(cx, cy, rect.w * kw, rect.h * kh)
}

/// Generates a random false-positive box within the frame.
fn random_fp<R: Rng + ?Sized>(rng: &mut R, bounds: &Rect) -> Detection {
    let w = bounds.w * rng.gen_range(0.05..0.25);
    let h = bounds.h * rng.gen_range(0.05..0.25);
    let x = bounds.x + rng.gen_range(0.0..(bounds.w - w).max(1.0));
    let y = bounds.y + rng.gen_range(0.0..(bounds.h - h).max(1.0));
    Detection {
        rect: Rect::new(x, y, w, h),
        label: rng.gen_range(0..8),
        score: 0.3 + 0.4 * rng.gen::<f64>(),
        source_id: None,
    }
}

/// Convenience: the effective localization sigma for a target under the
/// profile's blur/occlusion penalties.
fn effective_sigma(p: &DetectorProfile, t: &OracleTarget) -> f64 {
    p.sigma_frac * (1.0 + 0.8 * (1.0 - t.visibility)) + p.blur_sigma_per_px * t.blur
}

#[cfg(test)]
mod tests {
    use super::*;
    use euphrates_common::metrics::{match_detections, IouAccumulator};

    fn full_vis_target(id: u32, rect: Rect) -> OracleTarget {
        OracleTarget {
            id,
            label: 1,
            rect,
            visibility: 1.0,
            blur: 0.0,
        }
    }

    fn frame() -> Rect {
        Rect::new(0.0, 0.0, 640.0, 480.0)
    }

    /// Measures AP@0.5 (paper metric) of a profile over synthetic frames.
    fn measure_ap(profile: DetectorProfile, frames: u64) -> f64 {
        let oracle = DetectorOracle::new(profile, 99);
        let mut acc = IouAccumulator::new();
        for f in 0..frames {
            // Six objects per frame, like the paper's detection dataset.
            let targets: Vec<OracleTarget> = (0..6)
                .map(|i| {
                    full_vis_target(
                        i,
                        Rect::new(
                            30.0 + f64::from(i) * 95.0,
                            40.0 + f64::from(i % 3) * 120.0,
                            70.0,
                            90.0,
                        ),
                    )
                })
                .collect();
            let dets = oracle.detect(&targets, &frame(), 0, f);
            let truths: Vec<Rect> = targets.iter().map(|t| t.rect).collect();
            let preds: Vec<Rect> = dets.iter().map(|d| d.rect).collect();
            acc.extend(match_detections(&preds, &truths));
        }
        acc.rate_at(0.5)
    }

    #[test]
    fn yolov2_ap_matches_paper_band() {
        let ap = measure_ap(calib::yolov2(), 400);
        assert!((0.74..0.87).contains(&ap), "YOLOv2 AP@0.5 = {ap}");
    }

    #[test]
    fn tiny_yolo_ap_matches_paper_band() {
        let ap = measure_ap(calib::tiny_yolo(), 400);
        assert!((0.50..0.66).contains(&ap), "TinyYOLO AP@0.5 = {ap}");
    }

    #[test]
    fn accuracy_ordering_matches_fig1() {
        let fr = measure_ap(calib::faster_rcnn(), 250);
        let yv = measure_ap(calib::yolov2(), 250);
        let ssd = measure_ap(calib::ssd(), 250);
        let ty = measure_ap(calib::tiny_yolo(), 250);
        let hog = measure_ap(calib::hog(), 250);
        let haar = measure_ap(calib::haar(), 250);
        assert!(
            fr > yv && yv > ty && ssd > ty && ty > hog && hog > haar,
            "fr={fr:.2} yv={yv:.2} ssd={ssd:.2} ty={ty:.2} hog={hog:.2} haar={haar:.2}"
        );
    }

    #[test]
    fn detection_is_deterministic() {
        let oracle = DetectorOracle::new(calib::yolov2(), 7);
        let t = vec![full_vis_target(0, Rect::new(100.0, 100.0, 60.0, 80.0))];
        let a = oracle.detect(&t, &frame(), 3, 42);
        let b = oracle.detect(&t, &frame(), 3, 42);
        assert_eq!(a, b);
        let c = oracle.detect(&t, &frame(), 3, 43);
        assert_ne!(a, c, "different frames must differ");
    }

    #[test]
    fn invisible_targets_are_never_detected() {
        let oracle = DetectorOracle::new(calib::yolov2(), 7);
        let mut t = full_vis_target(0, Rect::new(100.0, 100.0, 60.0, 80.0));
        t.visibility = 0.05;
        for f in 0..50 {
            let dets = oracle.detect(&[t], &frame(), 0, f);
            assert!(dets.iter().all(|d| d.source_id.is_none()));
        }
    }

    #[test]
    fn occlusion_increases_miss_rate() {
        let oracle = DetectorOracle::new(calib::yolov2(), 7);
        let count_hits = |vis: f64| -> usize {
            let mut t = full_vis_target(0, Rect::new(100.0, 100.0, 60.0, 80.0));
            t.visibility = vis;
            (0..300)
                .filter(|&f| {
                    oracle
                        .detect(&[t], &frame(), 0, f)
                        .iter()
                        .any(|d| d.source_id == Some(0))
                })
                .count()
        };
        let full = count_hits(1.0);
        let half = count_hits(0.45);
        assert!(full > half + 30, "full {full} vs occluded {half}");
    }

    #[test]
    fn blur_degrades_localization() {
        let oracle = DetectorOracle::new(calib::yolov2(), 7);
        let mean_iou = |blur: f64| -> f64 {
            let mut t = full_vis_target(0, Rect::new(200.0, 150.0, 80.0, 100.0));
            t.blur = blur;
            let mut acc = IouAccumulator::new();
            for f in 0..400 {
                for d in oracle.detect(&[t], &frame(), 0, f) {
                    if d.source_id == Some(0) {
                        acc.push_pair(&d.rect, &t.rect);
                    }
                }
            }
            acc.mean_iou()
        };
        let sharp = mean_iou(0.0);
        let blurred = mean_iou(8.0);
        assert!(sharp > blurred + 0.03, "sharp {sharp} vs blurred {blurred}");
    }

    #[test]
    fn fp_rate_is_roughly_calibrated() {
        let oracle = DetectorOracle::new(calib::yolov2(), 7);
        let mut fps = 0usize;
        let frames = 1000;
        for f in 0..frames {
            fps += oracle
                .detect(&[], &frame(), 0, f)
                .iter()
                .filter(|d| d.source_id.is_none())
                .count();
        }
        let rate = fps as f64 / frames as f64;
        let target = calib::yolov2().fp_per_frame;
        assert!(
            (rate - target).abs() < 0.15,
            "fp rate {rate} target {target}"
        );
    }

    #[test]
    fn tracker_locks_and_follows() {
        let oracle = TrackerOracle::new(calib::mdnet(), 5);
        let truth = Rect::new(100.0, 100.0, 50.0, 60.0);
        let t = full_vis_target(0, truth);
        let mut acc = IouAccumulator::new();
        let mut prev = truth;
        for f in 0..300 {
            prev = oracle.track(&prev, &t, 0, f);
            acc.push_pair(&prev, &truth);
        }
        let success = acc.rate_at(0.5);
        assert!(success > 0.8, "locked success {success}");
    }

    #[test]
    fn tracker_stays_lost_when_target_jumps_away() {
        let oracle = TrackerOracle::new(calib::mdnet(), 5);
        let t = full_vis_target(0, Rect::new(500.0, 400.0, 40.0, 40.0));
        // Previous prediction far from the target: no overlap, never locks.
        let mut prev = Rect::new(50.0, 50.0, 40.0, 40.0);
        for f in 0..50 {
            prev = oracle.track(&prev, &t, 0, f);
        }
        assert_eq!(prev.iou(&t.rect), 0.0, "tracker must not teleport");
    }

    #[test]
    fn tracker_loses_target_under_full_occlusion() {
        let oracle = TrackerOracle::new(calib::mdnet(), 5);
        let mut t = full_vis_target(0, Rect::new(100.0, 100.0, 50.0, 60.0));
        t.visibility = 0.05; // fully hidden
        let before = Rect::new(100.0, 100.0, 50.0, 60.0);
        let after = oracle.track(&before, &t, 0, 1);
        // Output is a drift of the previous box, not a re-lock on truth.
        assert_eq!((after.w, after.h), (before.w, before.h));
    }

    #[test]
    fn tracker_is_deterministic() {
        let oracle = TrackerOracle::new(calib::mdnet(), 5);
        let t = full_vis_target(0, Rect::new(100.0, 100.0, 50.0, 60.0));
        let p = Rect::new(98.0, 101.0, 50.0, 60.0);
        assert_eq!(oracle.track(&p, &t, 2, 9), oracle.track(&p, &t, 2, 9));
    }
}
