//! Bottom-up accelerator energy model: per-operation and per-access
//! energies composed into a per-inference figure, cross-checked against
//! the paper's top-down measurement (651 mW over the inference latency).
//!
//! The constants are standard 16 nm estimates (Horowitz-style): an int8
//! MAC costs a fraction of a picojoule, SRAM accesses cost a few times a
//! MAC, and DRAM accesses dominate at tens of pJ/byte. The value of the
//! bottom-up view is attribution — it shows *where* an inference's energy
//! goes (arithmetic vs. SRAM vs. DRAM), which the top-down number cannot.

use crate::systolic::NetworkStats;
use euphrates_common::units::MilliJoules;

/// Energy constants (16 nm class, int8 datapath).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// Energy per MAC operation, picojoules.
    pub pj_per_mac: f64,
    /// Energy per byte moved to/from the local SRAM, picojoules.
    pub pj_per_sram_byte: f64,
    /// Energy per byte moved to/from DRAM (accelerator-side I/O charge;
    /// the DRAM device itself is billed by `euphrates-soc`), picojoules.
    pub pj_per_dram_byte: f64,
    /// Static/control overhead as a fraction of the dynamic total
    /// (clock tree, sequencer, scalar unit).
    pub overhead_fraction: f64,
}

impl Default for EnergyConstants {
    fn default() -> Self {
        EnergyConstants {
            pj_per_mac: 0.25,
            pj_per_sram_byte: 0.6,
            pj_per_dram_byte: 4.0,
            overhead_fraction: 0.35,
        }
    }
}

/// Per-inference energy attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// MAC-array arithmetic.
    pub compute: MilliJoules,
    /// Local SRAM traffic (operand staging, double buffering).
    pub sram: MilliJoules,
    /// Accelerator-side DRAM interface traffic.
    pub dram_io: MilliJoules,
    /// Static/control overhead.
    pub overhead: MilliJoules,
}

impl EnergyBreakdown {
    /// Total per-inference energy.
    pub fn total(&self) -> MilliJoules {
        self.compute + self.sram + self.dram_io + self.overhead
    }
}

/// Computes the bottom-up energy of one inference from the systolic
/// model's per-layer statistics.
///
/// SRAM traffic is approximated as every operand entering the array once
/// from SRAM (MACs × 2 input bytes + output writeback), which is how a
/// double-buffered design behaves: DRAM fills the SRAM, the SRAM feeds
/// the array.
pub fn inference_energy(stats: &NetworkStats, constants: &EnergyConstants) -> EnergyBreakdown {
    let macs = stats.total_macs() as f64;
    let dram_bytes = stats.dram_total().0 as f64;
    // Each MAC consumes one weight byte and one activation byte from the
    // array's edge buffers; outputs write back once per output element
    // (approximated via DRAM write volume, which equals ofmap bytes).
    let sram_bytes = macs * 2.0 + stats.dram_write().0 as f64;
    let compute = MilliJoules(macs * constants.pj_per_mac * 1e-9);
    let sram = MilliJoules(sram_bytes * constants.pj_per_sram_byte * 1e-9);
    let dram_io = MilliJoules(dram_bytes * constants.pj_per_dram_byte * 1e-9);
    let dynamic = compute + sram + dram_io;
    EnergyBreakdown {
        compute,
        sram,
        dram_io,
        overhead: dynamic * constants.overhead_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NnxEngine;
    use crate::systolic::SystolicModel;
    use crate::zoo;

    #[test]
    fn bottom_up_matches_top_down_within_2x() {
        // The top-down figure (651 mW × latency) and the bottom-up sum
        // must agree to within a factor of two for every network — a
        // standard sanity band for independent energy models.
        let model = SystolicModel::default();
        let engine = NnxEngine::default();
        for net in [zoo::yolov2(), zoo::tiny_yolo(), zoo::mdnet()] {
            let stats = model.analyze(&net);
            let bottom_up = inference_energy(&stats, &EnergyConstants::default()).total();
            let top_down = engine.plan(&net).energy();
            let ratio = top_down.0 / bottom_up.0;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: top-down {} vs bottom-up {} (ratio {ratio:.2})",
                net.name,
                top_down,
                bottom_up
            );
        }
    }

    #[test]
    fn sram_staging_dominates_and_dram_io_is_visible() {
        // Bottom-up attribution: operand staging through the SRAM is the
        // largest dynamic term (every MAC pulls two bytes), with the
        // 643 MB of DRAM refetch clearly visible. (The DRAM *device*
        // energy — the system-level reason E-frames win — is billed by
        // euphrates-soc, not here.)
        let stats = SystolicModel::default().analyze(&zoo::yolov2());
        let e = inference_energy(&stats, &EnergyConstants::default());
        assert!(
            e.sram.0 > e.compute.0,
            "sram {} vs compute {}",
            e.sram,
            e.compute
        );
        assert!(
            e.dram_io.0 > 0.02 * e.total().0,
            "dram {} of total {}",
            e.dram_io,
            e.total()
        );
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let stats = SystolicModel::default().analyze(&zoo::mdnet());
        let e = inference_energy(&stats, &EnergyConstants::default());
        assert!(e.compute.0 > 0.0 && e.sram.0 > 0.0 && e.dram_io.0 > 0.0);
        let sum = e.compute + e.sram + e.dram_io + e.overhead;
        assert!((sum.0 - e.total().0).abs() < 1e-12);
    }

    #[test]
    fn cheaper_networks_cost_less_energy() {
        let model = SystolicModel::default();
        let c = EnergyConstants::default();
        let yolo = inference_energy(&model.analyze(&zoo::yolov2()), &c).total();
        let tiny = inference_energy(&model.analyze(&zoo::tiny_yolo()), &c).total();
        assert!(tiny.0 < yolo.0 / 2.0);
    }
}
