//! The network zoo: layer-accurate descriptors of the CNNs the paper
//! evaluates (Table 2) plus the comparison points of Fig. 1.
//!
//! Input resolutions are chosen so that each network's per-frame cost
//! matches the paper's Table 2 GOPS-at-60-FPS figures (within a few
//! percent); the deviations are recorded in `EXPERIMENTS.md`.
//!
//! * [`yolov2`] — Darknet-19 backbone + passthrough + detection head at
//!   576×576 (≈ 3.39 TOPS at 60 FPS vs. the paper's 3.423).
//! * [`tiny_yolo`] — the 9-conv truncation at 640×640 (≈ 0.71 TOPS vs.
//!   0.675).
//! * [`mdnet`] — VGG-M-style three-conv + three-fc tracker evaluating a
//!   batch of candidate windows per frame (≈ 0.63 TOPS vs. 0.635).
//! * [`ssd`], [`faster_rcnn`] — VGG-16-based detectors for Fig. 1.

use crate::layer::{NetBuilder, NetworkDescriptor, TensorShape};

/// YOLOv2 at 576×576 (Darknet-19 + passthrough).
///
/// The reference implementation is most commonly quoted at 416×416
/// (≈29.5 GOP/frame); Table 2's 3,423 GOPS at 60 FPS corresponds to a
/// 57 GOP/frame operating point, i.e. an input near 576×576 — plausibly
/// the paper's 480p-capture-derived setting. We use 576 so the Table 2
/// compute demand is matched within ~1 %.
pub fn yolov2() -> NetworkDescriptor {
    NetBuilder::new("YOLOv2", TensorShape::new(576, 576, 3), 1)
        .conv3(32)
        .maxpool(2, 2)
        .conv3(64)
        .maxpool(2, 2)
        .conv3(128)
        .conv1(64)
        .conv3(128)
        .maxpool(2, 2)
        .conv3(256)
        .conv1(128)
        .conv3(256)
        .maxpool(2, 2)
        .conv3(512)
        .conv1(256)
        .conv3(512)
        .conv1(256)
        .conv3(512) // conv13: the passthrough source (26x26x512)
        .maxpool(2, 2)
        .conv3(1024)
        .conv1(512)
        .conv3(1024)
        .conv1(512)
        .conv3(1024)
        .conv3(1024)
        .conv3(1024)
        // Passthrough: conv13's 26x26x512 reorg'd to 13x13x2048, projected
        // to 64 channels in the reference implementation; modeled as a
        // 256-channel concat (the common 4*64 layout).
        .concat_channels(256)
        .conv3(1024)
        .conv1(425)
        .build()
        .expect("yolov2 descriptor is well-formed")
}

/// Tiny YOLO (9 conv layers) at 640×640 (input chosen to match Table 2's
/// 675 GOPS within ~6 %, see [`yolov2`]).
pub fn tiny_yolo() -> NetworkDescriptor {
    NetBuilder::new("TinyYOLO", TensorShape::new(640, 640, 3), 1)
        .conv3(16)
        .maxpool(2, 2)
        .conv3(32)
        .maxpool(2, 2)
        .conv3(64)
        .maxpool(2, 2)
        .conv3(128)
        .maxpool(2, 2)
        .conv3(256)
        .maxpool(2, 2)
        .conv3(512)
        .maxpool(2, 1)
        .conv3(1024)
        .conv3(512)
        .conv1(425)
        .build()
        .expect("tiny yolo descriptor is well-formed")
}

/// Candidate windows MDNet evaluates per tracked frame. Chosen so the
/// per-frame cost matches Table 2's 635 GOPS at 60 FPS.
pub const MDNET_CANDIDATES: u32 = 43;

/// MDNet-style tracker: VGG-M conv1–3 + fc4–6 over a batch of candidate
/// crops (107×107 each).
pub fn mdnet() -> NetworkDescriptor {
    NetBuilder::new("MDNet", TensorShape::new(107, 107, 3), MDNET_CANDIDATES)
        .conv(96, 7, 2, 0)
        .maxpool(2, 2)
        .conv(256, 5, 2, 0)
        .maxpool(2, 2)
        .conv(512, 3, 1, 0)
        .fc(512)
        .fc(512)
        .fc(2)
        .build()
        .expect("mdnet descriptor is well-formed")
}

/// SSD300-class detector (VGG-16 backbone truncated at conv5 + extra
/// feature layers), for Fig. 1.
pub fn ssd() -> NetworkDescriptor {
    NetBuilder::new("SSD", TensorShape::new(300, 300, 3), 1)
        .conv3(64)
        .conv3(64)
        .maxpool(2, 2)
        .conv3(128)
        .conv3(128)
        .maxpool(2, 2)
        .conv3(256)
        .conv3(256)
        .conv3(256)
        .maxpool(2, 2)
        .conv3(512)
        .conv3(512)
        .conv3(512)
        .maxpool(2, 2)
        .conv3(512)
        .conv3(512)
        .conv3(512)
        // fc6/fc7 as convs + multibox heads (coarse).
        .conv(1024, 3, 1, 1)
        .conv1(1024)
        .conv1(256)
        .conv(512, 3, 2, 1)
        .conv1(128)
        .conv(256, 3, 2, 1)
        .build()
        .expect("ssd descriptor is well-formed")
}

/// Faster R-CNN with a VGG-16 backbone at 600×800 (the paper-era standard
/// input), for Fig. 1. The per-region head is folded in as a batched FC
/// stack over 300 proposals.
pub fn faster_rcnn() -> NetworkDescriptor {
    NetBuilder::new("FasterR-CNN", TensorShape::new(600, 800, 3), 1)
        .conv3(64)
        .conv3(64)
        .maxpool(2, 2)
        .conv3(128)
        .conv3(128)
        .maxpool(2, 2)
        .conv3(256)
        .conv3(256)
        .conv3(256)
        .maxpool(2, 2)
        .conv3(512)
        .conv3(512)
        .conv3(512)
        .maxpool(2, 2)
        .conv3(512)
        .conv3(512)
        .conv3(512)
        // RPN.
        .conv3(512)
        .conv1(24)
        .build()
        .expect("faster r-cnn descriptor is well-formed")
}

/// All Table 2 networks.
pub fn table2_networks() -> Vec<NetworkDescriptor> {
    vec![tiny_yolo(), yolov2(), mdnet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolov2_matches_table2_gops() {
        let net = yolov2();
        let gops = net.gops_at_fps(60.0);
        // Paper: 3423 GOPS. Accept ±10%.
        assert!(
            (3080.0..3780.0).contains(&gops),
            "YOLOv2 gops at 60fps = {gops}"
        );
    }

    #[test]
    fn tiny_yolo_matches_table2_gops() {
        let gops = tiny_yolo().gops_at_fps(60.0);
        // Paper: 675 GOPS. Accept ±10%.
        assert!((610.0..745.0).contains(&gops), "TinyYOLO gops = {gops}");
    }

    #[test]
    fn mdnet_matches_table2_gops() {
        let gops = mdnet().gops_at_fps(60.0);
        // Paper: 635 GOPS. Accept ±10%.
        assert!((570.0..700.0).contains(&gops), "MDNet gops = {gops}");
    }

    #[test]
    fn tiny_yolo_is_about_20_percent_of_yolov2() {
        // §6.1: Tiny YOLO has ~80% fewer MACs than YOLOv2.
        let ratio = tiny_yolo().total_macs() as f64 / yolov2().total_macs() as f64;
        assert!((0.12..0.30).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_networks_validate() {
        for net in [yolov2(), tiny_yolo(), mdnet(), ssd(), faster_rcnn()] {
            net.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", net.name));
            assert!(net.total_macs() > 0);
            assert!(net.weight_bytes().0 > 0);
        }
    }

    #[test]
    fn fig1_ordering_of_compute_demand() {
        // Fig. 1: Faster R-CNN > YOLOv2 ≥ SSD > Tiny YOLO.
        let fr = faster_rcnn().gops_at_fps(60.0);
        let yv2 = yolov2().gops_at_fps(60.0);
        let ssd_g = ssd().gops_at_fps(60.0);
        let ty = tiny_yolo().gops_at_fps(60.0);
        assert!(fr > yv2, "faster r-cnn {fr} vs yolov2 {yv2}");
        assert!(yv2 > ty && ssd_g > ty);
    }

    #[test]
    fn yolov2_weights_are_tens_of_mb() {
        // Darknet-19 YOLOv2 has ~50M parameters (int8 -> ~48 MiB).
        let mb = yolov2().weight_bytes().as_mib_f64();
        assert!((35.0..70.0).contains(&mb), "weights {mb} MiB");
    }

    #[test]
    fn mdnet_conv1_shape_is_vggm() {
        let net = mdnet();
        assert_eq!(net.layers[0].output(), TensorShape::new(51, 51, 96));
        assert_eq!(net.batch, MDNET_CANDIDATES);
    }
}
