//! Cost models for the hand-crafted-feature detectors of Fig. 1 (Haar
//! cascades and HOG+SVM).
//!
//! These are the low-compute/low-accuracy corner of the accuracy-vs-TOPS
//! trade-off the paper motivates with. Their accuracy comes from the same
//! oracle machinery as the CNNs ([`crate::oracle::calib::haar`] /
//! [`crate::oracle::calib::hog`]); this module supplies the compute side:
//! an operations-per-pixel sliding-window cost model over an image pyramid.

use crate::oracle::DetectorProfile;
use euphrates_common::image::Resolution;

/// A classic sliding-window detector's compute model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicDetector {
    /// Oracle profile providing the accuracy side.
    pub profile: DetectorProfile,
    /// Feature + classifier operations per pyramid pixel.
    pub ops_per_pixel: f64,
    /// Pyramid scale factor per octave step.
    pub pyramid_scale: f64,
    /// Number of pyramid levels evaluated.
    pub pyramid_levels: u32,
}

impl ClassicDetector {
    /// Viola-Jones-style Haar cascade (integral image + early-reject
    /// cascade; cheap per pixel).
    pub fn haar() -> Self {
        ClassicDetector {
            profile: crate::oracle::calib::haar(),
            ops_per_pixel: 140.0,
            pyramid_scale: 0.8,
            pyramid_levels: 8,
        }
    }

    /// HOG + linear SVM (gradient histograms + dense window scoring).
    pub fn hog() -> Self {
        ClassicDetector {
            profile: crate::oracle::calib::hog(),
            ops_per_pixel: 450.0,
            pyramid_scale: 0.8,
            pyramid_levels: 8,
        }
    }

    /// Total pyramid pixels for a frame at `resolution`.
    pub fn pyramid_pixels(&self, resolution: Resolution) -> f64 {
        let base = resolution.pixels() as f64;
        let s2 = self.pyramid_scale * self.pyramid_scale;
        (0..self.pyramid_levels)
            .map(|l| base * s2.powi(l as i32))
            .sum()
    }

    /// Operations per frame.
    pub fn ops_per_frame(&self, resolution: Resolution) -> f64 {
        self.ops_per_pixel * self.pyramid_pixels(resolution)
    }

    /// Compute demand in TOPS to sustain `fps` at `resolution` — the Fig. 1
    /// x-axis quantity.
    pub fn tops_at(&self, resolution: Resolution, fps: f64) -> f64 {
        self.ops_per_frame(resolution) * fps / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_is_milli_tops_scale_at_480p60() {
        // Fig. 1 places Haar around 10^-2.5..10^-2 TOPS.
        let t = ClassicDetector::haar().tops_at(Resolution::VGA, 60.0);
        assert!((0.002..0.02).contains(&t), "Haar TOPS {t}");
    }

    #[test]
    fn hog_costs_more_than_haar() {
        let haar = ClassicDetector::haar().tops_at(Resolution::VGA, 60.0);
        let hog = ClassicDetector::hog().tops_at(Resolution::VGA, 60.0);
        assert!(hog > 2.0 * haar, "hog {hog} vs haar {haar}");
        assert!(hog < 0.1, "hog stays well under CNN scale");
    }

    #[test]
    fn pyramid_sums_geometric_series() {
        let d = ClassicDetector::haar();
        let px = d.pyramid_pixels(Resolution::VGA);
        let base = Resolution::VGA.pixels() as f64;
        assert!(px > base && px < base / (1.0 - 0.64));
    }
}
