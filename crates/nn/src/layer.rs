//! Network layer descriptors and shape/cost propagation.
//!
//! A [`NetworkDescriptor`] is a fully resolved list of layers with explicit
//! input shapes — enough information to compute MACs, parameter sizes, and
//! activation footprints, which is all the systolic-array performance model
//! needs. Weights/activations are modeled as int8 (1 byte/element), the
//! standard quantization for mobile accelerators of the paper's era.

use euphrates_common::error::{Error, Result};
use euphrates_common::units::Bytes;

/// A 3-D activation shape (height × width × channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Spatial height.
    pub h: u32,
    /// Spatial width.
    pub w: u32,
    /// Channel count.
    pub c: u32,
}

impl TensorShape {
    /// Creates a shape.
    pub const fn new(h: u32, w: u32, c: u32) -> Self {
        TensorShape { h, w, c }
    }

    /// Total element count.
    pub const fn elements(&self) -> u64 {
        self.h as u64 * self.w as u64 * self.c as u64
    }
}

/// The operation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv {
        /// Output channels.
        out_channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Symmetric zero padding.
        pad: u32,
    },
    /// Max pooling.
    MaxPool {
        /// Square window size.
        size: u32,
        /// Stride.
        stride: u32,
    },
    /// Fully connected layer (input is flattened).
    FullyConnected {
        /// Output features.
        out_features: u32,
    },
    /// Space-to-depth reorg (YOLOv2's passthrough), stride 2:
    /// `(h, w, c) → (h/2, w/2, 4c)`.
    Reorg,
}

/// One resolved layer: kind plus explicit input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name (diagnostic; appears in per-layer stats).
    pub name: String,
    /// The operation.
    pub kind: LayerKind,
    /// Input activation shape (already includes any concatenated
    /// passthrough channels).
    pub input: TensorShape,
}

impl Layer {
    /// Output shape of this layer.
    pub fn output(&self) -> TensorShape {
        match self.kind {
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let oh = (self.input.h + 2 * pad).saturating_sub(kernel) / stride + 1;
                let ow = (self.input.w + 2 * pad).saturating_sub(kernel) / stride + 1;
                TensorShape::new(oh, ow, out_channels)
            }
            LayerKind::MaxPool { size, stride } => {
                let oh = (self.input.h.saturating_sub(size)) / stride + 1;
                let ow = (self.input.w.saturating_sub(size)) / stride + 1;
                TensorShape::new(oh, ow, self.input.c)
            }
            LayerKind::FullyConnected { out_features } => TensorShape::new(1, 1, out_features),
            LayerKind::Reorg => {
                TensorShape::new(self.input.h / 2, self.input.w / 2, self.input.c * 4)
            }
        }
    }

    /// Multiply-accumulate count (per batch element).
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { kernel, .. } => {
                let out = self.output();
                out.elements() * u64::from(kernel) * u64::from(kernel) * u64::from(self.input.c)
            }
            LayerKind::FullyConnected { out_features } => {
                self.input.elements() * u64::from(out_features)
            }
            LayerKind::MaxPool { .. } | LayerKind::Reorg => 0,
        }
    }

    /// Non-MAC scalar operations (pooling comparisons, data reshuffles).
    pub fn scalar_ops(&self) -> u64 {
        match self.kind {
            LayerKind::MaxPool { size, .. } => {
                self.output().elements() * u64::from(size) * u64::from(size)
            }
            LayerKind::Reorg => self.input.elements(),
            _ => 0,
        }
    }

    /// Weight bytes (int8).
    pub fn weight_bytes(&self) -> Bytes {
        match self.kind {
            LayerKind::Conv {
                out_channels,
                kernel,
                ..
            } => Bytes(
                u64::from(kernel)
                    * u64::from(kernel)
                    * u64::from(self.input.c)
                    * u64::from(out_channels),
            ),
            LayerKind::FullyConnected { out_features } => {
                Bytes(self.input.elements() * u64::from(out_features))
            }
            LayerKind::MaxPool { .. } | LayerKind::Reorg => Bytes::ZERO,
        }
    }

    /// The GEMM this layer lowers to on the accelerator:
    /// `(M, N, K)` = (output pixels, output channels, reduction length).
    /// `None` for data-movement-only layers.
    pub fn gemm_dims(&self, batch: u32) -> Option<(u64, u64, u64)> {
        match self.kind {
            LayerKind::Conv { kernel, .. } => {
                let out = self.output();
                Some((
                    u64::from(out.h) * u64::from(out.w) * u64::from(batch),
                    u64::from(out.c),
                    u64::from(kernel) * u64::from(kernel) * u64::from(self.input.c),
                ))
            }
            LayerKind::FullyConnected { out_features } => Some((
                u64::from(batch),
                u64::from(out_features),
                self.input.elements(),
            )),
            LayerKind::MaxPool { .. } | LayerKind::Reorg => None,
        }
    }
}

/// A fully resolved network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDescriptor {
    /// Network name (e.g. `"YOLOv2"`).
    pub name: String,
    /// Batch size per frame (MDNet evaluates many candidate crops; single-
    /// shot detectors use 1).
    pub batch: u32,
    /// The layers, in execution order.
    pub layers: Vec<Layer>,
}

impl NetworkDescriptor {
    /// Validates the descriptor: non-empty, consistent chained shapes for
    /// layers whose input matches the previous output (explicit overrides —
    /// e.g. post-concat layers — are allowed to differ in channels only).
    pub fn validate(&self) -> Result<()> {
        if self.layers.is_empty() {
            return Err(Error::config("network has no layers"));
        }
        if self.batch == 0 {
            return Err(Error::config("batch must be positive"));
        }
        for pair in self.layers.windows(2) {
            let out = pair[0].output();
            let next_in = pair[1].input;
            // Spatial dims must chain; channels may grow via concat.
            let spatial_ok = (out.h == next_in.h && out.w == next_in.w)
                || matches!(pair[1].kind, LayerKind::FullyConnected { .. });
            if !spatial_ok {
                return Err(Error::config(format!(
                    "layer '{}' output {}x{} does not feed '{}' input {}x{}",
                    pair[0].name, out.h, out.w, pair[1].name, next_in.h, next_in.w
                )));
            }
            if next_in.c < out.c && !matches!(pair[1].kind, LayerKind::FullyConnected { .. }) {
                return Err(Error::config(format!(
                    "layer '{}' drops channels into '{}' ({} -> {})",
                    pair[0].name, pair[1].name, out.c, next_in.c
                )));
            }
        }
        Ok(())
    }

    /// Total MACs per frame (all batch elements).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum::<u64>() * u64::from(self.batch)
    }

    /// Total arithmetic operations per frame (2 ops per MAC + scalar ops).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
            + self.layers.iter().map(Layer::scalar_ops).sum::<u64>() * u64::from(self.batch)
    }

    /// Giga-operations per second required to sustain `fps` (Table 2's
    /// metric).
    pub fn gops_at_fps(&self, fps: f64) -> f64 {
        self.total_ops() as f64 * fps / 1e9
    }

    /// Total weight bytes.
    pub fn weight_bytes(&self) -> Bytes {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Largest single activation (input or output) in bytes — a lower bound
    /// on streaming buffer needs.
    pub fn peak_activation_bytes(&self) -> Bytes {
        let mut peak = 0;
        for l in &self.layers {
            peak = peak
                .max(l.input.elements() * u64::from(self.batch))
                .max(l.output().elements() * u64::from(self.batch));
        }
        Bytes(peak)
    }
}

/// Incremental builder for chained networks.
#[derive(Debug, Clone)]
pub struct NetBuilder {
    name: String,
    batch: u32,
    cursor: TensorShape,
    layers: Vec<Layer>,
    conv_index: u32,
}

impl NetBuilder {
    /// Starts a network with the given input shape.
    pub fn new(name: impl Into<String>, input: TensorShape, batch: u32) -> Self {
        NetBuilder {
            name: name.into(),
            batch,
            cursor: input,
            layers: Vec::new(),
            conv_index: 0,
        }
    }

    /// Appends a convolution (named automatically `convN`).
    pub fn conv(mut self, out_channels: u32, kernel: u32, stride: u32, pad: u32) -> Self {
        self.conv_index += 1;
        let layer = Layer {
            name: format!("conv{}", self.conv_index),
            kind: LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            },
            input: self.cursor,
        };
        self.cursor = layer.output();
        self.layers.push(layer);
        self
    }

    /// Appends a 3×3 stride-1 same-padded convolution.
    pub fn conv3(self, out_channels: u32) -> Self {
        self.conv(out_channels, 3, 1, 1)
    }

    /// Appends a 1×1 convolution.
    pub fn conv1(self, out_channels: u32) -> Self {
        self.conv(out_channels, 1, 1, 0)
    }

    /// Appends a max-pool layer.
    pub fn maxpool(mut self, size: u32, stride: u32) -> Self {
        let layer = Layer {
            name: format!("pool@{}", self.layers.len()),
            kind: LayerKind::MaxPool { size, stride },
            input: self.cursor,
        };
        self.cursor = layer.output();
        self.layers.push(layer);
        self
    }

    /// Appends a fully connected layer.
    pub fn fc(mut self, out_features: u32) -> Self {
        let layer = Layer {
            name: format!("fc@{}", self.layers.len()),
            kind: LayerKind::FullyConnected { out_features },
            input: self.cursor,
        };
        self.cursor = layer.output();
        self.layers.push(layer);
        self
    }

    /// Widens the current activation's channel count (models a concat with
    /// a passthrough branch whose compute was already counted upstream).
    pub fn concat_channels(mut self, extra_channels: u32) -> Self {
        self.cursor =
            TensorShape::new(self.cursor.h, self.cursor.w, self.cursor.c + extra_channels);
        self
    }

    /// Finalizes and validates the network.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the layer chain is inconsistent.
    pub fn build(self) -> Result<NetworkDescriptor> {
        let net = NetworkDescriptor {
            name: self.name,
            batch: self.batch,
            layers: self.layers,
        };
        net.validate()?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_propagation() {
        let l = Layer {
            name: "c".into(),
            kind: LayerKind::Conv {
                out_channels: 64,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            input: TensorShape::new(416, 416, 3),
        };
        assert_eq!(l.output(), TensorShape::new(416, 416, 64));
        // MACs = 416*416*64 * 3*3*3 = 299,040,768.
        assert_eq!(l.macs(), 416 * 416 * 64 * 27);
        assert_eq!(l.weight_bytes().0, 3 * 3 * 3 * 64);
    }

    #[test]
    fn strided_conv_and_pool_shapes() {
        let c = Layer {
            name: "c".into(),
            kind: LayerKind::Conv {
                out_channels: 96,
                kernel: 7,
                stride: 2,
                pad: 0,
            },
            input: TensorShape::new(107, 107, 3),
        };
        assert_eq!(c.output(), TensorShape::new(51, 51, 96));
        let p = Layer {
            name: "p".into(),
            kind: LayerKind::MaxPool { size: 2, stride: 2 },
            input: TensorShape::new(51, 51, 96),
        };
        assert_eq!(p.output(), TensorShape::new(25, 25, 96));
        assert_eq!(p.macs(), 0);
        assert!(p.scalar_ops() > 0);
    }

    #[test]
    fn fc_flattens_input() {
        let l = Layer {
            name: "fc".into(),
            kind: LayerKind::FullyConnected { out_features: 512 },
            input: TensorShape::new(3, 3, 512),
        };
        assert_eq!(l.output(), TensorShape::new(1, 1, 512));
        assert_eq!(l.macs(), 3 * 3 * 512 * 512);
        assert_eq!(l.gemm_dims(4), Some((4, 512, 3 * 3 * 512)));
    }

    #[test]
    fn reorg_is_space_to_depth() {
        let l = Layer {
            name: "reorg".into(),
            kind: LayerKind::Reorg,
            input: TensorShape::new(26, 26, 512),
        };
        assert_eq!(l.output(), TensorShape::new(13, 13, 2048));
        assert_eq!(l.macs(), 0);
        assert_eq!(l.gemm_dims(1), None);
    }

    #[test]
    fn builder_chains_shapes() {
        let net = NetBuilder::new("toy", TensorShape::new(32, 32, 3), 1)
            .conv3(16)
            .maxpool(2, 2)
            .conv3(32)
            .fc(10)
            .build()
            .unwrap();
        assert_eq!(net.layers.len(), 4);
        assert_eq!(net.layers[2].input, TensorShape::new(16, 16, 16));
        assert_eq!(net.layers[3].input, TensorShape::new(16, 16, 32));
        assert!(net.total_macs() > 0);
        assert_eq!(
            net.total_ops(),
            2 * net.total_macs() + net.layers[1].scalar_ops()
        );
    }

    #[test]
    fn batch_multiplies_cost() {
        let mk = |batch| {
            NetBuilder::new("b", TensorShape::new(16, 16, 8), batch)
                .conv3(16)
                .build()
                .unwrap()
        };
        assert_eq!(mk(4).total_macs(), 4 * mk(1).total_macs());
        let (m4, _, _) = mk(4).layers[0].gemm_dims(4).unwrap();
        let (m1, _, _) = mk(1).layers[0].gemm_dims(1).unwrap();
        assert_eq!(m4, 4 * m1);
    }

    #[test]
    fn validation_rejects_broken_chains() {
        // Manually corrupt a chain.
        let bad = NetworkDescriptor {
            name: "bad".into(),
            batch: 1,
            layers: vec![
                Layer {
                    name: "a".into(),
                    kind: LayerKind::Conv {
                        out_channels: 8,
                        kernel: 3,
                        stride: 2,
                        pad: 1,
                    },
                    input: TensorShape::new(32, 32, 3),
                },
                Layer {
                    name: "b".into(),
                    kind: LayerKind::Conv {
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    },
                    input: TensorShape::new(32, 32, 8), // should be 16x16
                },
            ],
        };
        assert!(bad.validate().is_err());
        let empty = NetworkDescriptor {
            name: "e".into(),
            batch: 1,
            layers: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn concat_widens_channels() {
        let net = NetBuilder::new("cat", TensorShape::new(13, 13, 1024), 1)
            .concat_channels(256)
            .conv3(1024)
            .build()
            .unwrap();
        assert_eq!(net.layers[0].input.c, 1280);
    }

    #[test]
    fn gops_metric_matches_hand_math() {
        let net = NetBuilder::new("g", TensorShape::new(16, 16, 8), 1)
            .conv3(16)
            .build()
            .unwrap();
        let ops = net.total_ops() as f64;
        assert!((net.gops_at_fps(60.0) - ops * 60.0 / 1e9).abs() < 1e-9);
    }
}
